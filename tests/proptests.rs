//! Property-based tests over the core data structures and invariants.

use uucs_harness::prelude::*;
use uucs::stats::{Ecdf, Pcg64};
use uucs::testcase::{format as tcformat, ExerciseFunction, Resource, Testcase};

/// Strategy: a valid contention value vector for a resource.
fn values_for(resource: Resource) -> impl Strategy<Value = Vec<f64>> {
    let max = resource.max_contention();
    prop::collection::vec(0.0..max, 1..200)
}

proptest! {
    /// The text format round-trips any testcase exactly.
    #[test]
    fn testcase_format_roundtrip(
        cpu in values_for(Resource::Cpu),
        mem in values_for(Resource::Memory),
        disk in values_for(Resource::Disk),
        rate in 1u32..10,
    ) {
        let rate = rate as f64;
        let tc = Testcase::new(
            "prop-tc",
            rate,
            vec![
                ExerciseFunction::from_values(Resource::Cpu, rate, cpu),
                ExerciseFunction::from_values(Resource::Memory, rate, mem),
                ExerciseFunction::from_values(Resource::Disk, rate, disk),
            ],
        );
        let parsed = tcformat::parse(&tcformat::emit(&tc)).unwrap();
        prop_assert_eq!(parsed, tc);
    }

    /// ECDF invariants: eval is monotone, bounded by f_d, and quantile
    /// inverts eval.
    #[test]
    fn ecdf_invariants(
        mut observed in prop::collection::vec(0.0f64..10.0, 0..100),
        censored in 0usize..100,
        probe in prop::collection::vec(0.0f64..12.0, 1..20),
    ) {
        prop_assume!(!observed.is_empty() || censored > 0);
        observed.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let e = Ecdf::new(observed.clone(), censored);
        let f_d = e.f_d().unwrap();
        let mut sorted = probe.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = 0.0;
        for &x in &sorted {
            let y = e.eval(x);
            prop_assert!(y >= prev - 1e-12);
            prop_assert!(y <= f_d + 1e-12);
            prev = y;
        }
        // quantile(p) is the smallest observed level with eval >= p.
        for &p in &[0.05, 0.25, 0.5, 0.9] {
            if let Some(q) = e.quantile(p) {
                prop_assert!(e.eval(q) >= p - 1e-12);
                // Strictly below q, the CDF is under p.
                prop_assert!(e.eval(q - 1e-9) < p + 1e-12);
            }
        }
    }

    /// The exercise-function contract: value_at agrees with the vector,
    /// and last_values_at never exceeds its window.
    #[test]
    fn exercise_function_indexing(
        values in prop::collection::vec(0.0f64..5.0, 1..100),
        rate in 1u32..5,
        t in 0.0f64..150.0,
        k in 1usize..8,
    ) {
        let rate = rate as f64;
        let f = ExerciseFunction::from_values(Resource::Disk, rate, values.clone());
        match f.value_at(t) {
            Some(v) => {
                let idx = (t * rate).floor() as usize;
                prop_assert!(idx < values.len());
                prop_assert_eq!(v, values[idx].min(Resource::Disk.max_contention()));
            }
            None => prop_assert!(t >= f.duration() || t < 0.0),
        }
        let tail = f.last_values_at(t, k);
        prop_assert!(tail.len() <= k);
        if t >= 0.0 {
            prop_assert!(!tail.is_empty());
        }
    }

    /// Run-engine invariants: offsets within [0, duration], discomfort
    /// implies the recorded level reached the effective threshold
    /// envelope, exhausted implies offset == duration.
    #[test]
    fn run_engine_invariants(thr in 0.05f64..3.0, seed in 0u64..500) {
        use uucs::comfort::{execute_run, Fidelity, RunSetup, RunStyle};
        use uucs::comfort::{SelfRatings, SkillLevel, UserProfile};
        use uucs::protocol::RunOutcome;
        use uucs::testcase::ExerciseSpec;
        let mut thresholds = std::collections::HashMap::new();
        for c in &uucs::comfort::calibration::CELLS {
            thresholds.insert((c.task, c.resource), thr);
        }
        let user = UserProfile {
            id: "prop".into(),
            ratings: SelfRatings::uniform(SkillLevel::Typical),
            thresholds,
            noise_propensity: 1.0,
            ramp_bonus_frac: 0.1,
            reaction_secs: 1.0,
        };
        let tc = Testcase::single(
            "prop-cpu-ramp",
            1.0,
            Resource::Cpu,
            ExerciseSpec::Ramp { level: 2.0, duration: 120.0 },
        );
        let rec = execute_run(&RunSetup {
            user: &user,
            task: uucs::workloads::Task::Powerpoint,
            testcase: &tc,
            style: RunStyle::Ramp,
            seed,
            fidelity: Fidelity::Fast,
            client_id: "prop".into(),
        });
        prop_assert!(rec.offset_secs >= 0.0);
        prop_assert!(rec.offset_secs <= 120.0);
        match rec.outcome {
            RunOutcome::Exhausted => prop_assert_eq!(rec.offset_secs, 120.0),
            RunOutcome::Discomfort => {
                // The ramp crossed the threshold before feedback.
                let level = rec.level_at_feedback(Resource::Cpu).unwrap();
                prop_assert!(level >= thr - 1e-9,
                    "level {} below threshold {}", level, thr);
            }
        }
    }

    /// No parser in the system panics on arbitrary input — malformed
    /// files and wire garbage produce errors, not crashes.
    #[test]
    fn parsers_never_panic(input in "\\PC*") {
        let _ = uucs::testcase::format::parse_many(&input);
        let _ = uucs::protocol::RunRecord::parse_many(&input);
        let _ = uucs::protocol::MachineSnapshot::parse(&input);
        let _ = uucs::client::Script::parse(&input);
        let _ = uucs::testcase::HostLoadTrace::parse(&input);
    }

    /// Structured-looking but corrupted testcase bodies also never panic.
    #[test]
    fn structured_garbage_never_panics(
        id in "[a-z]{1,8}",
        n in 0usize..10,
        body in "[0-9a-z. \n]{0,100}",
    ) {
        let text = format!("TESTCASE {id}\nRATE 1\nFUNCTION cpu {n}\n{body}\nEND\n");
        let _ = uucs::testcase::format::parse_many(&text);
        let text2 = format!("RESULT\nCLIENT {id}\nOUTCOME discomfort\nOFFSET {n}\nLEVELS cpu {body}\nEND\n");
        let _ = uucs::protocol::RunRecord::parse_many(&text2);
    }

    /// Pcg64 splitting: children are pure functions of (seed, label) and
    /// never alias their parent stream.
    #[test]
    fn rng_split_purity(seed in any::<u64>(), label in any::<u64>()) {
        let root = Pcg64::new(seed);
        let mut a = root.split(label);
        let mut b = root.split(label);
        for _ in 0..8 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut parent = root.clone();
        let mut child = root.split(label);
        let parent_seq: Vec<u64> = (0..8).map(|_| parent.next_u64()).collect();
        let child_seq: Vec<u64> = (0..8).map(|_| child.next_u64()).collect();
        prop_assert_ne!(parent_seq, child_seq);
    }

    /// Scheduler share conservation: with k pure-CPU threads, total CPU
    /// time equals elapsed time and splits evenly.
    #[test]
    fn scheduler_share_conservation(k in 1usize..6, seed in 0u64..100) {
        use uucs::sim::workload::FnWorkload;
        use uucs::sim::{Action, Machine, SEC};
        let mut m = Machine::study_machine(seed);
        let tids: Vec<_> = (0..k)
            .map(|i| {
                m.spawn(
                    format!("busy{i}"),
                    Box::new(FnWorkload::new("busy", |_| Action::Compute { us: 1000 })),
                )
            })
            .collect();
        m.run_until(5 * SEC);
        let total: u64 = tids.iter().map(|&t| m.thread_stats(t).cpu_us).sum();
        prop_assert_eq!(total, 5 * SEC);
        for &t in &tids {
            let share = m.thread_stats(t).cpu_us as f64 / (5 * SEC) as f64;
            prop_assert!((share - 1.0 / k as f64).abs() < 0.05,
                "share {} for k {}", share, k);
        }
    }

    /// Run-record text format round-trips arbitrary records.
    #[test]
    fn run_record_roundtrip(
        offset in 0.0f64..120.0,
        discomfort in any::<bool>(),
        levels in prop::collection::vec(0.0f64..10.0, 0..5),
        faults in 0u64..100_000,
    ) {
        use uucs::protocol::{MonitorSummary, RunOutcome, RunRecord};
        let rec = RunRecord {
            client: "c-1".into(),
            user: "u-1".into(),
            testcase: "tc-1".into(),
            task: "IE".into(),
            skill: "Typical".into(),
            outcome: if discomfort { RunOutcome::Discomfort } else { RunOutcome::Exhausted },
            offset_secs: offset,
            last_levels: vec![(Resource::Cpu, levels)],
            monitor: MonitorSummary {
                cpu_util: 0.5,
                peak_mem_fraction: 0.25,
                disk_busy: 0.125,
                faults,
                mean_latency_us: if discomfort { Some(12345.0) } else { None },
            },
        };
        let parsed = RunRecord::parse_many(&rec.emit()).unwrap();
        prop_assert_eq!(parsed, vec![rec]);
    }
}
