//! End-to-end tests of the sharded group-commit server engine: the
//! worker-pool connection ceiling, durability of group-commit acks
//! across a kill, and shard-layout migration equivalence.

use std::io::BufReader;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;
use uucs::protocol::wire::{read_server_msg, write_client_msg, Endpoint};
use uucs::protocol::{
    ClientMsg, MachineSnapshot, MonitorSummary, RunOutcome, RunRecord, ServerMsg,
};
use uucs::server::tcp::{self, ServeConfig};
use uucs::server::{StoreSet, UucsServer};
use uucs_harness::prelude::*;
use uucs_harness::TempDir;
use uucs_wal::{SyncPolicy, WalConfig};

fn wal_cfg() -> WalConfig {
    WalConfig {
        segment_bytes: 16 * 1024,
        sync: SyncPolicy::Never,
    }
}

fn rec(client: &str, tag: &str) -> RunRecord {
    RunRecord {
        client: client.into(),
        // Empty is the canonical "unknown user" (the text format spells
        // it `-` and parses it back to empty).
        user: String::new(),
        testcase: tag.into(),
        task: "IE".into(),
        skill: "Typical".into(),
        outcome: RunOutcome::Discomfort,
        offset_secs: 10.0,
        last_levels: vec![(uucs::testcase::Resource::Cpu, vec![2.0])],
        monitor: MonitorSummary::default(),
    }
}

/// The worker pool holds well past the old 256-thread ceiling: >1024
/// clients register and stay connected simultaneously, every one gets a
/// distinct id, and the server still answers on all of them.
#[test]
fn over_a_thousand_simultaneous_connections() {
    const CONNS: usize = 1100;
    let server = Arc::new(UucsServer::with_store_set(StoreSet::plain(4), 9));
    let handle = tcp::serve_with(
        server,
        "127.0.0.1:0",
        ServeConfig {
            max_connections: CONNS + 16,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr();

    // Bring every connection up (a few opener threads, all connections
    // held open until the end).
    let mut fleet: Vec<(TcpStream, BufReader<TcpStream>, String)> = std::thread::scope(|s| {
        let openers: Vec<_> = (0..8)
            .map(|t| {
                s.spawn(move || {
                    (t..CONNS)
                        .step_by(8)
                        .map(|i| {
                            let stream = TcpStream::connect(addr).unwrap();
                            stream
                                .set_read_timeout(Some(Duration::from_secs(30)))
                                .unwrap();
                            let mut writer = stream.try_clone().unwrap();
                            let mut reader = BufReader::new(stream);
                            write_client_msg(
                                &mut writer,
                                &ClientMsg::register(MachineSnapshot::study_machine(format!(
                                    "conn-{i:04}"
                                ))),
                            )
                            .unwrap();
                            let id = match read_server_msg(&mut reader).unwrap() {
                                ServerMsg::Id { id, .. } => id,
                                other => panic!("registration refused: {other:?}"),
                            };
                            (writer, reader, id)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        openers
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });

    assert_eq!(handle.server.client_count(), CONNS);
    assert_eq!(handle.live_connections(), CONNS);
    let mut ids: Vec<&str> = fleet.iter().map(|(_, _, id)| id.as_str()).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), CONNS, "ids must be distinct");

    // Every connection is still serviceable after the storm.
    for (writer, reader, id) in fleet.iter_mut().step_by(97) {
        write_client_msg(
            writer,
            &ClientMsg::Upload {
                client: id.clone(),
                seq: 1,
                records: vec![rec(id, "post-storm")],
            },
        )
        .unwrap();
        assert!(matches!(read_server_msg(reader).unwrap(), ServerMsg::Ack(1)));
    }
    drop(fleet);
    handle.shutdown();
}

/// Kill during group commit: clients hammer sequenced uploads while the
/// server is torn down mid-storm. Every upload that was *acked* must
/// survive into the next generation — even when that generation opens
/// the journal with a different shard count.
#[test]
fn group_commit_kill_loses_no_acked_upload() {
    let tmp = TempDir::new("uucs-engine-kill");
    const CLIENTS: usize = 6;

    // Generation 1: sharded stores, group commit, worker-pool TCP.
    let acked: Vec<(String, u64)> = {
        let (stores, _) = StoreSet::open(tmp.path(), wal_cfg(), 3).unwrap();
        let server = Arc::new(
            UucsServer::with_store_set(stores, 9)
                .without_model_updates()
                .with_group_commit(Duration::from_micros(200)),
        );
        let handle = tcp::serve(server, "127.0.0.1:0").unwrap();
        let addr = handle.addr();

        let uploaders: Vec<_> = (0..CLIENTS)
            .map(|c| {
                std::thread::spawn(move || {
                    let stream = TcpStream::connect(addr).unwrap();
                    stream
                        .set_read_timeout(Some(Duration::from_secs(5)))
                        .unwrap();
                    let mut writer = stream.try_clone().unwrap();
                    let mut reader = BufReader::new(stream);
                    write_client_msg(
                        &mut writer,
                        &ClientMsg::register(MachineSnapshot::study_machine(format!("kill-{c}"))),
                    )
                    .unwrap();
                    let id = match read_server_msg(&mut reader) {
                        Ok(ServerMsg::Id { id, .. }) => id,
                        _ => return (String::new(), 0),
                    };
                    // Upload until the server dies under us; remember
                    // the highest seq that was actually acked.
                    let mut top = 0u64;
                    for seq in 1..10_000u64 {
                        let sent = write_client_msg(
                            &mut writer,
                            &ClientMsg::Upload {
                                client: id.clone(),
                                seq,
                                records: vec![rec(&id, &format!("k{seq}"))],
                            },
                        );
                        if sent.is_err() {
                            break;
                        }
                        match read_server_msg(&mut reader) {
                            Ok(ServerMsg::Ack(_)) => top = seq,
                            _ => break,
                        }
                    }
                    (id, top)
                })
            })
            .collect();

        // Let the storm build, then kill the server mid-flight.
        std::thread::sleep(Duration::from_millis(150));
        handle.shutdown();
        uploaders
            .into_iter()
            .map(|h| h.join().unwrap())
            .filter(|(id, _)| !id.is_empty())
            .collect()
    };
    assert!(
        acked.iter().any(|(_, top)| *top > 0),
        "the storm never got an upload acked; test proves nothing"
    );

    // Generation 2: reopen with a DIFFERENT shard count. Every acked
    // upload must be inside the recovered dedup horizon, and its record
    // must actually be present.
    let (stores, _) = StoreSet::open(tmp.path(), wal_cfg(), 5).unwrap();
    let server = UucsServer::with_store_set(stores, 9);
    for (id, top) in &acked {
        assert!(
            server.applied_seq(id) >= *top,
            "client {id}: acked seq {top} lost in recovery (horizon {})",
            server.applied_seq(id)
        );
    }
    let recovered = server.results();
    for (id, top) in &acked {
        if *top > 0 {
            assert!(
                recovered
                    .iter()
                    .any(|r| &r.client == id && r.testcase == format!("k{top}")),
                "client {id}: record of acked seq {top} missing"
            );
        }
    }
}

/// The same kill storm with the full storage engine under the stores:
/// per-flavor ARC page caches, the disk-scheduler thread pool, and
/// deferred rotation syncs. A kill mid-write-back must lose nothing
/// that was acked — the cache is write-through, so an ack still means
/// "on stable storage", never "in a dirty page".
#[test]
fn cached_engine_kill_loses_no_acked_upload() {
    use uucs::server::StorageProfile;

    let tmp = TempDir::new("uucs-engine-cached-kill");
    const CLIENTS: usize = 6;
    let profile = StorageProfile {
        cache_pages: 128,
        io_threads: 2,
        ..StorageProfile::default()
    };

    // Generation 1: cached sharded stores, scheduler-fanned group
    // commit, rotation off the append path.
    let acked: Vec<(String, u64)> = {
        let (stores, _) = StoreSet::open_with(tmp.path(), wal_cfg(), 3, &profile).unwrap();
        let server = Arc::new(
            UucsServer::with_store_set(stores, 9)
                .without_model_updates()
                .with_io_scheduler(profile.scheduler().expect("io_threads > 0"))
                .with_group_commit(Duration::from_micros(200)),
        );
        let handle = tcp::serve(server, "127.0.0.1:0").unwrap();
        let addr = handle.addr();

        let uploaders: Vec<_> = (0..CLIENTS)
            .map(|c| {
                std::thread::spawn(move || {
                    let stream = TcpStream::connect(addr).unwrap();
                    stream
                        .set_read_timeout(Some(Duration::from_secs(5)))
                        .unwrap();
                    let mut writer = stream.try_clone().unwrap();
                    let mut reader = BufReader::new(stream);
                    write_client_msg(
                        &mut writer,
                        &ClientMsg::register(MachineSnapshot::study_machine(format!(
                            "cached-kill-{c}"
                        ))),
                    )
                    .unwrap();
                    let id = match read_server_msg(&mut reader) {
                        Ok(ServerMsg::Id { id, .. }) => id,
                        _ => return (String::new(), 0),
                    };
                    let mut top = 0u64;
                    for seq in 1..10_000u64 {
                        let sent = write_client_msg(
                            &mut writer,
                            &ClientMsg::Upload {
                                client: id.clone(),
                                seq,
                                records: vec![rec(&id, &format!("ck{seq}"))],
                            },
                        );
                        if sent.is_err() {
                            break;
                        }
                        match read_server_msg(&mut reader) {
                            Ok(ServerMsg::Ack(_)) => top = seq,
                            _ => break,
                        }
                    }
                    (id, top)
                })
            })
            .collect();

        std::thread::sleep(Duration::from_millis(150));
        handle.shutdown();
        uploaders
            .into_iter()
            .map(|h| h.join().unwrap())
            .filter(|(id, _)| !id.is_empty())
            .collect()
    };
    assert!(
        acked.iter().any(|(_, top)| *top > 0),
        "the storm never got an upload acked; test proves nothing"
    );

    // Generation 2: different shard count, cache warm-started from
    // scratch. Every acked upload must be recovered.
    let (stores, _) = StoreSet::open_with(tmp.path(), wal_cfg(), 5, &profile).unwrap();
    let server = UucsServer::with_store_set(stores, 9);
    for (id, top) in &acked {
        assert!(
            server.applied_seq(id) >= *top,
            "client {id}: acked seq {top} lost in recovery (horizon {})",
            server.applied_seq(id)
        );
    }
    let recovered = server.results();
    for (id, top) in &acked {
        if *top > 0 {
            assert!(
                recovered
                    .iter()
                    .any(|r| &r.client == id && r.testcase == format!("ck{top}")),
                "client {id}: record of acked seq {top} missing"
            );
        }
    }
}

proptest! {
    #![proptest_config(Config::with_cases(6))]

    /// Shard-layout migration is lossless and order-preserving: apply a
    /// workload at one shard count, then walk the journal through a
    /// random sequence of shard counts. The merged logical state —
    /// results, horizons, registrations, library — is identical at
    /// every step.
    #[test]
    fn reshard_replay_reproduces_merged_state(
        first in 1usize..5,
        walk in prop::collection::vec(1usize..6, 1..4),
        clients in 2usize..5,
        uploads in prop::collection::vec(1usize..4, 1..6),
    ) {
        let tmp = TempDir::new("uucs-engine-reshard");

        // Apply the workload at the first shard count.
        let baseline = {
            let (stores, _) = StoreSet::open(tmp.path(), wal_cfg(), first).unwrap();
            let server = UucsServer::with_store_set(stores, 9).without_model_updates();
            let ids: Vec<String> = (0..clients)
                .map(|c| {
                    match server.handle(&ClientMsg::register(
                        MachineSnapshot::study_machine(format!("re-{c}")),
                    )) {
                        ServerMsg::Id { id, .. } => id,
                        other => panic!("{other:?}"),
                    }
                })
                .collect();
            for (round, n) in uploads.iter().enumerate() {
                for id in &ids {
                    let records = (0..*n).map(|i| rec(id, &format!("r{round}-{i}"))).collect();
                    let reply = server.handle(&ClientMsg::Upload {
                        client: id.clone(),
                        seq: round as u64 + 1,
                        records,
                    });
                    prop_assert!(matches!(reply, ServerMsg::Ack(_)), "{reply:?}");
                }
            }
            server.compact().unwrap();
            let mut results = server.results();
            results.sort_by(|a, b| (&a.client, &a.testcase).cmp(&(&b.client, &b.testcase)));
            let horizons: Vec<(String, u64)> =
                ids.iter().map(|id| (id.clone(), server.applied_seq(id))).collect();
            (results, horizons, server.client_count())
        };

        // Walk through different shard counts; the merged state must be
        // bit-identical at every stop.
        for (step, shards) in walk.iter().enumerate() {
            let (stores, _) = StoreSet::open(tmp.path(), wal_cfg(), *shards).unwrap();
            let server = UucsServer::with_store_set(stores, 9);
            let mut results = server.results();
            results.sort_by(|a, b| (&a.client, &a.testcase).cmp(&(&b.client, &b.testcase)));
            prop_assert!(
                results == baseline.0,
                "results diverged at step {step} ({shards} shards)"
            );
            for (id, horizon) in &baseline.1 {
                prop_assert_eq!(server.applied_seq(id), *horizon);
            }
            prop_assert_eq!(server.client_count(), baseline.2);
        }
    }
}
