//! End-to-end telemetry: the `STATS` verb over both transports, WAL
//! timings surfaced from a live server, the connection-cap gauge, and
//! byte-identical traces under the virtual clock.
//!
//! The metrics registry and flight recorder are process-global, so the
//! tests in this file serialize on [`GUARD`] and reset the registry at
//! entry; assertions stay within one test's critical section.

use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;
use uucs::client::{ClientTransport, LocalTransport, TcpTransport, UucsClient};
use uucs::comfort::{calibration, Fidelity, UserPopulation};
use uucs::protocol::{ClientMsg, MachineSnapshot, ServerMsg};
use uucs::server::{tcp, RegistryStore, ResultStore, TestcaseStore, UucsServer};
use uucs::sim::workload::FnWorkload;
use uucs::sim::{Action, Machine, MS, SEC};
use uucs::telemetry::{clock, flight, metrics, trace};
use uucs::workloads::Task;
use uucs_harness::TempDir;
use uucs_wal::{SyncPolicy, WalConfig};

static GUARD: Mutex<()> = Mutex::new(());

fn serialize() -> MutexGuard<'static, ()> {
    let guard = GUARD.lock().unwrap_or_else(PoisonError::into_inner);
    metrics::reset();
    guard
}

const WAL_CFG: WalConfig = WalConfig {
    segment_bytes: 4096,
    sync: SyncPolicy::Always,
};

/// A WAL-backed server (so `server.wal.*` metrics move) seeded with the
/// controlled library.
fn wal_server(dir: &std::path::Path) -> Arc<UucsServer> {
    let (mut testcases, _) = TestcaseStore::open_wal(&dir.join("testcases"), WAL_CFG).unwrap();
    let (results, _) = ResultStore::open_wal(&dir.join("results"), WAL_CFG).unwrap();
    let (registry, _) = RegistryStore::open_wal(&dir.join("registry"), WAL_CFG).unwrap();
    let (models, _) = uucs::server::ModelStore::open_wal(&dir.join("models"), WAL_CFG).unwrap();
    if testcases.is_empty() {
        for tc in calibration::controlled_testcases(Task::Word) {
            testcases.add(tc).unwrap();
        }
    }
    Arc::new(
        UucsServer::with_all_stores(testcases, results, registry, 7).with_model_store(models),
    )
}

/// Registers, runs a few testcases, and hot-syncs the results up.
fn drive_session(transport: &mut dyn ClientTransport, seed: u64) {
    let mut client = UucsClient::new(MachineSnapshot::study_machine("telemetry-e2e"), seed);
    client.register(transport).expect("register");
    client.hot_sync(transport).expect("sync");
    let population = UserPopulation::generate(1, seed);
    let user = &population.users()[0];
    for k in 0..3 {
        let tc = client.choose_testcase().expect("has testcases");
        client.perform_run(user, Task::Word, &tc, Fidelity::Fast, seed + k);
    }
    client.hot_sync(transport).expect("upload");
}

/// The acceptance criterion for the STATS verb: one line of JSON whose
/// keys cover verb latencies, WAL fsync timings and connection gauges.
fn assert_stats_payload(json: &str, expect_connections: bool) {
    assert!(!json.contains('\n'), "STATS payload must be one line");
    assert!(json.starts_with('{') && json.ends_with('}'), "not JSON: {json}");
    for key in [
        "\"server.verb.register.count\"",
        "\"server.verb.sync.count\"",
        "\"server.verb.upload.count\"",
        "\"server.verb.sync.ns\"",
        "\"server.wal.registry.fsync.ns\"",
        "\"server.wal.results.fsync.ns\"",
        "\"server.wal.results.append.ns\"",
    ] {
        assert!(json.contains(key), "STATS JSON missing {key}: {json}");
    }
    if expect_connections {
        assert!(
            json.contains("\"server.connections.live\""),
            "STATS JSON missing connection gauge: {json}"
        );
    }
}

#[test]
fn stats_over_tcp_reports_verb_wal_and_connection_telemetry() {
    let _guard = serialize();
    let dir = TempDir::new("uucs-telemetry-tcp");
    let handle = tcp::serve(wal_server(dir.path()), "127.0.0.1:0").expect("bind");
    let mut transport = TcpTransport::connect(handle.addr()).expect("connect");
    drive_session(&mut transport, 41);
    let reply = transport
        .exchange(&ClientMsg::Stats { reset: false })
        .expect("stats exchange");
    let ServerMsg::Stats(json) = reply else {
        panic!("expected STATS reply, got {reply:?}");
    };
    assert_stats_payload(&json, true);
    drop(transport);
    handle.shutdown();
}

#[test]
fn stats_over_local_transport_matches_and_reset_zeroes() {
    let _guard = serialize();
    let dir = TempDir::new("uucs-telemetry-local");
    let server = wal_server(dir.path());
    let mut transport = LocalTransport::new(server);
    drive_session(&mut transport, 42);
    let ServerMsg::Stats(json) = transport
        .exchange(&ClientMsg::Stats { reset: true })
        .expect("local stats")
    else {
        panic!("expected STATS reply");
    };
    // Same handler as TCP, so the same keys must appear (no TCP front
    // end here, so no connection gauge).
    assert_stats_payload(&json, false);
    // RESET snapshots *then* zeroes: the returned JSON saw the traffic,
    // the registry did not keep it.
    assert!(!json.contains("\"server.verb.sync.count\":0"));
    assert_eq!(metrics::counter("server.verb.sync.count").get(), 0);
    let ServerMsg::Stats(after) = transport
        .exchange(&ClientMsg::Stats { reset: false })
        .expect("second stats")
    else {
        panic!("expected STATS reply");
    };
    // Registrations survive a reset with zeroed values (the stats verb
    // above already re-counted itself once).
    assert!(after.contains("\"server.verb.sync.count\":0"), "{after}");
}

#[test]
fn connection_cap_rejects_politely_and_gauge_drains_to_zero() {
    let _guard = serialize();
    let server = Arc::new(UucsServer::new(
        TestcaseStore::from_testcases(calibration::controlled_testcases(Task::Word))
            .expect("unique ids"),
        7,
    ));
    // The default cap is 4096 (pinned by a uucs-server unit test); a
    // small explicit cap keeps this test from juggling thousands of
    // sockets.
    let cap = 8;
    let handle = tcp::serve_with(
        server,
        "127.0.0.1:0",
        tcp::ServeConfig {
            max_connections: cap,
            read_timeout: Some(Duration::from_secs(5)),
            ..tcp::ServeConfig::default()
        },
    )
    .expect("bind");

    // Occupy the cap, proving each connection is live by completing an
    // exchange on it.
    let mut held: Vec<TcpTransport> = Vec::new();
    for _ in 0..cap {
        let mut t = TcpTransport::connect(handle.addr()).expect("connect");
        let reply = t.exchange(&ClientMsg::Stats { reset: false }).expect("probe");
        assert!(matches!(reply, ServerMsg::Stats(_)));
        held.push(t);
    }
    assert_eq!(handle.live_connections(), cap);
    assert_eq!(metrics::gauge("server.connections.live").get(), cap as i64);

    // One over the cap: a polite ERROR, not a slammed door.
    let mut extra = TcpTransport::connect(handle.addr()).expect("connect");
    match extra.exchange(&ClientMsg::Stats { reset: false }) {
        Ok(ServerMsg::Error(e)) => {
            assert!(e.contains("capacity"), "unexpected rejection text: {e}")
        }
        other => panic!("expected polite capacity ERROR, got {other:?}"),
    }
    assert_eq!(metrics::counter("server.connections.rejected").get(), 1);

    // Release everything; the live gauge must drain to zero.
    drop(extra);
    drop(held);
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while (handle.live_connections() > 0 || metrics::gauge("server.connections.live").get() > 0)
        && std::time::Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(handle.live_connections(), 0, "tracker should drain");
    assert_eq!(
        metrics::gauge("server.connections.live").get(),
        0,
        "gauge should drain with the tracker"
    );
    handle.shutdown();
}

/// Model-service telemetry: uploads drive the `modelsvc.*` gauge and
/// histogram, and the `MODEL`/`ADVICE` verbs are counted and timed like
/// every other verb — all visible through the STATS payload.
#[test]
fn model_service_metrics_cover_verbs_epoch_and_update_latency() {
    use uucs::server::ModelStore;
    use uucs::testcase::Resource;

    let _guard = serialize();
    let dir = TempDir::new("uucs-telemetry-model");
    let server = wal_server(dir.path());
    let mut transport = LocalTransport::new(server.clone());
    drive_session(&mut transport, 43);

    // The upload path updated the model: the epoch gauge tracks the
    // store and the update histogram recorded one timing per batch.
    let epoch = server.model_epoch();
    assert!(epoch > 0, "uploads must advance the model");
    assert_eq!(metrics::gauge("modelsvc.epoch").get(), epoch as i64);
    assert!(metrics::histogram("modelsvc.update.ns").count() > 0);
    assert!(metrics::counter("modelsvc.observations").get() > 0);

    // MODEL and ADVICE are first-class verbs in the telemetry.
    for resource in [Resource::Cpu, Resource::Memory] {
        transport
            .exchange(&ClientMsg::Model {
                resource,
                task: None,
            })
            .expect("model query");
    }
    transport
        .exchange(&ClientMsg::Advice {
            resource: Resource::Cpu,
            task: "Word".into(),
            epsilon: 0.05,
        })
        .expect("advice query");
    assert_eq!(metrics::counter("server.verb.model.count").get(), 2);
    assert_eq!(metrics::counter("server.verb.advice.count").get(), 1);
    assert!(metrics::histogram("server.verb.model.ns").count() >= 2);

    // All of it shows up in the STATS payload.
    let ServerMsg::Stats(json) = transport
        .exchange(&ClientMsg::Stats { reset: false })
        .expect("stats")
    else {
        panic!("expected STATS reply");
    };
    for key in [
        "\"server.verb.model.count\"",
        "\"server.verb.advice.count\"",
        "\"modelsvc.epoch\"",
        "\"modelsvc.update.ns\"",
    ] {
        assert!(json.contains(key), "STATS JSON missing {key}: {json}");
    }
    // A recovered boot from the same WAL re-arms the gauge without
    // replaying the uploads.
    metrics::reset();
    let (recovered, _) = ModelStore::open_wal(&dir.path().join("models"), WAL_CFG).unwrap();
    assert_eq!(recovered.epoch(), epoch);
    assert_eq!(metrics::gauge("modelsvc.epoch").get(), epoch as i64);
}

/// Wire telemetry: the per-framing connection gauges, the per-version
/// verb counters, and the client's negotiated-version gauge — all
/// surfaced through STATS and drained back to zero on disconnect.
#[test]
fn wire_gauges_and_version_counters_track_negotiation() {
    use uucs::client::{ResilientTransport, WireMode};

    let _guard = serialize();
    let server = Arc::new(UucsServer::new(
        TestcaseStore::from_testcases(calibration::controlled_testcases(Task::Word))
            .expect("unique ids"),
        7,
    ));
    let handle = tcp::serve(server, "127.0.0.1:0").expect("bind");

    // A legacy text client occupies the text gauge and counts v1 verbs.
    let mut text = TcpTransport::connect(handle.addr()).expect("connect");
    let reply = text.exchange(&ClientMsg::Stats { reset: false }).expect("text stats");
    assert!(matches!(reply, ServerMsg::Stats(_)));
    assert_eq!(metrics::gauge("server.wire.text_conns").get(), 1);
    assert_eq!(metrics::gauge("server.wire.binary_conns").get(), 0);
    assert!(metrics::counter("server.wire.v1.verbs").get() >= 1);

    // A negotiated binary client moves to the binary gauge; the HELLO
    // itself is the last v1 verb on that connection, everything after
    // counts as v2.
    let mut binary = ResilientTransport::multi(vec![handle.addr().to_string()])
        .with_wire_mode(WireMode::Binary);
    let v2_before = metrics::counter("server.wire.v2.verbs").get();
    let ServerMsg::Stats(json) = binary
        .exchange(&ClientMsg::Stats { reset: false })
        .expect("binary stats")
    else {
        panic!("expected STATS reply");
    };
    assert_eq!(binary.negotiated_wire(), Some(2));
    assert_eq!(metrics::gauge("client.wire.negotiated").get(), 2);
    assert_eq!(metrics::gauge("server.wire.binary_conns").get(), 1);
    assert_eq!(metrics::gauge("server.wire.text_conns").get(), 1);
    assert!(metrics::counter("server.wire.v2.verbs").get() > v2_before);
    for key in [
        "\"server.wire.text_conns\"",
        "\"server.wire.binary_conns\"",
        "\"server.wire.v1.verbs\"",
        "\"server.wire.v2.verbs\"",
    ] {
        assert!(json.contains(key), "STATS JSON missing {key}: {json}");
    }

    // Disconnects drain both gauges; saying goodbye clears the client's
    // negotiated gauge too.
    binary.bye();
    assert_eq!(metrics::gauge("client.wire.negotiated").get(), 0);
    drop(text);
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while (metrics::gauge("server.wire.text_conns").get() > 0
        || metrics::gauge("server.wire.binary_conns").get() > 0)
        && std::time::Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(metrics::gauge("server.wire.text_conns").get(), 0);
    assert_eq!(metrics::gauge("server.wire.binary_conns").get(), 0);
    handle.shutdown();
}

/// Storage-engine telemetry: with the disk scheduler installed, segment
/// rotation leaves the append path. The `rotation_stall.ns` histogram
/// must record only the create+header cost (microseconds, not an
/// fsync), the deferred syncs ride the committer through the scheduler
/// (`server.disk.ops` moves), the per-flavor cache counters fill, and
/// every one of those series is visible through STATS.
#[test]
fn rotation_stall_is_negligible_under_the_io_scheduler() {
    use uucs::protocol::wire::Endpoint;
    use uucs::protocol::{MonitorSummary, RunOutcome, RunRecord};
    use uucs::server::{StorageProfile, StoreSet};

    let _guard = serialize();
    let dir = TempDir::new("uucs-telemetry-rotation");
    let profile = StorageProfile {
        cache_pages: 64,
        io_threads: 2,
        ..StorageProfile::default()
    };
    // Tiny segments force rotations constantly; Never leaves every
    // fsync to the group committer (and the deferred-rotation drain).
    let cfg = WalConfig {
        segment_bytes: 4096,
        sync: SyncPolicy::Never,
    };
    let (stores, _) = StoreSet::open_with(dir.path(), cfg, 2, &profile).unwrap();
    let server = UucsServer::with_store_set(stores, 7)
        .without_model_updates()
        .with_io_scheduler(profile.scheduler().expect("io_threads > 0"))
        .with_group_commit(Duration::from_micros(200));

    let ServerMsg::Id { id, .. } =
        server.handle(&ClientMsg::register(MachineSnapshot::study_machine("rot-e2e")))
    else {
        panic!("registration refused");
    };
    // Enough upload bytes to roll the 4 KiB results segments many
    // times over; every Ack is post-commit, so by the time the last
    // one returns the rotations (and their deferred syncs) happened.
    for seq in 1..=40u64 {
        let records = (0..5)
            .map(|i| RunRecord {
                client: id.clone(),
                user: String::new(),
                testcase: format!("rot-{seq}-{i}"),
                task: "IE".into(),
                skill: "Typical".into(),
                outcome: RunOutcome::Discomfort,
                offset_secs: 10.0,
                last_levels: vec![(uucs::testcase::Resource::Cpu, vec![2.0])],
                monitor: MonitorSummary::default(),
            })
            .collect();
        let reply = server.handle(&ClientMsg::Upload {
            client: id.clone(),
            seq,
            records,
        });
        assert!(matches!(reply, ServerMsg::Ack(_)), "{reply:?}");
    }

    let rotations = metrics::counter("server.wal.results.rotations").get();
    assert!(rotations > 0, "the workload never rotated a segment");
    let stall = metrics::histogram("server.wal.results.rotation_stall.ns");
    assert!(stall.count() >= rotations, "every rotation records its stall");
    // The appending thread paid create+header only — never the closing
    // segment's fsync. 5ms is orders of magnitude above that cost and
    // below a slow fsync, so the bound survives CI jitter while still
    // failing if rotation ever syncs inline again.
    assert!(
        stall.max() < 5_000_000,
        "rotation stalled the append path for {}ns",
        stall.max()
    );
    // The deferred syncs actually ran, on the scheduler's threads.
    assert!(metrics::counter("server.disk.ops").get() > 0);

    let ServerMsg::Stats(json) = server.handle(&ClientMsg::Stats { reset: false }) else {
        panic!("expected STATS reply");
    };
    for key in [
        "\"server.wal.results.rotation_stall.ns\"",
        "\"server.disk.ops\"",
        "\"server.disk.queue_depth\"",
        "\"server.cache.results.miss\"",
    ] {
        assert!(json.contains(key), "STATS JSON missing {key}: {json}");
    }

    // Clean shutdown (the committer drains), then a recovery boot under
    // the same profile: the replay reads land in the page cache (the
    // cache is write-through, so live appends never dirty it — reads
    // are where it earns its keep) and every acked upload is present.
    drop(server);
    let misses_before = metrics::counter("server.cache.results.miss").get();
    let (stores, _) = StoreSet::open_with(dir.path(), cfg, 2, &profile).unwrap();
    let recovered = UucsServer::with_store_set(stores, 7);
    assert!(
        metrics::counter("server.cache.results.miss").get() > misses_before,
        "recovery replay should read through the page cache"
    );
    assert_eq!(recovered.applied_seq(&id), 40, "acked uploads must survive");
}

/// Runs a simulated machine that emits one flight event per nap, with
/// the telemetry clock slaved to simulated time, and returns the flight
/// recorder's JSONL dump.
fn trace_once(seed: u64) -> String {
    flight::global().clear();
    clock::install_virtual(0);
    let mut m = Machine::study_machine(seed);
    m.drive_telemetry_clock(true);
    m.spawn(
        "emitter",
        Box::new(FnWorkload::new("emitter", |ctx| {
            trace::event("sim.tick", &[("now_us", &ctx.now.to_string())]);
            Action::SleepUntil {
                until: ctx.now + 10 * MS,
            }
        })),
    );
    m.run_until(SEC);
    clock::uninstall_virtual();
    drop(m);
    flight::global().to_jsonl()
}

#[test]
fn deterministic_mode_traces_are_byte_identical_across_same_seed_runs() {
    let _guard = serialize();
    let first = trace_once(5);
    let second = trace_once(5);
    assert!(!first.is_empty(), "the run should record events");
    assert!(
        first.contains("\"event\":\"sim.tick\""),
        "trace should hold sim.tick events: {first}"
    );
    assert_eq!(first, second, "same seed must replay the same trace bytes");
}
