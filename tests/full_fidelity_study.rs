//! A one-subject Quake session at Full fidelity: every run actually
//! plays on the simulated machine through the deterministic-mode client,
//! and the stored monitoring reflects the resource each testcase
//! borrowed.

use std::sync::Arc;
use uucs::client::{LocalTransport, Script, UucsClient};
use uucs::comfort::{calibration, Fidelity, UserPopulation};
use uucs::protocol::MachineSnapshot;
use uucs::server::{TestcaseStore, UucsServer};
use uucs::workloads::Task;

#[test]
fn quake_session_full_fidelity() {
    let library = calibration::controlled_testcases(Task::Quake);
    let server = Arc::new(UucsServer::new(
        TestcaseStore::from_testcases(library.clone()).expect("unique ids"),
        1,
    ));
    let mut transport = LocalTransport::new(server.clone());
    let mut client = UucsClient::new(MachineSnapshot::study_machine("ff"), 2);
    client.register(&mut transport).unwrap();
    client.install_testcases(library);

    let script_text = "\
RUN quake-cpu-ramp Quake\n\
RUN quake-blank-1 Quake\n\
RUN quake-disk-ramp Quake\n\
RUN quake-memory-ramp Quake\n\
RUN quake-cpu-step Quake\n\
RUN quake-disk-step Quake\n\
RUN quake-blank-2 Quake\n\
RUN quake-memory-step Quake\n\
SYNC\n";
    let script = Script::parse(script_text).unwrap();
    let pop = UserPopulation::generate(1, 3);
    let runs = client
        .execute_script(&script, &pop.users()[0], Fidelity::Full, &mut transport, 4)
        .unwrap();
    assert_eq!(runs, 8);
    let results = server.results();
    assert_eq!(results.len(), 8);

    let by_id = |id: &str| results.iter().find(|r| r.testcase == id).unwrap();

    // The CPU testcases saturate the CPU; the blanks do not (Quake's own
    // frame loop runs the machine near 100% but exercisers add none).
    let cpu_ramp = by_id("quake-cpu-ramp");
    assert!(cpu_ramp.monitor.cpu_util > 0.95, "{}", cpu_ramp.monitor.cpu_util);

    // The disk testcases keep the disk busy; the CPU ones barely touch it.
    let disk_ramp = by_id("quake-disk-ramp");
    assert!(
        disk_ramp.monitor.disk_busy > 3.0 * cpu_ramp.monitor.disk_busy.max(0.01),
        "disk run {} vs cpu run {}",
        disk_ramp.monitor.disk_busy,
        cpu_ramp.monitor.disk_busy
    );

    // The memory testcases drive residency up and fault; the others don't
    // fault at all after warmup.
    let mem_ramp = by_id("quake-memory-ramp");
    if mem_ramp.offset_secs > 80.0 {
        assert!(
            mem_ramp.monitor.peak_mem_fraction > 0.9,
            "{}",
            mem_ramp.monitor.peak_mem_fraction
        );
        assert!(mem_ramp.monitor.faults > 0);
    }
    assert_eq!(cpu_ramp.monitor.faults, 0, "CPU run must not page");

    // Every run recorded frame latencies.
    for r in &results {
        assert!(
            r.monitor.mean_latency_us.is_some(),
            "{} lost its frames",
            r.testcase
        );
    }
}
