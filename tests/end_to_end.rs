//! Cross-crate integration: the full measurement pipeline over real TCP,
//! the full-fidelity run engine, and the analysis on top.

use std::sync::Arc;
use uucs::client::{Script, TcpTransport, UucsClient};
use uucs::comfort::{calibration, Fidelity, UserPopulation};
use uucs::protocol::{MachineSnapshot, RunOutcome};
use uucs::server::{tcp, TestcaseStore, UucsServer};
use uucs::workloads::Task;

/// The paper's Figure 1 pipeline over a real socket: register, download
/// testcases, execute runs in deterministic mode, upload results.
#[test]
fn full_pipeline_over_tcp() {
    let library: Vec<_> = Task::ALL
        .iter()
        .flat_map(|&t| calibration::controlled_testcases(t))
        .collect();
    let server = Arc::new(UucsServer::new(
        TestcaseStore::from_testcases(library.clone()).expect("unique ids"),
        7,
    ));
    let handle = tcp::serve(server, "127.0.0.1:0").expect("bind");

    let mut transport = TcpTransport::connect(handle.addr()).expect("connect");
    let mut client = UucsClient::new(MachineSnapshot::study_machine("itest"), 1);
    let id = client.register(&mut transport).expect("register");
    assert!(id.starts_with("client-"));

    // Hot sync pulls a growing random sample.
    let r1 = client.hot_sync(&mut transport).expect("sync 1");
    assert!(r1.downloaded > 0);

    // Deterministic mode: run the Quake session from a command file.
    client.install_testcases(library);
    let script = Script::parse(
        "RUN quake-cpu-ramp Quake\n\
         RUN quake-blank-1 Quake\n\
         RUN quake-memory-step Quake\n\
         SYNC\n",
    )
    .expect("script");
    let pop = UserPopulation::generate(1, 5);
    let runs = client
        .execute_script(&script, &pop.users()[0], Fidelity::Fast, &mut transport, 99)
        .expect("session");
    assert_eq!(runs, 3);

    // The server holds the uploaded results.
    assert_eq!(handle.server.result_count(), 3);
    let results = handle.server.results();
    assert!(results.iter().all(|r| r.client == id));
    assert!(results.iter().any(|r| r.testcase == "quake-cpu-ramp"));

    transport.bye().ok();
    handle.shutdown();
}

/// Full-fidelity runs genuinely stress the simulated machine: the record
/// of a memory testcase under Quake shows paging; the CPU testcase shows
/// stretched frames.
#[test]
fn full_fidelity_monitoring_reflects_the_resource() {
    use uucs::comfort::{execute_run, RunSetup, RunStyle};
    let pop = UserPopulation::generate(4, 17);
    // Pick a tolerant user so the run lasts long enough to observe.
    let user = pop
        .users()
        .iter()
        .max_by(|a, b| {
            a.threshold(Task::Quake, uucs::testcase::Resource::Memory)
                .partial_cmp(&b.threshold(Task::Quake, uucs::testcase::Resource::Memory))
                .unwrap()
        })
        .unwrap();
    let tcs = calibration::controlled_testcases(Task::Quake);
    let mem_ramp = tcs.iter().find(|t| t.id.as_str() == "quake-memory-ramp").unwrap();
    let cpu_ramp = tcs.iter().find(|t| t.id.as_str() == "quake-cpu-ramp").unwrap();

    let mem_rec = execute_run(&RunSetup {
        user,
        task: Task::Quake,
        testcase: mem_ramp,
        style: RunStyle::Ramp,
        seed: 3,
        fidelity: Fidelity::Full,
        client_id: "itest".into(),
    });
    let cpu_rec = execute_run(&RunSetup {
        user,
        task: Task::Quake,
        testcase: cpu_ramp,
        style: RunStyle::Ramp,
        seed: 3,
        fidelity: Fidelity::Full,
        client_id: "itest".into(),
    });

    // Memory borrowing shows up as faults and resident pressure, not CPU.
    if mem_rec.offset_secs > 90.0 {
        assert!(mem_rec.monitor.faults > 0, "faults {}", mem_rec.monitor.faults);
        assert!(mem_rec.monitor.peak_mem_fraction > 0.9);
    }
    // CPU borrowing saturates the CPU.
    assert!(cpu_rec.monitor.cpu_util > 0.9, "cpu {}", cpu_rec.monitor.cpu_util);
    // Quake records frame latencies either way.
    assert!(cpu_rec.monitor.mean_latency_us.is_some());
}

/// The blank-testcase noise floor only exists in jitter-sensitive
/// contexts, like Figure 9.
#[test]
fn noise_floor_context_dependence() {
    use uucs::comfort::{execute_run, RunSetup, RunStyle};
    let pop = UserPopulation::generate(60, 23);
    let blank = uucs::testcase::Testcase::blank("itest-blank", 1.0, 120.0);
    let mut df = std::collections::HashMap::new();
    for task in Task::ALL {
        let mut count = 0;
        for (i, user) in pop.users().iter().enumerate() {
            let rec = execute_run(&RunSetup {
                user,
                task,
                testcase: &blank,
                style: RunStyle::Other,
                seed: 1000 + i as u64,
                fidelity: Fidelity::Fast,
                client_id: "itest".into(),
            });
            if rec.outcome == RunOutcome::Discomfort {
                count += 1;
            }
        }
        df.insert(task, count);
    }
    assert_eq!(df[&Task::Word], 0);
    assert_eq!(df[&Task::Powerpoint], 0);
    assert!(df[&Task::Quake] > df[&Task::Word]);
    assert!(df[&Task::Quake] >= 8, "quake {}", df[&Task::Quake]);
}

/// Server persistence: a study's results survive a round trip through
/// the text stores.
#[test]
fn server_stores_roundtrip_through_disk() {
    use uucs::study::controlled::{ControlledStudy, StudyConfig};
    let data = ControlledStudy::new(StudyConfig {
        seed: 3,
        users: 4,
        fidelity: Fidelity::Fast,
    })
    .run();
    let dir = std::env::temp_dir().join(format!("uucs-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("results.txt");
    std::fs::write(
        &path,
        uucs::protocol::RunRecord::emit_many(&data.records),
    )
    .unwrap();
    let loaded =
        uucs::protocol::RunRecord::parse_many(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(loaded, data.records);
    std::fs::remove_dir_all(&dir).ok();
}
