//! Chaos suite: the client/server sync path under injected network
//! faults, proving exactly-once delivery and eventual convergence.
//!
//! Every session here runs through [`uucs_chaos::ChaosProxy`] with a
//! seeded fault schedule and a fault *budget*: once the budget is
//! spent the network heals, so a converging protocol must converge.
//! "Exactly once" is checked byte-for-byte: the server's result store
//! must equal the client's acknowledged-record archive, in order.

use std::path::Path;
use std::sync::Arc;
use std::time::Duration;
use uucs::client::{ClientStore, ClientTransport, ResilientTransport, RetryPolicy, UucsClient};
use uucs::comfort::{calibration, Fidelity, UserPopulation, UserProfile};
use uucs::protocol::{ClientMsg, MachineSnapshot};
use uucs::server::{tcp, RegistryStore, ResultStore, TestcaseStore, UucsServer};
use uucs::telemetry::{flight, metrics};
use uucs::workloads::Task;
use uucs_chaos::{ChaosPolicy, ChaosProxy, FaultKind};
use uucs_harness::TempDir;
use uucs_wal::{SyncPolicy, WalConfig};

const WAL_CFG: WalConfig = WalConfig {
    segment_bytes: 4096,
    sync: SyncPolicy::Always,
};

/// An impatient retry policy: the chaos tests should fail fast and
/// retry fast, not wait out production backoffs.
fn snappy_policy(seed: u64) -> RetryPolicy {
    RetryPolicy {
        max_attempts: 6,
        base: Duration::from_millis(2),
        cap: Duration::from_millis(10),
        seed,
    }
}

fn snappy_transport(addr: std::net::SocketAddr, seed: u64) -> ResilientTransport {
    // The deadline must beat a black-holed connection quickly, but not
    // so quickly that a *healthy* exchange times out when the whole
    // workspace test suite is saturating the machine.
    ResilientTransport::new(addr.to_string())
        .with_timeout(Duration::from_secs(1))
        .with_policy(snappy_policy(seed))
}

fn plain_server() -> Arc<UucsServer> {
    let library: Vec<_> = calibration::controlled_testcases(Task::Word);
    Arc::new(UucsServer::new(
        TestcaseStore::from_testcases(library).expect("unique ids"),
        7,
    ))
}

/// Boots a WAL-backed server from `dir`, seeding the library on first
/// boot only (the kill/recover tests reuse this across generations).
fn wal_server(dir: &Path) -> Arc<UucsServer> {
    let (mut testcases, _) = TestcaseStore::open_wal(&dir.join("testcases"), WAL_CFG).unwrap();
    let (results, _) = ResultStore::open_wal(&dir.join("results"), WAL_CFG).unwrap();
    let (registry, _) = RegistryStore::open_wal(&dir.join("registry"), WAL_CFG).unwrap();
    if testcases.is_empty() {
        for tc in calibration::controlled_testcases(Task::Word) {
            testcases.add(tc).unwrap();
        }
    }
    Arc::new(UucsServer::with_all_stores(testcases, results, registry, 7))
}

/// Executes `n` runs on the client (each spooled to the store).
fn run_n(client: &mut UucsClient, user: &UserProfile, n: usize, seed: u64) {
    for k in 0..n {
        let tc = client.choose_testcase().expect("has testcases");
        client.perform_run(user, Task::Word, &tc, Fidelity::Fast, seed * 1000 + k as u64);
    }
}

/// How long a convergence loop may keep retrying. Generous on purpose:
/// the whole workspace test suite saturates every core for a minute or
/// more, and a chaos session sharing the machine with it is *exactly*
/// the hostile environment these tests claim to survive. The budgeted
/// fault schedule guarantees the network heals; the deadline only
/// bounds a genuinely broken protocol.
const CONVERGE_WITHIN: Duration = Duration::from_secs(120);

/// Registers, retrying until the deadline.
fn register_within(client: &mut UucsClient, transport: &mut ResilientTransport) {
    let start = std::time::Instant::now();
    while start.elapsed() < CONVERGE_WITHIN {
        if client.register(transport).is_ok() {
            return;
        }
    }
    panic!("registration never succeeded within {CONVERGE_WITHIN:?}");
}

/// Hot-syncs until the client holds testcases, retrying until the
/// deadline.
fn sync_library_within(client: &mut UucsClient, transport: &mut ResilientTransport) {
    let start = std::time::Instant::now();
    let mut last_err = None;
    while start.elapsed() < CONVERGE_WITHIN {
        match client.hot_sync(transport) {
            Ok(_) if !client.testcases().is_empty() => return,
            Ok(_) => {}
            Err(e) => last_err = Some(e),
        }
    }
    panic!("no testcases downloaded within {CONVERGE_WITHIN:?} (last error: {last_err:?})");
}

/// Syncs until everything unsynced is acknowledged. Returns the number
/// of rounds it took.
fn sync_until_drained(client: &mut UucsClient, transport: &mut ResilientTransport) -> usize {
    let start = std::time::Instant::now();
    let mut round = 0;
    while start.elapsed() < CONVERGE_WITHIN {
        round += 1;
        if client.hot_sync(transport).is_ok() && client.unsynced() == 0 {
            return round;
        }
    }
    panic!(
        "did not converge within {CONVERGE_WITHIN:?} ({round} rounds); {} records still unsynced",
        client.unsynced()
    );
}

/// One full client session against `server_addr` through a chaos proxy
/// with the given policy. Asserts convergence and returns
/// (server-visible results, client archive) for the caller's
/// exactly-once check.
fn chaotic_session(
    name: &str,
    server: &Arc<UucsServer>,
    server_addr: std::net::SocketAddr,
    policy: ChaosPolicy,
    runs: usize,
    seed: u64,
) -> (Vec<uucs::protocol::RunRecord>, Vec<uucs::protocol::RunRecord>) {
    let tmp = TempDir::new(&format!("uucs-chaos-{name}"));
    let store = ClientStore::open(tmp.path()).unwrap();
    // Namespace this session's fault counters by its (unique) name so
    // the cross-validation below is immune to concurrently running
    // chaos tests in this binary.
    let policy = policy.with_label(format!("session_{name}"));
    let kinds = policy.faults.clone();
    let proxy = ChaosProxy::start(server_addr, policy).unwrap();

    let mut client = UucsClient::new(MachineSnapshot::study_machine(name), seed);
    client.attach_store(store.clone());
    let mut transport = snappy_transport(proxy.addr(), seed);
    // Registration and the library download must survive the chaos too.
    register_within(&mut client, &mut transport);
    sync_library_within(&mut client, &mut transport);

    let pop = UserPopulation::generate(1, seed);
    run_n(&mut client, &pop.users()[0], runs, seed);
    let rounds = sync_until_drained(&mut client, &mut transport);
    eprintln!("[{name}] converged in {rounds} sync rounds");
    transport.bye();
    let stats = proxy.shutdown();
    // The telemetry counters must mirror the proxy's own tally: every
    // injected fault was counted under exactly one class.
    let counted: u64 = kinds
        .iter()
        .map(|k| metrics::counter(&format!("chaos.session_{name}.fault.{}", k.name())).get())
        .sum();
    assert_eq!(
        counted, stats.faults,
        "[{name}] per-class telemetry disagrees with the proxy's fault tally"
    );

    (server.results(), store.load_archive().unwrap())
}

/// Every fault class, one at a time: the session converges and the
/// server's store equals the client's acknowledged archive
/// byte-for-byte. (Corruption is the exception — see the dedicated
/// test below.)
#[test]
fn exactly_once_under_each_fault_class() {
    for (i, kind) in [
        FaultKind::Drop,
        FaultKind::Delay,
        FaultKind::Truncate,
        FaultKind::BlackHole,
        FaultKind::Reset,
    ]
    .into_iter()
    .enumerate()
    {
        let server = plain_server();
        let handle = tcp::serve(server.clone(), "127.0.0.1:0").unwrap();
        let policy = ChaosPolicy::only(kind, 0.4, 100 + i as u64).with_budget(6);
        let (on_server, archived) =
            chaotic_session(&format!("{kind:?}"), &server, handle.addr(), policy, 4, i as u64);
        assert_eq!(
            on_server.len(),
            4,
            "[{kind:?}] server holds {} records, wanted 4",
            on_server.len()
        );
        assert_eq!(
            on_server, archived,
            "[{kind:?}] server store and client archive diverged"
        );
        handle.shutdown();
    }
}

/// The whole menu at once, at a higher rate.
#[test]
fn exactly_once_under_mixed_faults() {
    let server = plain_server();
    let handle = tcp::serve(server.clone(), "127.0.0.1:0").unwrap();
    let policy = ChaosPolicy {
        rate: 0.5,
        faults: vec![
            FaultKind::Drop,
            FaultKind::Delay,
            FaultKind::Truncate,
            FaultKind::BlackHole,
            FaultKind::Reset,
        ],
        seed: 0xbad,
        delay: Duration::from_millis(10),
        ..ChaosPolicy::transparent()
    }
    .with_budget(10);
    let (on_server, archived) = chaotic_session("mixed", &server, handle.addr(), policy, 6, 9);
    assert_eq!(on_server.len(), 6);
    assert_eq!(on_server, archived);
    handle.shutdown();
}

/// Byte corruption: the text protocol carries no checksum (faithful to
/// the paper), so a mangled-but-parseable payload can change content —
/// but it can never change *count*: the batch sequence number still
/// dedupes, so each batch lands exactly once or not at all.
#[test]
fn corruption_never_duplicates_or_loses_batches() {
    let server = plain_server();
    let handle = tcp::serve(server.clone(), "127.0.0.1:0").unwrap();
    let policy = ChaosPolicy::only(FaultKind::Corrupt, 0.4, 0xc0).with_budget(6);
    let (on_server, archived) =
        chaotic_session("corrupt", &server, handle.addr(), policy, 4, 11);
    assert_eq!(on_server.len(), 4, "a batch duplicated or vanished");
    assert_eq!(archived.len(), 4);
    handle.shutdown();
}

/// A budgeted single-class run: the per-class telemetry counter lands
/// exactly on the budget, every other class stays at zero, and the
/// flight recorder's JSONL dump replays the fault sequence — one
/// `chaos.fault` event per injection, in order, under this run's label.
#[test]
fn telemetry_counts_faults_per_class_and_flight_dump_replays_them() {
    let server = plain_server();
    let handle = tcp::serve(server, "127.0.0.1:0").unwrap();
    let policy = ChaosPolicy::only(FaultKind::Drop, 1.0, 77)
        .with_budget(3)
        .with_label("budget_drop");
    let proxy = ChaosProxy::start(handle.addr(), policy).unwrap();

    // Rate 1.0 drops every chunk until the budget of 3 is spent, then
    // the network heals; a resilient exchange with more attempts than
    // budget must therefore spend it all and then succeed.
    let mut transport = snappy_transport(proxy.addr(), 77);
    transport
        .exchange(&ClientMsg::Stats { reset: false })
        .expect("the proxy heals once the fault budget is spent");
    let stats = proxy.shutdown();
    assert_eq!(stats.faults, 3, "the whole budget should be spent");
    assert_eq!(
        metrics::counter("chaos.budget_drop.fault.drop").get(),
        3,
        "drop faults must be counted under their class"
    );
    for kind in FaultKind::ALL {
        if kind != FaultKind::Drop {
            assert_eq!(
                metrics::counter(&format!("chaos.budget_drop.fault.{}", kind.name())).get(),
                0,
                "{} was never injected",
                kind.name()
            );
        }
    }

    // The flight recorder holds one event per injection; its dump to
    // disk replays the sequence. Other tests in this binary share the
    // global ring, so filter by this run's label.
    let tmp = TempDir::new("uucs-chaos-flight");
    let path = flight::dump_global_to_dir(tmp.path()).expect("dump flight recorder");
    assert!(path.exists(), "dump file should exist");
    let text = std::fs::read_to_string(&path).unwrap();
    let ours: Vec<&str> = text
        .lines()
        .filter(|l| l.contains("\"label\":\"budget_drop\""))
        .collect();
    assert_eq!(ours.len(), 3, "one flight event per injected fault:\n{text}");
    for line in ours {
        assert!(line.contains("\"event\":\"chaos.fault\""), "{line}");
        assert!(line.contains("\"kind\":\"drop\""), "{line}");
    }
    handle.shutdown();
}

/// Convergence across a server kill: the session starts under chaos,
/// the server dies mid-study, a new generation recovers from the WAL,
/// and the client — same store, same sequence state — drains into it.
/// Nothing is lost, nothing lands twice.
#[test]
fn convergence_across_server_kill_and_wal_recovery() {
    let tmp = TempDir::new("uucs-chaos-kill");
    let server_dir = tmp.path().join("server");
    let client_dir = tmp.path().join("client");
    let store = ClientStore::open(&client_dir).unwrap();
    let pop = UserPopulation::generate(1, 17);

    let mut client = UucsClient::new(MachineSnapshot::study_machine("kill"), 17);
    client.attach_store(store.clone());

    // Generation 1, through a chaotic proxy.
    {
        let server = wal_server(&server_dir);
        let handle = tcp::serve(server.clone(), "127.0.0.1:0").unwrap();
        let proxy = ChaosProxy::start(
            handle.addr(),
            ChaosPolicy::only(FaultKind::Drop, 0.3, 21).with_budget(3),
        )
        .unwrap();
        let mut transport = snappy_transport(proxy.addr(), 17);
        register_within(&mut client, &mut transport);
        sync_library_within(&mut client, &mut transport);
        run_n(&mut client, &pop.users()[0], 3, 17);
        sync_until_drained(&mut client, &mut transport);
        assert_eq!(server.result_count(), 3);

        // More results arrive — and the server is killed before they
        // sync. The ResilientTransport gives up after bounded retries;
        // the records stay frozen/spooled.
        run_n(&mut client, &pop.users()[0], 2, 18);
        proxy.shutdown();
        handle.shutdown();
        assert!(client.hot_sync(&mut transport).is_err(), "server is dead");
        assert_eq!(client.unsynced(), 2);
        client.persist(&store).unwrap();
    }

    // Generation 2: recovered from the journal; a *fresh* client
    // process restores the same store and drains into it.
    {
        let server = wal_server(&server_dir);
        assert_eq!(server.result_count(), 3, "gen-1 results lost in recovery");
        assert_eq!(server.client_count(), 1, "registration lost in recovery");
        let handle = tcp::serve(server.clone(), "127.0.0.1:0").unwrap();
        let proxy = ChaosProxy::start(
            handle.addr(),
            ChaosPolicy::only(FaultKind::Reset, 0.3, 22).with_budget(3),
        )
        .unwrap();
        let mut client2 = UucsClient::new(MachineSnapshot::study_machine("kill"), 17);
        client2.restore(&store).unwrap();
        client2.attach_store(store.clone());
        assert_eq!(client2.id(), client.id(), "client id must survive restart");
        assert_eq!(client2.unsynced(), 2);
        let mut transport = snappy_transport(proxy.addr(), 18);
        sync_until_drained(&mut client2, &mut transport);

        // Exactly once, across the kill: all 5 records, no duplicates,
        // byte-for-byte what the client archived.
        assert_eq!(server.result_count(), 5);
        assert_eq!(server.results(), store.load_archive().unwrap());
        transport.bye();
        proxy.shutdown();
        handle.shutdown();
    }
}

/// A dead server: the session must fail fast (bounded deterministic
/// retries, no hang) and leave every record spooled for later.
#[test]
fn dead_server_session_spools_offline() {
    use std::sync::Mutex;

    // Bind-then-drop: an address that refuses connections.
    let dead_addr = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap()
    };
    let tmp = TempDir::new("uucs-chaos-dead");
    let store = ClientStore::open(tmp.path()).unwrap();
    let slept: Arc<Mutex<Vec<Duration>>> = Arc::new(Mutex::new(Vec::new()));
    let rec = slept.clone();
    let policy = snappy_policy(33);
    let expected_schedule = policy.delays();

    let mut client = UucsClient::new(MachineSnapshot::study_machine("offline"), 33);
    client.attach_store(store.clone());
    client.install_testcases(calibration::controlled_testcases(Task::Word));
    let mut transport = ResilientTransport::new(dead_addr.to_string())
        .with_timeout(Duration::from_millis(200))
        .with_policy(policy)
        .with_sleeper(Box::new(move |d| rec.lock().unwrap().push(d)));

    assert!(client.register(&mut transport).is_err(), "nothing listens");
    // The retry schedule is exactly the policy's deterministic delays.
    assert_eq!(*slept.lock().unwrap(), expected_schedule);

    // The session continues offline: runs execute, records spool.
    let pop = UserPopulation::generate(1, 34);
    run_n(&mut client, &pop.users()[0], 3, 35);
    assert_eq!(client.unsynced(), 3);
    client.persist(&store).unwrap();
    assert_eq!(store.load_pending().unwrap().len(), 3, "records not spooled");
}

/// The borrowing governor under chaos: `ADVICE`/`MODEL` refreshes
/// through a 10% mixed-fault proxy never panic and never regress to a
/// stale epoch — even when the model advances mid-session — and once
/// the server is fully black-holed the governor degrades to its cached
/// model snapshot instead of hanging or erroring.
#[test]
fn governor_survives_chaos_and_degrades_to_cached_model() {
    use uucs::client::{BorrowingGovernor, RefreshOutcome};
    use uucs::testcase::Resource;

    let server = plain_server();
    let handle = tcp::serve(server.clone(), "127.0.0.1:0").unwrap();

    // Trains the model over a healthy link: each subject runs every
    // Word calibration testcase and uploads.
    let train = |subjects: std::ops::Range<usize>, seed: u64| {
        let mut transport = snappy_transport(handle.addr(), seed);
        let pop = UserPopulation::generate(8, 0xfeed);
        for i in subjects {
            let mut client =
                UucsClient::new(MachineSnapshot::study_machine(format!("gov-{i}")), seed + i as u64);
            client.register(&mut transport).expect("healthy link");
            for tc in calibration::controlled_testcases(Task::Word) {
                client.perform_run(&pop.users()[i], Task::Word, &tc, Fidelity::Fast, seed ^ i as u64);
            }
            client.hot_sync(&mut transport).expect("upload");
        }
        transport.bye();
    };
    train(0..3, 1000);
    let first_epoch = server.model_epoch();
    assert!(first_epoch > 0, "training must build a model");

    // Phase 1: a 10% mixed-fault proxy between governor and server.
    let policy = ChaosPolicy {
        rate: 0.1,
        faults: vec![
            FaultKind::Drop,
            FaultKind::Delay,
            FaultKind::Truncate,
            FaultKind::BlackHole,
            FaultKind::Reset,
        ],
        seed: 0x907,
        delay: Duration::from_millis(10),
        ..ChaosPolicy::transparent()
    }
    .with_budget(8)
    .with_label("governor");
    let proxy = ChaosProxy::start(handle.addr(), policy).unwrap();
    let mut transport = snappy_transport(proxy.addr(), 0x907);

    let mut governor = BorrowingGovernor::new(Resource::Cpu, "Word", 0.1, 0.0);
    let mut newest = 0u64;
    for round in 0..10 {
        // The model advances mid-session; a chaos-delayed duplicate of
        // an older reply must never roll the governor back.
        if round == 5 {
            train(3..6, 2000);
            assert!(server.model_epoch() > first_epoch);
        }
        let _ = governor.refresh(&mut transport); // must never panic
        if let Some(epoch) = governor.epoch() {
            assert!(epoch >= newest, "epoch regressed: {epoch} < {newest}");
            newest = epoch;
        }
    }
    assert!(
        newest > first_epoch,
        "refreshes after the mid-session training must adopt the newer epoch"
    );
    let cached = governor
        .cached_model()
        .expect("an adopted refresh caches the sketch")
        .clone();
    proxy.shutdown();

    // Phase 2: the server black-holed — every refresh times out fast,
    // reports Offline, and pins the cap to the cached model's advice.
    let blackhole = ChaosProxy::start(
        handle.addr(),
        ChaosPolicy::only(FaultKind::BlackHole, 1.0, 7).with_label("governor_bh"),
    )
    .unwrap();
    let mut dead = ResilientTransport::new(blackhole.addr().to_string())
        .with_timeout(Duration::from_millis(200))
        .with_policy(snappy_policy(7));
    let expected = cached.advice_level(0.1).expect("trained sketch advises");
    assert_eq!(governor.refresh(&mut dead), RefreshOutcome::Offline);
    assert_eq!(governor.level(), expected, "offline cap comes from the cache");
    assert_eq!(governor.epoch(), Some(newest), "offline keeps the adopted epoch");
    blackhole.shutdown();
    handle.shutdown();
}
