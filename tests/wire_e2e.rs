//! Wire-v2 end-to-end: the negotiated binary framing against live
//! servers on both connection engines.
//!
//! * A legacy text client on a v2 server is served **byte-identically**
//!   — no banner, canonical v1 reply encodings, unknown headers still
//!   answered `ERROR` on a live connection.
//! * The `HELLO` matrix: v2 requested → binary; v1 requested → text;
//!   a from-the-future version → clamped to v2.
//! * Request pipelining: replies come back in request order with the
//!   request ids echoed.
//! * Cross-framing abuse (binary frames at a text connection, text at
//!   an upgraded binary connection) drops that connection cleanly and
//!   never wedges the server.
//! * `MODELDELTA` epoch-delta sync: a retained base plus the delta
//!   reconstructs the current model exactly; a CRC mismatch or an
//!   unknown epoch falls back to the full sketch.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;
use uucs::protocol::wire::{read_server_msg, write_client_msg, write_server_msg, Endpoint};
use uucs::protocol::{
    ClientMsg, MachineSnapshot, MonitorSummary, RunOutcome, RunRecord, ServerMsg,
    WIRE_VERSION_BINARY, WIRE_VERSION_TEXT,
};
use uucs::modelsvc::{QuantileSketch, SketchDelta};
use uucs::server::tcp::{self, EngineMode, ServeConfig};
use uucs::server::{StoreSet, UucsServer};
use uucs::testcase::Resource;
use uucs::wire::conn::{negotiate, Negotiated};
use uucs::wire::frame::{read_server_frame, write_client_frame};
use uucs::wire::crc32;

const ENGINES: [EngineMode; 2] = [EngineMode::WorkerPool, EngineMode::ThreadPerConn];

fn serve(engine: EngineMode) -> tcp::ServerHandle {
    let server = Arc::new(UucsServer::with_store_set(StoreSet::plain(2), 7));
    tcp::serve_with(
        server,
        "127.0.0.1:0",
        ServeConfig {
            engine,
            ..ServeConfig::default()
        },
    )
    .expect("bind")
}

fn connect(addr: std::net::SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let writer = stream.try_clone().unwrap();
    (writer, BufReader::new(stream))
}

fn record(id: &str, seq: u64, i: u64) -> RunRecord {
    RunRecord {
        client: id.to_string(),
        user: String::new(),
        testcase: format!("wire-{seq}-{i}"),
        task: "IE".into(),
        skill: "Typical".into(),
        outcome: RunOutcome::Discomfort,
        offset_secs: 10.0,
        last_levels: vec![(Resource::Cpu, vec![(i % 7) as f64 + 0.5])],
        monitor: MonitorSummary::default(),
    }
}

fn register_msg(name: &str) -> ClientMsg {
    ClientMsg::Register {
        snapshot: MachineSnapshot::study_machine(name),
        token: format!("wire-token-{name}"),
    }
}

/// A legacy text client never sees a byte it would not have seen from a
/// v1 server: no unsolicited banner, and every reply is the canonical
/// v1 encoding (captured raw and compared against a re-encode of its
/// own parse). An unknown header keeps the connection alive.
#[test]
fn legacy_text_client_is_served_byte_identically() {
    for engine in ENGINES {
        let handle = serve(engine);
        let (mut writer, mut reader) = connect(handle.addr());

        // Silence until the client speaks: no HELLO banner, nothing.
        reader
            .get_ref()
            .set_read_timeout(Some(Duration::from_millis(200)))
            .unwrap();
        let mut probe = [0u8; 1];
        assert!(
            reader.read(&mut probe).is_err(),
            "{engine:?}: the server volunteered bytes to a silent legacy client"
        );
        reader
            .get_ref()
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();

        // Each single-line reply, captured raw, must equal the
        // canonical v1 encoding of what it parses as.
        fn exchange_raw(
            writer: &mut TcpStream,
            reader: &mut BufReader<TcpStream>,
            msg: &ClientMsg,
        ) -> ServerMsg {
            write_client_msg(writer, msg).expect("send");
            let mut line = String::new();
            reader.read_line(&mut line).expect("reply line");
            let parsed =
                read_server_msg(&mut BufReader::new(line.as_bytes())).expect("parse reply");
            let mut reencoded = Vec::new();
            write_server_msg(&mut reencoded, &parsed).unwrap();
            assert_eq!(
                reencoded,
                line.as_bytes(),
                "reply is not the canonical v1 encoding"
            );
            parsed
        }

        let ServerMsg::Id { id, .. } =
            exchange_raw(&mut writer, &mut reader, &register_msg("legacy"))
        else {
            panic!("registration failed");
        };
        let reply = exchange_raw(
            &mut writer,
            &mut reader,
            &ClientMsg::Upload {
                client: id.clone(),
                seq: 1,
                records: vec![record(&id, 1, 0)],
            },
        );
        assert!(matches!(reply, ServerMsg::Ack(_)), "{engine:?}: {reply:?}");

        // A verb from the future: ERROR on a live connection, exactly
        // the v1 forward-compatibility contract.
        writer.write_all(b"FUTUREVERB 1 2 3\n").unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).expect("error line");
        assert!(
            line.starts_with("ERROR "),
            "{engine:?}: unknown header got {line:?}"
        );
        let reply = exchange_raw(
            &mut writer,
            &mut reader,
            &ClientMsg::Upload {
                client: id.clone(),
                seq: 2,
                records: vec![record(&id, 2, 0)],
            },
        );
        assert!(
            matches!(reply, ServerMsg::Ack(_)),
            "{engine:?}: connection must survive the unknown header"
        );

        write_client_msg(&mut writer, &ClientMsg::Bye).ok();
        handle.shutdown();
    }
}

/// The negotiation matrix on both engines: `HELLO 2` upgrades to
/// binary frames, `HELLO 1` stays text, and a from-the-future version
/// is clamped down to v2.
#[test]
fn hello_negotiation_matrix() {
    for engine in ENGINES {
        let handle = serve(engine);

        // Want v2 → get v2; the same connection then speaks frames.
        let (mut writer, mut reader) = connect(handle.addr());
        assert_eq!(
            negotiate(&mut writer, &mut reader, WIRE_VERSION_BINARY).expect("negotiate"),
            Negotiated::Version(WIRE_VERSION_BINARY),
            "{engine:?}"
        );
        write_client_frame(&mut writer, 1, &register_msg("bin")).expect("frame");
        let (req, reply) = read_server_frame(&mut reader).expect("framed reply");
        assert_eq!(req, 1);
        assert!(matches!(reply, ServerMsg::Id { .. }), "{engine:?}: {reply:?}");
        write_client_frame(&mut writer, 2, &ClientMsg::Bye).ok();

        // Want v1 → stay text; the connection keeps speaking lines.
        let (mut writer, mut reader) = connect(handle.addr());
        assert_eq!(
            negotiate(&mut writer, &mut reader, WIRE_VERSION_TEXT).expect("negotiate"),
            Negotiated::Version(WIRE_VERSION_TEXT),
            "{engine:?}"
        );
        write_client_msg(&mut writer, &register_msg("txt")).unwrap();
        assert!(
            matches!(read_server_msg(&mut reader), Ok(ServerMsg::Id { .. })),
            "{engine:?}: text must keep working after HELLO 1"
        );
        write_client_msg(&mut writer, &ClientMsg::Bye).ok();

        // Want v9 → clamped to v2.
        let (mut writer, mut reader) = connect(handle.addr());
        assert_eq!(
            negotiate(&mut writer, &mut reader, 9).expect("negotiate"),
            Negotiated::Version(WIRE_VERSION_BINARY),
            "{engine:?}"
        );
        write_client_frame(&mut writer, 1, &ClientMsg::Bye).ok();
        handle.shutdown();
    }
}

/// Pipelined binary uploads: a burst of frames written back to back
/// comes back as one reply per request, in request order, each echoing
/// its request id.
#[test]
fn pipelined_uploads_reply_in_request_order() {
    for engine in ENGINES {
        let handle = serve(engine);
        let (mut writer, mut reader) = connect(handle.addr());
        negotiate(&mut writer, &mut reader, WIRE_VERSION_BINARY).expect("negotiate");
        write_client_frame(&mut writer, 1, &register_msg("pipeline")).unwrap();
        let (_, reply) = read_server_frame(&mut reader).unwrap();
        let ServerMsg::Id { id, .. } = reply else {
            panic!("registration failed: {reply:?}");
        };

        let depth = 8u32;
        for k in 0..depth {
            write_client_frame(
                &mut writer,
                2 + k,
                &ClientMsg::Upload {
                    client: id.clone(),
                    seq: (k + 1) as u64,
                    records: vec![record(&id, (k + 1) as u64, k as u64)],
                },
            )
            .expect("pipelined frame");
        }
        for k in 0..depth {
            let (req, reply) = read_server_frame(&mut reader).expect("pipelined reply");
            assert_eq!(req, 2 + k, "{engine:?}: replies must come back in order");
            assert!(matches!(reply, ServerMsg::Ack(_)), "{engine:?}: {reply:?}");
        }
        write_client_frame(&mut writer, 99, &ClientMsg::Bye).ok();
        handle.shutdown();
    }
}

/// Cross-framing abuse is a clean connection drop, never a wedge: a
/// binary frame at a (still-text) connection, and raw text at an
/// upgraded binary connection, both end that connection while the
/// server keeps serving fresh ones.
#[test]
fn cross_framing_abuse_drops_the_connection_not_the_server() {
    for engine in ENGINES {
        let handle = serve(engine);

        // Binary frame with no HELLO: the text parser must reject (or
        // the connection close) — and never reply with a parsed message.
        let (mut writer, mut reader) = connect(handle.addr());
        write_client_frame(&mut writer, 1, &register_msg("rude")).unwrap();
        writer.shutdown(std::net::Shutdown::Write).ok();
        let mut sink = Vec::new();
        // Whatever comes back (an ERROR line or nothing), the stream
        // must end — bounded by the read timeout, not a hang.
        // A read error (reset mid-read) is a clean drop too.
        if reader.read_to_end(&mut sink).is_ok() && !sink.is_empty() {
            let text = String::from_utf8_lossy(&sink);
            assert!(
                text.starts_with("ERROR "),
                "{engine:?}: binary-at-text produced a non-error reply: {text:?}"
            );
        }

        // Text at an upgraded binary connection: the frame reader calls
        // the ASCII length implausible and drops the connection.
        let (mut writer, mut reader) = connect(handle.addr());
        negotiate(&mut writer, &mut reader, WIRE_VERSION_BINARY).expect("negotiate");
        writer.write_all(b"SYNC client-0001 0 4\n").unwrap();
        writer.flush().unwrap();
        let mut sink = Vec::new();
        let _ = reader.read_to_end(&mut sink);
        assert!(
            sink.is_empty(),
            "{engine:?}: text-at-binary must drop, not answer: {sink:?}"
        );

        // The server is still alive for a well-behaved text client.
        let (mut writer, mut reader) = connect(handle.addr());
        write_client_msg(&mut writer, &register_msg("polite")).unwrap();
        assert!(
            matches!(read_server_msg(&mut reader), Ok(ServerMsg::Id { .. })),
            "{engine:?}: server must survive cross-framing abuse"
        );
        write_client_msg(&mut writer, &ClientMsg::Bye).ok();
        handle.shutdown();
    }
}

/// `MODELDELTA` at the endpoint: a client holding the epoch-`e0` sketch
/// gets back exactly the growth since `e0`, and applying it reproduces
/// the current full sketch byte for byte. A wrong base CRC or an epoch
/// the server never saw falls back to the full model.
#[test]
fn model_delta_reconstructs_the_full_sketch() {
    let server = UucsServer::with_store_set(StoreSet::plain(2), 7);
    let ServerMsg::Id { id, .. } = server.handle(&register_msg("delta")) else {
        panic!("registration failed");
    };
    let upload = |seq: u64, count: u64| {
        let records = (0..count).map(|i| record(&id, seq, seq * 100 + i)).collect();
        let reply = server.handle(&ClientMsg::Upload {
            client: id.clone(),
            seq,
            records,
        });
        assert!(matches!(reply, ServerMsg::Ack(_)), "{reply:?}");
    };
    let model = || ClientMsg::Model {
        resource: Resource::Cpu,
        task: None,
    };

    // Epoch e0: a broad base the server will retain as a delta base.
    upload(1, 40);
    let ServerMsg::Model {
        epoch: e0,
        sketch: s0,
        ..
    } = server.handle(&model())
    else {
        panic!("MODEL failed");
    };
    assert!(e0 > 0);

    // The model grows; the client asks for the delta since e0.
    upload(2, 3);
    let ask = |since: u64, basecrc: u32| {
        server.handle(&ClientMsg::ModelDelta {
            resource: Resource::Cpu,
            task: None,
            since,
            basecrc,
        })
    };
    let reply = ask(e0, crc32(s0.as_bytes()));
    let ServerMsg::ModelDelta {
        epoch: e1,
        since,
        delta,
    } = reply
    else {
        panic!("expected a delta, got {reply:?}");
    };
    assert_eq!(since, e0);
    assert!(e1 > e0);

    // base + delta == the current full sketch, byte for byte.
    let mut reconstructed = QuantileSketch::decode(&s0).expect("base decodes");
    let decoded = SketchDelta::decode(&delta).expect("delta decodes");
    reconstructed.apply_delta(&decoded).expect("delta applies");
    let ServerMsg::Model {
        epoch: e_full,
        sketch: s_full,
        ..
    } = server.handle(&model())
    else {
        panic!("MODEL failed");
    };
    assert_eq!(e_full, e1);
    assert_eq!(reconstructed.encode(), s_full);

    // Wrong base CRC: full-sketch fallback, never a bogus delta.
    match ask(e0, crc32(s0.as_bytes()) ^ 1) {
        ServerMsg::Model { epoch, sketch, .. } => {
            assert_eq!(epoch, e1);
            assert_eq!(sketch, s_full);
        }
        other => panic!("CRC mismatch must fall back to Model, got {other:?}"),
    }

    // An epoch from the future: fallback too.
    match ask(e1 + 1000, crc32(s_full.as_bytes())) {
        ServerMsg::Model { epoch, .. } => assert_eq!(epoch, e1),
        other => panic!("unknown epoch must fall back to Model, got {other:?}"),
    }

    // Asking at the current epoch with the right CRC: a valid (no-op)
    // delta whose application changes nothing.
    match ask(e1, crc32(s_full.as_bytes())) {
        ServerMsg::ModelDelta { epoch, since, delta } => {
            assert_eq!((epoch, since), (e1, e1));
            let mut cur = QuantileSketch::decode(&s_full).unwrap();
            cur.apply_delta(&SketchDelta::decode(&delta).unwrap())
                .expect("no-op delta applies");
            assert_eq!(cur.encode(), s_full);
        }
        // A no-op delta no smaller than the sketch is allowed to fall
        // back — but it must still be the identical full model.
        ServerMsg::Model { sketch, .. } => assert_eq!(sketch, s_full),
        other => panic!("{other:?}"),
    }
}
