//! Model-service end-to-end: two clients upload records over real TCP,
//! a third asks `MODEL`/`ADVICE`, the answers match an offline
//! [`Ecdf`](uucs::stats::Ecdf) computation within the sketch's
//! documented rank-error bound, and the model survives a server kill
//! and WAL recovery bit-for-bit.

use std::sync::Arc;
use uucs::client::{ClientTransport, TcpTransport, UucsClient};
use uucs::comfort::{calibration, Fidelity, UserPopulation};
use uucs::modelsvc::QuantileSketch;
use uucs::protocol::{ClientMsg, MachineSnapshot, RunOutcome, ServerMsg};
use uucs::server::{tcp, ModelStore, RegistryStore, ResultStore, TestcaseStore, UucsServer};
use uucs::stats::Ecdf;
use uucs::testcase::Resource;
use uucs::workloads::Task;
use uucs_harness::TempDir;
use uucs_wal::{SyncPolicy, WalConfig};

const WAL_CFG: WalConfig = WalConfig {
    segment_bytes: 4096,
    sync: SyncPolicy::Always,
};

/// Boots a fully WAL-backed server (all four stores) from `dir`,
/// seeding the testcase library on first boot only.
fn wal_server(dir: &std::path::Path) -> Arc<UucsServer> {
    let (mut testcases, _) = TestcaseStore::open_wal(&dir.join("testcases"), WAL_CFG).unwrap();
    let (results, _) = ResultStore::open_wal(&dir.join("results"), WAL_CFG).unwrap();
    let (registry, _) = RegistryStore::open_wal(&dir.join("registry"), WAL_CFG).unwrap();
    let (models, _) = ModelStore::open_wal(&dir.join("models"), WAL_CFG).unwrap();
    if testcases.is_empty() {
        for tc in calibration::controlled_testcases(Task::Word) {
            testcases.add(tc).unwrap();
        }
    }
    Arc::new(
        UucsServer::with_all_stores(testcases, results, registry, 7).with_model_store(models),
    )
}

/// Runs one uploader: register, run every Word testcase, hot-sync.
fn upload_session(addr: std::net::SocketAddr, subject: usize, seed: u64) {
    let mut transport = TcpTransport::connect(addr).expect("connect");
    let mut client = UucsClient::new(
        MachineSnapshot::study_machine(format!("e2e-host-{subject}")),
        seed,
    );
    client.register(&mut transport).expect("register");
    let pop = UserPopulation::generate(8, 44);
    let user = &pop.users()[subject];
    for tc in calibration::controlled_testcases(Task::Word) {
        client.perform_run(user, Task::Word, &tc, Fidelity::Fast, seed ^ 0x5eed);
    }
    client.hot_sync(&mut transport).expect("upload");
    transport.bye().ok();
}

/// The offline reference: the discomfort-level ECDF computed directly
/// from the server's result store, the way the analysis crates do it.
fn offline_ecdf(server: &UucsServer, resource: Resource) -> Ecdf {
    let mut observed = Vec::new();
    let mut censored = 0usize;
    for rec in server.results() {
        let Some(level) = rec.level_at_feedback(resource) else {
            continue;
        };
        if !level.is_finite() {
            continue;
        }
        if rec.outcome == RunOutcome::Exhausted {
            censored += 1;
        } else {
            observed.push(level);
        }
    }
    Ecdf::new(observed, censored)
}

#[test]
fn model_and_advice_match_offline_analysis_and_survive_recovery() {
    let tmp = TempDir::new("uucs-modelsvc-e2e");

    // Generation 1: two uploaders feed the model over real TCP.
    let (epoch, sketch_token, advised) = {
        let server = wal_server(tmp.path());
        let handle = tcp::serve(server.clone(), "127.0.0.1:0").expect("bind");
        upload_session(handle.addr(), 0, 100);
        upload_session(handle.addr(), 1, 200);

        // A third party queries the model.
        let mut analyst = TcpTransport::connect(handle.addr()).expect("connect");
        let reply = analyst
            .exchange(&ClientMsg::Model {
                resource: Resource::Cpu,
                task: None,
            })
            .expect("MODEL");
        let ServerMsg::Model {
            epoch,
            observed,
            censored,
            sketch,
        } = reply
        else {
            panic!("unexpected MODEL reply: {reply:?}");
        };
        assert!(epoch > 0, "uploads must have advanced the model epoch");

        // The sketch agrees with the offline ECDF within its documented
        // error bound: quantiles within one bin width, counts exactly.
        let decoded = QuantileSketch::decode(&sketch).expect("well-formed sketch");
        let ecdf = offline_ecdf(&handle.server, Resource::Cpu);
        assert_eq!(observed as usize, ecdf.discomfort_count());
        assert_eq!(censored as usize, ecdf.exhausted_count());
        for p in [0.05, 0.1, 0.25, 0.5, 0.75, 0.9] {
            match (decoded.quantile(p), ecdf.quantile(p)) {
                (Some(approx), Some(exact)) => {
                    assert!(
                        approx >= exact && approx - exact <= decoded.value_error() + 1e-9,
                        "p={p}: sketch {approx} vs exact {exact} (bound {})",
                        decoded.value_error()
                    );
                }
                (a, e) => assert_eq!(
                    a.is_some(),
                    e.is_some(),
                    "p={p}: censoring saturation must agree (sketch {a:?}, ecdf {e:?})"
                ),
            }
        }

        // Advice is the epsilon-quantile of the task cohort.
        let reply = analyst
            .exchange(&ClientMsg::Advice {
                resource: Resource::Cpu,
                task: "Word".into(),
                epsilon: 0.25,
            })
            .expect("ADVICE");
        let ServerMsg::Advice {
            epoch: advice_epoch,
            level,
        } = reply
        else {
            panic!("unexpected ADVICE reply: {reply:?}");
        };
        assert_eq!(advice_epoch, epoch);
        assert!(level.is_finite() && level >= 0.0);

        analyst.bye().ok();
        handle.shutdown();
        (epoch, sketch, level)
    };
    // Generation 1's server is dropped here — the "kill".

    // Generation 2: recovery from the WAL serves the same model.
    let server = wal_server(tmp.path());
    assert_eq!(server.model_epoch(), epoch, "epoch survives recovery");
    let handle = tcp::serve(server, "127.0.0.1:0").expect("bind");
    let mut analyst = TcpTransport::connect(handle.addr()).expect("connect");
    let reply = analyst
        .exchange(&ClientMsg::Model {
            resource: Resource::Cpu,
            task: None,
        })
        .expect("MODEL after recovery");
    match reply {
        ServerMsg::Model {
            epoch: e, sketch, ..
        } => {
            assert_eq!(e, epoch);
            assert_eq!(
                sketch, sketch_token,
                "recovered sketch must be byte-identical"
            );
        }
        other => panic!("unexpected reply {other:?}"),
    }
    let reply = analyst
        .exchange(&ClientMsg::Advice {
            resource: Resource::Cpu,
            task: "Word".into(),
            epsilon: 0.25,
        })
        .expect("ADVICE after recovery");
    match reply {
        ServerMsg::Advice { epoch: e, level } => {
            assert_eq!(e, epoch);
            assert_eq!(level, advised, "recovered advice must be identical");
        }
        other => panic!("unexpected reply {other:?}"),
    }
    analyst.bye().ok();
    handle.shutdown();
}

/// `ADVICE` before any uploads is a protocol error, not a panic; `MODEL`
/// answers with the empty sketch.
#[test]
fn empty_model_answers_gracefully() {
    let server = Arc::new(UucsServer::new(
        TestcaseStore::from_testcases(calibration::controlled_testcases(Task::Ie))
            .expect("unique ids"),
        7,
    ));
    let handle = tcp::serve(server, "127.0.0.1:0").expect("bind");
    let mut t = TcpTransport::connect(handle.addr()).expect("connect");
    match t
        .exchange(&ClientMsg::Model {
            resource: Resource::Disk,
            task: None,
        })
        .expect("MODEL")
    {
        ServerMsg::Model {
            epoch, observed, ..
        } => {
            assert_eq!(epoch, 0);
            assert_eq!(observed, 0);
        }
        other => panic!("unexpected reply {other:?}"),
    }
    match t
        .exchange(&ClientMsg::Advice {
            resource: Resource::Disk,
            task: "Ie".into(),
            epsilon: 0.05,
        })
        .expect("exchange itself succeeds")
    {
        ServerMsg::Error(e) => assert!(e.contains("no comfort model"), "got {e}"),
        other => panic!("unexpected reply {other:?}"),
    }
    t.bye().ok();
    handle.shutdown();
}
