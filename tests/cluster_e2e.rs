//! End-to-end chaos tests of the replicated tier: kill the leader under
//! a live client fleet and prove no acknowledged upload is lost or
//! duplicated on the promoted follower; partition a follower and prove
//! bounded staleness plus automatic catch-up via WAL backfill.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use uucs::client::{ClientTransport, ResilientTransport, RetryPolicy};
use uucs::cluster::{AckMode, ClusterConfig, ClusterNode, Role};
use uucs::protocol::{
    ClientMsg, MachineSnapshot, MonitorSummary, RunOutcome, RunRecord, ServerMsg,
};
use uucs::server::tcp::{self, ServeConfig};
use uucs::server::{StoreSet, UucsServer};
use uucs_chaos::{ChaosPolicy, ChaosProxy};
use uucs_harness::TempDir;

fn rec(client: &str, tag: &str) -> RunRecord {
    RunRecord {
        client: client.into(),
        user: String::new(),
        testcase: tag.into(),
        task: "IE".into(),
        skill: "Typical".into(),
        outcome: RunOutcome::Discomfort,
        offset_secs: 10.0,
        last_levels: vec![(uucs::testcase::Resource::Cpu, vec![2.0])],
        monitor: MonitorSummary::default(),
    }
}

fn wait_until(what: &str, timeout: Duration, mut f: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    while !f() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn fresh_server() -> Arc<UucsServer> {
    Arc::new(UucsServer::with_store_set(StoreSet::plain(4), 9))
}

fn node_config(
    name: &str,
    dir: &TempDir,
    peers: Vec<String>,
    ack: AckMode,
) -> ClusterConfig {
    let mut cfg = ClusterConfig::new(
        name,
        dir.path().join("epochs"),
        dir.path().join(name),
    );
    cfg.peers = peers;
    cfg.ack = ack;
    cfg.gossip_interval = Duration::from_millis(40);
    cfg.promote_after = 2;
    cfg
}

/// Retries `exchange` until it answers (rides out the failover window).
fn must_exchange(
    t: &mut ResilientTransport,
    msg: &ClientMsg,
    deadline: Duration,
) -> ServerMsg {
    let stop = Instant::now() + deadline;
    loop {
        match t.exchange(msg) {
            Ok(reply) => return reply,
            Err(e) => {
                assert!(
                    Instant::now() < stop,
                    "exchange never succeeded before the deadline: {e}"
                );
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

/// The headline robustness proof. A leader (quorum acks) and a follower
/// each serve a client front end; a fleet of clients uploads through a
/// chaos proxy pointed at the leader, with the follower's address as
/// the failover target. Mid-fleet the leader is killed abruptly —
/// client front end torn down with a zero drain deadline, replication
/// sockets severed — while uploads are in flight. The follower detects
/// the silence, wins the takeover file, and starts serving; every
/// upload any client ever saw acknowledged must be present on the
/// promoted node exactly once, and the fleet must finish against it.
#[test]
fn kill_the_leader_loses_no_acknowledged_upload() {
    const CLIENTS: usize = 6;
    const BATCHES: u64 = 12;

    let dir = TempDir::new("cluster-e2e-kill");
    let leader_srv = fresh_server();
    // Quorum acks: an `ACK` a client saw implies the follower applied
    // the batch, so killing the leader cannot erase it.
    let leader = ClusterNode::start(
        node_config("a", &dir, vec![], AckMode::Quorum),
        Arc::clone(&leader_srv),
        "127.0.0.1:0",
        Role::Leader,
    )
    .unwrap();
    let leader_front = tcp::serve_with(
        Arc::clone(&leader_srv),
        "127.0.0.1:0",
        ServeConfig {
            // The kill must be abrupt: no draining of in-flight
            // connections, like a SIGKILL mid-group-commit.
            drain_deadline: Duration::ZERO,
            ..ServeConfig::default()
        },
    )
    .unwrap();

    let follower_srv = fresh_server();
    let follower = ClusterNode::start(
        node_config("b", &dir, vec![leader.repl_addr().to_string()], AckMode::Local),
        Arc::clone(&follower_srv),
        "127.0.0.1:0",
        Role::Follower,
    )
    .unwrap();
    let follower_front = tcp::serve(Arc::clone(&follower_srv), "127.0.0.1:0").unwrap();

    // Don't start the fleet until replication is live, or every early
    // quorum wait burns its full timeout.
    wait_until("follower to connect", Duration::from_secs(10), || {
        !leader.hub().follower_nodes().is_empty()
    });

    // Client traffic reaches the leader through a chaos proxy (light
    // faults with a budget, so the network heals), and fails over to
    // the follower's front end.
    let proxy = ChaosProxy::start(
        leader_front.addr(),
        ChaosPolicy::all(0.05, 42).with_budget(30).with_label("fleet"),
    )
    .unwrap();
    let addrs = vec![proxy.addr().to_string(), follower_front.addr().to_string()];

    let acked: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let kill_gate = Arc::new(AtomicBool::new(false));
    let leader_dead = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let addrs = addrs.clone();
            let acked = Arc::clone(&acked);
            let kill_gate = Arc::clone(&kill_gate);
            let leader_dead = Arc::clone(&leader_dead);
            std::thread::spawn(move || {
                let mut t = ResilientTransport::multi(addrs)
                    .with_timeout(Duration::from_secs(1))
                    .with_policy(RetryPolicy {
                        max_attempts: 8,
                        base: Duration::from_millis(2),
                        cap: Duration::from_millis(50),
                        seed: c as u64,
                    });
                let id = match must_exchange(
                    &mut t,
                    &ClientMsg::Register {
                        snapshot: MachineSnapshot::study_machine(format!("m{c}")),
                        token: format!("tok-{c}"),
                    },
                    Duration::from_secs(30),
                ) {
                    ServerMsg::Id { id, .. } => id,
                    other => panic!("register answered {other:?}"),
                };
                for seq in 1..=BATCHES {
                    let tag = format!("c{c}-b{seq}");
                    let reply = must_exchange(
                        &mut t,
                        &ClientMsg::Upload {
                            client: id.clone(),
                            seq,
                            records: vec![rec(&id, &tag)],
                        },
                        Duration::from_secs(30),
                    );
                    match reply {
                        ServerMsg::Ack(1) => acked.lock().unwrap().push(tag),
                        other => panic!("upload answered {other:?}"),
                    }
                    if seq == BATCHES / 3 {
                        // A third of the way in, signal the killer and
                        // hold until the leader is actually down — so
                        // every worker's remaining batches cross the
                        // failover boundary.
                        kill_gate.store(true, Ordering::SeqCst);
                        let gate = Instant::now() + Duration::from_secs(30);
                        while !leader_dead.load(Ordering::SeqCst) {
                            assert!(Instant::now() < gate, "killer never fired");
                            std::thread::sleep(Duration::from_millis(5));
                        }
                    }
                }
                id
            })
        })
        .collect();

    // Kill the leader once the fleet is mid-flight: front end torn down
    // with zero drain (in-flight connections die mid-exchange), then
    // the replication tier severed.
    wait_until("fleet to reach mid-flight", Duration::from_secs(30), || {
        kill_gate.load(Ordering::SeqCst)
    });
    leader_front.shutdown();
    leader.shutdown();
    leader_dead.store(true, Ordering::SeqCst);

    let ids: Vec<String> = workers.into_iter().map(|w| w.join().unwrap()).collect();
    let acked = acked.lock().unwrap().clone();

    // The follower must have promoted itself to finish the fleet.
    assert!(follower.was_promoted(), "follower never promoted");
    assert_eq!(follower.role(), Role::Leader);

    // Exactly-once: every acknowledged upload is present on the
    // promoted node once — none lost to the kill, none duplicated by
    // the retries that rode through it.
    let records = follower_srv.results();
    for tag in &acked {
        let copies = records.iter().filter(|r| &r.testcase == tag).count();
        assert_eq!(copies, 1, "acked upload {tag} found {copies} times");
    }
    // Every client identity survived the failover too, and the whole
    // fleet finished: all batches acked, all on the promoted node.
    for id in &ids {
        assert_eq!(
            follower_srv.applied_seq(id),
            BATCHES,
            "client {id} lost part of its seq horizon"
        );
    }
    assert_eq!(acked.len(), CLIENTS * BATCHES as usize);

    let stats = proxy.shutdown();
    assert!(stats.connections > 0, "the fleet never touched the proxy");
    follower_front.shutdown();
    follower.shutdown();
}

/// Version skew across a failover: one legacy text client and one
/// wire-v2 (auto-negotiating) client ride the same leader kill. The
/// binary client renegotiates per address — it lands on the promoted
/// follower speaking v2 again — while the text client is served
/// byte-for-byte v1 throughout. Exactly-once still holds for both.
#[test]
fn version_skew_clients_survive_failover_with_renegotiation() {
    use uucs::client::WireMode;
    const BATCHES: u64 = 6;

    let dir = TempDir::new("cluster-e2e-skew");
    let leader_srv = fresh_server();
    let leader = ClusterNode::start(
        node_config("a", &dir, vec![], AckMode::Quorum),
        Arc::clone(&leader_srv),
        "127.0.0.1:0",
        Role::Leader,
    )
    .unwrap();
    let leader_front = tcp::serve_with(
        Arc::clone(&leader_srv),
        "127.0.0.1:0",
        ServeConfig {
            drain_deadline: Duration::ZERO,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let follower_srv = fresh_server();
    let follower = ClusterNode::start(
        node_config("b", &dir, vec![leader.repl_addr().to_string()], AckMode::Local),
        Arc::clone(&follower_srv),
        "127.0.0.1:0",
        Role::Follower,
    )
    .unwrap();
    let follower_front = tcp::serve(Arc::clone(&follower_srv), "127.0.0.1:0").unwrap();
    wait_until("follower to connect", Duration::from_secs(10), || {
        !leader.hub().follower_nodes().is_empty()
    });

    let addrs = vec![
        leader_front.addr().to_string(),
        follower_front.addr().to_string(),
    ];
    let transport = |wire: WireMode, seed: u64| {
        ResilientTransport::multi(addrs.clone())
            .with_wire_mode(wire)
            .with_timeout(Duration::from_secs(1))
            .with_policy(RetryPolicy {
                max_attempts: 8,
                base: Duration::from_millis(2),
                cap: Duration::from_millis(50),
                seed,
            })
    };
    let mut legacy = transport(WireMode::Text, 1);
    let mut modern = transport(WireMode::Auto, 2);
    let register = |t: &mut ResilientTransport, name: &str| -> String {
        match must_exchange(
            t,
            &ClientMsg::Register {
                snapshot: MachineSnapshot::study_machine(name),
                token: format!("tok-{name}"),
            },
            Duration::from_secs(30),
        ) {
            ServerMsg::Id { id, .. } => id,
            other => panic!("register answered {other:?}"),
        }
    };
    let legacy_id = register(&mut legacy, "legacy");
    let modern_id = register(&mut modern, "modern");
    assert_eq!(
        legacy.negotiated_wire(),
        Some(1),
        "text mode speaks v1 without ever sending HELLO"
    );
    assert_eq!(
        modern.negotiated_wire(),
        Some(2),
        "auto mode must land on wire v2 against a v2 leader"
    );

    let upload = |t: &mut ResilientTransport, id: &str, seq: u64, tag: String| {
        match must_exchange(
            t,
            &ClientMsg::Upload {
                client: id.to_string(),
                seq,
                records: vec![rec(id, &tag)],
            },
            Duration::from_secs(30),
        ) {
            ServerMsg::Ack(1) => {}
            other => panic!("upload answered {other:?}"),
        }
    };
    for seq in 1..=BATCHES / 2 {
        upload(&mut legacy, &legacy_id, seq, format!("legacy-b{seq}"));
        upload(&mut modern, &modern_id, seq, format!("modern-b{seq}"));
    }

    // The kill: abrupt, mid-session for both framings.
    leader_front.shutdown();
    leader.shutdown();

    for seq in BATCHES / 2 + 1..=BATCHES {
        upload(&mut legacy, &legacy_id, seq, format!("legacy-b{seq}"));
        upload(&mut modern, &modern_id, seq, format!("modern-b{seq}"));
    }
    assert!(follower.was_promoted(), "follower never promoted");
    assert_eq!(
        modern.negotiated_wire(),
        Some(2),
        "the fresh connection to the promoted follower must renegotiate v2"
    );
    assert_eq!(legacy.negotiated_wire(), Some(1));

    // Exactly-once on the promoted node, both framings.
    let records = follower_srv.results();
    for who in ["legacy", "modern"] {
        for seq in 1..=BATCHES {
            let tag = format!("{who}-b{seq}");
            let copies = records.iter().filter(|r| r.testcase == tag).count();
            assert_eq!(copies, 1, "upload {tag} found {copies} times");
        }
    }
    assert_eq!(follower_srv.applied_seq(&legacy_id), BATCHES);
    assert_eq!(follower_srv.applied_seq(&modern_id), BATCHES);

    legacy.bye();
    modern.bye();
    follower_front.shutdown();
    follower.shutdown();
}

/// Bounded staleness and automatic catch-up. A follower in sync with
/// the leader is partitioned (its node torn down); the leader keeps
/// committing — replication lag is visible but the leader stays
/// available (quorum degrades to local with a counted timeout). When
/// the follower returns it catches up purely from the leader's
/// replication-log tail, converging to byte-equal record sets.
#[test]
fn partitioned_follower_catches_up_from_the_wal_tail() {
    let dir = TempDir::new("cluster-e2e-partition");
    let leader_srv = fresh_server();
    let leader = ClusterNode::start(
        node_config("a", &dir, vec![], AckMode::Local),
        Arc::clone(&leader_srv),
        "127.0.0.1:0",
        Role::Leader,
    )
    .unwrap();

    let follower_srv = fresh_server();
    let follower = ClusterNode::start(
        node_config("b", &dir, vec![leader.repl_addr().to_string()], AckMode::Local),
        Arc::clone(&follower_srv),
        "127.0.0.1:0",
        Role::Follower,
    )
    .unwrap();

    let (reply, _) = leader_srv.handle_deferred(&ClientMsg::Register {
        snapshot: MachineSnapshot::study_machine("m1"),
        token: "tok-1".into(),
    });
    let id = match reply {
        ServerMsg::Id { id, .. } => id,
        other => panic!("register answered {other:?}"),
    };
    let upload = |seq: u64, tag: &str| {
        let (reply, _) = leader_srv.handle_deferred(&ClientMsg::Upload {
            client: id.clone(),
            seq,
            records: vec![rec(&id, tag)],
        });
        assert!(matches!(reply, ServerMsg::Ack(1)));
    };

    for seq in 1..=5u64 {
        upload(seq, &format!("pre-{seq}"));
    }
    wait_until("initial sync", Duration::from_secs(10), || {
        follower_srv.result_count() == 5
    });

    // Partition: the follower drops off; the leader keeps committing.
    follower.shutdown();
    drop(follower);
    for seq in 6..=20u64 {
        upload(seq, &format!("dark-{seq}"));
    }
    // Staleness is bounded by what was synced pre-partition — the
    // follower's stale store still answers (read-only availability),
    // it just lags.
    assert_eq!(follower_srv.result_count(), 5);
    assert!(leader.hub().min_acked(0).is_none(), "no follower connected");

    // Heal: same node name, same data dir (progress file intact). The
    // watermarks are mid-log and nothing was compacted, so catch-up is
    // a pure WAL tail replay — no snapshot.
    let follower = ClusterNode::start(
        node_config("b", &dir, vec![leader.repl_addr().to_string()], AckMode::Local),
        Arc::clone(&follower_srv),
        "127.0.0.1:0",
        Role::Follower,
    )
    .unwrap();
    wait_until("catch-up after the partition", Duration::from_secs(10), || {
        follower_srv.result_count() == 20
    });
    assert_eq!(follower_srv.applied_seq(&id), 20);

    // Byte-equal convergence: same records, same per-client horizon.
    let mut l: Vec<String> = leader_srv.results().iter().map(|r| r.testcase.clone()).collect();
    let mut f: Vec<String> = follower_srv.results().iter().map(|r| r.testcase.clone()).collect();
    l.sort();
    f.sort();
    assert_eq!(l, f);

    follower.shutdown();
    leader.shutdown();
}
