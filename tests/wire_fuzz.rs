//! Wire-protocol fuzzing: arbitrary, truncated, and interleaved byte
//! streams fed to the frame readers must produce clean errors or clean
//! EOF — never a panic, never an infinite loop.

use std::io::BufReader;
use uucs::protocol::wire::{read_client_msg, read_server_msg, write_client_msg, write_server_msg};
use uucs::protocol::{
    ClientMsg, MachineSnapshot, MonitorSummary, RunOutcome, RunRecord, ServerMsg,
};
use uucs::testcase::Resource;
use uucs_harness::prelude::*;

fn sample_record(i: u64) -> RunRecord {
    RunRecord {
        client: "client-0001".into(),
        user: format!("u{i}"),
        testcase: format!("t{i}"),
        task: "Word".into(),
        skill: "Typical".into(),
        outcome: RunOutcome::Discomfort,
        offset_secs: i as f64,
        last_levels: vec![(Resource::Cpu, vec![1.0, 2.0])],
        monitor: MonitorSummary::default(),
    }
}

/// A valid client-message byte stream, selected by index.
fn client_msg(which: u64) -> ClientMsg {
    match which % 6 {
        0 => ClientMsg::Register {
            snapshot: MachineSnapshot::study_machine("fuzz"),
            token: "tok-fuzz".into(),
        },
        1 => ClientMsg::Sync {
            client: "client-0001".into(),
            have: (which / 6) as usize,
            want: 8,
        },
        2 => ClientMsg::Upload {
            client: "client-0001".into(),
            seq: which,
            records: vec![sample_record(which), sample_record(which + 1)],
        },
        3 => ClientMsg::Model {
            resource: Resource::Cpu,
            task: if which.is_multiple_of(2) {
                None
            } else {
                Some("Word".into())
            },
        },
        4 => ClientMsg::Advice {
            resource: Resource::Disk,
            task: "Quake".into(),
            epsilon: 0.05,
        },
        _ => ClientMsg::Bye,
    }
}

/// A valid, non-empty sketch token for [`ServerMsg::Model`] fuzz frames.
fn sample_sketch(which: u64) -> uucs::modelsvc::QuantileSketch {
    let mut sketch = uucs::modelsvc::QuantileSketch::for_resource(Resource::Cpu);
    sketch.insert((which % 10) as f64);
    sketch.insert_censored();
    sketch
}

fn server_msg(which: u64) -> ServerMsg {
    match which % 6 {
        0 => ServerMsg::id("client-0001"),
        1 => ServerMsg::Testcases(vec![]),
        2 => ServerMsg::Ack((which / 6) as usize),
        3 => {
            let sketch = sample_sketch(which);
            ServerMsg::Model {
                epoch: which,
                observed: sketch.observed(),
                censored: sketch.censored(),
                sketch: sketch.encode(),
            }
        }
        4 => ServerMsg::Advice {
            epoch: which,
            level: (which % 7) as f64 + 0.5,
        },
        _ => ServerMsg::Error("fuzzed".into()),
    }
}

fn client_bytes(which: u64) -> Vec<u8> {
    let mut buf = Vec::new();
    write_client_msg(&mut buf, &client_msg(which)).unwrap();
    buf
}

fn server_bytes(which: u64) -> Vec<u8> {
    let mut buf = Vec::new();
    write_server_msg(&mut buf, &server_msg(which)).unwrap();
    buf
}

/// Reads messages until error or EOF; the bound proves termination (the
/// reader must consume at least one line per call, and there are at
/// most `len` lines).
fn drain_client(bytes: &[u8]) -> usize {
    let mut r = BufReader::new(bytes);
    let mut parsed = 0;
    for _ in 0..=bytes.len() {
        match read_client_msg(&mut r) {
            Ok(Some(_)) => parsed += 1,
            Ok(None) => return parsed,
            Err(_) => return parsed,
        }
    }
    panic!("reader failed to make progress on {} bytes", bytes.len());
}

fn drain_server(bytes: &[u8]) -> usize {
    let mut r = BufReader::new(bytes);
    let mut parsed = 0;
    // read_server_msg has no EOF-is-fine form (a client always expects
    // a reply), so exhaustion surfaces as a clean Err.
    for _ in 0..=bytes.len() {
        match read_server_msg(&mut r) {
            Ok(_) => parsed += 1,
            Err(_) => return parsed,
        }
    }
    panic!("reader failed to make progress on {} bytes", bytes.len());
}

proptest! {
    /// Pure garbage never panics or hangs either reader.
    #[test]
    fn garbage_bytes_are_rejected_cleanly(bytes in prop::collection::vec(any::<u8>(), 0..400)) {
        drain_client(&bytes);
        drain_server(&bytes);
    }

    /// A single valid message truncated anywhere *strictly before its
    /// end* must never parse as a message. "Never panics" is not
    /// enough: a cut inside `"ID client-0001\n"` once yielded a *valid*
    /// `Id("")` or `Id("client-00")`, which a client then cached as its
    /// identity forever. Every strict prefix must error (or, for the
    /// client reader at cut 0, report clean EOF).
    #[test]
    fn truncated_messages_never_parse(which in any::<u64>(), cut_frac in 0.0f64..1.0) {
        let full = client_bytes(which);
        let cut = (((full.len() as f64) * cut_frac) as usize).min(full.len() - 1);
        prop_assert_eq!(drain_client(&full[..cut]), 0);
        let full = server_bytes(which);
        let cut = (((full.len() as f64) * cut_frac) as usize).min(full.len() - 1);
        prop_assert_eq!(drain_server(&full[..cut]), 0);
    }

    /// Garbage interleaved between valid messages: the readers never
    /// panic, and everything *before* the garbage parses.
    #[test]
    fn interleaved_garbage_never_panics(
        which in any::<u64>(),
        garbage in prop::collection::vec(any::<u8>(), 1..60),
    ) {
        let clean = client_bytes(which);
        let mut stream = clean.clone();
        stream.extend_from_slice(&garbage);
        stream.extend_from_slice(&client_bytes(which + 1));
        // The leading valid message always parses; what happens after
        // the garbage depends on whether it forms a clean line.
        prop_assert!(drain_client(&stream) >= 1);

        let mut stream = server_bytes(which);
        stream.extend_from_slice(&garbage);
        stream.extend_from_slice(&server_bytes(which + 1));
        prop_assert!(drain_server(&stream) >= 1);
    }

    /// Valid frames glued back to back all parse, whatever the mix —
    /// the framing is self-delimiting.
    #[test]
    fn concatenated_valid_frames_all_parse(which in prop::collection::vec(any::<u64>(), 1..8)) {
        let mut stream = Vec::new();
        for &w in &which {
            stream.extend_from_slice(&client_bytes(w));
        }
        prop_assert_eq!(drain_client(&stream), which.len());

        let mut stream = Vec::new();
        for &w in &which {
            stream.extend_from_slice(&server_bytes(w));
        }
        prop_assert_eq!(drain_server(&stream), which.len());
    }
}
