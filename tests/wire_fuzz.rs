//! Wire-protocol fuzzing: arbitrary, truncated, and interleaved byte
//! streams fed to the frame readers — text v1 and binary v2 alike —
//! must produce clean errors or clean EOF — never a panic, never an
//! infinite loop. The cross-version suites feed each framing's bytes
//! to the other's reader: the result must be a clean reject or a wait
//! for more bytes, never a misparsed message.

use std::io::{BufReader, Cursor};
use uucs::protocol::wire::{read_client_msg, read_server_msg, write_client_msg, write_server_msg};
use uucs::protocol::{
    ClientMsg, MachineSnapshot, MonitorSummary, RunOutcome, RunRecord, ServerMsg,
};
use uucs::testcase::Resource;
use uucs::wire::frame::{
    encode_client_frame, encode_server_frame, read_server_frame, try_read_client_frame,
};
use uucs::wire::{FrameRead, MAX_WIRE_FRAME};
use uucs_harness::prelude::*;

fn sample_record(i: u64) -> RunRecord {
    RunRecord {
        client: "client-0001".into(),
        user: format!("u{i}"),
        testcase: format!("t{i}"),
        task: "Word".into(),
        skill: "Typical".into(),
        outcome: RunOutcome::Discomfort,
        offset_secs: i as f64,
        last_levels: vec![(Resource::Cpu, vec![1.0, 2.0])],
        monitor: MonitorSummary::default(),
    }
}

/// A valid client-message byte stream, selected by index.
fn client_msg(which: u64) -> ClientMsg {
    match which % 8 {
        0 => ClientMsg::Register {
            snapshot: MachineSnapshot::study_machine("fuzz"),
            token: "tok-fuzz".into(),
        },
        1 => ClientMsg::Sync {
            client: "client-0001".into(),
            have: (which / 6) as usize,
            want: 8,
        },
        2 => ClientMsg::Upload {
            client: "client-0001".into(),
            seq: which,
            records: vec![sample_record(which), sample_record(which + 1)],
        },
        3 => ClientMsg::Model {
            resource: Resource::Cpu,
            task: if which.is_multiple_of(2) {
                None
            } else {
                Some("Word".into())
            },
        },
        4 => ClientMsg::Advice {
            resource: Resource::Disk,
            task: "Quake".into(),
            epsilon: 0.05,
        },
        5 => ClientMsg::Hello {
            version: (which / 8 % 9) as u32 + 1,
        },
        6 => ClientMsg::ModelDelta {
            resource: Resource::Cpu,
            task: if which.is_multiple_of(2) {
                None
            } else {
                Some("IE".into())
            },
            since: which / 8,
            basecrc: (which % 0xffff_ffff) as u32,
        },
        _ => ClientMsg::Bye,
    }
}

/// A valid, non-empty sketch token for [`ServerMsg::Model`] fuzz frames.
fn sample_sketch(which: u64) -> uucs::modelsvc::QuantileSketch {
    let mut sketch = uucs::modelsvc::QuantileSketch::for_resource(Resource::Cpu);
    sketch.insert((which % 10) as f64);
    sketch.insert_censored();
    sketch
}

fn server_msg(which: u64) -> ServerMsg {
    match which % 8 {
        0 => ServerMsg::id("client-0001"),
        1 => ServerMsg::Testcases(vec![]),
        2 => ServerMsg::Ack((which / 6) as usize),
        3 => {
            let sketch = sample_sketch(which);
            ServerMsg::Model {
                epoch: which,
                observed: sketch.observed(),
                censored: sketch.censored(),
                sketch: sketch.encode(),
            }
        }
        4 => ServerMsg::Advice {
            epoch: which,
            level: (which % 7) as f64 + 0.5,
        },
        5 => ServerMsg::Hello {
            version: (which / 8 % 9) as u32 + 1,
        },
        6 => {
            let sketch = sample_sketch(which);
            ServerMsg::ModelDelta {
                epoch: which,
                since: which / 2,
                delta: sketch.delta_since(&sketch).unwrap().encode(),
            }
        }
        _ => ServerMsg::Error("fuzzed".into()),
    }
}

fn client_bytes(which: u64) -> Vec<u8> {
    let mut buf = Vec::new();
    write_client_msg(&mut buf, &client_msg(which)).unwrap();
    buf
}

fn server_bytes(which: u64) -> Vec<u8> {
    let mut buf = Vec::new();
    write_server_msg(&mut buf, &server_msg(which)).unwrap();
    buf
}

/// Reads messages until error or EOF; the bound proves termination (the
/// reader must consume at least one line per call, and there are at
/// most `len` lines).
fn drain_client(bytes: &[u8]) -> usize {
    let mut r = BufReader::new(bytes);
    let mut parsed = 0;
    for _ in 0..=bytes.len() {
        match read_client_msg(&mut r) {
            Ok(Some(_)) => parsed += 1,
            Ok(None) => return parsed,
            Err(_) => return parsed,
        }
    }
    panic!("reader failed to make progress on {} bytes", bytes.len());
}

fn drain_server(bytes: &[u8]) -> usize {
    let mut r = BufReader::new(bytes);
    let mut parsed = 0;
    // read_server_msg has no EOF-is-fine form (a client always expects
    // a reply), so exhaustion surfaces as a clean Err.
    for _ in 0..=bytes.len() {
        match read_server_msg(&mut r) {
            Ok(_) => parsed += 1,
            Err(_) => return parsed,
        }
    }
    panic!("reader failed to make progress on {} bytes", bytes.len());
}

/// A valid wire-v2 client frame, selected by index. `HELLO` is
/// text-phase only (it has no binary encoding), so that variant maps
/// to `BYE` here.
fn binary_client_bytes(which: u64) -> Vec<u8> {
    let msg = match client_msg(which) {
        ClientMsg::Hello { .. } => ClientMsg::Bye,
        m => m,
    };
    encode_client_frame((which % 97) as u32, &msg).unwrap()
}

/// A valid wire-v2 server frame, selected by index (`HELLO` remapped,
/// as above).
fn binary_server_bytes(which: u64) -> Vec<u8> {
    let msg = match server_msg(which) {
        ServerMsg::Hello { .. } => ServerMsg::Error("no hello here".into()),
        m => m,
    };
    encode_server_frame((which % 97) as u32, &msg).unwrap()
}

/// Incrementally parses binary client frames until reject, wait, or
/// exhaustion; the bound proves termination (every parsed frame
/// consumes at least its 8-byte header).
fn drain_binary_client(bytes: &[u8]) -> usize {
    let mut buf = bytes;
    let mut parsed = 0;
    for _ in 0..=bytes.len() {
        match try_read_client_frame(buf) {
            Ok(FrameRead::Msg { consumed, .. }) | Ok(FrameRead::Unknown { consumed, .. }) => {
                assert!(consumed > 0, "a parsed frame must consume bytes");
                parsed += 1;
                buf = &buf[consumed..];
            }
            Ok(FrameRead::Incomplete) => return parsed,
            Err(_) => return parsed,
        }
    }
    panic!("binary reader failed to make progress on {} bytes", bytes.len());
}

/// Reads binary server frames from a cursor until error or exhaustion.
fn drain_binary_server(bytes: &[u8]) -> usize {
    let mut cur = Cursor::new(bytes);
    let mut parsed = 0;
    for _ in 0..=bytes.len() {
        match read_server_frame(&mut cur) {
            Ok(_) => parsed += 1,
            Err(_) => return parsed,
        }
    }
    panic!("binary reader failed to make progress on {} bytes", bytes.len());
}

proptest! {
    /// Pure garbage never panics or hangs either reader.
    #[test]
    fn garbage_bytes_are_rejected_cleanly(bytes in prop::collection::vec(any::<u8>(), 0..400)) {
        drain_client(&bytes);
        drain_server(&bytes);
    }

    /// Pure garbage never panics or hangs the binary readers either.
    #[test]
    fn binary_garbage_is_rejected_cleanly(bytes in prop::collection::vec(any::<u8>(), 0..400)) {
        drain_binary_client(&bytes);
        drain_binary_server(&bytes);
    }

    /// A strict prefix of a binary frame never parses: the incremental
    /// reader waits for the rest (or rejects), and the blocking server
    /// reader reports a torn frame — never a message.
    #[test]
    fn binary_strict_prefix_never_parses(which in any::<u64>(), cut_frac in 0.0f64..1.0) {
        let full = binary_client_bytes(which);
        let cut = (((full.len() as f64) * cut_frac) as usize).min(full.len() - 1);
        prop_assert_eq!(drain_binary_client(&full[..cut]), 0);
        let full = binary_server_bytes(which);
        let cut = (((full.len() as f64) * cut_frac) as usize).min(full.len() - 1);
        prop_assert_eq!(drain_binary_server(&full[..cut]), 0);
    }

    /// One flipped byte anywhere in a binary frame never yields a
    /// message: the CRC (or the length cap) catches it. When the flip
    /// lands in the length field and merely grows the frame, feeding
    /// the declared number of zero bytes must still end in a reject.
    #[test]
    fn binary_bit_flips_never_misparse(
        which in any::<u64>(),
        pos_frac in 0.0f64..1.0,
        mask in 1u8..255,
    ) {
        let mut frame = binary_client_bytes(which);
        let pos = (((frame.len() as f64) * pos_frac) as usize).min(frame.len() - 1);
        frame[pos] ^= mask;
        match try_read_client_frame(&frame) {
            Ok(FrameRead::Incomplete) => {
                let len = u32::from_le_bytes(frame[..4].try_into().unwrap());
                prop_assert!(len <= MAX_WIRE_FRAME);
                let mut padded = frame.clone();
                padded.resize(8 + len as usize, 0);
                prop_assert!(try_read_client_frame(&padded).is_err());
            }
            Ok(other) => prop_assert!(false, "flipped frame parsed: {other:?}"),
            Err(_) => {}
        }
    }

    /// Valid binary frames glued back to back all parse, whatever the
    /// mix — the length prefix is self-delimiting.
    #[test]
    fn binary_concatenated_frames_all_parse(which in prop::collection::vec(any::<u64>(), 1..8)) {
        let mut stream = Vec::new();
        for &w in &which {
            stream.extend_from_slice(&binary_client_bytes(w));
        }
        prop_assert_eq!(drain_binary_client(&stream), which.len());

        let mut stream = Vec::new();
        for &w in &which {
            stream.extend_from_slice(&binary_server_bytes(w));
        }
        prop_assert_eq!(drain_binary_server(&stream), which.len());
    }

    /// Cross-version, text at the binary reader: a v1 line stream fed
    /// to the v2 frame reader is a clean reject or an honest wait —
    /// never a parsed message (the ASCII verb bytes decode as an
    /// implausible length, far over the wire cap).
    #[test]
    fn text_bytes_never_parse_as_binary_frames(which in any::<u64>()) {
        prop_assert_eq!(drain_binary_client(&client_bytes(which)), 0);
        prop_assert_eq!(drain_binary_server(&server_bytes(which)), 0);
    }

    /// Cross-version, binary at the text reader: a v2 frame fed to the
    /// v1 line readers never parses as a message either.
    #[test]
    fn binary_bytes_never_parse_as_text(which in any::<u64>()) {
        prop_assert_eq!(drain_client(&binary_client_bytes(which)), 0);
        prop_assert_eq!(drain_server(&binary_server_bytes(which)), 0);
    }

    /// A single valid message truncated anywhere *strictly before its
    /// end* must never parse as a message. "Never panics" is not
    /// enough: a cut inside `"ID client-0001\n"` once yielded a *valid*
    /// `Id("")` or `Id("client-00")`, which a client then cached as its
    /// identity forever. Every strict prefix must error (or, for the
    /// client reader at cut 0, report clean EOF).
    #[test]
    fn truncated_messages_never_parse(which in any::<u64>(), cut_frac in 0.0f64..1.0) {
        let full = client_bytes(which);
        let cut = (((full.len() as f64) * cut_frac) as usize).min(full.len() - 1);
        prop_assert_eq!(drain_client(&full[..cut]), 0);
        let full = server_bytes(which);
        let cut = (((full.len() as f64) * cut_frac) as usize).min(full.len() - 1);
        prop_assert_eq!(drain_server(&full[..cut]), 0);
    }

    /// Garbage interleaved between valid messages: the readers never
    /// panic, and everything *before* the garbage parses.
    #[test]
    fn interleaved_garbage_never_panics(
        which in any::<u64>(),
        garbage in prop::collection::vec(any::<u8>(), 1..60),
    ) {
        let clean = client_bytes(which);
        let mut stream = clean.clone();
        stream.extend_from_slice(&garbage);
        stream.extend_from_slice(&client_bytes(which + 1));
        // The leading valid message always parses; what happens after
        // the garbage depends on whether it forms a clean line.
        prop_assert!(drain_client(&stream) >= 1);

        let mut stream = server_bytes(which);
        stream.extend_from_slice(&garbage);
        stream.extend_from_slice(&server_bytes(which + 1));
        prop_assert!(drain_server(&stream) >= 1);
    }

    /// Valid frames glued back to back all parse, whatever the mix —
    /// the framing is self-delimiting.
    #[test]
    fn concatenated_valid_frames_all_parse(which in prop::collection::vec(any::<u64>(), 1..8)) {
        let mut stream = Vec::new();
        for &w in &which {
            stream.extend_from_slice(&client_bytes(w));
        }
        prop_assert_eq!(drain_client(&stream), which.len());

        let mut stream = Vec::new();
        for &w in &which {
            stream.extend_from_slice(&server_bytes(w));
        }
        prop_assert_eq!(drain_server(&stream), which.len());
    }
}
