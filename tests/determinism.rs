//! Whole-pipeline determinism: the entire study regenerates
//! bit-identically from one seed (DESIGN.md's first design decision).

use uucs::comfort::Fidelity;
use uucs::study::controlled::{ControlledStudy, StudyConfig};
use uucs::study::{figures, report};

fn study(seed: u64) -> uucs::study::controlled::StudyData {
    ControlledStudy::new(StudyConfig {
        seed,
        users: 10,
        fidelity: Fidelity::Fast,
    })
    .run()
}

#[test]
fn identical_seeds_identical_reports() {
    let a = study(77);
    let b = study(77);
    assert_eq!(a.records, b.records);
    assert_eq!(report::full_report(&a), report::full_report(&b));
}

#[test]
fn different_seeds_differ_but_agree_in_shape() {
    let a = study(77);
    let b = study(78);
    assert_ne!(a.records, b.records);
    // Both regenerations preserve the headline ordering: Quake is the
    // most CPU-sensitive task, Word the least.
    for d in [&a, &b] {
        let quake = figures::cell_metrics(d, uucs::workloads::Task::Quake, uucs::testcase::Resource::Cpu);
        let word = figures::cell_metrics(d, uucs::workloads::Task::Word, uucs::testcase::Resource::Cpu);
        assert!(quake.c_a.unwrap() < word.c_a.unwrap());
        assert!(quake.f_d.unwrap() > word.f_d.unwrap());
    }
}

#[test]
fn internet_study_is_deterministic() {
    use uucs::study::internet::{InternetStudy, InternetStudyConfig};
    let cfg = InternetStudyConfig {
        seed: 9,
        clients: 6,
        runs_per_client: 5,
        mean_gap_secs: 900.0,
    };
    let a = InternetStudy::new(cfg.clone()).run();
    let b = InternetStudy::new(cfg).run();
    assert_eq!(a.records, b.records);
    assert_eq!(a.simulated_secs, b.simulated_secs);
}

#[test]
fn full_fidelity_machine_is_deterministic() {
    use uucs::comfort::{execute_run, RunSetup, RunStyle, UserPopulation};
    use uucs::testcase::{ExerciseSpec, Resource, Testcase};
    let pop = UserPopulation::generate(1, 31);
    let tc = Testcase::single(
        "det-disk-step",
        1.0,
        Resource::Disk,
        ExerciseSpec::Step {
            level: 3.0,
            duration: 120.0,
            start: 40.0,
        },
    );
    let run = || {
        execute_run(&RunSetup {
            user: &pop.users()[0],
            task: uucs::workloads::Task::Ie,
            testcase: &tc,
            style: RunStyle::Step,
            seed: 8,
            fidelity: Fidelity::Full,
            client_id: "det".into(),
        })
    };
    assert_eq!(run(), run());
}
