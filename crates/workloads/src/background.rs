//! The operating-system background: services, timers, and lazy writers
//! that keep even a "quiescent" machine slightly busy.
//!
//! The paper observes that users express discomfort on blank testcases
//! only in IE and Quake, and attributes Quake's to "sources of jitter on
//! even an otherwise quiescent machine" (§3.3.3). `OsBackground` is that
//! source: small CPU pops, occasional larger service spikes, and periodic
//! lazy disk flushes. It also owns the large resident set Windows XP and
//! its services hold on a 512 MB machine, which is what makes moderate
//! memory borrowing consequential for big-footprint tasks.

use uucs_sim::{Action, Ctx, RegionId, SimTime, TouchPattern, Workload, SEC};

/// Pages held by the OS, services, and loaded-but-idle applications
/// (~190 MB of the study machine's 512 MB).
pub const OS_PAGES: u32 = 48_000;

/// Mean gap between background pops, µs.
const POP_GAP_MEAN: f64 = 400_000.0;

/// Background pop CPU, µs (0.3–3 ms).
const POP_LO: u64 = 300;
const POP_HI: u64 = 3_000;

/// Service spike period, µs, and its CPU.
const SPIKE_EVERY: SimTime = 20 * SEC;
const SPIKE_LO: u64 = 15_000;
const SPIKE_HI: u64 = 40_000;

/// Lazy-writer flush period, µs.
const FLUSH_EVERY: SimTime = 8 * SEC;

#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    Init,
    Idle,
    Woke,
    Popped,
}

/// The OS background workload.
pub struct OsBackground {
    phase: Phase,
    region: Option<RegionId>,
    next_spike: SimTime,
    next_flush: SimTime,
}

impl OsBackground {
    /// Creates the background workload.
    pub fn new() -> Self {
        OsBackground {
            phase: Phase::Init,
            region: None,
            next_spike: SPIKE_EVERY,
            next_flush: FLUSH_EVERY,
        }
    }
}

impl Default for OsBackground {
    fn default() -> Self {
        Self::new()
    }
}

impl Workload for OsBackground {
    fn name(&self) -> &str {
        "os-background"
    }

    fn next_action(&mut self, ctx: &mut Ctx<'_>) -> Action {
        match self.phase {
            Phase::Init => {
                let r = ctx.alloc_region(OS_PAGES, false);
                self.region = Some(r);
                self.phase = Phase::Idle;
                Action::Touch {
                    region: r,
                    count: OS_PAGES,
                    pattern: TouchPattern::Prefix,
                }
            }
            Phase::Idle => {
                let gap = ctx.rng.exponential(1.0 / POP_GAP_MEAN).min(5_000_000.0) as SimTime;
                self.phase = Phase::Woke;
                Action::SleepUntil {
                    until: ctx.now + gap.max(1_000),
                }
            }
            Phase::Woke => {
                // Keep a slice of the OS working set warm.
                self.phase = Phase::Popped;
                Action::Touch {
                    region: self.region.expect("initialized"),
                    count: 32,
                    pattern: TouchPattern::RandomSample,
                }
            }
            Phase::Popped => {
                self.phase = Phase::Idle;
                if ctx.now >= self.next_flush {
                    self.next_flush = ctx.now + FLUSH_EVERY;
                    return Action::DiskIo {
                        ops: 1,
                        bytes_per_op: 16_384,
                    };
                }
                if ctx.now >= self.next_spike {
                    self.next_spike = ctx.now + SPIKE_EVERY;
                    return Action::Compute {
                        us: ctx.rng.range_inclusive(SPIKE_LO, SPIKE_HI),
                    };
                }
                Action::Compute {
                    us: ctx.rng.range_inclusive(POP_LO, POP_HI),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uucs_sim::Machine;

    #[test]
    fn background_is_light() {
        let mut m = Machine::study_machine(140);
        let t = m.spawn("os", Box::new(OsBackground::new()));
        m.run_until(60 * SEC);
        let util = m.thread_stats(t).cpu_us as f64 / m.now() as f64;
        // "dramatically under-utilized": well under 3%.
        assert!(util < 0.03, "util {util}");
        assert_eq!(m.mem_resident(), OS_PAGES);
    }

    #[test]
    fn background_does_some_io() {
        let mut m = Machine::study_machine(141);
        let t = m.spawn("os", Box::new(OsBackground::new()));
        m.run_until(60 * SEC);
        let ops = m.thread_stats(t).disk_ops;
        assert!((4..=10).contains(&ops), "flush ops {ops}");
    }

    #[test]
    fn background_jitters_quake() {
        // With the OS background present, Quake's frame jitter rises —
        // the paper's explanation for blank-testcase discomfort.
        use crate::quake::{FrameStats, QuakeModel};
        let bare = {
            let mut m = Machine::study_machine(142);
            let t = m.spawn("quake", Box::new(QuakeModel::new()));
            m.run_until(30 * SEC);
            FrameStats::from_latencies(&m.thread_stats(t).latencies_of("frame"))
                .unwrap()
                .jitter_us
        };
        let with_os = {
            let mut m = Machine::study_machine(142);
            let t = m.spawn("quake", Box::new(QuakeModel::new()));
            m.spawn("os", Box::new(OsBackground::new()));
            m.run_until(30 * SEC);
            FrameStats::from_latencies(&m.thread_stats(t).latencies_of("frame"))
                .unwrap()
                .jitter_us
        };
        assert!(
            with_os > bare,
            "background should add jitter: {bare} -> {with_os}"
        );
    }
}
