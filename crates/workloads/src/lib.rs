//! Foreground task models — the four applications of the controlled study
//! (§3.1): word processing (Word), presentation making (Powerpoint),
//! browsing/research (Internet Explorer), and Quake III.
//!
//! Each model is a [`uucs_sim::Workload`] that reproduces the
//! interactivity *profile* the paper ascribes to its application:
//!
//! | Task | profile | paper's sensitivity (Fig 13) |
//! |---|---|---|
//! | Word | sparse keystrokes, tiny CPU bursts, occasional saves | Low everywhere |
//! | Powerpoint | drawing operations, medium CPU bursts | Medium CPU |
//! | IE | page loads with disk-cache writes and multi-window bursts | High disk |
//! | Quake | frame loop consuming all spare CPU, jitter sensitive | High CPU |
//!
//! Models record interactive latency samples (keystroke echo, drawing op,
//! page render, frame time) through [`uucs_sim::Ctx::record_latency`] —
//! the measurements the UUCS client's monitors store with each run.
//!
//! The crate also provides [`background::OsBackground`] (the quiescent-
//! machine jitter source that explains the paper's nonzero noise floor in
//! Quake) and [`probe`] workloads used to verify exerciser accuracy the
//! way the paper verified its exercisers to contention 10 (CPU) and 7
//! (disk).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod background;
pub mod ie;
pub mod powerpoint;
pub mod probe;
pub mod quake;
pub mod task;
pub mod word;

pub use background::OsBackground;
pub use ie::IeModel;
pub use powerpoint::PowerpointModel;
pub use probe::{BusyProbe, IoProbe};
pub use quake::QuakeModel;
pub use task::Task;
pub use word::WordModel;
