//! The Internet Explorer model: reading news stories, searching for
//! related material, and saving it, across multiple windows (§3.1).
//!
//! Interactivity profile: page loads mix network waits (sleeps), parse
//! and layout CPU bursts, and — importantly — *disk cache writes and
//! page saves*. The paper found IE the most disk-sensitive task
//! (f_d = 0.61 for disk, Figure 14): "IE caches files and users were
//! asked to save all the pages, resulting in more disk activity". Its
//! memory demand is also more dynamic than the office apps' (§3.3.3),
//! which the model reproduces by extending its hot region as pages are
//! loaded.

use uucs_sim::{Action, Ctx, RegionId, SimTime, TouchPattern, Workload};
#[cfg(test)]
use uucs_sim::SEC;

/// Virtual region size in pages (~150 MB address space; only a prefix is
/// hot at any time).
pub const REGION_PAGES: u32 = 37_500;

/// Initial hot pages (~88 MB: IE with several windows).
pub const INITIAL_HOT: u32 = 22_000;

/// New pages brought in per page load (dynamic memory demand).
const GROW_PER_LOAD: u32 = 120;

/// Pages revisited per render.
const TOUCH_PER_RENDER: u32 = 250;

/// Reading gap between page loads, µs (6–14 s).
const GAP_LO: u64 = 6_000_000;
const GAP_HI: u64 = 14_000_000;

/// Network chunk wait, µs (150–500 ms each).
const NET_LO: u64 = 150_000;
const NET_HI: u64 = 500_000;

/// Parse CPU per chunk, µs.
const PARSE_LO: u64 = 20_000;
const PARSE_HI: u64 = 60_000;

/// Render CPU, µs (80–200 ms).
const RENDER_LO: u64 = 80_000;
const RENDER_HI: u64 = 200_000;

/// Network chunks per page.
const CHUNKS: u32 = 3;

#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    Init,
    Idle,
    /// Waiting for a network chunk; `left` chunks remain after this one.
    NetWait { left: u32 },
    /// Parsing the chunk that just arrived.
    Parse { left: u32 },
    /// Writing the chunk to the browser cache.
    CacheWrite { left: u32 },
    /// Touching memory before render; `render_from` marks when the
    /// user-perceived render wait started.
    PreRender { render_from: SimTime },
    Render { render_from: SimTime },
    PostRender { render_from: SimTime },
    SavePage,
    SaveDone { started: SimTime },
}

/// The IE foreground model.
pub struct IeModel {
    phase: Phase,
    region: Option<RegionId>,
    hot: u32,
    loads: u32,
}

impl IeModel {
    /// Creates the model.
    pub fn new() -> Self {
        IeModel {
            phase: Phase::Init,
            region: None,
            hot: INITIAL_HOT,
            loads: 0,
        }
    }
}

impl Default for IeModel {
    fn default() -> Self {
        Self::new()
    }
}

impl Workload for IeModel {
    fn name(&self) -> &str {
        "ie"
    }

    fn next_action(&mut self, ctx: &mut Ctx<'_>) -> Action {
        match self.phase {
            Phase::Init => {
                let r = ctx.alloc_region(REGION_PAGES, false);
                self.region = Some(r);
                self.phase = Phase::Idle;
                Action::Touch {
                    region: r,
                    count: self.hot,
                    pattern: TouchPattern::Prefix,
                }
            }
            Phase::Idle => {
                let gap = ctx.rng.range_inclusive(GAP_LO, GAP_HI);
                self.phase = Phase::NetWait { left: CHUNKS };
                Action::SleepUntil {
                    until: ctx.now + gap,
                }
            }
            Phase::NetWait { left } => {
                let wait = ctx.rng.range_inclusive(NET_LO, NET_HI);
                self.phase = Phase::Parse { left };
                Action::SleepUntil {
                    until: ctx.now + wait,
                }
            }
            Phase::Parse { left } => {
                self.phase = Phase::CacheWrite { left };
                Action::Compute {
                    us: ctx.rng.range_inclusive(PARSE_LO, PARSE_HI),
                }
            }
            Phase::CacheWrite { left } => {
                // IE writes the fetched content through to its disk cache.
                self.phase = if left > 1 {
                    Phase::NetWait { left: left - 1 }
                } else {
                    Phase::PreRender {
                        render_from: ctx.now,
                    }
                };
                Action::DiskIo {
                    ops: 2,
                    bytes_per_op: 32_768,
                }
            }
            Phase::PreRender { render_from } => {
                // Dynamic memory demand: the hot prefix grows per load.
                self.hot = (self.hot + GROW_PER_LOAD).min(REGION_PAGES);
                self.phase = Phase::Render { render_from };
                Action::Touch {
                    region: self.region.expect("initialized"),
                    count: TOUCH_PER_RENDER,
                    pattern: TouchPattern::RandomSample,
                }
            }
            Phase::Render { render_from } => {
                // Claim the newly grown prefix, then do layout CPU.
                self.phase = Phase::PostRender { render_from };
                Action::Compute {
                    us: ctx.rng.range_inclusive(RENDER_LO, RENDER_HI),
                }
            }
            Phase::PostRender { render_from } => {
                ctx.record_latency("render", ctx.now - render_from);
                self.loads += 1;
                // Touch the grown prefix so residency tracks the dynamic
                // demand, then save every other page (the study asked
                // users to save pages).
                if self.loads.is_multiple_of(2) {
                    self.phase = Phase::SavePage;
                    Action::Touch {
                        region: self.region.expect("initialized"),
                        count: self.hot,
                        pattern: TouchPattern::Prefix,
                    }
                } else {
                    self.phase = Phase::Idle;
                    Action::Touch {
                        region: self.region.expect("initialized"),
                        count: self.hot,
                        pattern: TouchPattern::Prefix,
                    }
                }
            }
            Phase::SavePage => {
                self.phase = Phase::SaveDone { started: ctx.now };
                Action::DiskIo {
                    ops: 5,
                    bytes_per_op: 65_536,
                }
            }
            Phase::SaveDone { started } => {
                // The user watched this save complete (the study asked
                // users to save pages): its wall time is the perceived
                // disk latency.
                ctx.record_latency("save", ctx.now - started);
                self.phase = Phase::Idle;
                Action::Compute { us: 1 }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uucs_sim::Machine;

    #[test]
    fn page_loads_and_saves_happen() {
        let mut m = Machine::study_machine(120);
        let t = m.spawn("ie", Box::new(IeModel::new()));
        m.run_until(120 * SEC);
        let st = m.thread_stats(t);
        let renders = st.latency_count("render");
        // ~120 s / (~10 s gap + ~2 s load) ≈ 10 loads.
        assert!((6..=16).contains(&renders), "renders {renders}");
        let saves = st.latency_count("save");
        assert!(saves >= 2, "saves {saves}");
        // Cache writes + saves: IE is the disk-busy task.
        assert!(st.disk_ops > 30, "disk ops {}", st.disk_ops);
    }

    #[test]
    fn disk_contention_stretches_saves() {
        let run = |hogs: usize| {
            let mut m = Machine::study_machine(121);
            let t = m.spawn("ie", Box::new(IeModel::new()));
            for i in 0..hogs {
                m.spawn(
                    format!("iohog{i}"),
                    Box::new(uucs_sim::workload::FnWorkload::new("iohog", |_| {
                        Action::DiskIo {
                            ops: 1,
                            bytes_per_op: 262_144,
                        }
                    })),
                );
            }
            m.run_until(240 * SEC);
            let st = m.thread_stats(t);
            (
                st.mean_latency("save").unwrap(),
                st.mean_latency("render").unwrap(),
            )
        };
        let (save_base, render_base) = run(0);
        let (save_contended, render_contended) = run(4);
        // The watched page save is where IE's disk sensitivity shows up.
        assert!(
            save_contended > 2.0 * save_base,
            "save {save_contended} vs base {save_base}"
        );
        // Renders stretch too (cache writes, faults), just less sharply.
        assert!(
            render_contended > render_base,
            "render {render_contended} vs base {render_base}"
        );
    }

    #[test]
    fn memory_demand_grows_over_time() {
        let mut m = Machine::study_machine(122);
        m.spawn("ie", Box::new(IeModel::new()));
        m.run_until(5 * SEC);
        let early = m.mem_resident();
        m.run_until(115 * SEC);
        let late = m.mem_resident();
        assert!(late > early, "demand should grow: {early} -> {late}");
    }
}
