//! The Word model: typing a non-technical document with limited
//! formatting (§3.1), plus periodic saving. The space of interactions is
//! typing and saving, as in the paper's task; drawing is covered by the
//! Powerpoint task.
//!
//! Interactivity profile: keystrokes arrive every few hundred ms and need
//! a few ms of CPU each; every couple of dozen keystrokes a larger
//! spell/repagination burst runs; an autosave writes through to disk
//! periodically. Very high CPU contention (around 3 and above, per the
//! paper §3.2) is needed before these tiny demands stretch into the
//! perceptible range.

use uucs_sim::{Action, Ctx, RegionId, SimTime, TouchPattern, Workload, SEC};

/// Working-set size in pages (~60 MB: Word 2002 plus its document and
/// shared libraries on the study machine).
pub const WS_PAGES: u32 = 15_000;

/// Pages of the working set revisited per keystroke.
const TOUCH_PER_KEY: u32 = 40;

/// CPU service per keystroke, µs (2–5 ms).
const KEY_CPU_LO: u64 = 2_000;
const KEY_CPU_HI: u64 = 5_000;

/// Keystroke inter-arrival, µs (150–350 ms — a ~50 wpm typist).
const KEY_GAP_LO: u64 = 150_000;
const KEY_GAP_HI: u64 = 350_000;

/// Keystrokes between spell/repagination bursts.
const BURST_EVERY: u32 = 25;

/// Burst CPU service, µs (40–90 ms).
const BURST_CPU_LO: u64 = 40_000;
const BURST_CPU_HI: u64 = 90_000;

/// Autosave period, µs.
const SAVE_EVERY: SimTime = 60 * SEC;

#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    Init,
    Warm,
    Idle,
    Touched { key_at: SimTime },
    Computed { key_at: SimTime },
    Saving { started: SimTime },
}

/// The Word foreground model.
pub struct WordModel {
    phase: Phase,
    ws: Option<RegionId>,
    keys: u32,
    next_save: SimTime,
}

impl WordModel {
    /// Creates the model.
    pub fn new() -> Self {
        WordModel {
            phase: Phase::Init,
            ws: None,
            keys: 0,
            next_save: SAVE_EVERY,
        }
    }
}

impl Default for WordModel {
    fn default() -> Self {
        Self::new()
    }
}

impl Workload for WordModel {
    fn name(&self) -> &str {
        "word"
    }

    fn next_action(&mut self, ctx: &mut Ctx<'_>) -> Action {
        match self.phase {
            Phase::Init => {
                // The working set is already loaded (the study's
                // acclimatization phase): claim it with zero-fill touches.
                let ws = ctx.alloc_region(WS_PAGES, false);
                self.ws = Some(ws);
                self.phase = Phase::Warm;
                Action::Touch {
                    region: ws,
                    count: WS_PAGES,
                    pattern: TouchPattern::Prefix,
                }
            }
            Phase::Warm | Phase::Idle => {
                // Wait for the next keystroke... (on Warm, this is the
                // first one).
                let gap = ctx.rng.range_inclusive(KEY_GAP_LO, KEY_GAP_HI);
                let key_at = ctx.now + gap;
                self.phase = Phase::Touched { key_at };
                Action::SleepUntil { until: key_at }
            }
            Phase::Touched { key_at } => {
                // Keystroke arrived: revisit a sample of the working set
                // (swap-ins show up here if memory was borrowed), ...
                self.phase = Phase::Computed { key_at };
                Action::Touch {
                    region: self.ws.expect("initialized"),
                    count: TOUCH_PER_KEY,
                    pattern: TouchPattern::RandomSample,
                }
            }
            Phase::Computed { key_at } => {
                // ... then do the echo/layout work, ...
                self.keys += 1;
                let mut cpu = ctx.rng.range_inclusive(KEY_CPU_LO, KEY_CPU_HI);
                if self.keys.is_multiple_of(BURST_EVERY) {
                    cpu += ctx.rng.range_inclusive(BURST_CPU_LO, BURST_CPU_HI);
                }
                self.phase = Phase::Saving { started: key_at };
                Action::Compute { us: cpu }
            }
            Phase::Saving { started } => {
                // ... record the echo latency and maybe autosave.
                ctx.record_latency("keystroke", ctx.now - started);
                if ctx.now >= self.next_save {
                    self.next_save = ctx.now + SAVE_EVERY;
                    self.phase = Phase::Idle;
                    ctx.record_latency("save-start", 0);
                    return Action::DiskIo {
                        ops: 4,
                        bytes_per_op: 65_536,
                    };
                }
                self.phase = Phase::Idle;
                // Zero-cost transition: immediately pick the next gap.
                Action::Compute { us: 1 }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uucs_sim::Machine;

    #[test]
    fn unloaded_machine_has_snappy_keystrokes() {
        let mut m = Machine::study_machine(100);
        let t = m.spawn("word", Box::new(WordModel::new()));
        m.run_until(60 * SEC);
        let st = m.thread_stats(t);
        let n = st.latency_count("keystroke");
        // ~60s / ~250ms gap ≈ 240 keystrokes.
        assert!(n > 150 && n < 400, "keystrokes {n}");
        let mean = st.mean_latency("keystroke").unwrap();
        // Alone, echo is just the CPU cost: a handful of ms.
        assert!(mean < 15_000.0, "mean {mean}");
    }

    #[test]
    fn cpu_contention_stretches_keystrokes() {
        let mut quiet = Machine::study_machine(101);
        let tq = quiet.spawn("word", Box::new(WordModel::new()));
        quiet.run_until(60 * SEC);
        let base = quiet.thread_stats(tq).mean_latency("keystroke").unwrap();

        let mut loaded = Machine::study_machine(101);
        let tl = loaded.spawn("word", Box::new(WordModel::new()));
        for i in 0..5 {
            loaded.spawn(
                format!("hog{i}"),
                Box::new(uucs_sim::workload::FnWorkload::new("hog", |_| {
                    Action::Compute { us: 10_000 }
                })),
            );
        }
        loaded.run_until(60 * SEC);
        let slow = loaded.thread_stats(tl).mean_latency("keystroke").unwrap();
        assert!(
            slow > 3.0 * base,
            "contended {slow} should far exceed quiet {base}"
        );
    }

    #[test]
    fn word_is_mostly_idle() {
        let mut m = Machine::study_machine(102);
        let t = m.spawn("word", Box::new(WordModel::new()));
        m.run_until(60 * SEC);
        // Typing uses only a few percent of the CPU.
        let util = m.thread_stats(t).cpu_us as f64 / m.now() as f64;
        assert!(util < 0.10, "util {util}");
    }

    #[test]
    fn autosaves_happen() {
        let mut m = Machine::study_machine(103);
        let t = m.spawn("word", Box::new(WordModel::new()));
        m.run_until(200 * SEC);
        let saves = m.thread_stats(t).latency_count("save-start");
        assert!((2..=4).contains(&saves), "saves {saves}");
        assert!(m.thread_stats(t).disk_ops >= 8);
    }

    #[test]
    fn working_set_established() {
        let mut m = Machine::study_machine(104);
        m.spawn("word", Box::new(WordModel::new()));
        m.run_until(10 * SEC);
        assert_eq!(m.mem_resident(), WS_PAGES);
    }
}
