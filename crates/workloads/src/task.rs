//! The controlled study's task identities (§3.1).

use std::fmt;
use std::str::FromStr;
use uucs_sim::Workload;

/// One of the four foreground tasks of the controlled study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Task {
    /// Word processing with Microsoft Word: typing a non-technical
    /// document with limited formatting.
    Word,
    /// Presentation making with Microsoft Powerpoint: duplicating complex
    /// diagrams with drawing and labeling.
    Powerpoint,
    /// Browsing and research with Internet Explorer: reading news stories,
    /// searching, and saving pages; multiple application windows.
    Ie,
    /// Playing Quake III — the study's most resource-intensive
    /// application.
    Quake,
}

impl Task {
    /// The four tasks in the paper's presentation order.
    pub const ALL: [Task; 4] = [Task::Word, Task::Powerpoint, Task::Ie, Task::Quake];

    /// Display name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Task::Word => "Word",
            Task::Powerpoint => "Powerpoint",
            Task::Ie => "IE",
            Task::Quake => "Quake",
        }
    }

    /// Builds the foreground workload model for this task. The model's
    /// RNG behavior derives from the machine's per-thread streams, so
    /// spawning the same task twice on one machine still yields
    /// independent event timings.
    pub fn model(self) -> Box<dyn Workload> {
        match self {
            Task::Word => Box::new(crate::word::WordModel::new()),
            Task::Powerpoint => Box::new(crate::powerpoint::PowerpointModel::new()),
            Task::Ie => Box::new(crate::ie::IeModel::new()),
            Task::Quake => Box::new(crate::quake::QuakeModel::new()),
        }
    }

    /// The latency class the task's model records for its primary
    /// interactive operation.
    pub fn latency_class(self) -> &'static str {
        match self {
            Task::Word => "keystroke",
            Task::Powerpoint => "draw",
            Task::Ie => "render",
            Task::Quake => "frame",
        }
    }
}

impl fmt::Display for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error parsing a task name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTaskError(pub String);

impl fmt::Display for ParseTaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown task: {:?}", self.0)
    }
}

impl std::error::Error for ParseTaskError {}

impl FromStr for Task {
    type Err = ParseTaskError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "word" => Ok(Task::Word),
            "powerpoint" | "ppt" => Ok(Task::Powerpoint),
            "ie" | "internetexplorer" | "internet-explorer" => Ok(Task::Ie),
            "quake" | "quake3" | "quakeiii" => Ok(Task::Quake),
            other => Err(ParseTaskError(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for t in Task::ALL {
            assert_eq!(t.name().parse::<Task>().unwrap(), t);
        }
    }

    #[test]
    fn aliases() {
        assert_eq!("ppt".parse::<Task>().unwrap(), Task::Powerpoint);
        assert_eq!("QUAKE3".parse::<Task>().unwrap(), Task::Quake);
        assert!("emacs".parse::<Task>().is_err());
    }

    #[test]
    fn all_has_paper_order() {
        assert_eq!(
            Task::ALL.map(|t| t.name()),
            ["Word", "Powerpoint", "IE", "Quake"]
        );
    }

    #[test]
    fn models_construct() {
        for t in Task::ALL {
            let m = t.model();
            assert!(!m.name().is_empty());
        }
    }
}
