//! Verification probes.
//!
//! The paper verified its CPU exerciser "to a contention level of 10 for
//! equal priority threads" and its disk exerciser "to a contention level
//! of 7" by measuring how much a competing busy thread slows down
//! (§2.2). These probes are those competing threads: [`BusyProbe`] burns
//! CPU continuously, [`IoProbe`] issues disk operations back to back; the
//! achieved contention is inferred from how far below standalone their
//! progress falls.

use uucs_sim::{Action, Ctx, SimTime, Workload};

/// A continuously busy CPU thread. Its accumulated `cpu_us` against the
/// elapsed wall time gives its share `s`; the contention it experienced
/// is `1/s - 1`.
pub struct BusyProbe {
    burst_us: SimTime,
}

impl BusyProbe {
    /// Creates a probe computing in bursts of `burst_us` (the burst size
    /// only affects bookkeeping granularity, not total progress).
    pub fn new(burst_us: SimTime) -> Self {
        assert!(burst_us > 0);
        BusyProbe { burst_us }
    }

    /// The contention level implied by a measured CPU share.
    pub fn contention_from_share(share: f64) -> f64 {
        assert!(share > 0.0 && share <= 1.0, "share must be in (0,1]");
        1.0 / share - 1.0
    }
}

impl Default for BusyProbe {
    fn default() -> Self {
        BusyProbe::new(1_000)
    }
}

impl Workload for BusyProbe {
    fn name(&self) -> &str {
        "busy-probe"
    }

    fn next_action(&mut self, _ctx: &mut Ctx<'_>) -> Action {
        Action::Compute { us: self.burst_us }
    }
}

/// A continuously I/O-busy thread issuing one random synced write after
/// another. Its completed-op rate against standalone gives the disk
/// contention it experienced.
pub struct IoProbe {
    bytes_per_op: u32,
}

impl IoProbe {
    /// Creates a probe writing `bytes_per_op` per operation.
    pub fn new(bytes_per_op: u32) -> Self {
        IoProbe { bytes_per_op }
    }
}

impl Default for IoProbe {
    fn default() -> Self {
        IoProbe::new(65_536)
    }
}

impl Workload for IoProbe {
    fn name(&self) -> &str {
        "io-probe"
    }

    fn next_action(&mut self, _ctx: &mut Ctx<'_>) -> Action {
        Action::DiskIo {
            ops: 1,
            bytes_per_op: self.bytes_per_op,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uucs_sim::{Machine, SEC};

    #[test]
    fn busy_probe_alone_gets_everything() {
        let mut m = Machine::study_machine(150);
        let t = m.spawn("probe", Box::new(BusyProbe::default()));
        m.run_until(10 * SEC);
        let share = m.thread_stats(t).cpu_us as f64 / m.now() as f64;
        assert!(share > 0.999, "share {share}");
        assert!(BusyProbe::contention_from_share(share) < 0.01);
    }

    #[test]
    fn busy_probe_measures_contention() {
        let mut m = Machine::study_machine(151);
        let t = m.spawn("probe", Box::new(BusyProbe::default()));
        for i in 0..3 {
            m.spawn(format!("bg{i}"), Box::new(BusyProbe::default()));
        }
        m.run_until(20 * SEC);
        let share = m.thread_stats(t).cpu_us as f64 / m.now() as f64;
        let c = BusyProbe::contention_from_share(share);
        assert!((c - 3.0).abs() < 0.2, "measured contention {c}");
    }

    #[test]
    fn io_probe_rate_halves_against_one_competitor() {
        let solo = {
            let mut m = Machine::study_machine(152);
            let t = m.spawn("probe", Box::new(IoProbe::default()));
            m.run_until(20 * SEC);
            m.thread_stats(t).disk_ops
        };
        let mut m = Machine::study_machine(152);
        let t = m.spawn("probe", Box::new(IoProbe::default()));
        m.spawn("bg", Box::new(IoProbe::default()));
        m.run_until(20 * SEC);
        let ratio = m.thread_stats(t).disk_ops as f64 / solo as f64;
        assert!((ratio - 0.5).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "share must be in (0,1]")]
    fn contention_from_zero_share_panics() {
        BusyProbe::contention_from_share(0.0);
    }
}
