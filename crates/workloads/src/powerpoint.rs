//! The Powerpoint model: duplicating a presentation of complex diagrams
//! involving drawing and labeling (§3.1).
//!
//! Interactivity profile: drawing operations every couple of seconds,
//! each needing tens of milliseconds of CPU for layout and rendering —
//! finer-grained interactivity than Word, so CPU contention bites at much
//! lower levels (the paper's ramp ceiling for Powerpoint CPU is 2.0
//! versus Word's 7.0, Figure 8).

use uucs_sim::{Action, Ctx, RegionId, SimTime, TouchPattern, Workload, SEC};

/// Working-set size in pages (~80 MB: Powerpoint with a diagram-heavy
/// deck).
pub const WS_PAGES: u32 = 20_000;

/// Pages revisited per drawing operation.
const TOUCH_PER_OP: u32 = 150;

/// CPU per drawing operation, µs (40–120 ms).
const OP_CPU_LO: u64 = 40_000;
const OP_CPU_HI: u64 = 120_000;

/// Gap between drawing operations, µs (1.5–3.5 s).
const OP_GAP_LO: u64 = 1_500_000;
const OP_GAP_HI: u64 = 3_500_000;

/// Every this many ops, a full-slide re-render runs.
const RERENDER_EVERY: u32 = 8;

/// Re-render CPU, µs.
const RERENDER_CPU: u64 = 200_000;

/// Save period, µs.
const SAVE_EVERY: SimTime = 90 * SEC;

#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    Init,
    Idle,
    Touched { op_at: SimTime },
    Computed { op_at: SimTime },
    Done { op_at: SimTime },
}

/// The Powerpoint foreground model.
pub struct PowerpointModel {
    phase: Phase,
    ws: Option<RegionId>,
    ops: u32,
    next_save: SimTime,
}

impl PowerpointModel {
    /// Creates the model.
    pub fn new() -> Self {
        PowerpointModel {
            phase: Phase::Init,
            ws: None,
            ops: 0,
            next_save: SAVE_EVERY,
        }
    }
}

impl Default for PowerpointModel {
    fn default() -> Self {
        Self::new()
    }
}

impl Workload for PowerpointModel {
    fn name(&self) -> &str {
        "powerpoint"
    }

    fn next_action(&mut self, ctx: &mut Ctx<'_>) -> Action {
        match self.phase {
            Phase::Init => {
                let ws = ctx.alloc_region(WS_PAGES, false);
                self.ws = Some(ws);
                self.phase = Phase::Idle;
                Action::Touch {
                    region: ws,
                    count: WS_PAGES,
                    pattern: TouchPattern::Prefix,
                }
            }
            Phase::Idle => {
                let gap = ctx.rng.range_inclusive(OP_GAP_LO, OP_GAP_HI);
                let op_at = ctx.now + gap;
                self.phase = Phase::Touched { op_at };
                Action::SleepUntil { until: op_at }
            }
            Phase::Touched { op_at } => {
                self.phase = Phase::Computed { op_at };
                Action::Touch {
                    region: self.ws.expect("initialized"),
                    count: TOUCH_PER_OP,
                    pattern: TouchPattern::RandomSample,
                }
            }
            Phase::Computed { op_at } => {
                self.ops += 1;
                let mut cpu = ctx.rng.range_inclusive(OP_CPU_LO, OP_CPU_HI);
                if self.ops.is_multiple_of(RERENDER_EVERY) {
                    cpu += RERENDER_CPU;
                }
                self.phase = Phase::Done { op_at };
                Action::Compute { us: cpu }
            }
            Phase::Done { op_at } => {
                ctx.record_latency("draw", ctx.now - op_at);
                self.phase = Phase::Idle;
                if ctx.now >= self.next_save {
                    self.next_save = ctx.now + SAVE_EVERY;
                    ctx.record_latency("save-start", 0);
                    return Action::DiskIo {
                        ops: 8,
                        bytes_per_op: 65_536,
                    };
                }
                Action::Compute { us: 1 }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uucs_sim::Machine;

    #[test]
    fn draw_ops_have_expected_cadence_and_cost() {
        let mut m = Machine::study_machine(110);
        let t = m.spawn("ppt", Box::new(PowerpointModel::new()));
        m.run_until(120 * SEC);
        let st = m.thread_stats(t);
        let n = st.latency_count("draw");
        // 120 s / ~2.5 s ≈ 48 ops.
        assert!(n > 30 && n < 75, "ops {n}");
        let mean = st.mean_latency("draw").unwrap();
        // Alone: just the CPU cost, under a quarter second.
        assert!(mean > 30_000.0 && mean < 250_000.0, "mean {mean}");
    }

    #[test]
    fn finer_interactivity_than_word() {
        // Powerpoint burns distinctly more CPU per interaction than Word —
        // the reason its CPU tolerance is an order of magnitude lower.
        let mut mp = Machine::study_machine(111);
        let tp = mp.spawn("ppt", Box::new(PowerpointModel::new()));
        mp.run_until(120 * SEC);
        let mut mw = Machine::study_machine(111);
        let tw = mw.spawn("word", Box::new(crate::word::WordModel::new()));
        mw.run_until(120 * SEC);
        let ppt_mean = mp.thread_stats(tp).mean_latency("draw").unwrap();
        let word_mean = mw.thread_stats(tw).mean_latency("keystroke").unwrap();
        assert!(
            ppt_mean > 5.0 * word_mean,
            "ppt {ppt_mean} vs word {word_mean}"
        );
    }

    #[test]
    fn contention_pushes_draws_past_threshold() {
        let mut m = Machine::study_machine(112);
        let t = m.spawn("ppt", Box::new(PowerpointModel::new()));
        // Contention 2 (two busy threads) — the top of the paper's PPT ramp.
        for i in 0..2 {
            m.spawn(
                format!("hog{i}"),
                Box::new(uucs_sim::workload::FnWorkload::new("hog", |_| {
                    Action::Compute { us: 10_000 }
                })),
            );
        }
        m.run_until(120 * SEC);
        let mean = m.thread_stats(t).mean_latency("draw").unwrap();
        // Tripled service time: ops stretch toward the annoying range.
        assert!(mean > 200_000.0, "mean {mean}");
    }
}
