//! The Quake III model: a first-person shooter's frame-render loop — the
//! study's most resource-intensive application (§3.1).
//!
//! The loop consumes all spare CPU (the paper's §2.2 example of "another
//! busy thread in the system (the display loop of a first person shooter
//! game)"), so any CPU borrowed comes straight out of the frame rate:
//! under contention `c` the frame rate drops to `1/(1+c)` of standalone.
//! Frame *jitter* — variance injected by scheduler quanta and background
//! activity — is what makes even blank testcases occasionally irritating
//! to Quake players (the paper's nonzero noise floor, Figure 9).

use uucs_sim::{Action, Ctx, RegionId, SimTime, TouchPattern, Workload};

/// Working-set size in pages (~150 MB: textures, level geometry, engine).
pub const WS_PAGES: u32 = 38_000;

/// CPU service per frame, µs: ~90 fps standalone on the study machine.
pub const FRAME_CPU: u64 = 11_000;

/// Pages of the working set sampled per frame.
const TOUCH_PER_FRAME: u32 = 24;

/// Every this many frames, extra game work runs (AI/sound/net burst).
const SPIKE_EVERY: u32 = 64;
const SPIKE_CPU: u64 = 4_000;

#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    Init,
    TouchFrame,
    Render { frame_from: SimTime },
    FrameDone { frame_from: SimTime },
}

/// The Quake III foreground model.
pub struct QuakeModel {
    phase: Phase,
    ws: Option<RegionId>,
    frames: u32,
}

impl QuakeModel {
    /// Creates the model.
    pub fn new() -> Self {
        QuakeModel {
            phase: Phase::Init,
            ws: None,
            frames: 0,
        }
    }
}

impl Default for QuakeModel {
    fn default() -> Self {
        Self::new()
    }
}

impl Workload for QuakeModel {
    fn name(&self) -> &str {
        "quake"
    }

    fn next_action(&mut self, ctx: &mut Ctx<'_>) -> Action {
        match self.phase {
            Phase::Init => {
                let ws = ctx.alloc_region(WS_PAGES, false);
                self.ws = Some(ws);
                self.phase = Phase::TouchFrame;
                Action::Touch {
                    region: ws,
                    count: WS_PAGES,
                    pattern: TouchPattern::Prefix,
                }
            }
            Phase::TouchFrame => {
                self.phase = Phase::Render {
                    frame_from: ctx.now,
                };
                Action::Touch {
                    region: self.ws.expect("initialized"),
                    count: TOUCH_PER_FRAME,
                    pattern: TouchPattern::RandomSample,
                }
            }
            Phase::Render { frame_from } => {
                self.frames += 1;
                let mut cpu = FRAME_CPU;
                if self.frames.is_multiple_of(SPIKE_EVERY) {
                    cpu += SPIKE_CPU;
                }
                self.phase = Phase::FrameDone { frame_from };
                Action::Compute { us: cpu }
            }
            Phase::FrameDone { frame_from } => {
                ctx.record_latency("frame", ctx.now - frame_from);
                self.phase = Phase::TouchFrame;
                // No sleep: the render loop is a busy thread.
                Action::Compute { us: 1 }
            }
        }
    }
}

/// Frame statistics derived from a run's latency samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameStats {
    /// Mean frames per second.
    pub fps: f64,
    /// Mean frame time, µs.
    pub mean_us: f64,
    /// Standard deviation of frame time, µs — the jitter Quake players
    /// feel.
    pub jitter_us: f64,
}

impl FrameStats {
    /// Computes frame statistics from recorded `"frame"` latencies.
    pub fn from_latencies(frames_us: &[SimTime]) -> Option<FrameStats> {
        if frames_us.is_empty() {
            return None;
        }
        let n = frames_us.len() as f64;
        let mean = frames_us.iter().sum::<u64>() as f64 / n;
        let var = frames_us
            .iter()
            .map(|&f| (f as f64 - mean) * (f as f64 - mean))
            .sum::<f64>()
            / n;
        Some(FrameStats {
            fps: 1_000_000.0 / mean,
            mean_us: mean,
            jitter_us: var.sqrt(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uucs_sim::{Machine, SEC};

    fn frame_stats(m: &Machine, t: usize) -> FrameStats {
        FrameStats::from_latencies(&m.thread_stats(t).latencies_of("frame")).unwrap()
    }

    #[test]
    fn standalone_framerate_near_target() {
        let mut m = Machine::study_machine(130);
        let t = m.spawn("quake", Box::new(QuakeModel::new()));
        m.run_until(30 * SEC);
        let fs = frame_stats(&m, t);
        // ~11 ms/frame + touch cost => high-80s fps.
        assert!(fs.fps > 75.0 && fs.fps < 95.0, "fps {}", fs.fps);
        assert!(fs.jitter_us < 3_000.0, "jitter {}", fs.jitter_us);
    }

    #[test]
    fn quake_saturates_the_cpu() {
        let mut m = Machine::study_machine(131);
        m.spawn("quake", Box::new(QuakeModel::new()));
        m.run_until(10 * SEC);
        assert!(m.metrics().cpu_utilization(m.now()) > 0.99);
    }

    #[test]
    fn contention_halves_framerate() {
        // One competing busy thread (contention 1.0): frame rate halves,
        // exactly the paper's 1/(1+c) law.
        let solo = {
            let mut m = Machine::study_machine(132);
            let t = m.spawn("quake", Box::new(QuakeModel::new()));
            m.run_until(30 * SEC);
            frame_stats(&m, t).fps
        };
        let mut m = Machine::study_machine(132);
        let t = m.spawn("quake", Box::new(QuakeModel::new()));
        m.spawn(
            "hog",
            Box::new(uucs_sim::workload::FnWorkload::new("hog", |_| {
                Action::Compute { us: 10_000 }
            })),
        );
        m.run_until(30 * SEC);
        let contended = frame_stats(&m, t).fps;
        let ratio = contended / solo;
        assert!((ratio - 0.5).abs() < 0.07, "ratio {ratio}");
    }

    #[test]
    fn contention_adds_jitter() {
        let solo_jitter = {
            let mut m = Machine::study_machine(133);
            let t = m.spawn("quake", Box::new(QuakeModel::new()));
            m.run_until(20 * SEC);
            frame_stats(&m, t).jitter_us
        };
        let mut m = Machine::study_machine(133);
        let t = m.spawn("quake", Box::new(QuakeModel::new()));
        m.spawn(
            "hog",
            Box::new(uucs_sim::workload::FnWorkload::new("hog", |_| {
                Action::Compute { us: 10_000 }
            })),
        );
        m.run_until(20 * SEC);
        let contended_jitter = frame_stats(&m, t).jitter_us;
        assert!(
            contended_jitter > 2.0 * solo_jitter.max(100.0),
            "jitter {solo_jitter} -> {contended_jitter}"
        );
    }

    #[test]
    fn frame_stats_empty_is_none() {
        assert!(FrameStats::from_latencies(&[]).is_none());
    }

    #[test]
    fn frame_stats_constant_frames_zero_jitter() {
        let fs = FrameStats::from_latencies(&[10_000, 10_000, 10_000]).unwrap();
        assert!((fs.fps - 100.0).abs() < 1e-9);
        assert_eq!(fs.jitter_us, 0.0);
    }
}
