//! Physical memory: regions, residency bitmaps, and eviction.
//!
//! The model is deliberately at the granularity the paper's memory
//! exerciser operates at: a region is a contiguous virtual allocation; a
//! *touch* references a set of its pages, claiming physical frames for
//! any that are not resident. When free frames run out, victims are taken
//! from the least-recently-touched region first (region-recency LRU with
//! a per-region clock cursor), which reproduces the behavior the paper
//! describes in §3.3.3: once an office application forms its working set,
//! borrowed memory comes out of the *idle* portions first, and only
//! aggressive borrowing starts evicting hot pages.

use crate::workload::{RegionId, TouchPattern};
use crate::{SimTime, ThreadId};
use uucs_stats::Pcg64;

/// How victims are chosen when physical memory runs out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvictionPolicy {
    /// Victim pages come from the least-recently-*touched region* (clock
    /// cursor within it). Cheap and adequate for the controlled study's
    /// workloads; the default.
    #[default]
    RegionRecency,
    /// A global second-chance clock over every resident page: touches set
    /// a per-page referenced bit, the clock clears bits as it sweeps and
    /// evicts the first unreferenced resident page. Page-granular LRU
    /// approximation — hot pages survive regardless of which region owns
    /// them.
    SecondChance,
}

/// Outcome of touching pages in a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TouchOutcome {
    /// Pages already resident (cheap).
    pub hits: u32,
    /// Pages needing a zero-fill (first touch of an anonymous page) —
    /// costs a little CPU, no I/O.
    pub zero_fills: u32,
    /// Pages needing a disk read (first touch of a file-backed page, or
    /// swap-in of a previously evicted page).
    pub faults: u32,
}

#[derive(Debug)]
struct Region {
    owner: ThreadId,
    pages: u32,
    file_backed: bool,
    /// Bit per page: currently resident.
    resident: Vec<u64>,
    /// Bit per page: has been resident at some point (so a miss on an
    /// anonymous page that was never resident is a zero-fill, while a miss
    /// on one that was evicted is a swap-in fault).
    ever_resident: Vec<u64>,
    /// Bit per page: referenced since the second-chance clock last swept
    /// past (only meaningful under [`EvictionPolicy::SecondChance`]).
    referenced: Vec<u64>,
    resident_count: u32,
    last_touch: SimTime,
    clock_cursor: u32,
    freed: bool,
}

impl Region {
    fn bit(v: &[u64], i: u32) -> bool {
        v[(i / 64) as usize] >> (i % 64) & 1 == 1
    }

    fn set_bit(v: &mut [u64], i: u32) {
        v[(i / 64) as usize] |= 1 << (i % 64);
    }

    fn clear_bit(v: &mut [u64], i: u32) {
        v[(i / 64) as usize] &= !(1 << (i % 64));
    }
}

/// Global memory statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Total page faults serviced from disk.
    pub faults: u64,
    /// Total zero-fill first touches.
    pub zero_fills: u64,
    /// Total evictions.
    pub evictions: u64,
}

/// The physical memory manager.
#[derive(Debug)]
pub struct MemoryManager {
    capacity: u32,
    resident_total: u32,
    regions: Vec<Region>,
    stats: MemStats,
    policy: EvictionPolicy,
    /// Global clock hand for [`EvictionPolicy::SecondChance`].
    clock: (usize, u32),
}

impl MemoryManager {
    /// Creates a manager with `capacity` physical frames and the default
    /// region-recency eviction policy.
    pub fn new(capacity: u32) -> Self {
        Self::with_policy(capacity, EvictionPolicy::default())
    }

    /// Creates a manager with an explicit eviction policy.
    pub fn with_policy(capacity: u32, policy: EvictionPolicy) -> Self {
        assert!(capacity > 0);
        MemoryManager {
            capacity,
            resident_total: 0,
            regions: Vec::new(),
            stats: MemStats::default(),
            policy,
            clock: (0, 0),
        }
    }

    /// The eviction policy in force.
    pub fn policy(&self) -> EvictionPolicy {
        self.policy
    }

    /// Physical capacity in frames.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Frames currently in use.
    pub fn resident_total(&self) -> u32 {
        self.resident_total
    }

    /// Global statistics.
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    /// Allocates a region of `pages` virtual pages for `owner`.
    pub fn alloc(&mut self, owner: ThreadId, pages: u32, file_backed: bool) -> RegionId {
        assert!(pages > 0, "empty region");
        let words = (pages as usize).div_ceil(64);
        self.regions.push(Region {
            owner,
            pages,
            file_backed,
            resident: vec![0; words],
            ever_resident: vec![0; words],
            referenced: vec![0; words],
            resident_count: 0,
            last_touch: 0,
            clock_cursor: 0,
            freed: false,
        });
        RegionId(self.regions.len() - 1)
    }

    /// Frees a region, releasing its frames.
    pub fn free(&mut self, id: RegionId) {
        let r = &mut self.regions[id.0];
        if r.freed {
            return;
        }
        self.resident_total -= r.resident_count;
        r.resident_count = 0;
        r.resident.iter_mut().for_each(|w| *w = 0);
        r.freed = true;
    }

    /// Frees every region owned by `owner` (called when a thread exits).
    pub fn free_owned_by(&mut self, owner: ThreadId) {
        for i in 0..self.regions.len() {
            if self.regions[i].owner == owner && !self.regions[i].freed {
                self.free(RegionId(i));
            }
        }
    }

    /// Resident page count of a region.
    pub fn resident_pages(&self, id: RegionId) -> u32 {
        self.regions[id.0].resident_count
    }

    /// Touches `count` pages of `id` with the given pattern at time `now`.
    /// Claims frames for missing pages (evicting victims if necessary) and
    /// reports how many were hits / zero-fills / disk faults. The caller
    /// (the machine) charges the corresponding CPU and disk costs.
    pub fn touch(
        &mut self,
        id: RegionId,
        count: u32,
        pattern: TouchPattern,
        now: SimTime,
        rng: &mut Pcg64,
    ) -> TouchOutcome {
        let (hits, zero_fills, faults);
        {
            let r = &self.regions[id.0];
            assert!(!r.freed, "touch on freed region");
            let count = count.min(r.pages);
            let mut h = 0;
            let mut z = 0;
            let mut f = 0;
            let mut to_claim: Vec<u32> = Vec::new();
            let mut ref_words: Vec<(usize, u64)> = Vec::new();
            let mut ref_pages: Vec<u32> = Vec::new();
            match pattern {
                TouchPattern::Prefix => {
                    // Word-at-a-time scan: the memory exerciser touches
                    // prefixes of ~10^5 pages at high frequency, so the
                    // all-resident fast path must not iterate per page.
                    let mut p = 0u32;
                    while p < count {
                        let word = (p / 64) as usize;
                        let in_word = (count - p).min(64 - p % 64);
                        let mask = if in_word == 64 {
                            u64::MAX
                        } else {
                            ((1u64 << in_word) - 1) << (p % 64)
                        };
                        let res = r.resident[word] & mask;
                        h += res.count_ones();
                        ref_words.push((word, mask));
                        let mut missing = !res & mask;
                        while missing != 0 {
                            let bit = missing.trailing_zeros();
                            let page = word as u32 * 64 + bit;
                            if r.file_backed || Region::bit(&r.ever_resident, page) {
                                f += 1;
                            } else {
                                z += 1;
                            }
                            to_claim.push(page);
                            missing &= missing - 1;
                        }
                        p += in_word;
                    }
                }
                TouchPattern::RandomSample => {
                    for _ in 0..count {
                        let p = rng.below(r.pages as u64) as u32;
                        ref_pages.push(p);
                        if Region::bit(&r.resident, p) {
                            h += 1;
                        } else {
                            if r.file_backed || Region::bit(&r.ever_resident, p) {
                                f += 1;
                            } else {
                                z += 1;
                            }
                            if !to_claim.contains(&p) {
                                to_claim.push(p);
                            } else {
                                // Double-sampled within one touch: the
                                // second reference is a hit in practice.
                                if r.file_backed || Region::bit(&r.ever_resident, p) {
                                    f -= 1;
                                } else {
                                    z -= 1;
                                }
                                h += 1;
                            }
                        }
                    }
                }
            }
            hits = h;
            zero_fills = z;
            faults = f;
            // Mark the touched pages referenced (for the second-chance
            // clock), then claim frames for the missing ones.
            {
                let r = &mut self.regions[id.0];
                for (word, mask) in ref_words {
                    r.referenced[word] |= mask;
                }
                for p in ref_pages {
                    Region::set_bit(&mut r.referenced, p);
                }
            }
            for p in to_claim {
                self.claim_frame(id, p, now);
            }
        }
        let r = &mut self.regions[id.0];
        r.last_touch = now;
        self.stats.faults += faults as u64;
        self.stats.zero_fills += zero_fills as u64;
        TouchOutcome {
            hits,
            zero_fills,
            faults,
        }
    }

    /// Claims a frame for page `p` of region `id`, evicting if needed.
    fn claim_frame(&mut self, id: RegionId, p: u32, now: SimTime) {
        if self.resident_total >= self.capacity {
            self.evict_one(id, now);
        }
        let r = &mut self.regions[id.0];
        debug_assert!(!Region::bit(&r.resident, p));
        Region::set_bit(&mut r.resident, p);
        Region::set_bit(&mut r.ever_resident, p);
        Region::set_bit(&mut r.referenced, p);
        r.resident_count += 1;
        self.resident_total += 1;
    }

    /// Evicts one resident page according to the policy.
    fn evict_one(&mut self, faulting: RegionId, now: SimTime) {
        match self.policy {
            EvictionPolicy::RegionRecency => self.evict_region_recency(faulting, now),
            EvictionPolicy::SecondChance => self.evict_second_chance(),
        }
    }

    /// Global second-chance clock: clear referenced bits as the hand
    /// sweeps; evict the first unreferenced resident page.
    fn evict_second_chance(&mut self) {
        let total: u64 = self
            .regions
            .iter()
            .filter(|r| !r.freed)
            .map(|r| r.pages as u64)
            .sum();
        // Two full sweeps guarantee a victim (first sweep clears bits).
        let mut budget = 2 * total + 1;
        let (mut ri, mut pi) = self.clock;
        loop {
            assert!(budget > 0, "second-chance clock found no victim");
            budget -= 1;
            if ri >= self.regions.len() {
                ri = 0;
                pi = 0;
            }
            let skip = {
                let r = &self.regions[ri];
                r.freed || r.resident_count == 0 || pi >= r.pages
            };
            if skip {
                ri = (ri + 1) % self.regions.len().max(1);
                pi = 0;
                continue;
            }
            let r = &mut self.regions[ri];
            if Region::bit(&r.resident, pi) {
                if Region::bit(&r.referenced, pi) {
                    // Second chance: clear and move on.
                    Region::clear_bit(&mut r.referenced, pi);
                } else {
                    Region::clear_bit(&mut r.resident, pi);
                    r.resident_count -= 1;
                    self.resident_total -= 1;
                    self.stats.evictions += 1;
                    self.clock = (ri, pi + 1);
                    return;
                }
            }
            pi += 1;
            if pi >= self.regions[ri].pages {
                ri = (ri + 1) % self.regions.len();
                pi = 0;
            }
        }
    }

    /// Victim region = least-recently-touched region; clock cursor within.
    /// `faulting` is evicted from only as a last resort (but can be — that
    /// is thrashing).
    fn evict_region_recency(&mut self, faulting: RegionId, _now: SimTime) {
        // Pick the victim region: oldest last_touch among regions with
        // resident pages, excluding the faulting region if possible.
        let mut victim: Option<usize> = None;
        for (i, r) in self.regions.iter().enumerate() {
            if r.freed || r.resident_count == 0 {
                continue;
            }
            if i == faulting.0 {
                continue;
            }
            match victim {
                None => victim = Some(i),
                Some(v) if r.last_touch < self.regions[v].last_touch => victim = Some(i),
                _ => {}
            }
        }
        let v = victim.unwrap_or(faulting.0);
        let r = &mut self.regions[v];
        assert!(
            r.resident_count > 0,
            "eviction with no resident pages anywhere"
        );
        // Advance the region's clock cursor to the next resident page.
        let mut cur = r.clock_cursor;
        for _ in 0..=r.pages {
            if Region::bit(&r.resident, cur) {
                break;
            }
            cur = (cur + 1) % r.pages;
        }
        Region::clear_bit(&mut r.resident, cur);
        r.resident_count -= 1;
        r.clock_cursor = (cur + 1) % r.pages;
        self.resident_total -= 1;
        self.stats.evictions += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Pcg64 {
        Pcg64::new(1234)
    }

    #[test]
    fn anonymous_first_touch_is_zero_fill() {
        let mut m = MemoryManager::new(100);
        let r = m.alloc(0, 50, false);
        let o = m.touch(r, 50, TouchPattern::Prefix, 0, &mut rng());
        assert_eq!(o.zero_fills, 50);
        assert_eq!(o.faults, 0);
        assert_eq!(o.hits, 0);
        assert_eq!(m.resident_pages(r), 50);
        assert_eq!(m.resident_total(), 50);
    }

    #[test]
    fn file_backed_first_touch_faults() {
        let mut m = MemoryManager::new(100);
        let r = m.alloc(0, 30, true);
        let o = m.touch(r, 30, TouchPattern::Prefix, 0, &mut rng());
        assert_eq!(o.faults, 30);
        assert_eq!(o.zero_fills, 0);
    }

    #[test]
    fn second_touch_hits() {
        let mut m = MemoryManager::new(100);
        let r = m.alloc(0, 40, true);
        m.touch(r, 40, TouchPattern::Prefix, 0, &mut rng());
        let o = m.touch(r, 40, TouchPattern::Prefix, 1, &mut rng());
        assert_eq!(o.hits, 40);
        assert_eq!(o.faults, 0);
    }

    #[test]
    fn eviction_prefers_cold_region() {
        let mut m = MemoryManager::new(100);
        let cold = m.alloc(0, 60, true);
        let hot = m.alloc(1, 60, true);
        m.touch(cold, 60, TouchPattern::Prefix, 0, &mut rng());
        m.touch(hot, 40, TouchPattern::Prefix, 10, &mut rng());
        // 100 frames: cold=60, hot=40. Touch 20 more hot pages; the 20
        // victims must all come from cold.
        let before_hot = m.resident_pages(hot);
        m.touch(hot, 60, TouchPattern::Prefix, 20, &mut rng());
        assert_eq!(m.resident_pages(hot), 60);
        assert!(m.resident_pages(cold) <= 60 - (60 - before_hot));
        assert_eq!(m.resident_total(), 100);
        assert_eq!(m.stats().evictions, 20);
    }

    #[test]
    fn swap_in_after_eviction_is_fault_even_when_anonymous() {
        let mut m = MemoryManager::new(50);
        let a = m.alloc(0, 50, false);
        let b = m.alloc(1, 30, false);
        m.touch(a, 50, TouchPattern::Prefix, 0, &mut rng());
        // b's touches evict 30 of a's pages.
        m.touch(b, 30, TouchPattern::Prefix, 1, &mut rng());
        assert_eq!(m.resident_pages(a), 20);
        // Re-touching a's evicted pages is now a swap-in (fault), not a
        // zero fill.
        let o = m.touch(a, 50, TouchPattern::Prefix, 2, &mut rng());
        assert_eq!(o.faults, 30);
        assert_eq!(o.zero_fills, 0);
        assert_eq!(o.hits, 20);
    }

    #[test]
    fn thrashing_when_demand_exceeds_capacity() {
        let mut m = MemoryManager::new(40);
        let a = m.alloc(0, 40, false);
        let b = m.alloc(1, 40, false);
        // Alternate full touches: every round faults heavily.
        m.touch(a, 40, TouchPattern::Prefix, 0, &mut rng());
        m.touch(b, 40, TouchPattern::Prefix, 1, &mut rng());
        let o = m.touch(a, 40, TouchPattern::Prefix, 2, &mut rng());
        assert!(o.faults == 40, "thrash should refault everything");
    }

    #[test]
    fn free_releases_frames() {
        let mut m = MemoryManager::new(100);
        let r = m.alloc(0, 80, false);
        m.touch(r, 80, TouchPattern::Prefix, 0, &mut rng());
        assert_eq!(m.resident_total(), 80);
        m.free(r);
        assert_eq!(m.resident_total(), 0);
        // Double free is a no-op.
        m.free(r);
        assert_eq!(m.resident_total(), 0);
    }

    #[test]
    fn free_owned_by_thread() {
        let mut m = MemoryManager::new(100);
        let r0 = m.alloc(7, 30, false);
        let r1 = m.alloc(7, 30, false);
        let r2 = m.alloc(8, 30, false);
        let mut g = rng();
        m.touch(r0, 30, TouchPattern::Prefix, 0, &mut g);
        m.touch(r1, 30, TouchPattern::Prefix, 0, &mut g);
        m.touch(r2, 30, TouchPattern::Prefix, 0, &mut g);
        m.free_owned_by(7);
        assert_eq!(m.resident_total(), 30);
        assert_eq!(m.resident_pages(r2), 30);
    }

    #[test]
    fn random_sample_touch_counts_are_consistent() {
        let mut m = MemoryManager::new(1000);
        let r = m.alloc(0, 500, true);
        let o = m.touch(r, 200, TouchPattern::RandomSample, 0, &mut rng());
        assert_eq!(o.hits + o.faults + o.zero_fills, 200);
        // Residency equals distinct pages claimed.
        assert_eq!(m.resident_pages(r), o.faults);
    }

    #[test]
    fn touch_count_clamped_to_region_size() {
        let mut m = MemoryManager::new(100);
        let r = m.alloc(0, 10, false);
        let o = m.touch(r, 1000, TouchPattern::Prefix, 0, &mut rng());
        assert_eq!(o.zero_fills, 10);
    }

    #[test]
    #[should_panic(expected = "freed region")]
    fn touch_after_free_panics() {
        let mut m = MemoryManager::new(10);
        let r = m.alloc(0, 5, false);
        m.free(r);
        m.touch(r, 5, TouchPattern::Prefix, 0, &mut rng());
    }

    #[test]
    fn second_chance_protects_hot_pages() {
        let mut m = MemoryManager::with_policy(100, EvictionPolicy::SecondChance);
        let mut g = rng();
        let hot = m.alloc(0, 40, false);
        let cold = m.alloc(1, 60, false);
        m.touch(hot, 40, TouchPattern::Prefix, 0, &mut g);
        m.touch(cold, 60, TouchPattern::Prefix, 1, &mut g);
        // Keep `hot` referenced, then demand 30 more pages via a third
        // region: every victim must come from `cold` (whose bits go stale).
        let extra = m.alloc(2, 30, false);
        for t in 2..8 {
            m.touch(hot, 40, TouchPattern::Prefix, t, &mut g);
            m.touch(extra, 5 * (t as u32 - 1), TouchPattern::Prefix, t, &mut g);
        }
        assert_eq!(m.resident_pages(hot), 40, "hot region fully resident");
        assert!(
            m.resident_pages(cold) < 60,
            "cold region paid: {}",
            m.resident_pages(cold)
        );
        assert!(m.resident_total() <= m.capacity());
    }

    #[test]
    fn second_chance_cross_region_fairness() {
        // Unlike region recency, second chance evicts a region's *stale
        // pages* even while other pages of the same region stay hot — as
        // long as the hot pages keep being referenced between sweeps (the
        // clock's steady state, which interleaved touches provide).
        let mut m = MemoryManager::with_policy(80, EvictionPolicy::SecondChance);
        let mut g = rng();
        let big = m.alloc(0, 80, false);
        m.touch(big, 80, TouchPattern::Prefix, 0, &mut g);
        let newcomer = m.alloc(1, 30, false);
        // The newcomer grows while the hot prefix keeps being used.
        for step in 0..6u32 {
            m.touch(big, 20, TouchPattern::Prefix, 2 * step as u64 + 1, &mut g);
            m.touch(newcomer, (step + 1) * 5, TouchPattern::Prefix, 2 * step as u64 + 2, &mut g);
        }
        assert_eq!(m.resident_pages(newcomer), 30);
        // Bring any transiently evicted hot pages back, then verify the
        // steady state: the hot prefix is resident, the stale tail paid.
        m.touch(big, 20, TouchPattern::Prefix, 100, &mut g);
        let o = m.touch(big, 20, TouchPattern::Prefix, 101, &mut g);
        assert_eq!(o.hits, 20, "hot prefix evicted: {o:?}");
        assert!(
            m.resident_pages(big) < 80,
            "the stale tail must have paid for the newcomer"
        );
    }

    #[test]
    fn second_chance_thrash_still_terminates() {
        let mut m = MemoryManager::with_policy(40, EvictionPolicy::SecondChance);
        let mut g = rng();
        let a = m.alloc(0, 40, false);
        let b = m.alloc(1, 40, false);
        for t in 0..10 {
            m.touch(a, 40, TouchPattern::Prefix, t * 2, &mut g);
            m.touch(b, 40, TouchPattern::Prefix, t * 2 + 1, &mut g);
            assert!(m.resident_total() <= 40);
        }
        assert!(m.stats().evictions > 100);
    }

    #[test]
    fn capacity_never_exceeded_property() {
        let mut m = MemoryManager::new(64);
        let mut g = rng();
        let regions: Vec<RegionId> = (0..4).map(|i| m.alloc(i, 50, i % 2 == 0)).collect();
        for step in 0..200u64 {
            let r = regions[(step % 4) as usize];
            let n = (g.below(50) + 1) as u32;
            let pat = if g.bernoulli(0.5) {
                TouchPattern::Prefix
            } else {
                TouchPattern::RandomSample
            };
            m.touch(r, n, pat, step, &mut g);
            assert!(m.resident_total() <= m.capacity());
            let sum: u32 = regions.iter().map(|&r| m.resident_pages(r)).sum();
            assert_eq!(sum, m.resident_total());
        }
    }
}
