//! A discrete-event machine simulator — the substrate standing in for the
//! paper's study machine (2.0 GHz P4, 512 MB RAM, 80 GB disk, Windows XP;
//! Figure 7).
//!
//! The controlled study measured user comfort while *resource exercisers*
//! contended with foreground applications on a real Windows host. To make
//! that experiment reproducible and deterministic we simulate the host:
//!
//! * **CPU** — a single core scheduled round-robin with a fixed quantum
//!   over equal-priority threads (the paper's exercisers run at the same
//!   priority as other threads, §2.2). This reproduces the paper's law
//!   that a busy thread competing with contention `c` runs at `1/(1+c)`
//!   of its standalone rate, including the quantum-granularity jitter
//!   that matters to a frame-rate-sensitive game.
//! * **Memory** — physical frames with per-region residency bitmaps and
//!   global LRU-ish (region recency + clock) eviction. Touching an
//!   evicted page costs a disk read through the shared disk queue, so
//!   memory pressure and disk contention interact, as on a real machine.
//! * **Disk** — a single-server FIFO queue with a seek + rotation +
//!   transfer service model. Competing I/O streams share bandwidth, so a
//!   foreground I/O-busy thread slows by `1/(1+c)` under disk contention
//!   `c`, as the paper's disk exerciser produces.
//!
//! Simulated programs implement the [`workload::Workload`] trait and
//! yield [`workload::Action`]s (compute, busy-wait until a wall-clock
//! instant, sleep, disk I/O, page touches). Both the foreground task
//! models (`uucs-workloads`) and the resource exercisers
//! (`uucs-exercisers`) are `Workload`s, exactly mirroring the paper's
//! "exercisers run at the same priority as other threads".
//!
//! Time is in integer microseconds. Everything is deterministic given the
//! machine seed.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod disk;
pub mod machine;
pub mod mem;
pub mod metrics;
pub mod workload;

pub use machine::{Machine, MachineConfig, Priority, ThreadId};
pub use metrics::{LatencySample, MachineMetrics, ThreadStats};
pub use workload::{Action, Ctx, RegionId, TouchPattern, Workload};

/// Simulated time in microseconds.
pub type SimTime = u64;

/// Microseconds per millisecond.
pub const MS: SimTime = 1_000;

/// Microseconds per second.
pub const SEC: SimTime = 1_000_000;

/// Converts seconds (f64) to simulated microseconds, rounding.
pub fn secs(s: f64) -> SimTime {
    (s * SEC as f64).round() as SimTime
}

/// Converts simulated microseconds to seconds (f64).
pub fn to_secs(t: SimTime) -> f64 {
    t as f64 / SEC as f64
}
