//! The simulated machine: threads, round-robin CPU scheduling, and the
//! glue between workloads, memory, and disk.

use crate::disk::{Disk, DiskConfig, Request};
use crate::mem::{EvictionPolicy, MemStats, MemoryManager};
use crate::metrics::{MachineMetrics, ThreadStats};
use crate::workload::{Action, Ctx, TouchPattern, Workload};
use crate::SimTime;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use uucs_stats::Pcg64;
use uucs_telemetry::{clock, metrics};

/// Thread identifier (index into the machine's thread table).
pub type ThreadId = usize;

/// Machine parameters. Defaults match the study machine of Figure 7:
/// a single 2.0 GHz CPU, 512 MB of RAM (131072 × 4 KB pages) and a
/// desktop disk, with a 10 ms scheduling quantum.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Scheduler quantum, µs.
    pub quantum_us: SimTime,
    /// Physical memory size in pages.
    pub mem_pages: u32,
    /// Page size in bytes.
    pub page_size: u32,
    /// CPU cost of zero-filling a fresh anonymous page, µs.
    pub zero_fill_us_per_page: SimTime,
    /// Resident pages touchable per µs of CPU.
    pub touch_pages_per_us: u32,
    /// Page-in operations batched per disk request, so a large fault run
    /// does not monopolize the FIFO disk.
    pub fault_chunk: u32,
    /// How memory victims are chosen under pressure.
    pub eviction: EvictionPolicy,
    /// Disk timing.
    pub disk: DiskConfig,
    /// Relative CPU speed: service demands are expressed in µs on the
    /// reference machine; a machine with `speed = 2.0` executes them in
    /// half the wall time. Supports the paper's question 6 (dependence on
    /// raw host power), studied Internet-wide.
    pub speed: f64,
    /// Seed for all per-thread RNG streams.
    pub seed: u64,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            quantum_us: 10_000,
            mem_pages: 131_072,
            page_size: 4096,
            zero_fill_us_per_page: 1,
            touch_pages_per_us: 16,
            fault_chunk: 8,
            eviction: EvictionPolicy::default(),
            disk: DiskConfig::default(),
            speed: 1.0,
            seed: 0x5eed,
        }
    }
}

/// Scheduling priority class. The paper's §1 contrasts systems that
/// "run at a very low priority" with its own equal-priority exercisers;
/// the simulator supports both so the difference can be measured (see
/// the `ablations` bench).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// Normal, timeshared with every other normal thread.
    #[default]
    Normal,
    /// Strictly lower: runs only when no normal thread is runnable, and
    /// is preempted the moment one becomes runnable.
    Low,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Needs `next_action` when scheduled; queued in the run queue.
    Fetch,
    /// Computing; `remaining` is reference-µs of service left.
    Compute { remaining: SimTime },
    /// Spinning until an absolute time.
    Busy { until: SimTime },
    /// Blocked until a wake event.
    Sleeping,
    /// Blocked on disk completion.
    BlockedDisk,
    /// Finished.
    Exited,
}

/// Disk work still to be submitted for a thread's current blocking action.
/// Requests are issued in chunks so competing streams interleave per
/// chunk in the FIFO queue, as write-through I/O does on a real disk.
#[derive(Debug, Clone, Copy)]
struct PendingIo {
    remaining_ops: u32,
    chunk: u32,
    bytes_per_op: u32,
    synced: bool,
    /// Whether completed ops count as page faults in the thread stats.
    faults: bool,
}

struct Thread {
    name: String,
    workload: Option<Box<dyn Workload>>,
    state: State,
    priority: Priority,
    stats: ThreadStats,
    rng: Pcg64,
    /// Disk work still to submit for the current blocking action.
    pending_io: Option<PendingIo>,
    /// Guard against workloads that never advance time.
    zero_time_fetches: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    Wake(ThreadId),
    DiskDone,
}

/// The simulated machine.
///
/// ```
/// use uucs_sim::{workload::FnWorkload, Action, Machine, SEC};
/// let mut m = Machine::study_machine(1);
/// let t = m.spawn(
///     "busy",
///     Box::new(FnWorkload::new("busy", |_| Action::Compute { us: 1_000 })),
/// );
/// m.run_until(2 * SEC);
/// assert_eq!(m.thread_stats(t).cpu_us, 2 * SEC); // alone: all the CPU
/// ```
pub struct Machine {
    cfg: MachineConfig,
    now: SimTime,
    threads: Vec<Thread>,
    run_queue: VecDeque<ThreadId>,
    low_queue: VecDeque<ThreadId>,
    current: Option<ThreadId>,
    quantum_end: SimTime,
    events: BinaryHeap<Reverse<(SimTime, u64, Event)>>,
    seq: u64,
    mem: MemoryManager,
    disk: Disk,
    metrics: MachineMetrics,
    rng_root: Pcg64,
    /// Events popped off the heap over this machine's life; flushed to
    /// the process-global `sim.events.dispatched` counter on drop so the
    /// hot loop only bumps a plain local integer.
    events_dispatched: u64,
    /// When set, every advance of `now` is mirrored into the telemetry
    /// virtual clock (`clock::set_virtual_ns`), so spans and flight
    /// events recorded during a simulation carry simulated timestamps.
    drive_clock: bool,
}

impl Machine {
    /// Creates a machine.
    pub fn new(cfg: MachineConfig) -> Self {
        assert!(cfg.quantum_us > 0 && cfg.speed > 0.0 && cfg.fault_chunk > 0);
        let mem = MemoryManager::with_policy(cfg.mem_pages, cfg.eviction);
        let disk = Disk::new(cfg.disk);
        let rng_root = Pcg64::new(cfg.seed);
        Machine {
            cfg,
            now: 0,
            threads: Vec::new(),
            run_queue: VecDeque::new(),
            low_queue: VecDeque::new(),
            current: None,
            quantum_end: 0,
            events: BinaryHeap::new(),
            seq: 0,
            mem,
            disk,
            metrics: MachineMetrics::default(),
            rng_root,
            events_dispatched: 0,
            drive_clock: false,
        }
    }

    /// Mirrors simulated time into the telemetry virtual clock while
    /// this machine runs. Only meaningful when the telemetry clock is in
    /// virtual mode (`uucs_telemetry::clock::install_virtual`); in real
    /// mode the mirroring is a no-op, so enabling this unconditionally
    /// is safe.
    pub fn drive_telemetry_clock(&mut self, enable: bool) {
        self.drive_clock = enable;
    }

    /// Creates a machine with the Figure 7 configuration and a seed.
    pub fn study_machine(seed: u64) -> Self {
        Machine::new(MachineConfig {
            seed,
            ..MachineConfig::default()
        })
    }

    /// Current simulated time, µs.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Machine-wide metrics.
    pub fn metrics(&self) -> &MachineMetrics {
        &self.metrics
    }

    /// Memory statistics.
    pub fn mem_stats(&self) -> MemStats {
        self.mem.stats()
    }

    /// Resident frame count.
    pub fn mem_resident(&self) -> u32 {
        self.mem.resident_total()
    }

    /// Disk statistics.
    pub fn disk_stats(&self) -> crate::disk::DiskStats {
        self.disk.stats()
    }

    /// Per-thread statistics.
    pub fn thread_stats(&self, tid: ThreadId) -> &ThreadStats {
        &self.threads[tid].stats
    }

    /// Thread name.
    pub fn thread_name(&self, tid: ThreadId) -> &str {
        &self.threads[tid].name
    }

    /// True until the thread exits or is killed.
    pub fn is_alive(&self, tid: ThreadId) -> bool {
        self.threads[tid].state != State::Exited
    }

    /// Spawns a workload as a new thread, runnable immediately, at
    /// normal priority.
    pub fn spawn(&mut self, name: impl Into<String>, workload: Box<dyn Workload>) -> ThreadId {
        self.spawn_with_priority(name, workload, Priority::Normal)
    }

    /// Spawns a workload at an explicit priority class.
    pub fn spawn_with_priority(
        &mut self,
        name: impl Into<String>,
        workload: Box<dyn Workload>,
        priority: Priority,
    ) -> ThreadId {
        let tid = self.threads.len();
        let rng = self.rng_root.split(tid as u64 + 1);
        self.threads.push(Thread {
            name: name.into(),
            workload: Some(workload),
            state: State::Fetch,
            priority,
            stats: ThreadStats::default(),
            rng,
            pending_io: None,
            zero_time_fetches: 0,
        });
        self.enqueue(tid);
        tid
    }

    /// Puts a runnable thread on its class queue; a newly runnable
    /// normal thread preempts a running low-priority thread immediately.
    fn enqueue(&mut self, tid: ThreadId) {
        match self.threads[tid].priority {
            Priority::Normal => {
                self.run_queue.push_back(tid);
                if let Some(cur) = self.current {
                    if self.threads[cur].priority == Priority::Low {
                        self.current = None;
                        self.low_queue.push_front(cur);
                    }
                }
            }
            Priority::Low => self.low_queue.push_back(tid),
        }
    }

    /// Kills a thread immediately, releasing its memory (the UUCS client
    /// stops exercisers and releases their resources the instant the user
    /// expresses discomfort, §2.3). An in-flight disk request completes
    /// harmlessly.
    pub fn kill(&mut self, tid: ThreadId) {
        if self.threads[tid].state == State::Exited {
            return;
        }
        self.threads[tid].state = State::Exited;
        self.threads[tid].pending_io = None;
        self.run_queue.retain(|&t| t != tid);
        self.low_queue.retain(|&t| t != tid);
        if self.current == Some(tid) {
            self.current = None;
        }
        self.mem.free_owned_by(tid);
    }

    fn schedule_event(&mut self, at: SimTime, ev: Event) {
        self.seq += 1;
        self.events.push(Reverse((at, self.seq, ev)));
    }

    fn next_event_time(&self) -> Option<SimTime> {
        self.events.peek().map(|Reverse((t, _, _))| *t)
    }

    /// Runs the machine until simulated time `t_end`.
    pub fn run_until(&mut self, t_end: SimTime) {
        assert!(t_end >= self.now, "cannot run backwards");
        loop {
            self.deliver_due_events();
            if self.drive_clock {
                clock::set_virtual_ns(self.now.saturating_mul(1000));
            }
            if self.now >= t_end {
                break;
            }
            // Ensure someone is on the CPU: normal class first, then the
            // low class, else idle.
            if self.current.is_none() {
                match self
                    .run_queue
                    .pop_front()
                    .or_else(|| self.low_queue.pop_front())
                {
                    Some(tid) => self.dispatch(tid),
                    None => {
                        // Idle: jump to the next event (or the horizon).
                        let next = self.next_event_time().unwrap_or(t_end).min(t_end);
                        self.now = next;
                        continue;
                    }
                }
            }
            let tid = self.current.expect("dispatched");
            let mut slice_end = self.quantum_end.min(t_end);
            if let Some(te) = self.next_event_time() {
                slice_end = slice_end.min(te);
            }
            match self.threads[tid].state {
                State::Fetch => self.fetch_and_apply(tid),
                State::Compute { remaining } => {
                    let wall_avail = slice_end - self.now;
                    let work_possible = (wall_avail as f64 * self.cfg.speed) as SimTime;
                    if work_possible >= remaining {
                        let wall_used =
                            ((remaining as f64 / self.cfg.speed).ceil() as SimTime).min(wall_avail);
                        self.advance_cpu(tid, wall_used);
                        self.threads[tid].state = State::Fetch;
                        self.threads[tid].zero_time_fetches = 0;
                    } else {
                        self.advance_cpu(tid, wall_avail);
                        self.threads[tid].state = State::Compute {
                            remaining: remaining - work_possible,
                        };
                        self.maybe_preempt(tid);
                    }
                }
                State::Busy { until } => {
                    if until <= self.now {
                        self.threads[tid].state = State::Fetch;
                    } else {
                        let run_to = slice_end.min(until);
                        self.advance_cpu(tid, run_to - self.now);
                        if self.now >= until {
                            self.threads[tid].state = State::Fetch;
                            self.threads[tid].zero_time_fetches = 0;
                        } else {
                            self.maybe_preempt(tid);
                        }
                    }
                }
                other => unreachable!("current thread in non-runnable state {other:?}"),
            }
        }
    }

    /// Convenience: run for `dt` more microseconds.
    pub fn run_for(&mut self, dt: SimTime) {
        let t = self.now + dt;
        self.run_until(t);
    }

    fn dispatch(&mut self, tid: ThreadId) {
        debug_assert!(matches!(
            self.threads[tid].state,
            State::Fetch | State::Compute { .. } | State::Busy { .. }
        ));
        self.current = Some(tid);
        self.quantum_end = self.now + self.cfg.quantum_us;
        self.threads[tid].stats.dispatches += 1;
        self.metrics.context_switches += 1;
        self.metrics.runq_samples += 1;
        self.metrics.runq_sum += self.run_queue.len() as u64 + 1;
    }

    fn maybe_preempt(&mut self, tid: ThreadId) {
        if self.now >= self.quantum_end {
            self.current = None;
            match self.threads[tid].priority {
                Priority::Normal => self.run_queue.push_back(tid),
                Priority::Low => self.low_queue.push_back(tid),
            }
        }
    }

    fn advance_cpu(&mut self, tid: ThreadId, wall: SimTime) {
        self.now += wall;
        self.threads[tid].stats.cpu_us += wall;
        self.metrics.cpu_busy_us += wall;
    }

    fn deliver_due_events(&mut self) {
        while let Some(Reverse((t, _, _))) = self.events.peek() {
            if *t > self.now {
                break;
            }
            let Reverse((t, _, ev)) = self.events.pop().unwrap();
            debug_assert!(t <= self.now);
            self.events_dispatched += 1;
            match ev {
                Event::Wake(tid) => {
                    if self.threads[tid].state == State::Sleeping {
                        self.threads[tid].state = State::Fetch;
                        self.enqueue(tid);
                    }
                }
                Event::DiskDone => {
                    let (req, next_done) = self.disk.complete(t.max(self.now).min(t));
                    if let Some(d) = next_done {
                        self.schedule_event(d, Event::DiskDone);
                    }
                    self.finish_disk_request(req);
                }
            }
        }
    }

    fn finish_disk_request(&mut self, req: Request) {
        let tid = req.thread;
        if self.threads[tid].state == State::Exited {
            return; // killed while the request was in flight
        }
        self.threads[tid].stats.disk_ops += req.ops as u64;
        self.threads[tid].stats.disk_bytes += req.ops as u64 * req.bytes_per_op as u64;
        if self.threads[tid].pending_io.is_some() {
            self.submit_io_chunk(tid);
        } else {
            debug_assert_eq!(self.threads[tid].state, State::BlockedDisk);
            self.threads[tid].state = State::Fetch;
            self.enqueue(tid);
        }
    }

    fn submit_request(&mut self, req: Request) {
        if let Some(done) = self.disk.submit(req, self.now) {
            self.schedule_event(done, Event::DiskDone);
        }
    }

    /// Submits the next chunk of a thread's pending I/O and clears the
    /// pending record when the last chunk goes out.
    fn submit_io_chunk(&mut self, tid: ThreadId) {
        let mut io = self.threads[tid].pending_io.take().expect("pending io");
        let chunk = io.remaining_ops.min(io.chunk).max(1);
        io.remaining_ops -= chunk;
        if io.faults {
            self.threads[tid].stats.faults += chunk as u64;
        }
        let req = Request {
            thread: tid,
            ops: chunk,
            bytes_per_op: io.bytes_per_op,
            synced: io.synced,
        };
        if io.remaining_ops > 0 {
            self.threads[tid].pending_io = Some(io);
        }
        self.submit_request(req);
    }

    /// Begins a blocking disk transfer for `tid`.
    fn begin_io(&mut self, tid: ThreadId, io: PendingIo) {
        debug_assert!(io.remaining_ops > 0);
        self.threads[tid].state = State::BlockedDisk;
        self.threads[tid].zero_time_fetches = 0;
        if self.current == Some(tid) {
            self.current = None;
        }
        self.threads[tid].pending_io = Some(io);
        self.submit_io_chunk(tid);
    }

    fn fetch_and_apply(&mut self, tid: ThreadId) {
        let th = &mut self.threads[tid];
        th.zero_time_fetches += 1;
        assert!(
            th.zero_time_fetches < 10_000,
            "workload {:?} (thread {tid}) made 10000 consecutive zero-time actions",
            th.name
        );
        let mut wl = th.workload.take().expect("workload present");
        let action = {
            let th = &mut self.threads[tid];
            let mut ctx = Ctx {
                now: self.now,
                rng: &mut th.rng,
                mem: &mut self.mem,
                latencies: &mut th.stats.latencies,
                thread: tid,
            };
            wl.next_action(&mut ctx)
        };
        self.threads[tid].workload = Some(wl);
        match action {
            Action::Compute { us } => {
                self.threads[tid].state = State::Compute {
                    remaining: us.max(1),
                };
                self.threads[tid].zero_time_fetches = 0;
            }
            Action::BusyUntil { until } => {
                self.threads[tid].state = State::Busy { until };
            }
            Action::SleepUntil { until } => {
                let wake = until.max(self.now);
                self.threads[tid].state = State::Sleeping;
                self.schedule_event(wake, Event::Wake(tid));
                self.current = None;
            }
            Action::DiskIo { ops, bytes_per_op } => {
                // Explicit I/O interleaves per op: each random synced
                // write re-queues behind competitors.
                self.begin_io(
                    tid,
                    PendingIo {
                        remaining_ops: ops.max(1),
                        chunk: 1,
                        bytes_per_op,
                        synced: true,
                        faults: false,
                    },
                );
            }
            Action::Touch {
                region,
                count,
                pattern,
            } => self.apply_touch(tid, region, count, pattern),
            Action::Exit => {
                self.kill(tid);
            }
        }
    }

    fn apply_touch(
        &mut self,
        tid: ThreadId,
        region: crate::workload::RegionId,
        count: u32,
        pattern: TouchPattern,
    ) {
        let outcome = {
            let th = &mut self.threads[tid];
            self.mem.touch(region, count, pattern, self.now, &mut th.rng)
        };
        self.threads[tid].stats.zero_fills += outcome.zero_fills as u64;
        if outcome.faults > 0 {
            // Faults dominate: service them through the disk, chunked so
            // other requests can interleave.
            let chunk = self.cfg.fault_chunk;
            let page = self.cfg.page_size;
            self.begin_io(
                tid,
                PendingIo {
                    remaining_ops: outcome.faults,
                    chunk,
                    bytes_per_op: page,
                    synced: false,
                    faults: true,
                },
            );
        } else {
            let cpu = outcome.hits as SimTime / self.cfg.touch_pages_per_us.max(1) as SimTime
                + outcome.zero_fills as SimTime * self.cfg.zero_fill_us_per_page;
            self.threads[tid].state = State::Compute {
                remaining: cpu.max(1),
            };
            self.threads[tid].zero_time_fetches = 0;
        }
    }
}

impl Drop for Machine {
    fn drop(&mut self) {
        // One registry touch per machine lifetime, not per event.
        if self.events_dispatched > 0 {
            metrics::counter("sim.events.dispatched").add(self.events_dispatched);
        }
        metrics::gauge("sim.events.queue_depth").set(self.events.len() as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::FnWorkload;
    use crate::{MS, SEC};

    /// A thread that computes in bursts forever and records nothing.
    fn busy_forever() -> Box<dyn Workload> {
        Box::new(FnWorkload::new("busy", |_ctx| Action::Compute { us: 1000 }))
    }

    #[test]
    fn drop_flushes_event_telemetry_and_clock_follows_sim_time() {
        let before = metrics::counter("sim.events.dispatched").get();
        clock::install_virtual(0);
        {
            let mut m = Machine::study_machine(9);
            m.drive_telemetry_clock(true);
            // A sleeper generates a Wake event per nap.
            m.spawn(
                "napper",
                Box::new(FnWorkload::new("napper", |ctx| Action::SleepUntil {
                    until: ctx.now + 10 * MS,
                })),
            );
            m.run_until(SEC);
            // Simulated µs mirror into virtual ns while the machine runs.
            assert_eq!(clock::now_ns(), SEC * 1000);
        }
        // The machine flushed its event tally on drop. Other tests in
        // this binary drop machines concurrently, so assert the delta as
        // a floor rather than an exact count: ~100 naps → ≥50 wakes.
        let after = metrics::counter("sim.events.dispatched").get();
        assert!(
            after >= before + 50,
            "expected ≥50 dispatched events flushed, got {}",
            after - before
        );
        clock::uninstall_virtual();
    }

    #[test]
    fn single_compute_thread_finishes_on_time() {
        let mut m = Machine::study_machine(1);
        let done = std::rc::Rc::new(std::cell::Cell::new(0u64));
        let d2 = done.clone();
        let mut issued = false;
        m.spawn(
            "one-shot",
            Box::new(FnWorkload::new("one-shot", move |ctx| {
                if !issued {
                    issued = true;
                    Action::Compute { us: 50_000 }
                } else {
                    d2.set(ctx.now);
                    Action::Exit
                }
            })),
        );
        m.run_until(SEC);
        // Alone on the machine: 50 ms of service takes 50 ms of wall time.
        assert_eq!(done.get(), 50_000);
    }

    #[test]
    fn two_busy_threads_share_equally() {
        let mut m = Machine::study_machine(2);
        let a = m.spawn("a", busy_forever());
        let b = m.spawn("b", busy_forever());
        m.run_until(10 * SEC);
        let ca = m.thread_stats(a).cpu_us as f64;
        let cb = m.thread_stats(b).cpu_us as f64;
        assert!((ca / (ca + cb) - 0.5).abs() < 0.01, "{ca} vs {cb}");
        // CPU is saturated.
        assert!(m.metrics().cpu_utilization(m.now()) > 0.999);
    }

    #[test]
    fn one_against_k_gets_inverse_share() {
        // The paper's law: against contention c (= k busy threads) a busy
        // thread runs at 1/(1+c) of its standalone rate (§2.2).
        for k in 1..=9usize {
            let mut m = Machine::study_machine(3);
            let probe = m.spawn("probe", busy_forever());
            for i in 0..k {
                m.spawn(format!("bg{i}"), busy_forever());
            }
            m.run_until(20 * SEC);
            let share = m.thread_stats(probe).cpu_us as f64 / m.now() as f64;
            let expect = 1.0 / (1.0 + k as f64);
            assert!(
                (share - expect).abs() < 0.02,
                "k={k}: share {share} expected {expect}"
            );
        }
    }

    #[test]
    fn sleeping_thread_consumes_nothing_and_wakes_on_time() {
        let mut m = Machine::study_machine(4);
        let woke = std::rc::Rc::new(std::cell::Cell::new(0u64));
        let w2 = woke.clone();
        let mut phase = 0;
        let t = m.spawn(
            "sleeper",
            Box::new(FnWorkload::new("sleeper", move |ctx| {
                phase += 1;
                match phase {
                    1 => Action::SleepUntil { until: 300 * MS },
                    _ => {
                        w2.set(ctx.now);
                        Action::Exit
                    }
                }
            })),
        );
        m.spawn("noise", busy_forever());
        m.run_until(SEC);
        assert_eq!(woke.get(), 300 * MS);
        assert!(m.thread_stats(t).cpu_us < MS);
    }

    #[test]
    fn busy_until_spins_for_wall_time() {
        let mut m = Machine::study_machine(5);
        let mut phase = 0;
        let t = m.spawn(
            "spinner",
            Box::new(FnWorkload::new("spinner", move |_ctx| {
                phase += 1;
                match phase {
                    1 => Action::BusyUntil { until: 100 * MS },
                    _ => Action::Exit,
                }
            })),
        );
        m.run_until(SEC);
        // Alone, the spinner burns exactly the wall time.
        assert_eq!(m.thread_stats(t).cpu_us, 100 * MS);
        assert!(!m.is_alive(t));
    }

    #[test]
    fn busy_until_with_competitor_still_ends_near_target() {
        let mut m = Machine::study_machine(6);
        let mut phase = 0;
        let end = std::rc::Rc::new(std::cell::Cell::new(0u64));
        let e2 = end.clone();
        let t = m.spawn(
            "spinner",
            Box::new(FnWorkload::new("spinner", move |ctx| {
                phase += 1;
                match phase {
                    1 => Action::BusyUntil { until: 100 * MS },
                    _ => {
                        e2.set(ctx.now);
                        Action::Exit
                    }
                }
            })),
        );
        m.spawn("noise", busy_forever());
        m.run_until(SEC);
        // The spin ends within one quantum of the wall-clock target.
        let slack = m.config().quantum_us;
        assert!(end.get() >= 100 * MS && end.get() <= 100 * MS + slack);
        // But it only got ~half the CPU.
        let cpu = m.thread_stats(t).cpu_us as f64;
        assert!((cpu / (100.0 * MS as f64) - 0.5).abs() < 0.1, "cpu {cpu}");
    }

    #[test]
    fn disk_io_blocks_for_service_time() {
        let mut m = Machine::study_machine(7);
        let done = std::rc::Rc::new(std::cell::Cell::new(0u64));
        let d2 = done.clone();
        let mut phase = 0;
        m.spawn(
            "io",
            Box::new(FnWorkload::new("io", move |ctx| {
                phase += 1;
                match phase {
                    1 => Action::DiskIo {
                        ops: 1,
                        bytes_per_op: 4096,
                    },
                    _ => {
                        d2.set(ctx.now);
                        Action::Exit
                    }
                }
            })),
        );
        m.run_until(SEC);
        let expect = m.config().disk.service_us(1, 4096, true);
        assert_eq!(done.get(), expect);
    }

    #[test]
    fn disk_shared_fifo_slows_competitors() {
        // Foreground I/O against k competing I/O threads completes ~1/(1+k)
        // as many ops.
        let mk_io_loop = || {
            Box::new(FnWorkload::new("io-loop", |_ctx| Action::DiskIo {
                ops: 1,
                bytes_per_op: 65536,
            })) as Box<dyn Workload>
        };
        let solo_ops = {
            let mut m = Machine::study_machine(8);
            let t = m.spawn("fg", mk_io_loop());
            m.run_until(30 * SEC);
            m.thread_stats(t).disk_ops
        };
        for k in [1usize, 3] {
            let mut m = Machine::study_machine(8);
            let t = m.spawn("fg", mk_io_loop());
            for i in 0..k {
                m.spawn(format!("bg{i}"), mk_io_loop());
            }
            m.run_until(30 * SEC);
            let ops = m.thread_stats(t).disk_ops;
            let ratio = ops as f64 / solo_ops as f64;
            let expect = 1.0 / (1.0 + k as f64);
            assert!(
                (ratio - expect).abs() < 0.1,
                "k={k}: ratio {ratio} expected {expect}"
            );
        }
    }

    #[test]
    fn touch_resident_is_cheap_faults_hit_disk() {
        let mut m = Machine::study_machine(9);
        let mut phase = 0;
        let mut region = None;
        let t = m.spawn(
            "toucher",
            Box::new(FnWorkload::new("toucher", move |ctx| {
                phase += 1;
                match phase {
                    1 => {
                        region = Some(ctx.alloc_region(1000, true));
                        Action::Touch {
                            region: region.unwrap(),
                            count: 1000,
                            pattern: TouchPattern::Prefix,
                        }
                    }
                    2 => Action::Touch {
                        region: region.unwrap(),
                        count: 1000,
                        pattern: TouchPattern::Prefix,
                    },
                    _ => Action::Exit,
                }
            })),
        );
        m.run_until(60 * SEC);
        let st = m.thread_stats(t);
        // First touch faulted all 1000 pages in from disk.
        assert_eq!(st.faults, 1000);
        assert_eq!(st.disk_ops, 1000);
        // Second touch was all hits: only trivial CPU.
        assert!(st.cpu_us < 10 * MS);
        assert_eq!(m.mem_stats().faults, 1000);
    }

    #[test]
    fn kill_releases_memory_and_stops_thread() {
        let mut m = Machine::study_machine(10);
        let mut inited = false;
        let t = m.spawn(
            "hog",
            Box::new(FnWorkload::new("hog", move |ctx| {
                if !inited {
                    inited = true;
                    let r = ctx.alloc_region(5000, false);
                    Action::Touch {
                        region: r,
                        count: 5000,
                        pattern: TouchPattern::Prefix,
                    }
                } else {
                    Action::Compute { us: 1000 }
                }
            })),
        );
        m.run_until(SEC);
        assert_eq!(m.mem_resident(), 5000);
        m.kill(t);
        assert_eq!(m.mem_resident(), 0);
        assert!(!m.is_alive(t));
        let cpu_at_kill = m.thread_stats(t).cpu_us;
        m.run_until(2 * SEC);
        assert_eq!(m.thread_stats(t).cpu_us, cpu_at_kill);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = |seed| {
            let mut m = Machine::study_machine(seed);
            let a = m.spawn("a", busy_forever());
            m.spawn(
                "io",
                Box::new(FnWorkload::new("io", |ctx| {
                    if ctx.rng.bernoulli(0.3) {
                        Action::DiskIo {
                            ops: 1,
                            bytes_per_op: 8192,
                        }
                    } else {
                        Action::Compute { us: 500 }
                    }
                })),
            );
            m.run_until(5 * SEC);
            (m.thread_stats(a).cpu_us, m.disk_stats().ops, m.metrics().context_switches)
        };
        assert_eq!(run(77), run(77));
        assert_ne!(run(77), run(78));
    }

    #[test]
    fn speed_factor_scales_service() {
        let mut m = Machine::new(MachineConfig {
            speed: 2.0,
            ..MachineConfig::default()
        });
        let done = std::rc::Rc::new(std::cell::Cell::new(0u64));
        let d2 = done.clone();
        let mut issued = false;
        m.spawn(
            "fast",
            Box::new(FnWorkload::new("fast", move |ctx| {
                if !issued {
                    issued = true;
                    Action::Compute { us: 100_000 }
                } else {
                    d2.set(ctx.now);
                    Action::Exit
                }
            })),
        );
        m.run_until(SEC);
        // 100 ms of reference service at 2x speed = 50 ms wall.
        assert!((done.get() as i64 - 50_000).abs() <= 1, "{}", done.get());
    }

    #[test]
    fn latency_recording_via_ctx() {
        let mut m = Machine::study_machine(11);
        let mut phase = 0;
        let t = m.spawn(
            "rec",
            Box::new(FnWorkload::new("rec", move |ctx| {
                phase += 1;
                match phase {
                    1 => Action::Compute { us: 5000 },
                    2 => {
                        ctx.record_latency("op", ctx.now);
                        Action::Exit
                    }
                    _ => unreachable!(),
                }
            })),
        );
        m.run_until(SEC);
        assert_eq!(m.thread_stats(t).latency_count("op"), 1);
        assert_eq!(m.thread_stats(t).latencies[0].latency_us, 5000);
    }

    #[test]
    fn idle_machine_jumps_time() {
        let mut m = Machine::study_machine(12);
        m.run_until(42 * SEC);
        assert_eq!(m.now(), 42 * SEC);
        assert_eq!(m.metrics().cpu_busy_us, 0);
    }

    #[test]
    fn low_priority_thread_runs_only_in_gaps() {
        let mut m = Machine::study_machine(20);
        // A normal thread busy 50% of the time (100 ms on, 100 ms off).
        let mut busy = true;
        m.spawn(
            "fg",
            Box::new(FnWorkload::new("fg", move |ctx| {
                busy = !busy;
                if busy {
                    Action::Compute { us: 100_000 }
                } else {
                    Action::SleepUntil {
                        until: ctx.now + 100_000,
                    }
                }
            })),
        );
        let low = m.spawn_with_priority("bg", busy_forever(), Priority::Low);
        m.run_until(10 * SEC);
        let share = m.thread_stats(low).cpu_us as f64 / m.now() as f64;
        // The low thread soaks up almost exactly the idle half.
        assert!((share - 0.5).abs() < 0.03, "share {share}");
        // And the machine is fully utilized.
        assert!(m.metrics().cpu_utilization(m.now()) > 0.99);
    }

    #[test]
    fn low_priority_never_delays_normal_threads() {
        // Against a fully busy normal thread, a low thread gets nothing.
        let mut m = Machine::study_machine(21);
        let fg = m.spawn("fg", busy_forever());
        let low = m.spawn_with_priority("bg", busy_forever(), Priority::Low);
        m.run_until(5 * SEC);
        assert_eq!(m.thread_stats(low).cpu_us, 0);
        assert_eq!(m.thread_stats(fg).cpu_us, 5 * SEC);
    }

    #[test]
    fn normal_wake_preempts_low_immediately() {
        let mut m = Machine::study_machine(22);
        // Normal thread: sleep 50 ms, then need 10 ms of CPU, recording
        // the response latency.
        let mut phase = 0;
        let mut slept_at = 0;
        let fg = m.spawn(
            "fg",
            Box::new(FnWorkload::new("fg", move |ctx| {
                phase += 1;
                match phase % 3 {
                    1 => {
                        slept_at = ctx.now + 50_000;
                        Action::SleepUntil { until: slept_at }
                    }
                    2 => Action::Compute { us: 10_000 },
                    _ => {
                        ctx.record_latency("resp", ctx.now - slept_at);
                        Action::Compute { us: 1 }
                    }
                }
            })),
        );
        m.spawn_with_priority("bg", busy_forever(), Priority::Low);
        m.run_until(5 * SEC);
        // With preemptive priorities, response time is the service time,
        // not service + a leftover background quantum.
        let mean = m.thread_stats(fg).mean_latency("resp").unwrap();
        assert!(
            (mean - 10_000.0).abs() < 200.0,
            "mean response {mean} (low-priority thread should not delay it)"
        );
    }

    #[test]
    fn two_low_threads_share_the_gaps() {
        let mut m = Machine::study_machine(23);
        let a = m.spawn_with_priority("a", busy_forever(), Priority::Low);
        let b = m.spawn_with_priority("b", busy_forever(), Priority::Low);
        m.run_until(10 * SEC);
        let ca = m.thread_stats(a).cpu_us as f64;
        let cb = m.thread_stats(b).cpu_us as f64;
        assert!((ca / (ca + cb) - 0.5).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "zero-time actions")]
    fn runaway_zero_time_workload_detected() {
        let mut m = Machine::study_machine(13);
        m.spawn(
            "bad",
            Box::new(FnWorkload::new("bad", |ctx| Action::BusyUntil {
                until: ctx.now, // never advances
            })),
        );
        m.run_until(SEC);
    }
}
