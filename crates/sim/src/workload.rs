//! The interface simulated programs implement.
//!
//! A [`Workload`] is driven pull-style: whenever its thread finishes the
//! previous action, the machine asks for the next one. Foreground task
//! models, resource exercisers, and synthetic probes are all `Workload`s
//! scheduled at equal priority, as in the paper (§2.2).

use crate::SimTime;
use uucs_stats::Pcg64;

/// Identifier of an allocated memory region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegionId(pub(crate) usize);

/// How a [`Action::Touch`] selects pages within a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TouchPattern {
    /// Touch the first `count` pages of the region — the memory
    /// exerciser's working-set inflation (it touches "the fraction
    /// corresponding to the contention level", §2.2).
    Prefix,
    /// Touch `count` pages sampled uniformly from the region — models the
    /// locality of a foreground application revisiting its working set.
    RandomSample,
}

/// The next thing a thread wants to do.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Action {
    /// Consume `us` microseconds of CPU *service* (takes longer on the
    /// wall clock under contention).
    Compute {
        /// CPU service demand in microseconds at full speed.
        us: SimTime,
    },
    /// Spin (stay runnable, consuming CPU) until the wall clock reaches
    /// `until`. This is the calibrated busy-wait loop of the paper's CPU
    /// exerciser: it burns whatever CPU the scheduler grants until the
    /// subinterval ends.
    BusyUntil {
        /// Absolute simulated time to spin until.
        until: SimTime,
    },
    /// Sleep (block) until the given absolute time — `::Sleep` in the
    /// paper's exerciser loop.
    SleepUntil {
        /// Absolute simulated time to wake at.
        until: SimTime,
    },
    /// Perform disk I/O: `ops` random-access operations of `bytes_per_op`
    /// bytes each, write-through/synced (the paper's disk exerciser does a
    /// random seek followed by a synced write, §2.2). The thread blocks
    /// until the transfer completes.
    DiskIo {
        /// Number of random-access operations.
        ops: u32,
        /// Payload bytes per operation.
        bytes_per_op: u32,
    },
    /// Touch `count` pages of `region` with the given pattern. Resident
    /// pages cost a trivial amount of CPU; evicted or never-loaded pages
    /// of a file-backed region fault and cost disk reads. The thread
    /// blocks until all faults are serviced.
    Touch {
        /// Which region to touch.
        region: RegionId,
        /// How many pages.
        count: u32,
        /// Page selection pattern.
        pattern: TouchPattern,
    },
    /// The thread is finished and will never run again.
    Exit,
}

/// Context handed to a workload when the machine asks for its next action.
///
/// Provides the clock, a per-thread deterministic RNG, memory-region
/// management, and latency recording (the monitoring data the UUCS client
/// stores with each testcase run, §2.3).
pub struct Ctx<'a> {
    /// Current simulated time (µs).
    pub now: SimTime,
    /// Per-thread deterministic RNG.
    pub rng: &'a mut Pcg64,
    pub(crate) mem: &'a mut crate::mem::MemoryManager,
    pub(crate) latencies: &'a mut Vec<crate::metrics::LatencySample>,
    pub(crate) thread: crate::ThreadId,
}

impl Ctx<'_> {
    /// Allocates a virtual memory region of `pages` pages. Allocation is
    /// bookkeeping only; frames are claimed on first touch.
    ///
    /// `file_backed` regions fault their pages in from disk on first
    /// touch (application code/data); anonymous regions zero-fill on
    /// first touch (the exerciser's pool) and only fault when re-touching
    /// an evicted page (swap-in).
    pub fn alloc_region(&mut self, pages: u32, file_backed: bool) -> RegionId {
        self.mem.alloc(self.thread, pages, file_backed)
    }

    /// Frees a region, releasing its resident frames.
    pub fn free_region(&mut self, region: RegionId) {
        self.mem.free(region);
    }

    /// Number of currently resident pages in a region.
    pub fn resident_pages(&self, region: RegionId) -> u32 {
        self.mem.resident_pages(region)
    }

    /// Records an interactive latency sample (e.g. keystroke echo time or
    /// frame time), tagged with a static class name.
    pub fn record_latency(&mut self, class: &'static str, latency_us: SimTime) {
        self.latencies.push(crate::metrics::LatencySample {
            at: self.now,
            class,
            latency_us,
        });
    }
}

/// A simulated program.
pub trait Workload {
    /// Returns the next action for this thread. Called at spawn time and
    /// whenever the previous action completes.
    fn next_action(&mut self, ctx: &mut Ctx<'_>) -> Action;

    /// Human-readable name for debugging and metrics.
    fn name(&self) -> &str {
        "workload"
    }
}

/// A workload built from a closure — convenient for tests and probes.
pub struct FnWorkload<F: FnMut(&mut Ctx<'_>) -> Action> {
    name: String,
    f: F,
}

impl<F: FnMut(&mut Ctx<'_>) -> Action> FnWorkload<F> {
    /// Wraps a closure as a workload.
    pub fn new(name: impl Into<String>, f: F) -> Self {
        FnWorkload {
            name: name.into(),
            f,
        }
    }
}

impl<F: FnMut(&mut Ctx<'_>) -> Action> Workload for FnWorkload<F> {
    fn next_action(&mut self, ctx: &mut Ctx<'_>) -> Action {
        (self.f)(ctx)
    }

    fn name(&self) -> &str {
        &self.name
    }
}
