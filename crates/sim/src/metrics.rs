//! Measurement probes — the data the UUCS client's monitors record during
//! a testcase run (§2.3: "CPU, memory and Disk load measurements for the
//! entire duration of the testcase").

use crate::SimTime;

/// One interactive latency observation recorded by a workload (keystroke
/// echo, page load, frame time, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySample {
    /// When the sample completed (µs).
    pub at: SimTime,
    /// Workload-defined class, e.g. `"keystroke"` or `"frame"`.
    pub class: &'static str,
    /// Observed latency, µs.
    pub latency_us: SimTime,
}

/// Per-thread accounting.
#[derive(Debug, Clone, Default)]
pub struct ThreadStats {
    /// CPU service consumed, µs.
    pub cpu_us: SimTime,
    /// Completed disk operations.
    pub disk_ops: u64,
    /// Bytes moved by this thread's disk requests.
    pub disk_bytes: u64,
    /// Page faults (disk-serviced) triggered by this thread's touches.
    pub faults: u64,
    /// Zero-fill first touches.
    pub zero_fills: u64,
    /// Number of times the thread was dispatched onto the CPU.
    pub dispatches: u64,
    /// Latency samples recorded via [`crate::workload::Ctx::record_latency`].
    pub latencies: Vec<LatencySample>,
}

impl ThreadStats {
    /// Mean latency (µs) over samples of a class; `None` if none.
    pub fn mean_latency(&self, class: &str) -> Option<f64> {
        let xs: Vec<SimTime> = self
            .latencies
            .iter()
            .filter(|s| s.class == class)
            .map(|s| s.latency_us)
            .collect();
        if xs.is_empty() {
            return None;
        }
        Some(xs.iter().sum::<SimTime>() as f64 / xs.len() as f64)
    }

    /// Count of samples of a class.
    pub fn latency_count(&self, class: &str) -> usize {
        self.latencies.iter().filter(|s| s.class == class).count()
    }

    /// Latencies (µs) of a class in chronological order.
    pub fn latencies_of(&self, class: &str) -> Vec<SimTime> {
        self.latencies
            .iter()
            .filter(|s| s.class == class)
            .map(|s| s.latency_us)
            .collect()
    }
}

/// Whole-machine accounting.
#[derive(Debug, Clone, Copy, Default)]
pub struct MachineMetrics {
    /// Total CPU busy time across all threads, µs.
    pub cpu_busy_us: SimTime,
    /// Number of context switches (dispatches after the first).
    pub context_switches: u64,
    /// Samples of run-queue length taken at each dispatch.
    pub runq_samples: u64,
    /// Sum of run-queue lengths over those samples.
    pub runq_sum: u64,
}

impl MachineMetrics {
    /// CPU utilization over `elapsed` µs of simulated time.
    pub fn cpu_utilization(&self, elapsed: SimTime) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            self.cpu_busy_us as f64 / elapsed as f64
        }
    }

    /// Mean run-queue length observed at dispatch points.
    pub fn mean_runq(&self) -> f64 {
        if self.runq_samples == 0 {
            0.0
        } else {
            self.runq_sum as f64 / self.runq_samples as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_latency_filters_by_class() {
        let mut s = ThreadStats::default();
        s.latencies.push(LatencySample {
            at: 0,
            class: "key",
            latency_us: 100,
        });
        s.latencies.push(LatencySample {
            at: 1,
            class: "key",
            latency_us: 300,
        });
        s.latencies.push(LatencySample {
            at: 2,
            class: "frame",
            latency_us: 999,
        });
        assert_eq!(s.mean_latency("key"), Some(200.0));
        assert_eq!(s.latency_count("frame"), 1);
        assert_eq!(s.mean_latency("missing"), None);
        assert_eq!(s.latencies_of("key"), vec![100, 300]);
    }

    #[test]
    fn utilization_bounds() {
        let m = MachineMetrics {
            cpu_busy_us: 500_000,
            ..Default::default()
        };
        assert!((m.cpu_utilization(1_000_000) - 0.5).abs() < 1e-12);
        assert_eq!(m.cpu_utilization(0), 0.0);
    }

    #[test]
    fn mean_runq() {
        let m = MachineMetrics {
            runq_samples: 4,
            runq_sum: 10,
            ..Default::default()
        };
        assert!((m.mean_runq() - 2.5).abs() < 1e-12);
        assert_eq!(MachineMetrics::default().mean_runq(), 0.0);
    }
}
