//! The disk: a single-server FIFO queue with a seek + rotation + transfer
//! service model, 2004-desktop-class defaults (80 GB, ~8.5 ms average
//! seek, 7200 rpm, ~45 MB/s media rate).
//!
//! Requests are random-access operations (the paper's disk exerciser does
//! "a random seek in a large file ... followed by a write of a random
//! amount of data", write-through and synced, §2.2), so every op pays the
//! positioning cost. Page faults from the memory subsystem go through the
//! same queue, so memory pressure competes with explicit I/O.

use crate::{SimTime, ThreadId};
use std::collections::VecDeque;

/// Disk geometry / timing parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskConfig {
    /// Average seek time per random access, µs.
    pub seek_us: SimTime,
    /// Average rotational latency, µs (half a revolution at 7200 rpm
    /// ≈ 4.17 ms).
    pub rotation_us: SimTime,
    /// Media transfer rate, bytes per µs (45 MB/s ≈ 45 bytes/µs).
    pub bytes_per_us: f64,
    /// Extra per-op latency for a synced write-through (controller sync).
    pub sync_us: SimTime,
}

impl Default for DiskConfig {
    fn default() -> Self {
        DiskConfig {
            seek_us: 8_500,
            rotation_us: 4_170,
            bytes_per_us: 45.0,
            sync_us: 500,
        }
    }
}

impl DiskConfig {
    /// Service time for one request of `ops` random accesses of
    /// `bytes_per_op` each.
    pub fn service_us(&self, ops: u32, bytes_per_op: u32, synced: bool) -> SimTime {
        let per_op = self.seek_us
            + self.rotation_us
            + (bytes_per_op as f64 / self.bytes_per_us).ceil() as SimTime
            + if synced { self.sync_us } else { 0 };
        per_op * ops as SimTime
    }
}

/// A queued disk request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// The issuing thread (woken on completion).
    pub thread: ThreadId,
    /// Number of random-access operations in the request.
    pub ops: u32,
    /// Payload per op.
    pub bytes_per_op: u32,
    /// Whether each op pays the sync cost.
    pub synced: bool,
}

/// Cumulative disk statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Completed operations.
    pub ops: u64,
    /// Transferred bytes.
    pub bytes: u64,
    /// Total busy time, µs.
    pub busy_us: SimTime,
    /// Completed requests.
    pub requests: u64,
}

/// The FIFO disk.
#[derive(Debug)]
pub struct Disk {
    cfg: DiskConfig,
    queue: VecDeque<Request>,
    /// The in-service request and its completion time.
    in_service: Option<(Request, SimTime)>,
    stats: DiskStats,
}

impl Disk {
    /// Creates a disk with the given timing parameters.
    pub fn new(cfg: DiskConfig) -> Self {
        Disk {
            cfg,
            queue: VecDeque::new(),
            in_service: None,
            stats: DiskStats::default(),
        }
    }

    /// Timing parameters.
    pub fn config(&self) -> &DiskConfig {
        &self.cfg
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> DiskStats {
        self.stats
    }

    /// Queue length including the in-service request.
    pub fn queue_len(&self) -> usize {
        self.queue.len() + usize::from(self.in_service.is_some())
    }

    /// Submits a request at time `now`. Returns the completion time if the
    /// disk was idle and service starts immediately, else `None` (the
    /// request waits in FIFO order).
    pub fn submit(&mut self, req: Request, now: SimTime) -> Option<SimTime> {
        assert!(req.ops > 0, "empty disk request");
        if self.in_service.is_none() {
            let done = now + self.cfg.service_us(req.ops, req.bytes_per_op, req.synced);
            self.in_service = Some((req, done));
            Some(done)
        } else {
            self.queue.push_back(req);
            None
        }
    }

    /// Completes the in-service request at time `now` (must equal the
    /// completion time previously returned). Returns the finished request
    /// and, if another was waiting, the completion time of the next one
    /// now entering service.
    pub fn complete(&mut self, now: SimTime) -> (Request, Option<SimTime>) {
        let (req, done) = self.in_service.take().expect("complete() with idle disk");
        debug_assert_eq!(done, now, "completion at the wrong time");
        let service = self.cfg.service_us(req.ops, req.bytes_per_op, req.synced);
        self.stats.ops += req.ops as u64;
        self.stats.bytes += req.ops as u64 * req.bytes_per_op as u64;
        self.stats.busy_us += service;
        self.stats.requests += 1;
        let next_done = self.queue.pop_front().map(|next| {
            let d = now + self.cfg.service_us(next.ops, next.bytes_per_op, next.synced);
            self.in_service = Some((next, d));
            d
        });
        (req, next_done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(thread: ThreadId, ops: u32, bytes: u32) -> Request {
        Request {
            thread,
            ops,
            bytes_per_op: bytes,
            synced: false,
        }
    }

    #[test]
    fn service_time_components() {
        let cfg = DiskConfig::default();
        // One 4 KB read: 8500 + 4170 + ceil(4096/45) = 8500+4170+92 = 12762.
        assert_eq!(cfg.service_us(1, 4096, false), 12_762);
        // Sync adds 500 per op.
        assert_eq!(cfg.service_us(1, 4096, true), 13_262);
        // Multi-op scales linearly.
        assert_eq!(cfg.service_us(3, 4096, false), 3 * 12_762);
    }

    #[test]
    fn idle_disk_starts_immediately() {
        let mut d = Disk::new(DiskConfig::default());
        let done = d.submit(req(1, 1, 4096), 1000).unwrap();
        assert_eq!(done, 1000 + 12_762);
        assert_eq!(d.queue_len(), 1);
    }

    #[test]
    fn fifo_ordering() {
        let mut d = Disk::new(DiskConfig::default());
        let t1 = d.submit(req(1, 1, 4096), 0).unwrap();
        assert!(d.submit(req(2, 1, 4096), 10).is_none());
        assert!(d.submit(req(3, 1, 4096), 20).is_none());
        assert_eq!(d.queue_len(), 3);
        let (r1, next) = d.complete(t1);
        assert_eq!(r1.thread, 1);
        let t2 = next.unwrap();
        assert_eq!(t2, t1 + 12_762);
        let (r2, next) = d.complete(t2);
        assert_eq!(r2.thread, 2);
        let (r3, next3) = d.complete(next.unwrap());
        assert_eq!(r3.thread, 3);
        assert!(next3.is_none());
        assert_eq!(d.queue_len(), 0);
    }

    #[test]
    fn stats_accumulate() {
        let mut d = Disk::new(DiskConfig::default());
        let t1 = d.submit(req(1, 2, 8192), 0).unwrap();
        d.complete(t1);
        let s = d.stats();
        assert_eq!(s.ops, 2);
        assert_eq!(s.bytes, 16384);
        assert_eq!(s.requests, 1);
        assert!(s.busy_us > 0);
    }

    #[test]
    #[should_panic(expected = "idle disk")]
    fn complete_on_idle_panics() {
        let mut d = Disk::new(DiskConfig::default());
        d.complete(0);
    }

    #[test]
    #[should_panic(expected = "empty disk request")]
    fn zero_ops_rejected() {
        let mut d = Disk::new(DiskConfig::default());
        d.submit(req(1, 0, 4096), 0);
    }
}
