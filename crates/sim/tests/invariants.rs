//! Machine-level invariants under randomized workload mixes.

use uucs_harness::prelude::*;
use uucs_sim::workload::FnWorkload;
use uucs_sim::{Action, Machine, MachineConfig, Priority, TouchPattern, SEC};
use uucs_stats::Pcg64;

/// A little random program: each thread mixes compute, sleep, disk, and
/// memory touches driven by its own deterministic stream.
fn random_workload(behavior_seed: u64, pages: u32) -> Box<dyn uucs_sim::Workload> {
    let mut rng = Pcg64::new(behavior_seed);
    let mut region = None;
    Box::new(FnWorkload::new("random", move |ctx| {
        if region.is_none() {
            region = Some(ctx.alloc_region(pages.max(1), rng.bernoulli(0.5)));
        }
        match rng.below(5) {
            0 => Action::Compute {
                us: rng.range_inclusive(100, 20_000),
            },
            1 => Action::SleepUntil {
                until: ctx.now + rng.range_inclusive(1_000, 200_000),
            },
            2 => Action::DiskIo {
                ops: rng.range_inclusive(1, 3) as u32,
                bytes_per_op: rng.range_inclusive(4_096, 65_536) as u32,
            },
            3 => Action::Touch {
                region: region.unwrap(),
                count: rng.range_inclusive(1, pages.max(1) as u64) as u32,
                pattern: if rng.bernoulli(0.5) {
                    TouchPattern::Prefix
                } else {
                    TouchPattern::RandomSample
                },
            },
            _ => Action::BusyUntil {
                until: ctx.now + rng.range_inclusive(500, 50_000),
            },
        }
    }))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the mix, the machine conserves CPU time, respects memory
    /// capacity, and is bit-deterministic.
    #[test]
    fn machine_invariants_hold(
        seed in 0u64..1_000,
        n_threads in 1usize..6,
        n_low in 0usize..3,
        mem_pages in 200u32..2_000,
        horizon_secs in 1u64..8,
    ) {
        let run = || {
            let mut m = Machine::new(MachineConfig {
                mem_pages,
                seed,
                ..MachineConfig::default()
            });
            let mut tids = Vec::new();
            for i in 0..n_threads {
                tids.push(m.spawn(
                    format!("t{i}"),
                    random_workload(seed.wrapping_add(i as u64), mem_pages / 4),
                ));
            }
            for i in 0..n_low {
                tids.push(m.spawn_with_priority(
                    format!("low{i}"),
                    random_workload(seed.wrapping_add(100 + i as u64), mem_pages / 4),
                    Priority::Low,
                ));
            }
            m.run_until(horizon_secs * SEC);
            (m, tids)
        };
        let (m, tids) = run();

        // CPU conservation: the sum of thread CPU equals the machine's
        // busy time, and never exceeds wall time.
        let total: u64 = tids.iter().map(|&t| m.thread_stats(t).cpu_us).sum();
        prop_assert_eq!(total, m.metrics().cpu_busy_us);
        prop_assert!(total <= horizon_secs * SEC);

        // Memory capacity is inviolable.
        prop_assert!(m.mem_resident() <= mem_pages);

        // Disk accounting is consistent: thread ops sum to disk ops
        // except in-flight work (at most one outstanding request per
        // thread plus the queue; completed ops match stats).
        let thread_ops: u64 = tids.iter().map(|&t| m.thread_stats(t).disk_ops).sum();
        prop_assert!(thread_ops <= m.disk_stats().ops);

        // Bit determinism: replay and compare everything observable.
        let (m2, tids2) = run();
        prop_assert_eq!(m.now(), m2.now());
        prop_assert_eq!(m.metrics().cpu_busy_us, m2.metrics().cpu_busy_us);
        prop_assert_eq!(m.metrics().context_switches, m2.metrics().context_switches);
        prop_assert_eq!(m.mem_resident(), m2.mem_resident());
        prop_assert_eq!(m.disk_stats(), m2.disk_stats());
        for (&a, &b) in tids.iter().zip(&tids2) {
            prop_assert_eq!(m.thread_stats(a).cpu_us, m2.thread_stats(b).cpu_us);
            prop_assert_eq!(m.thread_stats(a).disk_ops, m2.thread_stats(b).disk_ops);
            prop_assert_eq!(m.thread_stats(a).faults, m2.thread_stats(b).faults);
        }
    }

    /// Killing any thread at any time leaves the machine consistent and
    /// able to keep running.
    #[test]
    fn kill_is_always_safe(
        seed in 0u64..500,
        kill_at_ms in 1u64..3_000,
        victim in 0usize..3,
    ) {
        let mut m = Machine::new(MachineConfig {
            mem_pages: 1_000,
            seed,
            ..MachineConfig::default()
        });
        let tids: Vec<_> = (0..3)
            .map(|i| m.spawn(format!("t{i}"), random_workload(seed + i, 400)))
            .collect();
        m.run_until(kill_at_ms * 1_000);
        m.kill(tids[victim]);
        prop_assert!(!m.is_alive(tids[victim]));
        let cpu_at_kill = m.thread_stats(tids[victim]).cpu_us;
        m.run_until(kill_at_ms * 1_000 + 2 * SEC);
        // The victim stays dead and consumes nothing.
        prop_assert_eq!(m.thread_stats(tids[victim]).cpu_us, cpu_at_kill);
        // Memory stays within capacity after the victim's regions free.
        prop_assert!(m.mem_resident() <= 1_000);
        // Time advanced.
        prop_assert_eq!(m.now(), kill_at_ms * 1_000 + 2 * SEC);
    }

    /// Low-priority threads never reduce a normal busy thread's share.
    #[test]
    fn low_priority_never_steals(seed in 0u64..200, n_low in 1usize..4) {
        let mut m = Machine::new(MachineConfig { seed, ..MachineConfig::default() });
        let fg = m.spawn(
            "fg",
            Box::new(FnWorkload::new("fg", |_| Action::Compute { us: 1_000 })),
        );
        for i in 0..n_low {
            m.spawn_with_priority(
                format!("low{i}"),
                random_workload(seed + i as u64, 100),
                Priority::Low,
            );
        }
        m.run_until(3 * SEC);
        // The always-busy normal thread gets the whole machine.
        prop_assert_eq!(m.thread_stats(fg).cpu_us, 3 * SEC);
    }
}
