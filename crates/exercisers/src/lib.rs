//! Resource exercisers (paper §2.2) — the components that apply the
//! contention described by an exercise function.
//!
//! Three exercisers exist, one per studied resource, in two
//! implementations each:
//!
//! * **Simulator-backed** ([`cpu`], [`memory`], [`diskex`]) — workloads
//!   for the `uucs-sim` machine, used by the reproduced controlled study.
//!   They implement exactly the paper's mechanisms: the CPU exerciser
//!   does time-based playback with stochastic busy/sleep subintervals
//!   across `ceil(c)` threads; the disk exerciser replaces the busy spin
//!   with a random seek + synced write; the memory exerciser keeps a pool
//!   the size of physical memory and touches the fraction given by the
//!   contention level at high frequency.
//! * **Native** ([`native`]) — the same algorithms against the real host:
//!   calibrated busy-wait loops, an actual memory pool with page touching,
//!   and real synced file writes. These make the measurement tool itself
//!   usable outside the simulator; their tests are intentionally tiny so
//!   CI machines of any speed pass.
//!
//! [`verify`] reproduces the paper's exerciser verification ("verified to
//! a contention level of 10 for equal priority threads" for CPU, 7 for
//! disk): it plays constant-level functions against probe threads and
//! reports commanded vs. achieved contention.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod cpu;
pub mod diskex;
pub mod memory;
pub mod native;
pub mod playback;
pub mod verify;

pub use cpu::CpuExerciser;
pub use diskex::DiskExerciser;
pub use memory::MemoryExerciser;
pub use playback::{spawn_exercisers, ExerciserSet, PlaybackGrid};
