//! The CPU exerciser (paper §2.2).
//!
//! Contention `c` is created by `ceil(c)` equal-priority threads. Thread
//! `i` covers the contention slice `[i, i+1)`: in each subinterval it is
//! busy with probability `clamp(c - i, 0, 1)` and sleeps otherwise. The
//! stochastic borrowing emulates a fluid model within the limits of the
//! scheduler's time quantum, exactly as the paper describes ("Two threads
//! with carefully calibrated busy-wait loops ... The second executes busy
//! subintervals with probability 0.5, calling ::Sleep in other
//! subintervals").

use crate::playback::{PlaybackGrid, DEFAULT_SUBINTERVAL_US};
use uucs_sim::{Action, Ctx, SimTime, Workload};
use uucs_testcase::ExerciseFunction;

/// One thread of the CPU exerciser.
pub struct CpuExerciser {
    func: ExerciseFunction,
    index: u32,
    grid: PlaybackGrid,
}

impl CpuExerciser {
    /// Creates thread `index` of the exerciser for `func`, with playback
    /// anchored at `start` and the default subinterval.
    pub fn new(func: ExerciseFunction, index: u32, start: SimTime) -> Self {
        Self::with_subinterval(func, index, start, DEFAULT_SUBINTERVAL_US)
    }

    /// As [`CpuExerciser::new`] with an explicit subinterval.
    pub fn with_subinterval(
        func: ExerciseFunction,
        index: u32,
        start: SimTime,
        subinterval: SimTime,
    ) -> Self {
        CpuExerciser {
            func,
            index,
            grid: PlaybackGrid::new(start, subinterval),
        }
    }

    /// The busy probability for this thread at contention level `c`.
    pub fn busy_probability(&self, level: f64) -> f64 {
        (level - self.index as f64).clamp(0.0, 1.0)
    }
}

impl Workload for CpuExerciser {
    fn name(&self) -> &str {
        "cpu-exerciser"
    }

    fn next_action(&mut self, ctx: &mut Ctx<'_>) -> Action {
        let t = self.grid.offset_secs(ctx.now);
        let Some(level) = self.func.value_at(t) else {
            // Exercise function exhausted: the run is over for this thread.
            return Action::Exit;
        };
        let boundary = self.grid.next_boundary(ctx.now);
        let p = self.busy_probability(level);
        if ctx.rng.bernoulli(p) {
            Action::BusyUntil { until: boundary }
        } else {
            Action::SleepUntil { until: boundary }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uucs_sim::{Machine, SEC};
    use uucs_testcase::{ExerciseSpec, Resource};
    use uucs_workloads::BusyProbe;

    fn constant_function(level: f64, secs: f64) -> ExerciseFunction {
        ExerciseSpec::Step {
            level,
            duration: secs,
            start: 0.0,
        }
        .sample(Resource::Cpu, 1.0)
    }

    fn spawn_level(m: &mut Machine, level: f64, secs: f64) {
        let f = constant_function(level, secs);
        for i in 0..level.ceil() as u32 {
            m.spawn(
                format!("cpu-ex{i}"),
                Box::new(CpuExerciser::new(f.clone(), i, m.now())),
            );
        }
    }

    /// Measured contention from a probe's CPU share.
    fn measure(level: f64, seed: u64) -> f64 {
        let mut m = Machine::study_machine(seed);
        let probe = m.spawn("probe", Box::new(BusyProbe::default()));
        spawn_level(&mut m, level, 60.0);
        m.run_until(60 * SEC);
        let share = m.thread_stats(probe).cpu_us as f64 / m.now() as f64;
        BusyProbe::contention_from_share(share)
    }

    #[test]
    fn integer_levels_are_exact() {
        for &level in &[1.0, 2.0, 4.0] {
            let c = measure(level, 210);
            assert!((c - level).abs() < 0.12, "level {level}: measured {c}");
        }
    }

    #[test]
    fn fractional_levels_approximate_fluid() {
        // The stochastic scheme approximates the fluid model within the
        // quantum limits; the paper accepts this approximation. Against a
        // probe, commanded 1.5 yields effective contention within ~20%.
        let c = measure(1.5, 211);
        assert!((c - 1.5).abs() < 0.3, "measured {c}");
        let c = measure(0.5, 212);
        assert!((c - 0.5).abs() < 0.2, "measured {c}");
    }

    #[test]
    fn paper_example_forty_percent_rate() {
        // §2.2: at contention 1.5 a busy thread runs at 1/(1.5+1) = 40% of
        // its maximum rate (the exerciser borrowed 60%).
        let mut m = Machine::study_machine(213);
        let probe = m.spawn("probe", Box::new(BusyProbe::default()));
        spawn_level(&mut m, 1.5, 60.0);
        m.run_until(60 * SEC);
        let share = m.thread_stats(probe).cpu_us as f64 / m.now() as f64;
        assert!((share - 0.40).abs() < 0.05, "share {share}");
    }

    #[test]
    fn exerciser_exits_when_function_exhausts() {
        let mut m = Machine::study_machine(214);
        let f = constant_function(1.0, 2.0);
        let t = m.spawn("cpu-ex0", Box::new(CpuExerciser::new(f, 0, 0)));
        m.run_until(3 * SEC);
        assert!(!m.is_alive(t));
        // It was busy for ~2 s then died.
        let cpu = m.thread_stats(t).cpu_us;
        assert!((cpu as i64 - 2 * SEC as i64).abs() < 200_000, "cpu {cpu}");
    }

    #[test]
    fn zero_level_thread_sleeps() {
        let mut m = Machine::study_machine(215);
        let f = constant_function(0.0, 5.0);
        let t = m.spawn("cpu-ex0", Box::new(CpuExerciser::new(f, 0, 0)));
        m.run_until(6 * SEC);
        assert!(m.thread_stats(t).cpu_us < 100_000);
        assert!(!m.is_alive(t));
    }

    #[test]
    fn ramp_borrows_progressively() {
        let mut m = Machine::study_machine(216);
        let probe = m.spawn("probe", Box::new(BusyProbe::default()));
        let f = ExerciseSpec::Ramp {
            level: 2.0,
            duration: 120.0,
        }
        .sample(Resource::Cpu, 1.0);
        for i in 0..2 {
            m.spawn(
                format!("cpu-ex{i}"),
                Box::new(CpuExerciser::new(f.clone(), i, 0)),
            );
        }
        // First quarter: contention ≤ 0.5 — probe keeps most of the CPU.
        m.run_until(30 * SEC);
        let early = m.thread_stats(probe).cpu_us as f64 / m.now() as f64;
        // Last quarter: contention ≥ 1.5 — probe squeezed to ~0.4.
        m.run_until(90 * SEC);
        let mid_cpu = m.thread_stats(probe).cpu_us;
        m.run_until(120 * SEC);
        let late = (m.thread_stats(probe).cpu_us - mid_cpu) as f64 / (30 * SEC) as f64;
        assert!(early > 0.75, "early share {early}");
        assert!(late < 0.48, "late share {late}");
    }

    #[test]
    fn busy_probability_slices() {
        let f = constant_function(1.0, 1.0);
        let e0 = CpuExerciser::new(f.clone(), 0, 0);
        let e1 = CpuExerciser::new(f, 1, 0);
        assert_eq!(e0.busy_probability(1.7), 1.0);
        assert!((e1.busy_probability(1.7) - 0.7).abs() < 1e-12);
        assert_eq!(e1.busy_probability(0.9), 0.0);
    }
}
