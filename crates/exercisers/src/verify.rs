//! Exerciser verification (paper §2.2).
//!
//! The paper states its CPU exerciser "is experimentally verified to a
//! contention level of 10 for equal priority threads" and the disk
//! exerciser "to a contention level of 7". This module reproduces those
//! verification experiments: a constant-level exercise function plays
//! against a probe thread; the probe's progress ratio implies the
//! contention it actually experienced.

use crate::cpu::CpuExerciser;
use crate::diskex::DiskExerciser;
use uucs_sim::{Machine, SimTime, SEC};
use uucs_testcase::{ExerciseSpec, Resource};
use uucs_workloads::{BusyProbe, IoProbe};

/// One row of a verification run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VerifyRow {
    /// The commanded contention level.
    pub commanded: f64,
    /// The contention the probe actually experienced.
    pub achieved: f64,
}

impl VerifyRow {
    /// Relative error of achieved vs commanded (0 when commanded is 0).
    pub fn rel_error(&self) -> f64 {
        if self.commanded == 0.0 {
            self.achieved.abs()
        } else {
            (self.achieved - self.commanded).abs() / self.commanded
        }
    }
}

/// Verifies the CPU exerciser at each commanded level, measuring against
/// a busy probe for `horizon_secs` simulated seconds per level.
pub fn verify_cpu(levels: &[f64], horizon_secs: u64, seed: u64) -> Vec<VerifyRow> {
    levels
        .iter()
        .map(|&level| {
            let mut m = Machine::study_machine(seed);
            let probe = m.spawn("probe", Box::new(BusyProbe::default()));
            let f = ExerciseSpec::Step {
                level,
                duration: horizon_secs as f64 + 10.0,
                start: 0.0,
            }
            .sample(Resource::Cpu, 1.0);
            for i in 0..level.ceil().max(0.0) as u32 {
                m.spawn(
                    format!("cpu-ex{i}"),
                    Box::new(CpuExerciser::new(f.clone(), i, 0)),
                );
            }
            m.run_until(horizon_secs * SEC);
            let share = m.thread_stats(probe).cpu_us as f64 / m.now() as f64;
            VerifyRow {
                commanded: level,
                achieved: BusyProbe::contention_from_share(share),
            }
        })
        .collect()
}

/// Verifies the disk exerciser at each commanded level against an I/O
/// probe, measuring for `horizon_secs` simulated seconds per level.
pub fn verify_disk(levels: &[f64], horizon_secs: u64, seed: u64) -> Vec<VerifyRow> {
    let horizon: SimTime = horizon_secs * SEC;
    let solo_ops = {
        let mut m = Machine::study_machine(seed);
        let probe = m.spawn("probe", Box::new(IoProbe::default()));
        m.run_until(horizon);
        m.thread_stats(probe).disk_ops as f64
    };
    levels
        .iter()
        .map(|&level| {
            let mut m = Machine::study_machine(seed);
            let probe = m.spawn("probe", Box::new(IoProbe::default()));
            let f = ExerciseSpec::Step {
                level,
                duration: horizon_secs as f64 + 10.0,
                start: 0.0,
            }
            .sample(Resource::Disk, 1.0);
            for i in 0..level.ceil().max(0.0) as u32 {
                m.spawn(
                    format!("disk-ex{i}"),
                    Box::new(DiskExerciser::new(f.clone(), i, 0)),
                );
            }
            m.run_until(horizon);
            let ratio = m.thread_stats(probe).disk_ops as f64 / solo_ops;
            VerifyRow {
                commanded: level,
                achieved: 1.0 / ratio - 1.0,
            }
        })
        .collect()
}

/// Renders verification rows as a fixed-width table.
pub fn render_table(title: &str, rows: &[VerifyRow]) -> String {
    let mut out = format!("{title}\n{:>10} {:>10} {:>8}\n", "commanded", "achieved", "err%");
    for r in rows {
        out.push_str(&format!(
            "{:>10.2} {:>10.2} {:>7.1}%\n",
            r.commanded,
            r.achieved,
            r.rel_error() * 100.0
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_verified_to_level_ten() {
        // The paper's claim, on our substrate: accurate to level 10.
        let rows = verify_cpu(&[1.0, 2.0, 5.0, 10.0], 30, 240);
        for r in &rows {
            assert!(
                r.rel_error() < 0.12,
                "level {}: achieved {} ({}%)",
                r.commanded,
                r.achieved,
                r.rel_error() * 100.0
            );
        }
    }

    #[test]
    fn disk_verified_to_level_seven() {
        let rows = verify_disk(&[1.0, 3.0, 7.0], 120, 241);
        for r in &rows {
            assert!(
                r.rel_error() < 0.15,
                "level {}: achieved {} ({}%)",
                r.commanded,
                r.achieved,
                r.rel_error() * 100.0
            );
        }
    }

    #[test]
    fn table_renders() {
        let rows = vec![VerifyRow {
            commanded: 2.0,
            achieved: 2.04,
        }];
        let t = render_table("CPU", &rows);
        assert!(t.contains("commanded"));
        assert!(t.contains("2.04"));
    }

    #[test]
    fn rel_error_zero_command() {
        let r = VerifyRow {
            commanded: 0.0,
            achieved: 0.02,
        };
        assert!((r.rel_error() - 0.02).abs() < 1e-12);
    }
}
