//! Native (real-host) exercisers — the measurement tool itself, as it
//! would run on an end-user machine, built with the same algorithms as
//! the simulator-backed exercisers.
//!
//! These are faithful ports of §2.2: the CPU exerciser calibrates a
//! busy-wait loop and plays the exercise function in wall-clock
//! subintervals; the memory exerciser keeps an allocated pool and touches
//! a page-strided fraction of it per refresh; the disk exerciser seeks
//! randomly in a scratch file and performs synced writes.
//!
//! All runners are bounded by both the exercise function's duration and a
//! shared [`StopFlag`] (the user's discomfort click), and return
//! statistics rather than relying on wall-clock assertions, so tests stay
//! robust on arbitrarily loaded CI machines.

use std::fs::OpenOptions;
use std::io::{Seek, SeekFrom, Write as IoWrite};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use uucs_stats::Pcg64;
use uucs_testcase::ExerciseFunction;

/// Shared cancellation flag — set when the user expresses discomfort.
#[derive(Debug, Clone, Default)]
pub struct StopFlag(Arc<AtomicBool>);

impl StopFlag {
    /// Creates an unset flag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests all exercisers holding this flag to stop immediately.
    pub fn stop(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// True once stopped.
    pub fn is_stopped(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Calibration of the busy-wait loop: how many spin iterations fit in a
/// millisecond on this host ("carefully calibrated busy-wait loops").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpinCalibration {
    /// Spin iterations per millisecond.
    pub iters_per_ms: u64,
}

/// A unit of spin work the optimizer cannot elide.
#[inline]
fn spin_unit(x: u64) -> u64 {
    // A few dependent integer ops; `black_box` pins the value.
    std::hint::black_box(x.wrapping_mul(6364136223846793005).rotate_left(17) ^ 0x9e3779b9)
}

/// Calibrates the spin loop against the host clock.
pub fn calibrate_spin() -> SpinCalibration {
    // Warm up, then time a fixed iteration count.
    let mut acc = 0u64;
    for i in 0..100_000u64 {
        acc = spin_unit(acc ^ i);
    }
    let iters = 2_000_000u64;
    let t0 = Instant::now();
    for i in 0..iters {
        acc = spin_unit(acc ^ i);
    }
    let elapsed = t0.elapsed();
    std::hint::black_box(acc);
    let ms = elapsed.as_secs_f64() * 1e3;
    SpinCalibration {
        iters_per_ms: ((iters as f64 / ms.max(1e-6)) as u64).max(1),
    }
}

/// Spins for approximately `d`, checking the clock every calibrated
/// millisecond of work.
pub fn spin_for(d: Duration, cal: SpinCalibration, stop: &StopFlag) {
    let deadline = Instant::now() + d;
    let mut acc = 0u64;
    while Instant::now() < deadline && !stop.is_stopped() {
        for i in 0..cal.iters_per_ms {
            acc = spin_unit(acc ^ i);
        }
    }
    std::hint::black_box(acc);
}

/// Outcome counters of a native exerciser run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NativeRunStats {
    /// Subintervals spent busy (spinning / writing / touching).
    pub busy_subintervals: u64,
    /// Subintervals spent sleeping.
    pub idle_subintervals: u64,
    /// Disk bytes written (disk exerciser only).
    pub bytes_written: u64,
    /// Pages touched (memory exerciser only).
    pub pages_touched: u64,
    /// True if the run ended because the stop flag was raised.
    pub stopped_early: bool,
}

/// Runs one thread of the native CPU exerciser to completion (function
/// exhaustion or stop). `index` selects the contention slice as in the
/// simulator-backed exerciser; `time_scale` > 1 accelerates playback for
/// testing (a scale of 100 plays a 120 s function in 1.2 s).
pub fn run_native_cpu(
    func: &ExerciseFunction,
    index: u32,
    subinterval: Duration,
    cal: SpinCalibration,
    stop: &StopFlag,
    time_scale: f64,
    rng: &mut Pcg64,
) -> NativeRunStats {
    assert!(time_scale > 0.0);
    let start = Instant::now();
    let mut stats = NativeRunStats::default();
    let mut k = 0u64;
    loop {
        if stop.is_stopped() {
            stats.stopped_early = true;
            return stats;
        }
        let t = start.elapsed().as_secs_f64() * time_scale;
        let Some(level) = func.value_at(t) else {
            return stats;
        };
        let p = (level - index as f64).clamp(0.0, 1.0);
        // Re-anchor on the grid to avoid drift.
        k += 1;
        let boundary = start + subinterval.mul_f64(k as f64);
        let now = Instant::now();
        let remain = boundary.saturating_duration_since(now);
        if rng.bernoulli(p) {
            stats.busy_subintervals += 1;
            spin_for(remain, cal, stop);
        } else {
            stats.idle_subintervals += 1;
            if !remain.is_zero() {
                std::thread::sleep(remain);
            }
        }
    }
}

/// Runs the native memory exerciser: keeps a pool of `pool_bytes` and per
/// refresh touches the fraction given by the function (one byte per 4 KB
/// page, like the real tool's page strides).
pub fn run_native_memory(
    func: &ExerciseFunction,
    pool_bytes: usize,
    refresh: Duration,
    stop: &StopFlag,
    time_scale: f64,
) -> NativeRunStats {
    assert!(pool_bytes > 0 && time_scale > 0.0);
    const PAGE: usize = 4096;
    let mut pool = vec![0u8; pool_bytes];
    let pages = pool_bytes.div_ceil(PAGE);
    let start = Instant::now();
    let mut stats = NativeRunStats::default();
    loop {
        if stop.is_stopped() {
            stats.stopped_early = true;
            return stats;
        }
        let t = start.elapsed().as_secs_f64() * time_scale;
        let Some(level) = func.value_at(t) else {
            return stats;
        };
        let target = ((level.clamp(0.0, 1.0)) * pages as f64) as usize;
        for p in 0..target {
            // Touch one byte per page; the add defeats page-dedup.
            pool[p * PAGE] = pool[p * PAGE].wrapping_add(1);
        }
        std::hint::black_box(&mut pool);
        stats.pages_touched += target as u64;
        stats.busy_subintervals += 1;
        std::thread::sleep(refresh);
    }
}

/// Runs one thread of the native disk exerciser against a scratch file at
/// `path` of `file_bytes` (the paper uses 2× physical memory; tests use a
/// few hundred KB). Each busy subinterval seeks randomly and performs a
/// synced write of a random size up to `max_write`.
#[allow(clippy::too_many_arguments)]
pub fn run_native_disk(
    func: &ExerciseFunction,
    index: u32,
    path: &Path,
    file_bytes: u64,
    max_write: u64,
    subinterval: Duration,
    stop: &StopFlag,
    time_scale: f64,
    rng: &mut Pcg64,
) -> std::io::Result<NativeRunStats> {
    assert!(file_bytes >= max_write && max_write > 0 && time_scale > 0.0);
    let mut file = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(false)
        .open(path)?;
    file.set_len(file_bytes)?;
    let payload = vec![0xA5u8; max_write as usize];
    let start = Instant::now();
    let mut stats = NativeRunStats::default();
    let mut k = 0u64;
    loop {
        if stop.is_stopped() {
            stats.stopped_early = true;
            return Ok(stats);
        }
        let t = start.elapsed().as_secs_f64() * time_scale;
        let Some(level) = func.value_at(t) else {
            return Ok(stats);
        };
        let p = (level - index as f64).clamp(0.0, 1.0);
        k += 1;
        let boundary = start + subinterval.mul_f64(k as f64);
        if rng.bernoulli(p) {
            stats.busy_subintervals += 1;
            // Random seek + synced write, back to back until the boundary.
            loop {
                let len = rng.range_inclusive(4096.min(max_write), max_write);
                let off = rng.below(file_bytes - len + 1);
                file.seek(SeekFrom::Start(off))?;
                file.write_all(&payload[..len as usize])?;
                file.sync_data()?; // write-through + controller sync
                stats.bytes_written += len;
                if Instant::now() >= boundary || stop.is_stopped() {
                    break;
                }
            }
        } else {
            stats.idle_subintervals += 1;
            let remain = boundary.saturating_duration_since(Instant::now());
            if !remain.is_zero() {
                std::thread::sleep(remain);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uucs_testcase::{ExerciseSpec, Resource};

    fn constant(level: f64, secs: f64, res: Resource) -> ExerciseFunction {
        ExerciseSpec::Step {
            level,
            duration: secs,
            start: 0.0,
        }
        .sample(res, 1.0)
    }

    #[test]
    fn calibration_is_positive_and_sane() {
        let cal = calibrate_spin();
        // Even the slowest CI machine spins well over a thousand
        // iterations per ms; even the fastest under a trillion.
        assert!(cal.iters_per_ms > 1_000, "{:?}", cal);
        assert!(cal.iters_per_ms < 1_000_000_000_000, "{:?}", cal);
    }

    #[test]
    fn cpu_full_level_is_all_busy() {
        let f = constant(1.0, 60.0, Resource::Cpu);
        let cal = SpinCalibration { iters_per_ms: 10_000 };
        let stop = StopFlag::new();
        let mut rng = Pcg64::new(1);
        // 60 s function at 200x scale = 0.3 s real, 10 ms subintervals.
        let stats = run_native_cpu(
            &f,
            0,
            Duration::from_millis(10),
            cal,
            &stop,
            200.0,
            &mut rng,
        );
        assert!(stats.busy_subintervals > 0);
        assert_eq!(stats.idle_subintervals, 0);
        assert!(!stats.stopped_early);
    }

    #[test]
    fn cpu_half_level_mixes_busy_and_idle() {
        let f = constant(0.5, 120.0, Resource::Cpu);
        let cal = SpinCalibration { iters_per_ms: 10_000 };
        let stop = StopFlag::new();
        let mut rng = Pcg64::new(2);
        let stats = run_native_cpu(
            &f,
            0,
            Duration::from_millis(5),
            cal,
            &stop,
            400.0,
            &mut rng,
        );
        let total = stats.busy_subintervals + stats.idle_subintervals;
        assert!(total > 20, "{stats:?}");
        let frac = stats.busy_subintervals as f64 / total as f64;
        assert!((frac - 0.5).abs() < 0.30, "busy fraction {frac}");
    }

    #[test]
    fn cpu_stop_flag_halts_run() {
        let f = constant(1.0, 3600.0, Resource::Cpu);
        let cal = calibrate_spin();
        let stop = StopFlag::new();
        let stop2 = stop.clone();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            stop2.stop();
        });
        let mut rng = Pcg64::new(3);
        let stats = run_native_cpu(
            &f,
            0,
            Duration::from_millis(10),
            cal,
            &stop,
            1.0,
            &mut rng,
        );
        h.join().unwrap();
        assert!(stats.stopped_early);
    }

    #[test]
    fn memory_touches_fraction_of_pool() {
        let f = constant(0.5, 60.0, Resource::Memory);
        let stop = StopFlag::new();
        // 4 MB pool = 1024 pages; 60 s at 600x = 0.1 s real.
        let stats = run_native_memory(&f, 4 << 20, Duration::from_millis(5), &stop, 600.0);
        assert!(stats.pages_touched > 0);
        // Each refresh touched ~512 pages.
        let per_refresh = stats.pages_touched / stats.busy_subintervals.max(1);
        assert!(
            (per_refresh as i64 - 512).abs() < 40,
            "per refresh {per_refresh}"
        );
    }

    #[test]
    fn disk_writes_and_stops_on_exhaustion() {
        let dir = std::env::temp_dir().join(format!("uucs-diskex-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("scratch.bin");
        let f = constant(1.0, 30.0, Resource::Disk);
        let stop = StopFlag::new();
        let mut rng = Pcg64::new(4);
        // 30 s at 300x = 0.1 s real; 256 KB file, 16 KB writes.
        let stats = run_native_disk(
            &f,
            0,
            &path,
            262_144,
            16_384,
            Duration::from_millis(10),
            &stop,
            300.0,
            &mut rng,
        )
        .unwrap();
        assert!(stats.bytes_written > 0, "{stats:?}");
        assert!(!stats.stopped_early);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn disk_zero_level_writes_nothing() {
        let dir = std::env::temp_dir().join(format!("uucs-diskex0-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("scratch.bin");
        let f = constant(0.0, 10.0, Resource::Disk);
        let stop = StopFlag::new();
        let mut rng = Pcg64::new(5);
        let stats = run_native_disk(
            &f,
            0,
            &path,
            65_536,
            16_384,
            Duration::from_millis(5),
            &stop,
            200.0,
            &mut rng,
        )
        .unwrap();
        assert_eq!(stats.bytes_written, 0);
        assert!(stats.idle_subintervals > 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
