//! The disk exerciser (paper §2.2).
//!
//! "The disk exerciser operates nearly identically to the CPU exerciser,
//! except that its goal is to create contention for disk bandwidth. The
//! busy operation here is a random seek in a large file (2x the memory of
//! the machine) followed by a write of a random amount of data. The write
//! is forced to be write-through with respect to the windows buffer cache
//! and synced with respect to the disk controller."
//!
//! Thread `i` of `ceil(c)` threads is I/O-busy in a subinterval with
//! probability `clamp(c - i, 0, 1)`; a busy subinterval issues random
//! synced writes back to back until the subinterval boundary passes.

use crate::playback::{PlaybackGrid, DEFAULT_SUBINTERVAL_US};
use uucs_sim::{Action, Ctx, SimTime, Workload};
use uucs_testcase::ExerciseFunction;

/// Maximum bytes of one random write ("a write of a random amount of
/// data" — up to 256 KB keeps op times in the tens of milliseconds).
pub const MAX_WRITE_BYTES: u32 = 262_144;

/// One thread of the disk exerciser.
pub struct DiskExerciser {
    func: ExerciseFunction,
    index: u32,
    grid: PlaybackGrid,
    /// End of the current busy subinterval, if inside one.
    busy_until: Option<SimTime>,
}

impl DiskExerciser {
    /// Creates thread `index` of the exerciser for `func`, with playback
    /// anchored at `start` and the default subinterval.
    pub fn new(func: ExerciseFunction, index: u32, start: SimTime) -> Self {
        DiskExerciser {
            func,
            index,
            grid: PlaybackGrid::new(start, DEFAULT_SUBINTERVAL_US),
            busy_until: None,
        }
    }

    fn busy_probability(&self, level: f64) -> f64 {
        (level - self.index as f64).clamp(0.0, 1.0)
    }
}

impl Workload for DiskExerciser {
    fn name(&self) -> &str {
        "disk-exerciser"
    }

    fn next_action(&mut self, ctx: &mut Ctx<'_>) -> Action {
        // Continue a busy subinterval: keep writing until its boundary.
        if let Some(until) = self.busy_until {
            if ctx.now < until {
                let bytes = ctx.rng.range_inclusive(4_096, MAX_WRITE_BYTES as u64) as u32;
                return Action::DiskIo {
                    ops: 1,
                    bytes_per_op: bytes,
                };
            }
            self.busy_until = None;
        }
        let t = self.grid.offset_secs(ctx.now);
        let Some(level) = self.func.value_at(t) else {
            return Action::Exit;
        };
        let boundary = self.grid.next_boundary(ctx.now);
        if ctx.rng.bernoulli(self.busy_probability(level)) {
            self.busy_until = Some(boundary);
            let bytes = ctx.rng.range_inclusive(4_096, MAX_WRITE_BYTES as u64) as u32;
            Action::DiskIo {
                ops: 1,
                bytes_per_op: bytes,
            }
        } else {
            Action::SleepUntil { until: boundary }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uucs_sim::{Machine, SEC};
    use uucs_testcase::{ExerciseSpec, Resource};
    use uucs_workloads::IoProbe;

    fn constant(level: f64, secs: f64) -> ExerciseFunction {
        ExerciseSpec::Step {
            level,
            duration: secs,
            start: 0.0,
        }
        .sample(Resource::Disk, 1.0)
    }

    fn spawn_level(m: &mut Machine, level: f64, secs: f64) {
        let f = constant(level, secs);
        for i in 0..level.ceil() as u32 {
            m.spawn(
                format!("disk-ex{i}"),
                Box::new(DiskExerciser::new(f.clone(), i, m.now())),
            );
        }
    }

    /// Probe op ratio vs standalone under disk contention `level`.
    fn probe_ratio(level: f64, seed: u64) -> f64 {
        let horizon = 120 * SEC;
        let solo = {
            let mut m = Machine::study_machine(seed);
            let t = m.spawn("probe", Box::new(IoProbe::default()));
            m.run_until(horizon);
            m.thread_stats(t).disk_ops
        };
        let mut m = Machine::study_machine(seed);
        let t = m.spawn("probe", Box::new(IoProbe::default()));
        spawn_level(&mut m, level, 200.0);
        m.run_until(horizon);
        m.thread_stats(t).disk_ops as f64 / solo as f64
    }

    #[test]
    fn contention_slows_io_probe_by_inverse_law() {
        // The paper's semantics: an I/O-busy thread under disk contention
        // c completes ~1/(1+c) of its standalone ops.
        for &level in &[1.0, 3.0] {
            let ratio = probe_ratio(level, 230);
            let expect = 1.0 / (1.0 + level);
            assert!(
                (ratio - expect).abs() < 0.13,
                "level {level}: ratio {ratio} expected {expect}"
            );
        }
    }

    #[test]
    fn fractional_level_partially_borrows() {
        let ratio = probe_ratio(0.5, 231);
        let expect = 1.0 / 1.5;
        assert!(
            (ratio - expect).abs() < 0.12,
            "ratio {ratio} expected {expect}"
        );
    }

    #[test]
    fn exerciser_exits_on_exhaustion() {
        let mut m = Machine::study_machine(232);
        let f = constant(1.0, 3.0);
        let t = m.spawn("disk-ex0", Box::new(DiskExerciser::new(f, 0, 0)));
        m.run_until(10 * SEC);
        assert!(!m.is_alive(t));
        assert!(m.thread_stats(t).disk_ops > 10);
    }

    #[test]
    fn zero_level_issues_no_io() {
        let mut m = Machine::study_machine(233);
        let f = constant(0.0, 3.0);
        let t = m.spawn("disk-ex0", Box::new(DiskExerciser::new(f, 0, 0)));
        m.run_until(5 * SEC);
        assert_eq!(m.thread_stats(t).disk_ops, 0);
    }

    #[test]
    fn keeps_disk_busy_at_level_one() {
        let mut m = Machine::study_machine(234);
        spawn_level(&mut m, 1.0, 30.0);
        m.run_until(30 * SEC);
        let busy = m.disk_stats().busy_us as f64 / m.now() as f64;
        assert!(busy > 0.9, "disk busy fraction {busy}");
    }
}
