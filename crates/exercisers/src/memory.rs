//! The memory exerciser (paper §2.2).
//!
//! "It interprets contention as the fraction of physical memory it should
//! attempt to allocate. It keeps a pool of allocated pages equal to the
//! size of physical memory in the machine and then touches the fraction
//! corresponding to the contention level with a high frequency, making
//! its working set size inflate to that fraction of the physical memory."
//!
//! Each refresh cycle touches the working-set prefix (claiming frames and
//! renewing recency so borrowed memory stays borrowed), then sleeps to
//! the next grid boundary.

use crate::playback::PlaybackGrid;
use uucs_sim::{Action, Ctx, RegionId, SimTime, TouchPattern, Workload};
use uucs_testcase::ExerciseFunction;

/// Interval between working-set refresh touches ("a high frequency"):
/// 250 ms keeps the pool pages hotter than any foreground region that is
/// not being actively used.
pub const REFRESH_US: SimTime = 250_000;

/// The memory exerciser thread: alternates a working-set touch and a
/// sleep to the next refresh boundary.
pub struct MemoryExerciser {
    func: ExerciseFunction,
    pool_pages: u32,
    grid: PlaybackGrid,
    region: Option<RegionId>,
    sleep_next: bool,
}

impl MemoryExerciser {
    /// Creates the exerciser with a pool of `pool_pages` (the machine's
    /// physical memory size) and playback anchored at `start`.
    pub fn new(func: ExerciseFunction, pool_pages: u32, start: SimTime) -> Self {
        assert!(pool_pages > 0);
        MemoryExerciser {
            func,
            pool_pages,
            grid: PlaybackGrid::new(start, REFRESH_US),
            region: None,
            sleep_next: false,
        }
    }

    /// The working-set target (pages) at contention level `level`.
    pub fn target_pages(&self, level: f64) -> u32 {
        ((level.clamp(0.0, 1.0)) * self.pool_pages as f64).round() as u32
    }
}

impl Workload for MemoryExerciser {
    fn name(&self) -> &str {
        "memory-exerciser"
    }

    fn next_action(&mut self, ctx: &mut Ctx<'_>) -> Action {
        if self.sleep_next {
            self.sleep_next = false;
            return Action::SleepUntil {
                until: self.grid.next_boundary(ctx.now),
            };
        }
        let region = match self.region {
            Some(r) => r,
            None => {
                // Allocate the pool (virtual only; frames claimed on touch).
                let r = ctx.alloc_region(self.pool_pages, false);
                self.region = Some(r);
                r
            }
        };
        let t = self.grid.offset_secs(ctx.now);
        let Some(level) = self.func.value_at(t) else {
            // Exhausted: release the pool and stop.
            ctx.free_region(region);
            return Action::Exit;
        };
        let target = self.target_pages(level);
        self.sleep_next = true;
        if target == 0 {
            return Action::SleepUntil {
                until: self.grid.next_boundary(ctx.now),
            };
        }
        Action::Touch {
            region,
            count: target,
            pattern: TouchPattern::Prefix,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uucs_sim::{Machine, MachineConfig, SEC};
    use uucs_testcase::{ExerciseSpec, Resource};

    fn small_machine(seed: u64) -> Machine {
        Machine::new(MachineConfig {
            mem_pages: 10_000,
            seed,
            ..MachineConfig::default()
        })
    }

    fn spawn(m: &mut Machine, spec: ExerciseSpec) -> uucs_sim::ThreadId {
        let f = spec.sample(Resource::Memory, 1.0);
        let pool = m.config().mem_pages;
        let ex = MemoryExerciser::new(f, pool, m.now());
        m.spawn("mem-ex", Box::new(ex))
    }

    #[test]
    fn inflates_to_fraction() {
        let mut m = small_machine(220);
        spawn(
            &mut m,
            ExerciseSpec::Step {
                level: 0.5,
                duration: 30.0,
                start: 0.0,
            },
        );
        m.run_until(5 * SEC);
        let resident = m.mem_resident();
        assert!(
            (resident as i64 - 5_000).unsigned_abs() < 100,
            "resident {resident}"
        );
    }

    #[test]
    fn exerciser_cpu_overhead_is_small() {
        let mut m = small_machine(224);
        let t = spawn(
            &mut m,
            ExerciseSpec::Step {
                level: 1.0,
                duration: 30.0,
                start: 0.0,
            },
        );
        m.run_until(30 * SEC);
        // Touching the pool "with a high frequency" must not itself become
        // CPU borrowing.
        let util = m.thread_stats(t).cpu_us as f64 / m.now() as f64;
        assert!(util < 0.05, "util {util}");
    }

    #[test]
    fn ramp_inflates_progressively() {
        let mut m = small_machine(221);
        spawn(
            &mut m,
            ExerciseSpec::Ramp {
                level: 1.0,
                duration: 100.0,
            },
        );
        m.run_until(25 * SEC);
        let quarter = m.mem_resident();
        m.run_until(75 * SEC);
        let three_quarters = m.mem_resident();
        assert!(quarter < 3_000 && quarter > 1_500, "quarter {quarter}");
        assert!(
            three_quarters > 6_500 && three_quarters < 8_500,
            "three_quarters {three_quarters}"
        );
    }

    #[test]
    fn evicts_idle_foreground_pages_under_pressure() {
        use uucs_sim::workload::FnWorkload;
        let mut m = small_machine(222);
        let mut init = false;
        m.spawn(
            "fg",
            Box::new(FnWorkload::new("fg", move |ctx| {
                if !init {
                    init = true;
                    let r = ctx.alloc_region(4_000, false);
                    Action::Touch {
                        region: r,
                        count: 4_000,
                        pattern: TouchPattern::Prefix,
                    }
                } else {
                    Action::SleepUntil {
                        until: ctx.now + SEC,
                    }
                }
            })),
        );
        m.run_until(2 * SEC);
        assert_eq!(m.mem_resident(), 4_000);
        spawn(
            &mut m,
            ExerciseSpec::Step {
                level: 0.9,
                duration: 30.0,
                start: 0.0,
            },
        );
        m.run_until(10 * SEC);
        assert!(
            m.mem_stats().evictions > 2_500,
            "evictions {}",
            m.mem_stats().evictions
        );
    }

    #[test]
    fn exhaustion_frees_pool_and_exits() {
        let mut m = small_machine(223);
        let t = spawn(
            &mut m,
            ExerciseSpec::Step {
                level: 0.8,
                duration: 5.0,
                start: 0.0,
            },
        );
        m.run_until(4 * SEC);
        assert!(m.mem_resident() > 7_000);
        m.run_until(10 * SEC);
        assert!(!m.is_alive(t));
        assert_eq!(m.mem_resident(), 0);
    }

    #[test]
    fn target_pages_clamps() {
        let f = ExerciseSpec::Blank { duration: 1.0 }.sample(Resource::Memory, 1.0);
        let ex = MemoryExerciser::new(f, 1000, 0);
        assert_eq!(ex.target_pages(0.5), 500);
        assert_eq!(ex.target_pages(2.0), 1000);
        assert_eq!(ex.target_pages(-1.0), 0);
    }
}
