//! Time-based playback helpers shared by all exercisers, and the
//! [`ExerciserSet`] that stands up every exerciser a testcase needs.
//!
//! The paper's exercisers split wall time into subintervals "each larger
//! than the scheduling resolution of the machine" (§2.2) and decide
//! per-subinterval whether to be busy. [`PlaybackGrid`] provides that
//! subinterval grid, aligned to the exerciser's start time so stochastic
//! overshoot under contention cannot accumulate drift.

use uucs_sim::{Machine, SimTime, ThreadId};
use uucs_testcase::{Resource, Testcase};

/// Default subinterval: 100 ms, an order of magnitude above the 10 ms
/// scheduling quantum.
pub const DEFAULT_SUBINTERVAL_US: SimTime = 100_000;

/// A wall-clock subinterval grid anchored at a start time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlaybackGrid {
    start: SimTime,
    subinterval: SimTime,
}

impl PlaybackGrid {
    /// Creates a grid starting at `start` with the given subinterval.
    pub fn new(start: SimTime, subinterval: SimTime) -> Self {
        assert!(subinterval > 0);
        PlaybackGrid { start, subinterval }
    }

    /// Seconds elapsed since the grid start (for indexing the exercise
    /// function).
    pub fn offset_secs(&self, now: SimTime) -> f64 {
        (now.saturating_sub(self.start)) as f64 / 1_000_000.0
    }

    /// The end of the subinterval containing `now` (strictly after `now`),
    /// aligned to the grid so overshoot does not drift.
    pub fn next_boundary(&self, now: SimTime) -> SimTime {
        let off = now.saturating_sub(self.start);
        let idx = off / self.subinterval + 1;
        self.start + idx * self.subinterval
    }
}

/// Handles to all exerciser threads spawned for one testcase run.
#[derive(Debug, Clone)]
pub struct ExerciserSet {
    threads: Vec<ThreadId>,
}

impl ExerciserSet {
    /// The spawned thread ids.
    pub fn threads(&self) -> &[ThreadId] {
        &self.threads
    }

    /// True while any exerciser thread is still alive (the testcase has
    /// not exhausted).
    pub fn any_alive(&self, machine: &Machine) -> bool {
        self.threads.iter().any(|&t| machine.is_alive(t))
    }

    /// Kills every exerciser thread immediately and releases their
    /// resources — what the UUCS client does the moment the user
    /// expresses discomfort (§2.3).
    pub fn stop(&self, machine: &mut Machine) {
        for &t in &self.threads {
            machine.kill(t);
        }
    }

    /// Total CPU consumed by the exercisers, µs.
    pub fn cpu_us(&self, machine: &Machine) -> SimTime {
        self.threads
            .iter()
            .map(|&t| machine.thread_stats(t).cpu_us)
            .sum()
    }

    /// Total disk ops issued by the exercisers.
    pub fn disk_ops(&self, machine: &Machine) -> u64 {
        self.threads
            .iter()
            .map(|&t| machine.thread_stats(t).disk_ops)
            .sum()
    }
}

/// Spawns the exercisers a testcase requires onto a machine, starting
/// playback at the machine's current time. One CPU/disk exerciser thread
/// is spawned per unit of peak contention (`ceil(peak)`), one memory
/// exerciser thread total — exactly the paper's structure.
pub fn spawn_exercisers(machine: &mut Machine, testcase: &Testcase) -> ExerciserSet {
    let start = machine.now();
    let mut threads = Vec::new();
    for f in &testcase.functions {
        match f.resource {
            Resource::Cpu => {
                let n = f.peak().ceil().max(0.0) as u32;
                for i in 0..n {
                    let w = crate::cpu::CpuExerciser::new(f.clone(), i, start);
                    threads.push(machine.spawn(format!("cpu-ex{i}"), Box::new(w)));
                }
            }
            Resource::Disk => {
                let n = f.peak().ceil().max(0.0) as u32;
                for i in 0..n {
                    let w = crate::diskex::DiskExerciser::new(f.clone(), i, start);
                    threads.push(machine.spawn(format!("disk-ex{i}"), Box::new(w)));
                }
            }
            Resource::Memory => {
                if f.peak() > 0.0 {
                    let pool = machine.config().mem_pages;
                    let w = crate::memory::MemoryExerciser::new(f.clone(), pool, start);
                    threads.push(machine.spawn("mem-ex", Box::new(w)));
                }
            }
            Resource::Network => {
                // Unstudied, as in the paper (§2.2): no exerciser.
            }
        }
    }
    ExerciserSet { threads }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uucs_testcase::ExerciseSpec;

    #[test]
    fn grid_alignment_prevents_drift() {
        let g = PlaybackGrid::new(500, 100_000);
        assert_eq!(g.next_boundary(500), 100_500);
        assert_eq!(g.next_boundary(100_499), 100_500);
        // Overshoot into the next subinterval still lands on the grid.
        assert_eq!(g.next_boundary(100_501), 200_500);
        assert_eq!(g.next_boundary(137_000), 200_500);
    }

    #[test]
    fn grid_offset_seconds() {
        let g = PlaybackGrid::new(2_000_000, 100_000);
        assert!((g.offset_secs(3_500_000) - 1.5).abs() < 1e-12);
        assert_eq!(g.offset_secs(1_000_000), 0.0); // before start clamps
    }

    #[test]
    fn spawn_counts_follow_peaks() {
        let mut m = Machine::study_machine(200);
        let tc = Testcase::from_specs(
            "mix",
            1.0,
            &[
                (
                    Resource::Cpu,
                    ExerciseSpec::Ramp {
                        level: 2.5,
                        duration: 10.0,
                    },
                ),
                (
                    Resource::Disk,
                    ExerciseSpec::Step {
                        level: 4.0,
                        duration: 10.0,
                        start: 2.0,
                    },
                ),
                (
                    Resource::Memory,
                    ExerciseSpec::Ramp {
                        level: 0.5,
                        duration: 10.0,
                    },
                ),
            ],
        );
        let set = spawn_exercisers(&mut m, &tc);
        // ceil(2.5)=3 cpu + ceil(4)=4 disk + 1 memory.
        assert_eq!(set.threads().len(), 8);
        assert!(set.any_alive(&m));
    }

    #[test]
    fn blank_testcase_spawns_nothing() {
        let mut m = Machine::study_machine(201);
        let tc = Testcase::blank("b", 1.0, 120.0);
        let set = spawn_exercisers(&mut m, &tc);
        assert!(set.threads().is_empty());
        assert!(!set.any_alive(&m));
    }

    #[test]
    fn stop_kills_all() {
        let mut m = Machine::study_machine(202);
        let tc = Testcase::single(
            "c",
            1.0,
            Resource::Cpu,
            ExerciseSpec::Step {
                level: 2.0,
                duration: 100.0,
                start: 0.0,
            },
        );
        let set = spawn_exercisers(&mut m, &tc);
        m.run_for(uucs_sim::SEC);
        assert!(set.any_alive(&m));
        set.stop(&mut m);
        assert!(!set.any_alive(&m));
    }
}
