//! The UUCS client/server record formats and wire protocol.
//!
//! The paper's client and server "store testcases and results on
//! permanent storage in text files" (§2) and interact through two
//! client-initiated exchanges: an initial *registration* (sending a
//! detailed hardware/software snapshot, receiving a globally unique
//! identifier) and periodic *hot syncs* (downloading a growing random
//! sample of new testcases, uploading new results). A third,
//! operator-facing exchange — `STATS` — returns the server's telemetry
//! registry (per-verb request counts and latency histograms, WAL
//! timings, connection gauges) as a single line of JSON; `STATS RESET`
//! additionally zeroes the metrics after snapshotting. See
//! [`wire::ClientMsg::Stats`] and the `uucs-telemetry` crate.
//!
//! Two model-service exchanges close the borrowing loop (`uucs-modelsvc`):
//! `MODEL <resource> [<task>]` returns the server's merged discomfort
//! model (epoch, sample counts, and the quantile sketch in its text
//! encoding), and `ADVICE <resource> <task> <epsilon>` returns the
//! recommended borrowing level whose predicted discomfort probability
//! stays under `epsilon`. See [`wire::ClientMsg::Model`] and
//! [`wire::ClientMsg::Advice`].
//!
//! Two versioning exchanges keep the protocol evolvable without ever
//! breaking a deployed client: `HELLO <version>` negotiates the wire
//! version (agreeing on [`wire::WIRE_VERSION_BINARY`] switches the
//! connection to the `uucs-wire` binary framing; a legacy peer answers
//! `ERROR` and the connection stays text), and
//! `MODELDELTA <resource> <task|-> <since> <basecrc>` downloads only
//! the changed bins of a cached model (full-model fallback when the
//! server no longer retains — or cannot CRC-verify — the client's
//! epoch). See the *Protocol versioning* section of [`wire`].
//!
//! This crate defines:
//! * [`record::RunRecord`] — the result of one testcase run: how it ended
//!   (discomfort vs exhaustion), the time offset of the feedback, the
//!   last five contention values of each exercise function, and the
//!   monitoring summary (§2.3),
//! * [`snapshot::MachineSnapshot`] — the registration payload,
//! * [`walenc::WalEntry`] — the tagged payload encoding the server's
//!   write-ahead log (`uucs-wal`) journals per accepted mutation,
//! * [`wire`] — the line-oriented message framing used over TCP (and the
//!   in-memory transport used by tests).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod record;
pub mod repl;
pub mod snapshot;
pub mod walenc;
pub mod wire;

pub use record::{MonitorSummary, RunOutcome, RunRecord};
pub use repl::{read_repl_msg, write_repl_msg, ReplMsg};
pub use snapshot::MachineSnapshot;
pub use walenc::WalEntry;
pub use wire::{ClientMsg, ServerMsg, WIRE_VERSION_BINARY, WIRE_VERSION_TEXT};
