//! The `REPL` wire channel: leader → follower WAL shipping and
//! follower → leader acks/gossip, framed exactly like on-disk WAL
//! records.
//!
//! Replication reuses the log's own framing (`[len: u32 LE][crc: u32
//! LE][payload]`, CRC over length *and* payload — see
//! `uucs_wal::frame`) so a replication stream has the same corruption
//! story as a segment file: a torn frame at the end of a connection is
//! an interrupted send ([`std::io::ErrorKind::UnexpectedEof`],
//! retryable after reconnect), while a checksum mismatch is bit damage
//! ([`std::io::ErrorKind::InvalidData`]) and the receiver must drop the
//! connection rather than apply a half-trusted entry.
//!
//! Inside a frame the payload is a text header line — the same
//! line-oriented style as the client protocol — optionally followed by
//! a binary body after the first newline:
//!
//! ```text
//! HELLO <node> <epoch> [<shard>:<seq> ...]  follower → leader: resume points
//! WELCOME <node> <epoch> <shards>         leader → follower: accepted
//! NOTLEADER <epoch>                       a non-leader refusing a HELLO
//! ENTRY <shard> <seq>\n<entry bytes>      one committed WAL entry
//! SNAPENTRY <shard>\n<entry bytes>        one folded (snapshot) entry
//! SNAPDONE <shard> <upto>                 snapshot complete; watermark jumps
//! COMMIT <shard> <upto>                   follower ack: applied below `upto`
//! GOSSIP <node> <epoch>\n<model text>     a node's own comfort-model state
//! PING <epoch>                            keepalive / epoch beacon
//! ```
//!
//! Per-shard sequence numbers are the leader's replication-log LSNs;
//! `COMMIT` carries the follower's next-expected sequence (an exclusive
//! watermark), which doubles as the resume point in a later `HELLO`.

use std::io::{self, Read, Write};
use uucs_wal::frame::{encode_frame, FrameError, FrameScanner, FRAME_HEADER, MAX_FRAME};

/// One message on the replication channel.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplMsg {
    /// Follower introduces itself with its per-shard resume points
    /// (`(shard, next wanted seq)`; absent shards resume at 0).
    Hello {
        /// The follower's node name.
        node: String,
        /// The cluster epoch the watermarks were earned under (0 =
        /// never synced). A mismatch with the leader's epoch means the
        /// sequence spaces are unrelated and the leader must send a
        /// full snapshot instead of a tail.
        epoch: u64,
        /// `(shard, next wanted sequence)` pairs.
        watermarks: Vec<(usize, u64)>,
    },
    /// Leader accepts a follower.
    Welcome {
        /// The leader's node name.
        node: String,
        /// The leader's cluster (takeover) epoch.
        epoch: u64,
        /// The leader's shard count — the width of every seq vector.
        shards: usize,
    },
    /// A node that is not (or no longer) the leader refusing a `HELLO`.
    NotLeader {
        /// The refusing node's view of the cluster epoch.
        epoch: u64,
    },
    /// One committed WAL entry, with its per-shard sequence number.
    Entry {
        /// The leader shard this entry's key routes to.
        shard: usize,
        /// The entry's sequence in that shard's replication log.
        seq: u64,
        /// The [`crate::WalEntry`]-encoded payload.
        bytes: Vec<u8>,
    },
    /// One entry folded into a replication-log snapshot (backfill for a
    /// follower whose watermark predates a compaction). Carries no
    /// sequence: the watermark jumps at the closing [`ReplMsg::SnapDone`].
    SnapEntry {
        /// The leader shard being backfilled.
        shard: usize,
        /// The [`crate::WalEntry`]-encoded payload.
        bytes: Vec<u8>,
    },
    /// Snapshot transfer for one shard is complete; the follower's
    /// watermark for it jumps to `upto`.
    SnapDone {
        /// The backfilled shard.
        shard: usize,
        /// The sequence the snapshot covers (exclusive).
        upto: u64,
    },
    /// Follower acknowledgement: everything below `upto` is applied.
    Commit {
        /// The acknowledged shard.
        shard: usize,
        /// The follower's next expected sequence (exclusive watermark).
        upto: u64,
    },
    /// A node's own comfort-model contribution, for gossip merging.
    Gossip {
        /// The contributing node's name.
        node: String,
        /// The contribution's epoch (monotone per node).
        epoch: u64,
        /// The `ComfortModel::encode` text.
        model: String,
    },
    /// Keepalive carrying the sender's cluster epoch.
    Ping {
        /// The sender's cluster epoch.
        epoch: u64,
    },
}

fn bad(what: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.into())
}

impl ReplMsg {
    /// Encodes the message payload (header line + optional binary body).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            ReplMsg::Hello {
                node,
                epoch,
                watermarks,
            } => {
                let mut line = format!("HELLO {node} {epoch}");
                for (shard, seq) in watermarks {
                    line.push_str(&format!(" {shard}:{seq}"));
                }
                line.into_bytes()
            }
            ReplMsg::Welcome {
                node,
                epoch,
                shards,
            } => format!("WELCOME {node} {epoch} {shards}").into_bytes(),
            ReplMsg::NotLeader { epoch } => format!("NOTLEADER {epoch}").into_bytes(),
            ReplMsg::Entry { shard, seq, bytes } => {
                let mut out = format!("ENTRY {shard} {seq}\n").into_bytes();
                out.extend_from_slice(bytes);
                out
            }
            ReplMsg::SnapEntry { shard, bytes } => {
                let mut out = format!("SNAPENTRY {shard}\n").into_bytes();
                out.extend_from_slice(bytes);
                out
            }
            ReplMsg::SnapDone { shard, upto } => format!("SNAPDONE {shard} {upto}").into_bytes(),
            ReplMsg::Commit { shard, upto } => format!("COMMIT {shard} {upto}").into_bytes(),
            ReplMsg::Gossip { node, epoch, model } => {
                let mut out = format!("GOSSIP {node} {epoch}\n").into_bytes();
                out.extend_from_slice(model.as_bytes());
                out
            }
            ReplMsg::Ping { epoch } => format!("PING {epoch}").into_bytes(),
        }
    }

    /// Decodes a payload produced by [`ReplMsg::encode`]. An unknown
    /// header verb is [`std::io::ErrorKind::Unsupported`] (a peer from
    /// the future); a malformed known message is `InvalidData`.
    pub fn decode(payload: &[u8]) -> io::Result<ReplMsg> {
        let (header, body) = match payload.iter().position(|&b| b == b'\n') {
            Some(nl) => (&payload[..nl], &payload[nl + 1..]),
            None => (payload, &[][..]),
        };
        let header = std::str::from_utf8(header)
            .map_err(|e| bad(format!("repl header is not utf-8: {e}")))?;
        let mut toks = header.split_whitespace();
        let verb = toks.next().unwrap_or("");
        let int = |t: Option<&str>, what: &str| -> io::Result<u64> {
            t.and_then(|s| s.parse().ok())
                .ok_or_else(|| bad(format!("{verb}: missing or bad {what}")))
        };
        let end = |mut toks: std::str::SplitWhitespace<'_>| -> io::Result<()> {
            match toks.next() {
                None => Ok(()),
                Some(extra) => Err(bad(format!("{verb}: trailing token {extra:?}"))),
            }
        };
        match verb {
            "HELLO" => {
                let node = toks
                    .next()
                    .ok_or_else(|| bad("HELLO: missing node"))?
                    .to_string();
                let epoch = int(toks.next(), "epoch")?;
                let mut watermarks = Vec::new();
                for pair in toks {
                    let (s, q) = pair
                        .split_once(':')
                        .ok_or_else(|| bad(format!("HELLO: bad watermark {pair:?}")))?;
                    let shard = s
                        .parse()
                        .map_err(|_| bad(format!("HELLO: bad shard {s:?}")))?;
                    let seq = q.parse().map_err(|_| bad(format!("HELLO: bad seq {q:?}")))?;
                    watermarks.push((shard, seq));
                }
                Ok(ReplMsg::Hello {
                    node,
                    epoch,
                    watermarks,
                })
            }
            "WELCOME" => {
                let node = toks
                    .next()
                    .ok_or_else(|| bad("WELCOME: missing node"))?
                    .to_string();
                let epoch = int(toks.next(), "epoch")?;
                let shards = int(toks.next(), "shards")? as usize;
                end(toks)?;
                Ok(ReplMsg::Welcome {
                    node,
                    epoch,
                    shards,
                })
            }
            "NOTLEADER" => {
                let epoch = int(toks.next(), "epoch")?;
                end(toks)?;
                Ok(ReplMsg::NotLeader { epoch })
            }
            "ENTRY" => {
                let shard = int(toks.next(), "shard")? as usize;
                let seq = int(toks.next(), "seq")?;
                end(toks)?;
                Ok(ReplMsg::Entry {
                    shard,
                    seq,
                    bytes: body.to_vec(),
                })
            }
            "SNAPENTRY" => {
                let shard = int(toks.next(), "shard")? as usize;
                end(toks)?;
                Ok(ReplMsg::SnapEntry {
                    shard,
                    bytes: body.to_vec(),
                })
            }
            "SNAPDONE" => {
                let shard = int(toks.next(), "shard")? as usize;
                let upto = int(toks.next(), "upto")?;
                end(toks)?;
                Ok(ReplMsg::SnapDone { shard, upto })
            }
            "COMMIT" => {
                let shard = int(toks.next(), "shard")? as usize;
                let upto = int(toks.next(), "upto")?;
                end(toks)?;
                Ok(ReplMsg::Commit { shard, upto })
            }
            "GOSSIP" => {
                let node = toks
                    .next()
                    .ok_or_else(|| bad("GOSSIP: missing node"))?
                    .to_string();
                let epoch = int(toks.next(), "epoch")?;
                end(toks)?;
                let model = std::str::from_utf8(body)
                    .map_err(|e| bad(format!("GOSSIP: model is not utf-8: {e}")))?
                    .to_string();
                Ok(ReplMsg::Gossip { node, epoch, model })
            }
            "PING" => {
                let epoch = int(toks.next(), "epoch")?;
                end(toks)?;
                Ok(ReplMsg::Ping { epoch })
            }
            other => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                format!("unknown repl verb {other:?}"),
            )),
        }
    }
}

/// Writes one message as a CRC-framed record.
pub fn write_repl_msg<W: Write>(w: &mut W, msg: &ReplMsg) -> io::Result<()> {
    w.write_all(&encode_frame(&msg.encode()))?;
    w.flush()
}

/// Reads one CRC-framed message.
///
/// * Clean EOF before any byte → `Ok(None)` (the peer hung up between
///   frames).
/// * EOF mid-frame → [`std::io::ErrorKind::UnexpectedEof`]: a torn
///   frame, the retryable signature of an interrupted send.
/// * CRC mismatch or an implausible length → `InvalidData`: the frame
///   arrived whole but damaged; nothing after it can be trusted.
pub fn read_repl_msg<R: Read>(r: &mut R) -> io::Result<Option<ReplMsg>> {
    let mut header = [0u8; FRAME_HEADER];
    let mut got = 0;
    while got < header.len() {
        match r.read(&mut header[got..])? {
            0 if got == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "torn repl frame: incomplete header",
                ))
            }
            n => got += n,
        }
    }
    let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes"));
    if len > MAX_FRAME {
        return Err(bad(format!("implausible repl frame length {len}")));
    }
    let mut buf = Vec::with_capacity(FRAME_HEADER + len as usize);
    buf.extend_from_slice(&header);
    buf.resize(FRAME_HEADER + len as usize, 0);
    r.read_exact(&mut buf[FRAME_HEADER..]).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "torn repl frame: payload cut short",
            )
        } else {
            e
        }
    })?;
    match FrameScanner::new(&buf).next() {
        Some(Ok((_, payload))) => ReplMsg::decode(payload).map(Some),
        Some(Err(FrameError::Corrupt { detail, .. })) => {
            Err(bad(format!("corrupt repl frame: {detail}")))
        }
        Some(Err(FrameError::Torn { reason, .. })) => Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            format!("torn repl frame: {reason}"),
        )),
        None => Err(bad("empty repl frame buffer")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<ReplMsg> {
        vec![
            ReplMsg::Hello {
                node: "n2".into(),
                epoch: 2,
                watermarks: vec![(0, 7), (3, 0)],
            },
            ReplMsg::Hello {
                node: "fresh".into(),
                epoch: 0,
                watermarks: vec![],
            },
            ReplMsg::Welcome {
                node: "n1".into(),
                epoch: 4,
                shards: 8,
            },
            ReplMsg::NotLeader { epoch: 5 },
            ReplMsg::Entry {
                shard: 2,
                seq: 99,
                bytes: b"Bsome entry\nbody\n".to_vec(),
            },
            ReplMsg::SnapEntry {
                shard: 1,
                bytes: b"Canother\nentry\n".to_vec(),
            },
            ReplMsg::SnapDone { shard: 1, upto: 41 },
            ReplMsg::Commit { shard: 0, upto: 12 },
            ReplMsg::Gossip {
                node: "n2".into(),
                epoch: 3,
                model: "MODEL 3 0\nEND\n".into(),
            },
            ReplMsg::Ping { epoch: 9 },
        ]
    }

    #[test]
    fn roundtrip_all_variants() {
        for msg in samples() {
            assert_eq!(ReplMsg::decode(&msg.encode()).unwrap(), msg, "{msg:?}");
        }
    }

    #[test]
    fn stream_roundtrip_preserves_order() {
        let msgs = samples();
        let mut wire = Vec::new();
        for m in &msgs {
            write_repl_msg(&mut wire, m).unwrap();
        }
        let mut r = &wire[..];
        for want in &msgs {
            assert_eq!(read_repl_msg(&mut r).unwrap().as_ref(), Some(want));
        }
        assert_eq!(read_repl_msg(&mut r).unwrap(), None, "clean EOF at end");
    }

    /// Every strict prefix of a framed message is a torn frame
    /// (`UnexpectedEof`, retryable) — never a decode of the wrong thing.
    #[test]
    fn every_truncation_is_torn() {
        let mut wire = Vec::new();
        write_repl_msg(
            &mut wire,
            &ReplMsg::Entry {
                shard: 1,
                seq: 5,
                bytes: b"Bpayload".to_vec(),
            },
        )
        .unwrap();
        for cut in 1..wire.len() {
            let mut r = &wire[..cut];
            let err = read_repl_msg(&mut r).unwrap_err();
            assert_eq!(
                err.kind(),
                io::ErrorKind::UnexpectedEof,
                "cut at {cut}: {err}"
            );
        }
    }

    /// A bit flip anywhere in a complete frame is caught by the CRC and
    /// reported as `InvalidData` — the receiver must not apply it.
    #[test]
    fn bit_flips_are_rejected_by_crc() {
        let mut wire = Vec::new();
        write_repl_msg(
            &mut wire,
            &ReplMsg::Entry {
                shard: 0,
                seq: 1,
                bytes: b"Bsome bytes that matter".to_vec(),
            },
        )
        .unwrap();
        // Flip one byte in the CRC field, the header text, and the body.
        for bad_at in [5usize, 10, wire.len() - 2] {
            let mut copy = wire.clone();
            copy[bad_at] ^= 0x20;
            let mut r = &copy[..];
            let err = read_repl_msg(&mut r).unwrap_err();
            assert_eq!(
                err.kind(),
                io::ErrorKind::InvalidData,
                "flip at {bad_at}: {err}"
            );
        }
    }

    #[test]
    fn unknown_verb_is_unsupported() {
        let err = ReplMsg::decode(b"WARP 9").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Unsupported);
    }

    #[test]
    fn malformed_known_messages_are_invalid_data() {
        for payload in [
            &b"HELLO"[..],
            b"HELLO n",
            b"HELLO n 1 0;7",
            b"WELCOME n notanumber 4",
            b"ENTRY 0",
            b"ENTRY 0 1 extra",
            b"SNAPDONE 0",
            b"COMMIT x 1",
            b"GOSSIP n",
            b"PING",
        ] {
            let err = ReplMsg::decode(payload).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{payload:?}");
        }
    }
}
