//! Line-oriented wire framing for the client/server exchanges.
//!
//! Both interactions are client-initiated (§2): registration and hot
//! sync. Messages are text blocks over any `Read`/`Write` pair (TCP in
//! production, an in-memory duplex in tests):
//!
//! ```text
//! client -> server                  server -> client
//! ----------------                  ----------------
//! REGISTER + snapshot block         ID <guid> <applied-seq>
//! SYNC <client-id> <have> <want>    TESTCASES <n> + n testcase blocks
//! UPLOAD <client-id> <n> <seq>      ACK <n>
//!   + n record blocks
//! MODEL <resource> [<task>]         MODEL <epoch> <observed> <censored> <sketch>
//! ADVICE <resource> <task> <eps>    ADVICE <epoch> <level>
//! STATS [RESET]                     STATS <json>
//! BYE                               (connection closes)
//!                                   ERROR <message>   (any time)
//! ```
//!
//! `MODEL` and `ADVICE` are the model-service verbs (`uucs-modelsvc`).
//! `MODEL` returns the server's merged comfort model for a resource
//! (optionally narrowed to one foreground task): the model epoch, the
//! observed/censored sample counts, and the merged quantile sketch as
//! its single-token text encoding — the same bytes the server journals,
//! so a client can cache and re-decode it offline. `ADVICE` asks the
//! server to evaluate the model instead: it answers with the epoch and
//! the recommended borrowing level whose predicted discomfort
//! probability stays under `eps` (the paper's `c_0.05` statistic is
//! `eps = 0.05`). `eps` must be a finite probability strictly inside
//! `(0, 1)`; anything else is malformed, not a boundary case — an
//! epsilon of 0 or 1 would always/never censor and signals a confused
//! client. Both replies are single lines, so the framing inherits the
//! strict-prefix-never-parses property of every other header.
//!
//! `STATS` is the observability verb: the server answers with its
//! telemetry registry encoded as a single line of JSON (sorted keys,
//! integer values — see `uucs-telemetry`), covering per-verb request
//! counts and latency histograms, WAL append/fsync/compaction timings,
//! and connection gauges. `STATS RESET` zeroes every metric *after*
//! taking the snapshot, so tests can fence measurement windows. Being a
//! plain header line, the verb rides the existing forward-compatibility
//! rule: an older server answers `ERROR` and keeps the connection.
//!
//! `seq` is the client's monotonically increasing batch sequence number;
//! it makes `UPLOAD` idempotent (a server that already applied the batch
//! acks again without storing a second copy, so retrying after a lost
//! `ACK` is safe). A missing `seq` token (older clients) parses as `0`,
//! which means "no idempotency" and is always applied.
//!
//! `applied-seq` in the `ID` reply is the server's upload dedup horizon
//! for the (possibly pre-existing) identity it just resolved: the
//! highest batch sequence number it has applied for that client. A
//! client whose local counter was lost (wiped store) fast-forwards to
//! it at registration, so its next batch lands *above* the horizon
//! instead of being silently discarded as a replay. A missing token
//! (older servers) parses as `0`, which never fast-forwards anything.
//!
//! Forward compatibility: an unknown *header* tag is reported as
//! [`std::io::ErrorKind::Unsupported`], distinct from the
//! `InvalidData` used for malformed known messages. A server can answer
//! `ERROR` and keep the connection alive after `Unsupported` (the read
//! stopped at a clean line boundary), but must drop it after
//! `InvalidData` (framing may be torn mid-block).
//!
//! # Protocol versioning
//!
//! The text protocol above is **wire version 1** and is never
//! renegotiated away: a connection always *starts* in text, and a
//! server must keep answering v1 clients byte-for-byte forever. Two
//! verbs ride the forward-compatibility rule to let newer peers opt
//! into more:
//!
//! * `HELLO <version>` ([`ClientMsg::Hello`]) — version negotiation.
//!   A v2-capable client sends it as its *first* message; a v2 server
//!   answers `HELLO <min(2, requested)>` and, when the agreed version
//!   is [`WIRE_VERSION_BINARY`], both sides switch the connection to
//!   the length-prefixed CRC-checked binary framing of `uucs-wire`
//!   (request pipelining, typed encodings). A legacy server answers
//!   `ERROR` — the unknown-header rule — and the client simply stays
//!   in text. Legacy clients never send `HELLO`, so their byte stream
//!   is untouched by this extension.
//! * `MODELDELTA <resource> <task|-> <since> <basecrc>`
//!   ([`ClientMsg::ModelDelta`]) — epoch-delta model download: "I hold
//!   the merged sketch of model epoch `since`, whose encoded form has
//!   CRC32 `basecrc`; send only what changed." A v2 server that still
//!   retains that epoch *and* whose retained encoding matches the CRC
//!   answers [`ServerMsg::ModelDelta`] with a changed-bin delta
//!   (`uucs_modelsvc::SketchDelta`); otherwise it falls back to a full
//!   [`ServerMsg::Model`] reply, which a delta-aware client must also
//!   accept. A legacy server answers `ERROR`, and the client retries
//!   as a plain `MODEL` query. The CRC guard matters after failover: a
//!   freshly promoted leader may reuse epoch numbers for different
//!   model states, and a delta applied to the wrong base would
//!   silently diverge — the CRC (plus the delta's own base-total
//!   cross-checks) turns that into a clean full-download.
//!
//! Version constants live here ([`WIRE_VERSION_TEXT`],
//! [`WIRE_VERSION_BINARY`]); the binary framing itself lives in the
//! `uucs-wire` crate so this crate stays transport-agnostic.

use crate::record::RunRecord;
use crate::snapshot::MachineSnapshot;
use std::io::{BufRead, Write};
use uucs_modelsvc::{QuantileSketch, SketchDelta};
use uucs_testcase::{format as tcformat, Resource, Testcase};

/// Wire version 1: the line-oriented text protocol this module frames.
/// Every connection starts here; it is the permanent fallback.
pub const WIRE_VERSION_TEXT: u32 = 1;

/// Wire version 2: the negotiated binary framing implemented by the
/// `uucs-wire` crate (length-prefixed CRC-checked frames, request
/// pipelining, typed encodings, batched uploads).
pub const WIRE_VERSION_BINARY: u32 = 2;

/// Anything that can answer client messages — the server implements this,
/// and the client's in-memory transport calls it directly (the same
/// handler that backs the TCP listener), so tests exercise identical
/// server logic without sockets.
pub trait Endpoint: Send + Sync {
    /// Handles one client message, producing the reply.
    fn handle(&self, msg: &ClientMsg) -> ServerMsg;
}

/// Messages a client sends.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientMsg {
    /// Negotiate the wire version (`HELLO <version>`): "I speak up to
    /// `version`." Expects [`ServerMsg::Hello`] with the agreed version
    /// (the minimum of both sides), or `ERROR` from a legacy server —
    /// which means "text only". Must be the first message on a
    /// connection; the agreed version takes effect for everything
    /// after the reply.
    Hello {
        /// The highest wire version the client speaks.
        version: u32,
    },
    /// Register this machine; expects [`ServerMsg::Id`].
    Register {
        /// The machine being registered.
        snapshot: MachineSnapshot,
        /// A client-generated idempotency token (empty = legacy
        /// registration). Re-registering with a token the server has
        /// seen returns the *same* GUID instead of minting a new one,
        /// so a registration retried after a lost `ID` reply cannot
        /// create a duplicate client.
        token: String,
    },
    /// Request up to `want` testcases the client does not yet have (it
    /// holds `have`); expects [`ServerMsg::Testcases`].
    Sync {
        /// The client's GUID.
        client: String,
        /// How many testcases the client already holds.
        have: usize,
        /// Upper bound on how many new testcases to send.
        want: usize,
    },
    /// Upload result records; expects [`ServerMsg::Ack`].
    Upload {
        /// The client's GUID.
        client: String,
        /// The client's batch sequence number: strictly increasing per
        /// client, `0` for legacy non-idempotent uploads. Retransmitting
        /// a `(client, seq)` batch the server already applied yields a
        /// fresh `ACK` and no second copy.
        seq: u64,
        /// The result records.
        records: Vec<RunRecord>,
    },
    /// Request the merged comfort model for a resource (optionally
    /// narrowed to one foreground task); expects [`ServerMsg::Model`].
    Model {
        /// The borrowed resource the model describes.
        resource: Resource,
        /// Narrow to this foreground task's cohorts; `None` merges
        /// every cohort of the resource. Task names are single wire
        /// tokens (the record format already guarantees this).
        task: Option<String>,
    },
    /// Request only what changed in the merged comfort model since the
    /// epoch the client already holds
    /// (`MODELDELTA <resource> <task|-> <since> <basecrc>`); expects
    /// [`ServerMsg::ModelDelta`], or a full [`ServerMsg::Model`] when
    /// the server no longer retains that epoch (or its retained
    /// encoding's CRC32 disagrees with `basecrc`).
    ModelDelta {
        /// The borrowed resource the model describes.
        resource: Resource,
        /// Narrow to this foreground task's cohorts; `None` (wire
        /// token `-`) merges every cohort of the resource.
        task: Option<String>,
        /// The model epoch of the client's cached merged sketch.
        since: u64,
        /// CRC32 (the WAL polynomial, `uucs_wal::crc::crc32`) of the
        /// cached sketch's text encoding — proof the client's base is
        /// the same bytes the server retained for `since`, not a
        /// different server's coincidentally equal epoch number.
        basecrc: u32,
    },
    /// Request a recommended borrowing level; expects
    /// [`ServerMsg::Advice`].
    Advice {
        /// The borrowed resource.
        resource: Resource,
        /// The foreground task the client is about to run under.
        task: String,
        /// Target discomfort probability, strictly inside `(0, 1)`.
        epsilon: f64,
    },
    /// Request the server's telemetry snapshot; expects
    /// [`ServerMsg::Stats`].
    Stats {
        /// Zero every metric after snapshotting, so the next `STATS`
        /// reflects only traffic since this one — used by tests to
        /// fence measurement windows.
        reset: bool,
    },
    /// Close the session.
    Bye,
}

/// Messages a server sends.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerMsg {
    /// The negotiated wire version for this connection, answering a
    /// [`ClientMsg::Hello`]: `min(server max, client requested)`. When
    /// it names [`WIRE_VERSION_BINARY`], both sides switch framing
    /// immediately after this reply.
    Hello {
        /// The agreed wire version.
        version: u32,
    },
    /// The GUID assigned (or re-resolved, for a known idempotency token)
    /// at registration, together with the server's applied upload-batch
    /// horizon for that identity.
    Id {
        /// The client's GUID.
        id: String,
        /// The highest upload batch sequence number the server has
        /// applied for this client (0 if it never uploaded with
        /// sequence numbers). A re-registering client fast-forwards its
        /// own counter to this, so a wiped client cannot resume below
        /// the dedup horizon and have its new batches discarded as
        /// replays.
        applied_seq: u64,
    },
    /// New testcases for the client.
    Testcases(Vec<Testcase>),
    /// Acknowledgment of `n` uploaded records.
    Ack(usize),
    /// The merged comfort model for a [`ClientMsg::Model`] query.
    Model {
        /// The model epoch the sketch was merged at.
        epoch: u64,
        /// Observed (feedback) samples in the merged sketch.
        observed: u64,
        /// Censored (exhausted-without-feedback) samples.
        censored: u64,
        /// The merged quantile sketch, in its single-token text
        /// encoding (`uucs_modelsvc::QuantileSketch::encode`). The
        /// reader deep-validates it, so a [`ServerMsg::Model`] in hand
        /// always decodes.
        sketch: String,
    },
    /// The changed-bin delta for a [`ClientMsg::ModelDelta`] query
    /// (`MODELDELTA <epoch> <since> <delta>`): what advances the
    /// client's cached epoch-`since` sketch to the server's current
    /// `epoch`. Only sent when the server verified the client's base
    /// CRC; otherwise the server answers a full [`ServerMsg::Model`].
    ModelDelta {
        /// The model epoch the delta advances the client to.
        epoch: u64,
        /// The base epoch the delta was computed against (echoes the
        /// query, so a pipelining client can sanity-check pairing).
        since: u64,
        /// The delta in its single-token text encoding
        /// (`uucs_modelsvc::SketchDelta::encode`). The reader
        /// deep-validates it, so a reply in hand always decodes.
        delta: String,
    },
    /// The recommendation for a [`ClientMsg::Advice`] query.
    Advice {
        /// The model epoch the recommendation was computed at.
        epoch: u64,
        /// The recommended borrowing level (contention value).
        level: f64,
    },
    /// The server's telemetry snapshot: one line of JSON (the
    /// `uucs-telemetry` registry encoding). Opaque to the protocol
    /// layer — it is framed, not parsed, here.
    Stats(String),
    /// Protocol error.
    Error(String),
}

impl ClientMsg {
    /// A registration with no idempotency token (the pre-token wire
    /// format): every such registration mints a fresh GUID.
    pub fn register(snapshot: MachineSnapshot) -> Self {
        ClientMsg::Register {
            snapshot,
            token: String::new(),
        }
    }
}

impl ServerMsg {
    /// An `ID` reply for a fresh identity (applied horizon 0) — the
    /// common case in tests and mock endpoints.
    pub fn id(id: impl Into<String>) -> Self {
        ServerMsg::Id {
            id: id.into(),
            applied_seq: 0,
        }
    }
}

/// Writes a client message to a stream.
pub fn write_client_msg(w: &mut impl Write, msg: &ClientMsg) -> std::io::Result<()> {
    match msg {
        ClientMsg::Hello { version } => {
            writeln!(w, "HELLO {version}")?;
        }
        ClientMsg::Register { snapshot, token } => {
            if token.is_empty() {
                writeln!(w, "REGISTER")?;
            } else {
                writeln!(w, "REGISTER {token}")?;
            }
            w.write_all(snapshot.emit().as_bytes())?;
        }
        ClientMsg::Sync { client, have, want } => {
            writeln!(w, "SYNC {client} {have} {want}")?;
        }
        ClientMsg::Upload {
            client,
            seq,
            records,
        } => {
            writeln!(w, "UPLOAD {client} {} {seq}", records.len())?;
            w.write_all(RunRecord::emit_many(records).as_bytes())?;
        }
        ClientMsg::Model { resource, task } => match task {
            Some(task) => {
                check_token("MODEL task", task)?;
                writeln!(w, "MODEL {resource} {task}")?;
            }
            None => writeln!(w, "MODEL {resource}")?,
        },
        ClientMsg::ModelDelta {
            resource,
            task,
            since,
            basecrc,
        } => {
            let task = match task {
                Some(task) => {
                    check_token("MODELDELTA task", task)?;
                    if task == "-" {
                        // "-" is the on-wire spelling of "no task"; a
                        // task literally named "-" would read back as
                        // None and silently widen the query.
                        return Err(proto_err("MODELDELTA task must not be \"-\""));
                    }
                    task.as_str()
                }
                None => "-",
            };
            writeln!(w, "MODELDELTA {resource} {task} {since} {basecrc}")?;
        }
        ClientMsg::Advice {
            resource,
            task,
            epsilon,
        } => {
            check_token("ADVICE task", task)?;
            check_epsilon(*epsilon)?;
            writeln!(w, "ADVICE {resource} {task} {epsilon}")?;
        }
        ClientMsg::Stats { reset } => {
            if *reset {
                writeln!(w, "STATS RESET")?;
            } else {
                writeln!(w, "STATS")?;
            }
        }
        ClientMsg::Bye => writeln!(w, "BYE")?,
    }
    w.flush()
}

/// Writes a server message to a stream.
pub fn write_server_msg(w: &mut impl Write, msg: &ServerMsg) -> std::io::Result<()> {
    match msg {
        ServerMsg::Hello { version } => writeln!(w, "HELLO {version}")?,
        ServerMsg::Id { id, applied_seq } => writeln!(w, "ID {id} {applied_seq}")?,
        ServerMsg::Testcases(tcs) => {
            writeln!(w, "TESTCASES {}", tcs.len())?;
            w.write_all(tcformat::emit_many(tcs).as_bytes())?;
        }
        ServerMsg::Ack(n) => writeln!(w, "ACK {n}")?,
        ServerMsg::Model {
            epoch,
            observed,
            censored,
            sketch,
        } => {
            // The sketch encoding is one whitespace-free token by
            // construction; anything else would tear the frame.
            check_token("MODEL sketch", sketch)?;
            writeln!(w, "MODEL {epoch} {observed} {censored} {sketch}")?;
        }
        ServerMsg::ModelDelta {
            epoch,
            since,
            delta,
        } => {
            // The delta encoding is one whitespace-free token by
            // construction; anything else would tear the frame.
            check_token("MODELDELTA delta", delta)?;
            writeln!(w, "MODELDELTA {epoch} {since} {delta}")?;
        }
        ServerMsg::Advice { epoch, level } => {
            if !level.is_finite() {
                return Err(proto_err("ADVICE level must be finite"));
            }
            writeln!(w, "ADVICE {epoch} {level}")?;
        }
        ServerMsg::Stats(json) => {
            // The snapshot is one line by construction; a stray newline
            // would tear the frame, so refuse to emit one.
            if json.contains('\n') {
                return Err(proto_err("STATS payload must be a single line"));
            }
            writeln!(w, "STATS {json}")?;
        }
        ServerMsg::Error(e) => writeln!(w, "ERROR {e}")?,
    }
    w.flush()
}

/// Reads lines until a block terminator (`END` at depth zero) completes
/// `n` blocks, returning the collected text.
fn read_blocks(r: &mut impl BufRead, n: usize) -> std::io::Result<String> {
    let mut out = String::new();
    let mut remaining = n;
    let mut line = String::new();
    while remaining > 0 {
        line.clear();
        if r.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "stream ended mid-block",
            ));
        }
        if !line.ends_with('\n') {
            // A line without its terminator is a torn frame: the stream
            // died mid-line, and the fragment must not be interpreted
            // (a content line cut down to exactly "END" would otherwise
            // falsely close the block).
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "stream ended mid-line inside block",
            ));
        }
        if line.trim() == "END" {
            remaining -= 1;
        }
        out.push_str(&line);
    }
    Ok(out)
}

fn proto_err(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.into())
}

/// Fields spliced into a header line must be single non-empty tokens —
/// embedded whitespace would shift every later token and tear the frame.
fn check_token(what: &str, s: &str) -> std::io::Result<()> {
    if s.is_empty() || s.chars().any(|c| c.is_whitespace()) {
        return Err(proto_err(format!("{what} must be one non-empty token")));
    }
    Ok(())
}

/// A target discomfort probability must lie strictly inside `(0, 1)`:
/// 0 asks for a level no user would ever mind (always the minimum), 1
/// for one every user minds — both signal a confused client, and NaN
/// or an infinity would poison every comparison downstream.
fn check_epsilon(epsilon: f64) -> std::io::Result<()> {
    if !epsilon.is_finite() || epsilon <= 0.0 || epsilon >= 1.0 {
        return Err(proto_err(format!(
            "ADVICE epsilon must be in (0, 1), got {epsilon}"
        )));
    }
    Ok(())
}

/// A header line that arrived without its `'\n'` terminator means the
/// stream ended mid-frame. The fragment must never be parsed: `"ID
/// client-0001\n"` cut after three bytes would otherwise read as a valid
/// registration reply carrying an empty id, which the client would cache
/// forever.
fn torn_err(what: &str) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::UnexpectedEof,
        format!("stream ended mid-line reading {what} (torn frame)"),
    )
}

fn unsupported_err(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::Unsupported, msg.into())
}

/// Reads one client message. Returns `Ok(None)` on clean EOF before any
/// header line.
pub fn read_client_msg(r: &mut impl BufRead) -> std::io::Result<Option<ClientMsg>> {
    let mut header = String::new();
    loop {
        header.clear();
        if r.read_line(&mut header)? == 0 {
            return Ok(None);
        }
        if !header.ends_with('\n') {
            return Err(torn_err("client header"));
        }
        if !header.trim().is_empty() {
            break;
        }
    }
    let header = header.trim().to_string();
    let mut toks = header.split_whitespace();
    match toks.next() {
        Some("HELLO") => {
            let version: u32 = toks
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| proto_err("bad HELLO version"))?;
            if version == 0 {
                return Err(proto_err("HELLO version must be positive"));
            }
            if toks.next().is_some() {
                return Err(proto_err("trailing tokens after HELLO"));
            }
            Ok(Some(ClientMsg::Hello { version }))
        }
        Some("REGISTER") => {
            let token = toks.next().unwrap_or("").to_string();
            let body = read_blocks(r, 1)?;
            let snapshot = MachineSnapshot::parse(&body).map_err(proto_err)?;
            Ok(Some(ClientMsg::Register { snapshot, token }))
        }
        Some("SYNC") => {
            let client = toks.next().ok_or_else(|| proto_err("SYNC missing id"))?;
            let have: usize = toks
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| proto_err("SYNC missing have"))?;
            let want: usize = toks
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| proto_err("SYNC missing want"))?;
            Ok(Some(ClientMsg::Sync {
                client: client.to_string(),
                have,
                want,
            }))
        }
        Some("UPLOAD") => {
            let client = toks.next().ok_or_else(|| proto_err("UPLOAD missing id"))?;
            let n: usize = toks
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| proto_err("UPLOAD missing count"))?;
            // Optional 4th token: the batch sequence number (0 = legacy
            // non-idempotent upload from an older client).
            let seq: u64 = match toks.next() {
                Some(t) => t.parse().map_err(|_| proto_err("bad UPLOAD seq"))?,
                None => 0,
            };
            let body = read_blocks(r, n)?;
            let records = RunRecord::parse_many(&body).map_err(proto_err)?;
            if records.len() != n {
                return Err(proto_err(format!(
                    "UPLOAD promised {n} records, parsed {}",
                    records.len()
                )));
            }
            Ok(Some(ClientMsg::Upload {
                client: client.to_string(),
                seq,
                records,
            }))
        }
        Some("MODEL") => {
            let resource: Resource = toks
                .next()
                .ok_or_else(|| proto_err("MODEL missing resource"))?
                .parse()
                .map_err(|_| proto_err("bad MODEL resource"))?;
            let task = toks.next().map(str::to_string);
            if toks.next().is_some() {
                return Err(proto_err("trailing tokens after MODEL"));
            }
            Ok(Some(ClientMsg::Model { resource, task }))
        }
        Some("MODELDELTA") => {
            let resource: Resource = toks
                .next()
                .ok_or_else(|| proto_err("MODELDELTA missing resource"))?
                .parse()
                .map_err(|_| proto_err("bad MODELDELTA resource"))?;
            let task = match toks.next() {
                Some("-") => None,
                Some(t) => Some(t.to_string()),
                None => return Err(proto_err("MODELDELTA missing task")),
            };
            let since: u64 = toks
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| proto_err("bad MODELDELTA since epoch"))?;
            let basecrc: u32 = toks
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| proto_err("bad MODELDELTA base crc"))?;
            if toks.next().is_some() {
                return Err(proto_err("trailing tokens after MODELDELTA"));
            }
            Ok(Some(ClientMsg::ModelDelta {
                resource,
                task,
                since,
                basecrc,
            }))
        }
        Some("ADVICE") => {
            let resource: Resource = toks
                .next()
                .ok_or_else(|| proto_err("ADVICE missing resource"))?
                .parse()
                .map_err(|_| proto_err("bad ADVICE resource"))?;
            let task = toks
                .next()
                .ok_or_else(|| proto_err("ADVICE missing task"))?
                .to_string();
            let epsilon: f64 = toks
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| proto_err("bad ADVICE epsilon"))?;
            check_epsilon(epsilon)?;
            if toks.next().is_some() {
                return Err(proto_err("trailing tokens after ADVICE"));
            }
            Ok(Some(ClientMsg::Advice {
                resource,
                task,
                epsilon,
            }))
        }
        Some("STATS") => {
            let reset = match toks.next() {
                None => false,
                Some("RESET") => true,
                Some(other) => return Err(proto_err(format!("bad STATS modifier {other:?}"))),
            };
            Ok(Some(ClientMsg::Stats { reset }))
        }
        Some("BYE") => Ok(Some(ClientMsg::Bye)),
        other => Err(unsupported_err(format!("unknown client message {other:?}"))),
    }
}

/// Reads one server message.
pub fn read_server_msg(r: &mut impl BufRead) -> std::io::Result<ServerMsg> {
    let mut header = String::new();
    loop {
        header.clear();
        if r.read_line(&mut header)? == 0 {
            // EOF where a reply was due is a *connection* failure, not
            // malformed data: the peer (or a middlebox) closed on us,
            // which a resilient client should treat as retryable —
            // unlike `InvalidData`, which marks bytes that can never
            // parse no matter how often they are re-requested.
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed awaiting server message",
            ));
        }
        if !header.ends_with('\n') {
            return Err(torn_err("server header"));
        }
        if !header.trim().is_empty() {
            break;
        }
    }
    let header = header.trim().to_string();
    let (kind, rest) = header.split_once(' ').unwrap_or((header.as_str(), ""));
    match kind {
        "HELLO" => {
            let mut toks = rest.split_whitespace();
            let version: u32 = toks
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| proto_err("bad HELLO version"))?;
            if version == 0 || toks.next().is_some() {
                return Err(proto_err("bad HELLO reply"));
            }
            Ok(ServerMsg::Hello { version })
        }
        "ID" => {
            let mut toks = rest.split_whitespace();
            let id = toks
                .next()
                .ok_or_else(|| proto_err("ID missing client id"))?;
            // Optional 2nd token: the applied upload horizon (0 = an
            // older server that does not report one).
            let applied_seq: u64 = match toks.next() {
                Some(t) => t.parse().map_err(|_| proto_err("bad ID applied-seq"))?,
                None => 0,
            };
            Ok(ServerMsg::Id {
                id: id.to_string(),
                applied_seq,
            })
        }
        "TESTCASES" => {
            let n: usize = rest
                .trim()
                .parse()
                .map_err(|_| proto_err("bad TESTCASES count"))?;
            let body = read_blocks(r, n)?;
            let tcs = tcformat::parse_many(&body)
                .map_err(|e| proto_err(format!("bad testcase block: {e}")))?;
            if tcs.len() != n {
                return Err(proto_err("TESTCASES count mismatch"));
            }
            Ok(ServerMsg::Testcases(tcs))
        }
        "ACK" => {
            let n: usize = rest.trim().parse().map_err(|_| proto_err("bad ACK"))?;
            Ok(ServerMsg::Ack(n))
        }
        "MODEL" => {
            let mut toks = rest.split_whitespace();
            let epoch: u64 = toks
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| proto_err("bad MODEL epoch"))?;
            let observed: u64 = toks
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| proto_err("bad MODEL observed count"))?;
            let censored: u64 = toks
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| proto_err("bad MODEL censored count"))?;
            let sketch = toks
                .next()
                .ok_or_else(|| proto_err("MODEL missing sketch"))?
                .to_string();
            if toks.next().is_some() {
                return Err(proto_err("trailing tokens after MODEL reply"));
            }
            // Deep-validate: a MODEL reply in hand must always decode,
            // and its counts must agree with the header's.
            let decoded = QuantileSketch::decode(&sketch)
                .map_err(|e| proto_err(format!("bad MODEL sketch: {e}")))?;
            if decoded.observed() != observed || decoded.censored() != censored {
                return Err(proto_err("MODEL counts disagree with sketch"));
            }
            Ok(ServerMsg::Model {
                epoch,
                observed,
                censored,
                sketch,
            })
        }
        "MODELDELTA" => {
            let mut toks = rest.split_whitespace();
            let epoch: u64 = toks
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| proto_err("bad MODELDELTA epoch"))?;
            let since: u64 = toks
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| proto_err("bad MODELDELTA since epoch"))?;
            let delta = toks
                .next()
                .ok_or_else(|| proto_err("MODELDELTA missing delta"))?
                .to_string();
            if toks.next().is_some() {
                return Err(proto_err("trailing tokens after MODELDELTA reply"));
            }
            // Deep-validate: a MODELDELTA reply in hand must always
            // decode (the delta encoding is self-checking, so a torn
            // token can never pass).
            SketchDelta::decode(&delta)
                .map_err(|e| proto_err(format!("bad MODELDELTA delta: {e}")))?;
            Ok(ServerMsg::ModelDelta {
                epoch,
                since,
                delta,
            })
        }
        "ADVICE" => {
            let mut toks = rest.split_whitespace();
            let epoch: u64 = toks
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| proto_err("bad ADVICE epoch"))?;
            let level: f64 = toks
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| proto_err("bad ADVICE level"))?;
            if !level.is_finite() || toks.next().is_some() {
                return Err(proto_err("bad ADVICE reply"));
            }
            Ok(ServerMsg::Advice { epoch, level })
        }
        // The whole rest-of-line is the JSON payload: it contains spaces
        // of its own, so it is captured raw rather than tokenized.
        "STATS" => Ok(ServerMsg::Stats(rest.to_string())),
        "ERROR" => Ok(ServerMsg::Error(rest.to_string())),
        other => Err(unsupported_err(format!("unknown server message {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{MonitorSummary, RunOutcome};
    use std::io::Cursor;
    use uucs_testcase::{ExerciseSpec, Resource};

    fn roundtrip_client(msg: ClientMsg) {
        let mut buf = Vec::new();
        write_client_msg(&mut buf, &msg).unwrap();
        let mut cur = Cursor::new(buf);
        let got = read_client_msg(&mut cur).unwrap().unwrap();
        assert_eq!(got, msg);
    }

    fn roundtrip_server(msg: ServerMsg) {
        let mut buf = Vec::new();
        write_server_msg(&mut buf, &msg).unwrap();
        let mut cur = Cursor::new(buf);
        let got = read_server_msg(&mut cur).unwrap();
        assert_eq!(got, msg);
    }

    fn record() -> RunRecord {
        RunRecord {
            client: "c1".into(),
            user: "u1".into(),
            testcase: "t1".into(),
            task: "Quake".into(),
            skill: "Power".into(),
            outcome: RunOutcome::Discomfort,
            offset_secs: 33.0,
            last_levels: vec![(Resource::Cpu, vec![0.5, 0.55])],
            monitor: MonitorSummary::default(),
        }
    }

    #[test]
    fn register_roundtrip() {
        roundtrip_client(ClientMsg::register(MachineSnapshot::study_machine("h1")));
        roundtrip_client(ClientMsg::Register {
            snapshot: MachineSnapshot::study_machine("h1"),
            token: "tok-00c0ffee".into(),
        });
    }

    #[test]
    fn sync_roundtrip() {
        roundtrip_client(ClientMsg::Sync {
            client: "c-9".into(),
            have: 12,
            want: 30,
        });
    }

    #[test]
    fn upload_roundtrip() {
        roundtrip_client(ClientMsg::Upload {
            client: "c-9".into(),
            seq: 17,
            records: vec![record(), record()],
        });
        roundtrip_client(ClientMsg::Upload {
            client: "c-9".into(),
            seq: 0,
            records: vec![],
        });
    }

    #[test]
    fn upload_without_seq_parses_as_legacy_zero() {
        // An older client omits the 4th token; it must still parse.
        let mut buf = Vec::new();
        writeln!(buf, "UPLOAD c1 0").unwrap();
        let mut cur = Cursor::new(buf);
        match read_client_msg(&mut cur).unwrap().unwrap() {
            ClientMsg::Upload { seq, records, .. } => {
                assert_eq!(seq, 0);
                assert!(records.is_empty());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bye_roundtrip() {
        roundtrip_client(ClientMsg::Bye);
    }

    /// A valid single-token sketch encoding for reply fixtures.
    fn sketch_token(observed: u64, censored: u64) -> String {
        let mut s = uucs_modelsvc::QuantileSketch::new(0.0, 10.0, 8);
        for i in 0..observed {
            s.insert(1.0 + i as f64 % 8.0);
        }
        for _ in 0..censored {
            s.insert_censored();
        }
        s.encode()
    }

    #[test]
    fn model_and_advice_roundtrip() {
        roundtrip_client(ClientMsg::Model {
            resource: Resource::Cpu,
            task: None,
        });
        roundtrip_client(ClientMsg::Model {
            resource: Resource::Disk,
            task: Some("Word".into()),
        });
        roundtrip_client(ClientMsg::Advice {
            resource: Resource::Memory,
            task: "Quake".into(),
            epsilon: 0.05,
        });
        roundtrip_server(ServerMsg::Model {
            epoch: 9,
            observed: 5,
            censored: 2,
            sketch: sketch_token(5, 2),
        });
        roundtrip_server(ServerMsg::Advice {
            epoch: 9,
            level: 4.25,
        });
    }

    /// A valid single-token delta encoding for reply fixtures: the
    /// delta that adds `extra` observations to a `(observed, censored)`
    /// base built by [`sketch_token`]'s construction.
    fn delta_token(observed: u64, censored: u64, extra: u64) -> String {
        let mut base = uucs_modelsvc::QuantileSketch::new(0.0, 10.0, 8);
        for i in 0..observed {
            base.insert(1.0 + i as f64 % 8.0);
        }
        for _ in 0..censored {
            base.insert_censored();
        }
        let mut target = base.clone();
        for i in 0..extra {
            target.insert(2.0 + i as f64 % 7.0);
        }
        target.delta_since(&base).unwrap().encode()
    }

    #[test]
    fn hello_roundtrip() {
        roundtrip_client(ClientMsg::Hello {
            version: WIRE_VERSION_BINARY,
        });
        roundtrip_client(ClientMsg::Hello { version: 7 });
        roundtrip_server(ServerMsg::Hello {
            version: WIRE_VERSION_TEXT,
        });
        roundtrip_server(ServerMsg::Hello {
            version: WIRE_VERSION_BINARY,
        });
    }

    #[test]
    fn hello_rejects_garbled_and_zero_versions() {
        for bad in ["HELLO\n", "HELLO x\n", "HELLO 0\n", "HELLO 2 3\n", "HELLO -1\n"] {
            let mut cur = Cursor::new(bad.as_bytes().to_vec());
            assert_eq!(
                read_client_msg(&mut cur).unwrap_err().kind(),
                std::io::ErrorKind::InvalidData,
                "{bad:?} must be InvalidData"
            );
            let mut cur = Cursor::new(bad.as_bytes().to_vec());
            assert_eq!(
                read_server_msg(&mut cur).unwrap_err().kind(),
                std::io::ErrorKind::InvalidData,
                "{bad:?} must be InvalidData"
            );
        }
    }

    #[test]
    fn modeldelta_roundtrip() {
        roundtrip_client(ClientMsg::ModelDelta {
            resource: Resource::Cpu,
            task: None,
            since: 12,
            basecrc: 0xdead_beef,
        });
        roundtrip_client(ClientMsg::ModelDelta {
            resource: Resource::Disk,
            task: Some("Word".into()),
            since: 0,
            basecrc: 0,
        });
        roundtrip_server(ServerMsg::ModelDelta {
            epoch: 14,
            since: 12,
            delta: delta_token(5, 2, 3),
        });
        // The no-op delta (model unchanged since the client's epoch).
        roundtrip_server(ServerMsg::ModelDelta {
            epoch: 12,
            since: 12,
            delta: delta_token(5, 2, 0),
        });
    }

    #[test]
    fn modeldelta_rejects_truncated_and_garbled_args() {
        for bad in [
            "MODELDELTA\n",                  // missing everything
            "MODELDELTA cpu\n",              // missing task
            "MODELDELTA gpu - 1 2\n",        // unknown resource
            "MODELDELTA cpu - 1\n",          // missing crc
            "MODELDELTA cpu Word x 2\n",     // garbled since
            "MODELDELTA cpu Word 1 x\n",     // garbled crc
            "MODELDELTA cpu - 1 2 extra\n",  // trailing tokens
        ] {
            let mut cur = Cursor::new(bad.as_bytes().to_vec());
            assert_eq!(
                read_client_msg(&mut cur).unwrap_err().kind(),
                std::io::ErrorKind::InvalidData,
                "{bad:?} must be InvalidData"
            );
        }
        // A task literally named "-" would read back as None; the
        // writer refuses instead of silently widening the query.
        let mut buf = Vec::new();
        assert!(write_client_msg(
            &mut buf,
            &ClientMsg::ModelDelta {
                resource: Resource::Cpu,
                task: Some("-".into()),
                since: 1,
                basecrc: 2,
            }
        )
        .is_err());
        assert!(buf.is_empty());
    }

    #[test]
    fn modeldelta_reply_is_deep_validated() {
        let good = delta_token(3, 1, 2);
        for bad in [
            "MODELDELTA 2 1\n".to_string(),            // missing delta
            "MODELDELTA 2 1 garbage\n".to_string(),    // undecodable delta
            format!("MODELDELTA x 1 {good}\n"),        // bad epoch
            format!("MODELDELTA 2 x {good}\n"),        // bad since
            format!("MODELDELTA 2 1 {good} extra\n"),  // trailing tokens
        ] {
            let mut cur = Cursor::new(bad.as_bytes().to_vec());
            assert_eq!(
                read_server_msg(&mut cur).unwrap_err().kind(),
                std::io::ErrorKind::InvalidData,
                "{bad:?} must be InvalidData"
            );
        }
        // Truncating the delta token anywhere keeps the reply invalid
        // (the growth accounting makes the encoding self-checking).
        let line = format!("MODELDELTA 2 1 {good}\n");
        let full = line.trim_end();
        for cut in (full.len() - good.len() + 1)..full.len() {
            let torn = format!("{}\n", &full[..cut]);
            let mut cur = Cursor::new(torn.into_bytes());
            assert!(read_server_msg(&mut cur).is_err(), "cut at {cut} parsed");
        }
    }

    #[test]
    fn model_rejects_truncated_and_garbled_args() {
        for bad in [
            "MODEL\n",                   // missing resource
            "MODEL gpu\n",               // unknown resource
            "MODEL cpu Word extra\n",    // trailing tokens
            "ADVICE\n",                  // missing everything
            "ADVICE cpu\n",              // missing task + epsilon
            "ADVICE cpu Word\n",         // missing epsilon
            "ADVICE cpu Word nope\n",    // unparseable epsilon
            "ADVICE cpu Word nan\n",     // non-finite epsilon
            "ADVICE cpu Word inf\n",     // non-finite epsilon
            "ADVICE cpu Word 0\n",       // boundary: never uncomfortable
            "ADVICE cpu Word 1\n",       // boundary: always uncomfortable
            "ADVICE cpu Word 1.5\n",     // out of range
            "ADVICE cpu Word -0.05\n",   // out of range
            "ADVICE cpu Word 0.05 x\n",  // trailing tokens
        ] {
            let mut cur = Cursor::new(bad.as_bytes().to_vec());
            assert_eq!(
                read_client_msg(&mut cur).unwrap_err().kind(),
                std::io::ErrorKind::InvalidData,
                "{bad:?} must be InvalidData"
            );
        }
    }

    #[test]
    fn model_reply_is_deep_validated() {
        let good = sketch_token(3, 1);
        for bad in [
            "MODEL 1 3 1\n".to_string(),                 // missing sketch
            "MODEL 1 3 1 garbage\n".to_string(),         // undecodable sketch
            format!("MODEL x 3 1 {good}\n"),             // bad epoch
            format!("MODEL 1 9 1 {good}\n"),             // observed disagrees
            format!("MODEL 1 3 9 {good}\n"),             // censored disagrees
            format!("MODEL 1 3 1 {good} extra\n"),       // trailing tokens
            "ADVICE 1\n".to_string(),                    // missing level
            "ADVICE 1 nan\n".to_string(),                // non-finite level
            "ADVICE 1 2.5 extra\n".to_string(),          // trailing tokens
        ] {
            let mut cur = Cursor::new(bad.as_bytes().to_vec());
            assert_eq!(
                read_server_msg(&mut cur).unwrap_err().kind(),
                std::io::ErrorKind::InvalidData,
                "{bad:?} must be InvalidData"
            );
        }
        // Truncating the sketch token anywhere keeps the reply invalid
        // (the sketch encoding itself never parses from a strict prefix).
        let line = format!("MODEL 1 3 1 {good}\n");
        let full = line.trim_end();
        for cut in (full.len() - good.len() + 1)..full.len() {
            let torn = format!("{}\n", &full[..cut]);
            let mut cur = Cursor::new(torn.into_bytes());
            assert!(read_server_msg(&mut cur).is_err(), "cut at {cut} parsed");
        }
    }

    #[test]
    fn model_writer_refuses_frame_tearing_fields() {
        let mut buf = Vec::new();
        assert!(write_client_msg(
            &mut buf,
            &ClientMsg::Model {
                resource: Resource::Cpu,
                task: Some("two words".into()),
            }
        )
        .is_err());
        assert!(write_client_msg(
            &mut buf,
            &ClientMsg::Advice {
                resource: Resource::Cpu,
                task: "Word".into(),
                epsilon: f64::NAN,
            }
        )
        .is_err());
        assert!(write_server_msg(
            &mut buf,
            &ServerMsg::Model {
                epoch: 1,
                observed: 0,
                censored: 0,
                sketch: "q1;0;1 0;8".into(),
            }
        )
        .is_err());
        assert!(write_server_msg(
            &mut buf,
            &ServerMsg::Advice {
                epoch: 1,
                level: f64::INFINITY,
            }
        )
        .is_err());
        assert!(buf.is_empty(), "refused writes must emit nothing");
    }

    #[test]
    fn stats_roundtrip() {
        roundtrip_client(ClientMsg::Stats { reset: false });
        roundtrip_client(ClientMsg::Stats { reset: true });
        roundtrip_server(ServerMsg::Stats(
            "{\"counters\":{\"server.verb.sync.count\":3},\"gauges\":{},\"histograms\":{}}"
                .into(),
        ));
        roundtrip_server(ServerMsg::Stats(String::new()));
    }

    #[test]
    fn stats_rejects_garbled_modifier_and_torn_payload() {
        let mut cur = Cursor::new(b"STATS SPLAT\n".to_vec());
        assert_eq!(
            read_client_msg(&mut cur).unwrap_err().kind(),
            std::io::ErrorKind::InvalidData
        );
        // A multi-line payload would tear the frame; the writer refuses.
        let mut buf = Vec::new();
        assert!(write_server_msg(&mut buf, &ServerMsg::Stats("{}\n{}".into())).is_err());
    }

    #[test]
    fn server_messages_roundtrip() {
        roundtrip_server(ServerMsg::id("guid-42"));
        roundtrip_server(ServerMsg::Id {
            id: "guid-42".into(),
            applied_seq: 17,
        });
        roundtrip_server(ServerMsg::Ack(7));
        roundtrip_server(ServerMsg::Error("nope".into()));
        let tc = uucs_testcase::Testcase::single(
            "x",
            1.0,
            Resource::Disk,
            ExerciseSpec::Ramp {
                level: 5.0,
                duration: 120.0,
            },
        );
        roundtrip_server(ServerMsg::Testcases(vec![tc.clone(), tc]));
        roundtrip_server(ServerMsg::Testcases(vec![]));
    }

    #[test]
    fn clean_eof_is_none() {
        let mut cur = Cursor::new(Vec::<u8>::new());
        assert_eq!(read_client_msg(&mut cur).unwrap(), None);
    }

    #[test]
    fn truncated_upload_errors() {
        let mut buf = Vec::new();
        write!(buf, "UPLOAD c1 2\nRESULT\nOUTCOME exhausted\nEND\n").unwrap();
        let mut cur = Cursor::new(buf);
        assert!(read_client_msg(&mut cur).is_err());
    }

    #[test]
    fn unknown_messages_error() {
        let mut cur = Cursor::new(b"JUMP\n".to_vec());
        assert!(read_client_msg(&mut cur).is_err());
        let mut cur = Cursor::new(b"WAT 3\n".to_vec());
        assert!(read_server_msg(&mut cur).is_err());
    }

    #[test]
    fn unknown_tag_is_unsupported_and_stream_stays_usable() {
        // The unknown-header error is distinguishable from torn framing,
        // and the reader stops at the line boundary: the next message on
        // the same stream still parses — the basis for the server's
        // reply-ERROR-and-keep-going forward compatibility.
        let mut buf = Vec::new();
        writeln!(buf, "JUMP high").unwrap();
        write_client_msg(
            &mut buf,
            &ClientMsg::Sync {
                client: "c".into(),
                have: 1,
                want: 2,
            },
        )
        .unwrap();
        let mut cur = Cursor::new(buf);
        let err = read_client_msg(&mut cur).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::Unsupported);
        assert!(matches!(
            read_client_msg(&mut cur).unwrap().unwrap(),
            ClientMsg::Sync { have: 1, want: 2, .. }
        ));
        // Malformed known messages stay InvalidData (framing unsafe).
        let mut cur = Cursor::new(b"SYNC c1 nope 4\n".to_vec());
        assert_eq!(
            read_client_msg(&mut cur).unwrap_err().kind(),
            std::io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn multiple_messages_in_sequence() {
        let mut buf = Vec::new();
        write_client_msg(&mut buf, &ClientMsg::Sync { client: "c".into(), have: 0, want: 5 })
            .unwrap();
        write_client_msg(
            &mut buf,
            &ClientMsg::Upload {
                client: "c".into(),
                seq: 1,
                records: vec![record()],
            },
        )
        .unwrap();
        write_client_msg(&mut buf, &ClientMsg::Bye).unwrap();
        let mut cur = Cursor::new(buf);
        assert!(matches!(
            read_client_msg(&mut cur).unwrap().unwrap(),
            ClientMsg::Sync { .. }
        ));
        assert!(matches!(
            read_client_msg(&mut cur).unwrap().unwrap(),
            ClientMsg::Upload { .. }
        ));
        assert_eq!(read_client_msg(&mut cur).unwrap().unwrap(), ClientMsg::Bye);
        assert_eq!(read_client_msg(&mut cur).unwrap(), None);
    }

    /// A reply cut mid-line must never parse. `writeln!` can put `"ID "`
    /// and the id in separate TCP segments, so a fault between them
    /// leaves exactly this torn prefix on the wire — parsing it as
    /// `Id("")` once poisoned a client's cached registration for good.
    #[test]
    fn torn_server_header_is_rejected() {
        for torn in [
            "ID ",
            "ID client-00",
            "ACK 4",
            "ERROR boo",
            "TESTCASES 2",
            "STATS {\"counters\":{}",
            "MODEL 3 1 0 q1;0;10;8;1",
            "MODELDELTA 3 2 qd1;0;10;8",
            "ADVICE 3 2.5",
            "HELLO 2",
        ] {
            let mut cur = Cursor::new(torn.as_bytes().to_vec());
            let err = read_server_msg(&mut cur).unwrap_err();
            assert_eq!(
                err.kind(),
                std::io::ErrorKind::UnexpectedEof,
                "torn {torn:?} must be UnexpectedEof, got {err:?}"
            );
        }
    }

    #[test]
    fn torn_client_header_is_rejected() {
        for torn in [
            "SYNC c1 0 8",
            "UPLOAD c1 1 3",
            "BYE",
            "REGISTER",
            "STATS RESET",
            "MODEL cpu Word",
            "MODELDELTA cpu - 3 77",
            "ADVICE cpu Word 0.05",
            "HELLO 2",
        ] {
            let mut cur = Cursor::new(torn.as_bytes().to_vec());
            let err = read_client_msg(&mut cur).unwrap_err();
            assert_eq!(
                err.kind(),
                std::io::ErrorKind::UnexpectedEof,
                "torn {torn:?} must be UnexpectedEof, got {err:?}"
            );
        }
    }

    /// An `ID` reply from an older server omits the applied-seq token;
    /// it must parse as horizon 0 (never fast-forward). A garbled
    /// horizon is malformed, not silently zero.
    #[test]
    fn id_without_applied_seq_parses_as_legacy_zero() {
        let mut cur = Cursor::new(b"ID client-0007\n".to_vec());
        assert_eq!(
            read_server_msg(&mut cur).unwrap(),
            ServerMsg::Id {
                id: "client-0007".into(),
                applied_seq: 0
            }
        );
        let mut cur = Cursor::new(b"ID client-0007 nope\n".to_vec());
        assert_eq!(
            read_server_msg(&mut cur).unwrap_err().kind(),
            std::io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn eof_awaiting_server_reply_is_unexpected_eof() {
        // A cleanly closed connection where a reply was due must be
        // distinguishable from malformed data: the former is retryable
        // (server restarting), the latter is not.
        let mut cur = Cursor::new(Vec::<u8>::new());
        assert_eq!(
            read_server_msg(&mut cur).unwrap_err().kind(),
            std::io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn empty_id_is_rejected() {
        let mut cur = Cursor::new(b"ID \n".to_vec());
        assert_eq!(
            read_server_msg(&mut cur).unwrap_err().kind(),
            std::io::ErrorKind::InvalidData
        );
        let mut cur = Cursor::new(b"ID\n".to_vec());
        assert!(read_server_msg(&mut cur).is_err());
    }

    /// A block body cut mid-line must not be interpreted: a content line
    /// truncated to exactly "END" would otherwise close the block early.
    #[test]
    fn torn_block_line_is_rejected() {
        // A TESTCASES frame whose body dies mid-line.
        let torn = b"TESTCASES 1\nTESTCASE t 1\nEND".to_vec();
        let mut cur = Cursor::new(torn);
        assert_eq!(
            read_server_msg(&mut cur).unwrap_err().kind(),
            std::io::ErrorKind::UnexpectedEof
        );
    }
}
