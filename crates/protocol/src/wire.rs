//! Line-oriented wire framing for the client/server exchanges.
//!
//! Both interactions are client-initiated (§2): registration and hot
//! sync. Messages are text blocks over any `Read`/`Write` pair (TCP in
//! production, an in-memory duplex in tests):
//!
//! ```text
//! client -> server                server -> client
//! ----------------                ----------------
//! REGISTER + snapshot block       ID <guid>
//! SYNC <client-id> <have> <want>  TESTCASES <n> + n testcase blocks
//! UPLOAD <client-id> <n> + blocks ACK <n>
//! BYE                             (connection closes)
//!                                 ERROR <message>   (any time)
//! ```

use crate::record::RunRecord;
use crate::snapshot::MachineSnapshot;
use std::io::{BufRead, Write};
use uucs_testcase::{format as tcformat, Testcase};

/// Anything that can answer client messages — the server implements this,
/// and the client's in-memory transport calls it directly (the same
/// handler that backs the TCP listener), so tests exercise identical
/// server logic without sockets.
pub trait Endpoint: Send + Sync {
    /// Handles one client message, producing the reply.
    fn handle(&self, msg: &ClientMsg) -> ServerMsg;
}

/// Messages a client sends.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientMsg {
    /// Register this machine; expects [`ServerMsg::Id`].
    Register(MachineSnapshot),
    /// Request up to `want` testcases the client does not yet have (it
    /// holds `have`); expects [`ServerMsg::Testcases`].
    Sync {
        /// The client's GUID.
        client: String,
        /// How many testcases the client already holds.
        have: usize,
        /// Upper bound on how many new testcases to send.
        want: usize,
    },
    /// Upload result records; expects [`ServerMsg::Ack`].
    Upload {
        /// The client's GUID.
        client: String,
        /// The result records.
        records: Vec<RunRecord>,
    },
    /// Close the session.
    Bye,
}

/// Messages a server sends.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerMsg {
    /// The GUID assigned at registration.
    Id(String),
    /// New testcases for the client.
    Testcases(Vec<Testcase>),
    /// Acknowledgment of `n` uploaded records.
    Ack(usize),
    /// Protocol error.
    Error(String),
}

/// Writes a client message to a stream.
pub fn write_client_msg(w: &mut impl Write, msg: &ClientMsg) -> std::io::Result<()> {
    match msg {
        ClientMsg::Register(snap) => {
            writeln!(w, "REGISTER")?;
            w.write_all(snap.emit().as_bytes())?;
        }
        ClientMsg::Sync { client, have, want } => {
            writeln!(w, "SYNC {client} {have} {want}")?;
        }
        ClientMsg::Upload { client, records } => {
            writeln!(w, "UPLOAD {client} {}", records.len())?;
            w.write_all(RunRecord::emit_many(records).as_bytes())?;
        }
        ClientMsg::Bye => writeln!(w, "BYE")?,
    }
    w.flush()
}

/// Writes a server message to a stream.
pub fn write_server_msg(w: &mut impl Write, msg: &ServerMsg) -> std::io::Result<()> {
    match msg {
        ServerMsg::Id(id) => writeln!(w, "ID {id}")?,
        ServerMsg::Testcases(tcs) => {
            writeln!(w, "TESTCASES {}", tcs.len())?;
            w.write_all(tcformat::emit_many(tcs).as_bytes())?;
        }
        ServerMsg::Ack(n) => writeln!(w, "ACK {n}")?,
        ServerMsg::Error(e) => writeln!(w, "ERROR {e}")?,
    }
    w.flush()
}

/// Reads lines until a block terminator (`END` at depth zero) completes
/// `n` blocks, returning the collected text.
fn read_blocks(r: &mut impl BufRead, n: usize) -> std::io::Result<String> {
    let mut out = String::new();
    let mut remaining = n;
    let mut line = String::new();
    while remaining > 0 {
        line.clear();
        if r.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "stream ended mid-block",
            ));
        }
        if line.trim() == "END" {
            remaining -= 1;
        }
        out.push_str(&line);
    }
    Ok(out)
}

fn proto_err(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.into())
}

/// Reads one client message. Returns `Ok(None)` on clean EOF before any
/// header line.
pub fn read_client_msg(r: &mut impl BufRead) -> std::io::Result<Option<ClientMsg>> {
    let mut header = String::new();
    loop {
        header.clear();
        if r.read_line(&mut header)? == 0 {
            return Ok(None);
        }
        if !header.trim().is_empty() {
            break;
        }
    }
    let header = header.trim().to_string();
    let mut toks = header.split_whitespace();
    match toks.next() {
        Some("REGISTER") => {
            let body = read_blocks(r, 1)?;
            let snap = MachineSnapshot::parse(&body).map_err(proto_err)?;
            Ok(Some(ClientMsg::Register(snap)))
        }
        Some("SYNC") => {
            let client = toks.next().ok_or_else(|| proto_err("SYNC missing id"))?;
            let have: usize = toks
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| proto_err("SYNC missing have"))?;
            let want: usize = toks
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| proto_err("SYNC missing want"))?;
            Ok(Some(ClientMsg::Sync {
                client: client.to_string(),
                have,
                want,
            }))
        }
        Some("UPLOAD") => {
            let client = toks.next().ok_or_else(|| proto_err("UPLOAD missing id"))?;
            let n: usize = toks
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| proto_err("UPLOAD missing count"))?;
            let body = read_blocks(r, n)?;
            let records = RunRecord::parse_many(&body).map_err(proto_err)?;
            if records.len() != n {
                return Err(proto_err(format!(
                    "UPLOAD promised {n} records, parsed {}",
                    records.len()
                )));
            }
            Ok(Some(ClientMsg::Upload {
                client: client.to_string(),
                records,
            }))
        }
        Some("BYE") => Ok(Some(ClientMsg::Bye)),
        other => Err(proto_err(format!("unknown client message {other:?}"))),
    }
}

/// Reads one server message.
pub fn read_server_msg(r: &mut impl BufRead) -> std::io::Result<ServerMsg> {
    let mut header = String::new();
    loop {
        header.clear();
        if r.read_line(&mut header)? == 0 {
            return Err(proto_err("connection closed awaiting server message"));
        }
        if !header.trim().is_empty() {
            break;
        }
    }
    let header = header.trim().to_string();
    let (kind, rest) = header.split_once(' ').unwrap_or((header.as_str(), ""));
    match kind {
        "ID" => Ok(ServerMsg::Id(rest.to_string())),
        "TESTCASES" => {
            let n: usize = rest
                .trim()
                .parse()
                .map_err(|_| proto_err("bad TESTCASES count"))?;
            let body = read_blocks(r, n)?;
            let tcs = tcformat::parse_many(&body)
                .map_err(|e| proto_err(format!("bad testcase block: {e}")))?;
            if tcs.len() != n {
                return Err(proto_err("TESTCASES count mismatch"));
            }
            Ok(ServerMsg::Testcases(tcs))
        }
        "ACK" => {
            let n: usize = rest.trim().parse().map_err(|_| proto_err("bad ACK"))?;
            Ok(ServerMsg::Ack(n))
        }
        "ERROR" => Ok(ServerMsg::Error(rest.to_string())),
        other => Err(proto_err(format!("unknown server message {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{MonitorSummary, RunOutcome};
    use std::io::Cursor;
    use uucs_testcase::{ExerciseSpec, Resource};

    fn roundtrip_client(msg: ClientMsg) {
        let mut buf = Vec::new();
        write_client_msg(&mut buf, &msg).unwrap();
        let mut cur = Cursor::new(buf);
        let got = read_client_msg(&mut cur).unwrap().unwrap();
        assert_eq!(got, msg);
    }

    fn roundtrip_server(msg: ServerMsg) {
        let mut buf = Vec::new();
        write_server_msg(&mut buf, &msg).unwrap();
        let mut cur = Cursor::new(buf);
        let got = read_server_msg(&mut cur).unwrap();
        assert_eq!(got, msg);
    }

    fn record() -> RunRecord {
        RunRecord {
            client: "c1".into(),
            user: "u1".into(),
            testcase: "t1".into(),
            task: "Quake".into(),
            outcome: RunOutcome::Discomfort,
            offset_secs: 33.0,
            last_levels: vec![(Resource::Cpu, vec![0.5, 0.55])],
            monitor: MonitorSummary::default(),
        }
    }

    #[test]
    fn register_roundtrip() {
        roundtrip_client(ClientMsg::Register(MachineSnapshot::study_machine("h1")));
    }

    #[test]
    fn sync_roundtrip() {
        roundtrip_client(ClientMsg::Sync {
            client: "c-9".into(),
            have: 12,
            want: 30,
        });
    }

    #[test]
    fn upload_roundtrip() {
        roundtrip_client(ClientMsg::Upload {
            client: "c-9".into(),
            records: vec![record(), record()],
        });
        roundtrip_client(ClientMsg::Upload {
            client: "c-9".into(),
            records: vec![],
        });
    }

    #[test]
    fn bye_roundtrip() {
        roundtrip_client(ClientMsg::Bye);
    }

    #[test]
    fn server_messages_roundtrip() {
        roundtrip_server(ServerMsg::Id("guid-42".into()));
        roundtrip_server(ServerMsg::Ack(7));
        roundtrip_server(ServerMsg::Error("nope".into()));
        let tc = uucs_testcase::Testcase::single(
            "x",
            1.0,
            Resource::Disk,
            ExerciseSpec::Ramp {
                level: 5.0,
                duration: 120.0,
            },
        );
        roundtrip_server(ServerMsg::Testcases(vec![tc.clone(), tc]));
        roundtrip_server(ServerMsg::Testcases(vec![]));
    }

    #[test]
    fn clean_eof_is_none() {
        let mut cur = Cursor::new(Vec::<u8>::new());
        assert_eq!(read_client_msg(&mut cur).unwrap(), None);
    }

    #[test]
    fn truncated_upload_errors() {
        let mut buf = Vec::new();
        write!(buf, "UPLOAD c1 2\nRESULT\nOUTCOME exhausted\nEND\n").unwrap();
        let mut cur = Cursor::new(buf);
        assert!(read_client_msg(&mut cur).is_err());
    }

    #[test]
    fn unknown_messages_error() {
        let mut cur = Cursor::new(b"JUMP\n".to_vec());
        assert!(read_client_msg(&mut cur).is_err());
        let mut cur = Cursor::new(b"WAT 3\n".to_vec());
        assert!(read_server_msg(&mut cur).is_err());
    }

    #[test]
    fn multiple_messages_in_sequence() {
        let mut buf = Vec::new();
        write_client_msg(&mut buf, &ClientMsg::Sync { client: "c".into(), have: 0, want: 5 })
            .unwrap();
        write_client_msg(
            &mut buf,
            &ClientMsg::Upload {
                client: "c".into(),
                records: vec![record()],
            },
        )
        .unwrap();
        write_client_msg(&mut buf, &ClientMsg::Bye).unwrap();
        let mut cur = Cursor::new(buf);
        assert!(matches!(
            read_client_msg(&mut cur).unwrap().unwrap(),
            ClientMsg::Sync { .. }
        ));
        assert!(matches!(
            read_client_msg(&mut cur).unwrap().unwrap(),
            ClientMsg::Upload { .. }
        ));
        assert_eq!(read_client_msg(&mut cur).unwrap().unwrap(), ClientMsg::Bye);
        assert_eq!(read_client_msg(&mut cur).unwrap(), None);
    }
}
