//! WAL payload encoding for the server's durable stores.
//!
//! The server journals every accepted mutation — a run result upload or
//! a testcase addition — as one WAL record before acknowledging it. The
//! payload is the store's existing text format prefixed with a one-byte
//! tag, so a journal survives tooling changes as long as the text
//! formats do, and a `hexdump` of a segment stays human-readable.
//!
//! * `b'R'` + [`RunRecord`] text — a result appended to the result store.
//! * `b'T'` + testcase text — a testcase added to the testcase store.

use crate::record::RunRecord;
use uucs_testcase::{format as tcformat, Testcase};

/// Tag byte for a result entry.
pub const TAG_RESULT: u8 = b'R';
/// Tag byte for a testcase entry.
pub const TAG_TESTCASE: u8 = b'T';

/// One logical mutation of the server's stores, as journaled in the WAL.
#[derive(Debug, Clone, PartialEq)]
pub enum WalEntry {
    /// A run result accepted into the result store.
    Result(RunRecord),
    /// A testcase added to the testcase store.
    Testcase(Testcase),
}

impl WalEntry {
    /// Encodes the entry into a WAL payload: tag byte + text format.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            WalEntry::Result(rec) => {
                let mut out = vec![TAG_RESULT];
                out.extend_from_slice(rec.emit().as_bytes());
                out
            }
            WalEntry::Testcase(tc) => {
                let mut out = vec![TAG_TESTCASE];
                out.extend_from_slice(tcformat::emit(tc).as_bytes());
                out
            }
        }
    }

    /// Decodes a WAL payload produced by [`WalEntry::encode`].
    pub fn decode(payload: &[u8]) -> Result<WalEntry, String> {
        let (&tag, body) = payload
            .split_first()
            .ok_or_else(|| "empty wal payload".to_string())?;
        let text = std::str::from_utf8(body)
            .map_err(|e| format!("wal payload is not utf-8: {e}"))?;
        match tag {
            TAG_RESULT => {
                let mut records = RunRecord::parse_many(text)?;
                match (records.pop(), records.is_empty()) {
                    (Some(rec), true) => Ok(WalEntry::Result(rec)),
                    _ => Err("result payload must hold exactly one record".to_string()),
                }
            }
            TAG_TESTCASE => tcformat::parse(text)
                .map(WalEntry::Testcase)
                .map_err(|e| format!("bad testcase payload: {e}")),
            other => Err(format!("unknown wal entry tag {other:#04x}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{MonitorSummary, RunOutcome};
    use uucs_testcase::{ExerciseFunction, Resource};

    fn record() -> RunRecord {
        RunRecord {
            client: "c-9".into(),
            user: "u1".into(),
            testcase: "cpu-ramp-3-60".into(),
            task: "Word".into(),
            outcome: RunOutcome::Discomfort,
            offset_secs: 12.25,
            last_levels: vec![(Resource::Cpu, vec![1.0, 2.0])],
            monitor: MonitorSummary::default(),
        }
    }

    fn testcase() -> Testcase {
        Testcase::new(
            "word-cpu-ramp",
            1.0,
            vec![ExerciseFunction::from_values(
                Resource::Cpu,
                1.0,
                vec![0.0, 1.0, 2.0],
            )],
        )
    }

    #[test]
    fn roundtrip_both_variants() {
        for entry in [WalEntry::Result(record()), WalEntry::Testcase(testcase())] {
            let bytes = entry.encode();
            assert_eq!(WalEntry::decode(&bytes).unwrap(), entry);
        }
    }

    #[test]
    fn tags_are_first_byte() {
        assert_eq!(WalEntry::Result(record()).encode()[0], TAG_RESULT);
        assert_eq!(WalEntry::Testcase(testcase()).encode()[0], TAG_TESTCASE);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(WalEntry::decode(b"").is_err());
        assert!(WalEntry::decode(b"X").is_err());
        assert!(WalEntry::decode(b"Rnot a record").is_err());
        assert!(WalEntry::decode(b"Tnot a testcase").is_err());
        assert!(WalEntry::decode(&[TAG_RESULT, 0xFF, 0xFE]).is_err());
        // Two records in one payload: the journal is one-entry-per-record.
        let two = format!("R{}{}", record().emit(), record().emit());
        assert!(WalEntry::decode(two.as_bytes()).is_err());
    }
}
