//! WAL payload encoding for the server's durable stores.
//!
//! The server journals every accepted mutation — a run result upload or
//! a testcase addition — as one WAL record before acknowledging it. The
//! payload is the store's existing text format prefixed with a one-byte
//! tag, so a journal survives tooling changes as long as the text
//! formats do, and a `hexdump` of a segment stays human-readable.
//!
//! * `b'R'` + [`RunRecord`] text — a result appended to the result store.
//! * `b'T'` + testcase text — a testcase added to the testcase store.
//! * `b'B'` + `BATCH <client> <seq> <n>` line + `n` record blocks — an
//!   idempotent upload batch: the records *and* the client's batch
//!   sequence number, journaled as one atomic entry so recovery restores
//!   the dedup horizon along with the data.
//! * `b'C'` + `CLIENT <id>` line + snapshot block — a registration, so a
//!   recovered server still knows its clients and their ids.
//! * `b'M'` + [`ModelDelta`] text — one epoch's comfort-model update
//!   (the observations minted from an accepted upload batch), journaled
//!   by the model store before the delta is applied so replaying the
//!   journal reproduces the exact epoch sequence.

use crate::record::RunRecord;
use crate::snapshot::MachineSnapshot;
use uucs_modelsvc::ModelDelta;
use uucs_testcase::{format as tcformat, Testcase};

/// Tag byte for a result entry.
pub const TAG_RESULT: u8 = b'R';
/// Tag byte for a testcase entry.
pub const TAG_TESTCASE: u8 = b'T';
/// Tag byte for an idempotent upload batch.
pub const TAG_BATCH: u8 = b'B';
/// Tag byte for a client registration.
pub const TAG_CLIENT: u8 = b'C';
/// Tag byte for a comfort-model delta.
pub const TAG_MODEL: u8 = b'M';

/// One logical mutation of the server's stores, as journaled in the WAL.
#[derive(Debug, Clone, PartialEq)]
pub enum WalEntry {
    /// A run result accepted into the result store.
    Result(RunRecord),
    /// A testcase added to the testcase store.
    Testcase(Testcase),
    /// An idempotent upload batch accepted into the result store: the
    /// per-client sequence number and every record, as one atomic entry.
    Batch {
        /// The uploading client's GUID.
        client: String,
        /// The client's batch sequence number (never 0 — legacy
        /// non-idempotent uploads journal as [`WalEntry::Result`]).
        seq: u64,
        /// The records in the batch.
        records: Vec<RunRecord>,
    },
    /// A client registration accepted into the registry.
    Client {
        /// The assigned GUID.
        id: String,
        /// The client's registration idempotency token ("" = legacy).
        token: String,
        /// The machine snapshot the client registered with.
        snapshot: MachineSnapshot,
    },
    /// One epoch's comfort-model update accepted into the model store.
    Model(ModelDelta),
}

impl WalEntry {
    /// Encodes the entry into a WAL payload: tag byte + text format.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            WalEntry::Result(rec) => {
                let mut out = vec![TAG_RESULT];
                out.extend_from_slice(rec.emit().as_bytes());
                out
            }
            WalEntry::Testcase(tc) => {
                let mut out = vec![TAG_TESTCASE];
                out.extend_from_slice(tcformat::emit(tc).as_bytes());
                out
            }
            WalEntry::Batch {
                client,
                seq,
                records,
            } => {
                let mut out = vec![TAG_BATCH];
                out.extend_from_slice(
                    format!("BATCH {client} {seq} {}\n", records.len()).as_bytes(),
                );
                out.extend_from_slice(RunRecord::emit_many(records).as_bytes());
                out
            }
            WalEntry::Client {
                id,
                token,
                snapshot,
            } => {
                let mut out = vec![TAG_CLIENT];
                if token.is_empty() {
                    out.extend_from_slice(format!("CLIENT {id}\n").as_bytes());
                } else {
                    out.extend_from_slice(format!("CLIENT {id} {token}\n").as_bytes());
                }
                out.extend_from_slice(snapshot.emit().as_bytes());
                out
            }
            WalEntry::Model(delta) => {
                let mut out = vec![TAG_MODEL];
                out.extend_from_slice(delta.encode().as_bytes());
                out
            }
        }
    }

    /// Decodes a WAL payload produced by [`WalEntry::encode`].
    pub fn decode(payload: &[u8]) -> Result<WalEntry, String> {
        let (&tag, body) = payload
            .split_first()
            .ok_or_else(|| "empty wal payload".to_string())?;
        let text = std::str::from_utf8(body)
            .map_err(|e| format!("wal payload is not utf-8: {e}"))?;
        match tag {
            TAG_RESULT => {
                let mut records = RunRecord::parse_many(text)?;
                match (records.pop(), records.is_empty()) {
                    (Some(rec), true) => Ok(WalEntry::Result(rec)),
                    _ => Err("result payload must hold exactly one record".to_string()),
                }
            }
            TAG_TESTCASE => tcformat::parse(text)
                .map(WalEntry::Testcase)
                .map_err(|e| format!("bad testcase payload: {e}")),
            TAG_BATCH => {
                let (header, body) = text
                    .split_once('\n')
                    .ok_or_else(|| "batch payload missing header line".to_string())?;
                let mut toks = header.split_whitespace();
                if toks.next() != Some("BATCH") {
                    return Err(format!("bad batch header {header:?}"));
                }
                let client = toks
                    .next()
                    .ok_or_else(|| "batch header missing client".to_string())?
                    .to_string();
                let seq: u64 = toks
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| "batch header missing seq".to_string())?;
                let n: usize = toks
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| "batch header missing count".to_string())?;
                let records = RunRecord::parse_many(body)?;
                if records.len() != n {
                    return Err(format!(
                        "batch promised {n} records, parsed {}",
                        records.len()
                    ));
                }
                Ok(WalEntry::Batch {
                    client,
                    seq,
                    records,
                })
            }
            TAG_CLIENT => {
                let (header, body) = text
                    .split_once('\n')
                    .ok_or_else(|| "client payload missing header line".to_string())?;
                let rest = header
                    .strip_prefix("CLIENT ")
                    .ok_or_else(|| format!("bad client header {header:?}"))?;
                let mut toks = rest.split_whitespace();
                let id = toks.next().unwrap_or("").to_string();
                if id.is_empty() {
                    return Err("client header missing id".to_string());
                }
                let token = toks.next().unwrap_or("").to_string();
                let snapshot =
                    MachineSnapshot::parse(body).map_err(|e| format!("bad client snapshot: {e}"))?;
                Ok(WalEntry::Client {
                    id,
                    token,
                    snapshot,
                })
            }
            TAG_MODEL => ModelDelta::decode(text).map(WalEntry::Model),
            other => Err(format!("unknown wal entry tag {other:#04x}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{MonitorSummary, RunOutcome};
    use uucs_testcase::{ExerciseFunction, Resource};

    fn record() -> RunRecord {
        RunRecord {
            client: "c-9".into(),
            user: "u1".into(),
            testcase: "cpu-ramp-3-60".into(),
            task: "Word".into(),
            skill: "Typical".into(),
            outcome: RunOutcome::Discomfort,
            offset_secs: 12.25,
            last_levels: vec![(Resource::Cpu, vec![1.0, 2.0])],
            monitor: MonitorSummary::default(),
        }
    }

    fn delta() -> ModelDelta {
        ModelDelta {
            epoch: 7,
            observations: vec![uucs_modelsvc::Observation {
                resource: Resource::Cpu,
                task: "Word".into(),
                skill: "Typical".into(),
                level: 3.5,
                censored: false,
            }],
        }
    }

    fn testcase() -> Testcase {
        Testcase::new(
            "word-cpu-ramp",
            1.0,
            vec![ExerciseFunction::from_values(
                Resource::Cpu,
                1.0,
                vec![0.0, 1.0, 2.0],
            )],
        )
    }

    #[test]
    fn roundtrip_all_variants() {
        for entry in [
            WalEntry::Result(record()),
            WalEntry::Testcase(testcase()),
            WalEntry::Batch {
                client: "client-0007".into(),
                seq: 42,
                records: vec![record(), record()],
            },
            WalEntry::Batch {
                client: "client-0007".into(),
                seq: 43,
                records: vec![],
            },
            WalEntry::Client {
                id: "client-0001".into(),
                token: String::new(),
                snapshot: MachineSnapshot::study_machine("optiplex-9"),
            },
            WalEntry::Client {
                id: "client-0002".into(),
                token: "tok-deadbeef".into(),
                snapshot: MachineSnapshot::study_machine("optiplex-9"),
            },
            WalEntry::Model(delta()),
            WalEntry::Model(ModelDelta {
                epoch: 8,
                observations: vec![],
            }),
        ] {
            let bytes = entry.encode();
            assert_eq!(WalEntry::decode(&bytes).unwrap(), entry);
        }
    }

    #[test]
    fn tags_are_first_byte() {
        assert_eq!(WalEntry::Result(record()).encode()[0], TAG_RESULT);
        assert_eq!(WalEntry::Testcase(testcase()).encode()[0], TAG_TESTCASE);
        let batch = WalEntry::Batch {
            client: "c".into(),
            seq: 1,
            records: vec![],
        };
        assert_eq!(batch.encode()[0], TAG_BATCH);
        let client = WalEntry::Client {
            id: "c".into(),
            token: String::new(),
            snapshot: MachineSnapshot::study_machine("h"),
        };
        assert_eq!(client.encode()[0], TAG_CLIENT);
        assert_eq!(WalEntry::Model(delta()).encode()[0], TAG_MODEL);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(WalEntry::decode(b"").is_err());
        assert!(WalEntry::decode(b"X").is_err());
        assert!(WalEntry::decode(b"Rnot a record").is_err());
        assert!(WalEntry::decode(b"Tnot a testcase").is_err());
        assert!(WalEntry::decode(&[TAG_RESULT, 0xFF, 0xFE]).is_err());
        // Two records in one payload: the journal is one-entry-per-record.
        let two = format!("R{}{}", record().emit(), record().emit());
        assert!(WalEntry::decode(two.as_bytes()).is_err());
        // Batch defects: bad header, count mismatch, torn body.
        assert!(WalEntry::decode(b"B").is_err());
        assert!(WalEntry::decode(b"BNOPE x y\n").is_err());
        assert!(WalEntry::decode(b"BBATCH c1 notanumber 1\nRESULT\nEND\n").is_err());
        let short = format!("BBATCH c1 9 2\n{}", record().emit());
        assert!(WalEntry::decode(short.as_bytes()).is_err());
        // Client defects: no header, empty id, torn snapshot.
        assert!(WalEntry::decode(b"C").is_err());
        assert!(WalEntry::decode(b"CCLIENT \nSNAPSHOT\nEND\n").is_err());
        assert!(WalEntry::decode(b"CCLIENT c1\nSNAPSHOT\nHOST x\n").is_err());
        // Model defects: not a delta, count mismatch, missing END.
        assert!(WalEntry::decode(b"Mnot a delta").is_err());
        assert!(WalEntry::decode(b"MMODELDELTA 1 2\nEND\n").is_err());
        assert!(WalEntry::decode(b"MMODELDELTA 1 0\n").is_err());
    }
}
