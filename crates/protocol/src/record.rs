//! Run result records (§2.3).
//!
//! "A considerable amount of information is stored as the result of the
//! testcase run", of which the paper's analysis uses: whether the run
//! ended in user feedback or exhaustion, the time offset of the report,
//! and the last five contention values of each exercise function at the
//! feedback point. We store those plus the monitoring summary.

use std::fmt;
use uucs_testcase::Resource;

/// How a testcase run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The user expressed discomfort (clicked the tray icon / hit F11).
    Discomfort,
    /// The exercise functions ran out without feedback.
    Exhausted,
}

impl RunOutcome {
    /// Token used in the text format.
    pub fn token(self) -> &'static str {
        match self {
            RunOutcome::Discomfort => "discomfort",
            RunOutcome::Exhausted => "exhausted",
        }
    }

    /// Parses a token.
    pub fn parse(s: &str) -> Option<RunOutcome> {
        match s {
            "discomfort" => Some(RunOutcome::Discomfort),
            "exhausted" => Some(RunOutcome::Exhausted),
            _ => None,
        }
    }
}

/// Monitoring summary stored with every run ("CPU, memory and Disk load
/// measurements for entire duration of the testcase").
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MonitorSummary {
    /// Mean CPU utilization over the run.
    pub cpu_util: f64,
    /// Peak resident-memory fraction over the run.
    pub peak_mem_fraction: f64,
    /// Disk busy fraction over the run.
    pub disk_busy: f64,
    /// Page faults serviced during the run.
    pub faults: u64,
    /// Mean foreground interactive latency, µs (if the task recorded any).
    pub mean_latency_us: Option<f64>,
}

/// The result of one testcase run by one user in one context.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Client GUID (assigned at registration).
    pub client: String,
    /// Study subject identifier (controlled study) or `-` (Internet study,
    /// where the user is the client).
    pub user: String,
    /// Testcase identifier.
    pub testcase: String,
    /// Foreground task name (the user's context), or `-` if unknown.
    pub task: String,
    /// The user's self-rated skill class in the task's rating dimension
    /// (the model-service cohort key), or `-` if unrated. Legacy records
    /// without a `SKILL` line parse as unrated.
    pub skill: String,
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Seconds into the testcase at which feedback or exhaustion occurred.
    pub offset_secs: f64,
    /// The last five contention values of each exercise function at the
    /// feedback point.
    pub last_levels: Vec<(Resource, Vec<f64>)>,
    /// Monitoring summary.
    pub monitor: MonitorSummary,
}

impl RunRecord {
    /// The contention level in force at the feedback point for `resource`
    /// (the final entry of its last-levels vector).
    pub fn level_at_feedback(&self, resource: Resource) -> Option<f64> {
        self.last_levels
            .iter()
            .find(|(r, _)| *r == resource)
            .and_then(|(_, v)| v.last().copied())
    }

    /// Serializes the record into the text result format.
    pub fn emit(&self) -> String {
        let mut out = String::new();
        self.emit_into(&mut out);
        out
    }

    /// Serializes, appending to `out`.
    pub fn emit_into(&self, out: &mut String) {
        use fmt::Write;
        writeln!(out, "RESULT").unwrap();
        writeln!(out, "CLIENT {}", nonempty(&self.client)).unwrap();
        writeln!(out, "USER {}", nonempty(&self.user)).unwrap();
        writeln!(out, "TESTCASE {}", nonempty(&self.testcase)).unwrap();
        writeln!(out, "TASK {}", nonempty(&self.task)).unwrap();
        // Emitted only when rated, so records round-trip byte-identically
        // through stores written before the field existed.
        if !self.skill.is_empty() {
            writeln!(out, "SKILL {}", self.skill).unwrap();
        }
        writeln!(out, "OUTCOME {}", self.outcome.token()).unwrap();
        writeln!(out, "OFFSET {}", self.offset_secs).unwrap();
        for (r, levels) in &self.last_levels {
            write!(out, "LEVELS {r}").unwrap();
            for v in levels {
                write!(out, " {v}").unwrap();
            }
            out.push('\n');
        }
        writeln!(
            out,
            "MONITOR cpu {} mem {} disk {} faults {} latency {}",
            self.monitor.cpu_util,
            self.monitor.peak_mem_fraction,
            self.monitor.disk_busy,
            self.monitor.faults,
            self.monitor
                .mean_latency_us
                .map(|l| l.to_string())
                .unwrap_or_else(|| "-".to_string()),
        )
        .unwrap();
        writeln!(out, "END").unwrap();
    }

    /// Parses one record from lines, consuming them. Returns `None` at end
    /// of input (no RESULT header found).
    pub fn parse<'a>(
        lines: &mut impl Iterator<Item = &'a str>,
    ) -> Result<Option<RunRecord>, String> {
        // Find the RESULT header.
        let mut found = false;
        for line in lines.by_ref() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "RESULT" {
                found = true;
                break;
            }
            return Err(format!("expected RESULT, found {line:?}"));
        }
        if !found {
            return Ok(None);
        }
        let mut rec = RunRecord {
            client: String::new(),
            user: String::new(),
            testcase: String::new(),
            task: String::new(),
            skill: String::new(),
            outcome: RunOutcome::Exhausted,
            offset_secs: 0.0,
            last_levels: Vec::new(),
            monitor: MonitorSummary::default(),
        };
        let mut saw_outcome = false;
        for line in lines.by_ref() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "END" {
                if !saw_outcome {
                    return Err("record missing OUTCOME".to_string());
                }
                return Ok(Some(rec));
            }
            let (key, rest) = line.split_once(' ').unwrap_or((line, ""));
            match key {
                "CLIENT" => rec.client = de_nonempty(rest),
                "USER" => rec.user = de_nonempty(rest),
                "TESTCASE" => rec.testcase = de_nonempty(rest),
                "TASK" => rec.task = de_nonempty(rest),
                "SKILL" => rec.skill = de_nonempty(rest),
                "OUTCOME" => {
                    rec.outcome = RunOutcome::parse(rest)
                        .ok_or_else(|| format!("bad outcome {rest:?}"))?;
                    saw_outcome = true;
                }
                "OFFSET" => {
                    rec.offset_secs = rest
                        .parse()
                        .map_err(|_| format!("bad offset {rest:?}"))?;
                }
                "LEVELS" => {
                    let mut toks = rest.split_whitespace();
                    let rname = toks.next().ok_or("LEVELS missing resource")?;
                    let resource: Resource = rname
                        .parse()
                        .map_err(|_| format!("bad resource {rname:?}"))?;
                    let mut vals = Vec::new();
                    for t in toks {
                        vals.push(t.parse().map_err(|_| format!("bad level {t:?}"))?);
                    }
                    rec.last_levels.push((resource, vals));
                }
                "MONITOR" => {
                    let toks: Vec<&str> = rest.split_whitespace().collect();
                    let mut i = 0;
                    while i + 1 < toks.len() {
                        let (k, v) = (toks[i], toks[i + 1]);
                        match k {
                            "cpu" => rec.monitor.cpu_util = pf(v)?,
                            "mem" => rec.monitor.peak_mem_fraction = pf(v)?,
                            "disk" => rec.monitor.disk_busy = pf(v)?,
                            "faults" => {
                                rec.monitor.faults =
                                    v.parse().map_err(|_| format!("bad faults {v:?}"))?
                            }
                            "latency" => {
                                rec.monitor.mean_latency_us =
                                    if v == "-" { None } else { Some(pf(v)?) }
                            }
                            other => return Err(format!("unknown monitor key {other:?}")),
                        }
                        i += 2;
                    }
                }
                other => return Err(format!("unknown record key {other:?}")),
            }
        }
        Err("unexpected end of input inside RESULT".to_string())
    }

    /// Parses every record in a text body.
    ///
    /// Errors carry the 1-based line number of the offending line, so a
    /// hand-edited or bit-rotted results file points at the damage
    /// (`line 41: bad outcome "maybee"`) instead of merely refusing to
    /// load. Contrast with the WAL (`uucs-wal`), where a torn *tail* is
    /// expected crash residue and silently truncated — a text store has
    /// no append-in-flight excuse, so every defect is reported.
    pub fn parse_many(input: &str) -> Result<Vec<RunRecord>, String> {
        let line_no = std::cell::Cell::new(0usize);
        let mut lines = input.lines().inspect(|_| line_no.set(line_no.get() + 1));
        let mut out = Vec::new();
        loop {
            match Self::parse(&mut lines) {
                Ok(Some(rec)) => out.push(rec),
                Ok(None) => return Ok(out),
                Err(e) => return Err(format!("line {}: {e}", line_no.get())),
            }
        }
    }

    /// Serializes many records into one text body.
    pub fn emit_many(records: &[RunRecord]) -> String {
        let mut out = String::new();
        for r in records {
            r.emit_into(&mut out);
        }
        out
    }
}

fn pf(v: &str) -> Result<f64, String> {
    v.parse().map_err(|_| format!("bad number {v:?}"))
}

fn nonempty(s: &str) -> &str {
    if s.is_empty() {
        "-"
    } else {
        s
    }
}

fn de_nonempty(s: &str) -> String {
    if s == "-" {
        String::new()
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunRecord {
        RunRecord {
            client: "c-123".into(),
            user: "u7".into(),
            testcase: "cpu-ramp-7-120".into(),
            task: "Word".into(),
            skill: "Typical".into(),
            outcome: RunOutcome::Discomfort,
            offset_secs: 74.5,
            last_levels: vec![(Resource::Cpu, vec![4.0, 4.1, 4.2, 4.3, 4.4])],
            monitor: MonitorSummary {
                cpu_util: 0.93,
                peak_mem_fraction: 0.41,
                disk_busy: 0.02,
                faults: 17,
                mean_latency_us: Some(12_345.5),
            },
        }
    }

    #[test]
    fn roundtrip_single() {
        let r = sample();
        let text = r.emit();
        let parsed = RunRecord::parse_many(&text).unwrap();
        assert_eq!(parsed, vec![r]);
    }

    #[test]
    fn roundtrip_many_with_empty_fields() {
        let mut a = sample();
        a.user = String::new();
        a.task = String::new();
        let mut b = sample();
        b.outcome = RunOutcome::Exhausted;
        b.monitor.mean_latency_us = None;
        b.last_levels = vec![
            (Resource::Cpu, vec![1.0]),
            (Resource::Memory, vec![0.5, 0.6]),
        ];
        let text = RunRecord::emit_many(&[a.clone(), b.clone()]);
        let parsed = RunRecord::parse_many(&text).unwrap();
        assert_eq!(parsed, vec![a, b]);
    }

    #[test]
    fn legacy_records_without_skill_parse_as_unrated() {
        let mut r = sample();
        r.skill = String::new();
        let text = r.emit();
        assert!(!text.contains("SKILL"), "unrated records omit the line");
        assert_eq!(RunRecord::parse_many(&text).unwrap(), vec![r]);
    }

    #[test]
    fn level_at_feedback() {
        let r = sample();
        assert_eq!(r.level_at_feedback(Resource::Cpu), Some(4.4));
        assert_eq!(r.level_at_feedback(Resource::Disk), None);
    }

    #[test]
    fn parse_rejects_missing_outcome() {
        let text = "RESULT\nCLIENT a\nEND\n";
        assert!(RunRecord::parse_many(text).is_err());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(RunRecord::parse_many("HELLO\n").is_err());
        assert!(RunRecord::parse_many("RESULT\nOUTCOME discomfort\n").is_err());
        assert!(RunRecord::parse_many("RESULT\nOUTCOME maybe\nEND\n").is_err());
        assert!(RunRecord::parse_many("RESULT\nLEVELS gpu 1\nOUTCOME exhausted\nEND\n").is_err());
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        // One good record, then a defect: the error points at the exact
        // line of the second record's bad field.
        let good = sample().emit();
        let good_lines = good.lines().count();
        let text = format!("{good}RESULT\nOUTCOME maybe\nEND\n");
        let err = RunRecord::parse_many(&text).unwrap_err();
        assert_eq!(
            err,
            format!("line {}: bad outcome \"maybe\"", good_lines + 2),
            "error was: {err}"
        );
        // Truncated input points at the last line seen.
        let err = RunRecord::parse_many("RESULT\nOUTCOME discomfort\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "error was: {err}");
    }

    #[test]
    fn parse_empty_and_comments() {
        assert_eq!(RunRecord::parse_many("").unwrap(), vec![]);
        assert_eq!(RunRecord::parse_many("# header\n\n").unwrap(), vec![]);
    }

    #[test]
    fn outcome_tokens() {
        assert_eq!(RunOutcome::parse("discomfort"), Some(RunOutcome::Discomfort));
        assert_eq!(RunOutcome::parse("exhausted"), Some(RunOutcome::Exhausted));
        assert_eq!(RunOutcome::parse("bored"), None);
        assert_eq!(RunOutcome::Discomfort.token(), "discomfort");
    }
}
