//! The registration snapshot: "a detailed snapshot of the hardware and
//! software of the client machine" (§2) sent when a client first runs.

use std::fmt;

/// The hardware/software description a client registers with.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineSnapshot {
    /// Host name (or a pseudonym under the privacy options).
    pub hostname: String,
    /// CPU clock, MHz.
    pub cpu_mhz: u32,
    /// Physical memory, MB.
    pub mem_mb: u32,
    /// Disk capacity, GB.
    pub disk_gb: u32,
    /// Operating system string.
    pub os: String,
    /// Installed applications of interest.
    pub apps: Vec<String>,
}

impl MachineSnapshot {
    /// The controlled study's machine (Figure 7): 2.0 GHz P4, 512 MB,
    /// 80 GB, Windows XP, with Word 2002, Powerpoint 2002, IE 6, and
    /// Quake III installed.
    pub fn study_machine(hostname: impl Into<String>) -> Self {
        MachineSnapshot {
            hostname: hostname.into(),
            cpu_mhz: 2000,
            mem_mb: 512,
            disk_gb: 80,
            os: "WindowsXP".into(),
            apps: vec![
                "Word2002".into(),
                "Powerpoint2002".into(),
                "IE6".into(),
                "QuakeIII".into(),
            ],
        }
    }

    /// Serializes into the registration block.
    pub fn emit(&self) -> String {
        use fmt::Write;
        let mut out = String::new();
        writeln!(out, "SNAPSHOT").unwrap();
        writeln!(out, "HOST {}", self.hostname).unwrap();
        writeln!(out, "CPU {}", self.cpu_mhz).unwrap();
        writeln!(out, "MEM {}", self.mem_mb).unwrap();
        writeln!(out, "DISK {}", self.disk_gb).unwrap();
        writeln!(out, "OS {}", self.os).unwrap();
        writeln!(out, "APPS {}", self.apps.join(" ")).unwrap();
        writeln!(out, "END").unwrap();
        out
    }

    /// Parses a registration block.
    pub fn parse(input: &str) -> Result<MachineSnapshot, String> {
        let mut snap = MachineSnapshot {
            hostname: String::new(),
            cpu_mhz: 0,
            mem_mb: 0,
            disk_gb: 0,
            os: String::new(),
            apps: Vec::new(),
        };
        let mut saw_header = false;
        let mut saw_end = false;
        for line in input.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if !saw_header {
                if line != "SNAPSHOT" {
                    return Err(format!("expected SNAPSHOT, found {line:?}"));
                }
                saw_header = true;
                continue;
            }
            if line == "END" {
                saw_end = true;
                break;
            }
            let (key, rest) = line.split_once(' ').unwrap_or((line, ""));
            match key {
                "HOST" => snap.hostname = rest.to_string(),
                "CPU" => snap.cpu_mhz = pu(rest)?,
                "MEM" => snap.mem_mb = pu(rest)?,
                "DISK" => snap.disk_gb = pu(rest)?,
                "OS" => snap.os = rest.to_string(),
                "APPS" => snap.apps = rest.split_whitespace().map(String::from).collect(),
                other => return Err(format!("unknown snapshot key {other:?}")),
            }
        }
        if !saw_header || !saw_end {
            return Err("truncated snapshot".to_string());
        }
        Ok(snap)
    }

    /// A relative CPU speed factor against the study machine, used by the
    /// raw-host-power analysis (paper question 6).
    pub fn speed_factor(&self) -> f64 {
        self.cpu_mhz as f64 / 2000.0
    }
}

fn pu(v: &str) -> Result<u32, String> {
    v.parse().map_err(|_| format!("bad integer {v:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let s = MachineSnapshot::study_machine("optiplex-1");
        let parsed = MachineSnapshot::parse(&s.emit()).unwrap();
        assert_eq!(parsed, s);
    }

    #[test]
    fn study_machine_matches_figure_7() {
        let s = MachineSnapshot::study_machine("m");
        assert_eq!(s.cpu_mhz, 2000);
        assert_eq!(s.mem_mb, 512);
        assert_eq!(s.disk_gb, 80);
        assert_eq!(s.os, "WindowsXP");
        assert_eq!(s.apps.len(), 4);
        assert!((s.speed_factor() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_truncation_and_garbage() {
        assert!(MachineSnapshot::parse("SNAPSHOT\nHOST x\n").is_err());
        assert!(MachineSnapshot::parse("NOPE\nEND\n").is_err());
        assert!(MachineSnapshot::parse("SNAPSHOT\nCPU fast\nEND\n").is_err());
        assert!(MachineSnapshot::parse("SNAPSHOT\nWEIRD 1\nEND\n").is_err());
    }
}
