//! Property tests for the quantile sketch: merge algebra, quantile
//! monotonicity, the documented rank/value error bound against an exact
//! `stats::Ecdf`, and byte-identical encode/decode round-trips.

use uucs_harness::prelude::*;
use uucs_modelsvc::QuantileSketch;
use uucs_stats::Ecdf;

const LO: f64 = 0.0;
const HI: f64 = 10.0;
const BINS: usize = 64;

fn sketch_of(levels: &[f64], censored: usize) -> QuantileSketch {
    let mut s = QuantileSketch::new(LO, HI, BINS);
    for &v in levels {
        s.insert(v);
    }
    for _ in 0..censored {
        s.insert_censored();
    }
    s
}

proptest! {
    /// Merging is commutative and associative, exactly (bit-for-bit):
    /// the sketch is a counter vector plus a max, both of which are
    /// order-independent.
    #[test]
    fn merge_is_commutative_and_associative(
        a in prop::collection::vec(LO..HI, 0..60),
        b in prop::collection::vec(LO..HI, 0..60),
        c in prop::collection::vec(LO..HI, 0..60),
        ca in 0usize..5,
        cb in 0usize..5,
        cc in 0usize..5,
    ) {
        let (sa, sb, sc) = (sketch_of(&a, ca), sketch_of(&b, cb), sketch_of(&c, cc));

        let mut ab = sa.clone();
        ab.merge(&sb).unwrap();
        let mut ba = sb.clone();
        ba.merge(&sa).unwrap();
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ab.encode(), ba.encode());

        // (a ∪ b) ∪ c == a ∪ (b ∪ c)
        let mut left = ab.clone();
        left.merge(&sc).unwrap();
        let mut bc = sb.clone();
        bc.merge(&sc).unwrap();
        let mut right = sa.clone();
        right.merge(&bc).unwrap();
        prop_assert_eq!(&left, &right);
        prop_assert_eq!(left.encode(), right.encode());

        // Merging equals inserting everything into one sketch.
        let mut all = a.clone();
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        let direct = sketch_of(&all, ca + cb + cc);
        prop_assert_eq!(&left, &direct);
    }

    /// quantile(p) is monotone non-decreasing in p wherever defined.
    #[test]
    fn quantiles_are_monotone(
        levels in prop::collection::vec(LO..HI, 1..120),
        censored in 0usize..30,
    ) {
        let s = sketch_of(&levels, censored);
        let mut prev: Option<f64> = None;
        for i in 1..=20 {
            let p = i as f64 / 20.0;
            match (prev, s.quantile(p)) {
                (Some(lo), Some(q)) => {
                    prop_assert!(q >= lo, "quantile({p}) = {q} < {lo}");
                    prev = Some(q);
                }
                (_, got) => {
                    // Once censoring saturates a quantile, all higher
                    // quantiles must be saturated too.
                    if prev.is_some() && got.is_none() {
                        for j in i..=20 {
                            prop_assert_eq!(s.quantile(j as f64 / 20.0), None);
                        }
                        break;
                    }
                    prev = got;
                }
            }
        }
    }

    /// The documented error bound holds against the exact ECDF: the
    /// sketch quantile is >= the exact quantile and within one bin
    /// width above it, and both censor at exactly the same ranks.
    #[test]
    fn rank_error_stays_within_bound(
        levels in prop::collection::vec(LO..HI, 1..120),
        censored in 0usize..30,
    ) {
        let s = sketch_of(&levels, censored);
        let mut sorted = levels.clone();
        sorted.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let exact = Ecdf::new(sorted, censored);
        for i in 1..=20 {
            let p = i as f64 / 20.0;
            match (exact.quantile(p), s.quantile(p)) {
                (Some(eq), Some(sq)) => {
                    prop_assert!(
                        sq >= eq - 1e-12 && sq < eq + s.value_error() + 1e-12,
                        "p={p}: sketch {sq} vs exact {eq} (bound {})",
                        s.value_error()
                    );
                }
                (None, None) => {}
                (eq, sq) => prop_assert!(
                    false,
                    "p={p}: censoring disagrees (exact {eq:?}, sketch {sq:?})"
                ),
            }
        }
    }

    /// encode ∘ decode is the identity on sketches and decode ∘ encode
    /// is the identity on encoded lines (byte-identical).
    #[test]
    fn encode_decode_roundtrips_byte_identically(
        levels in prop::collection::vec(LO..HI, 0..120),
        censored in 0usize..30,
    ) {
        let s = sketch_of(&levels, censored);
        let line = s.encode();
        let back = QuantileSketch::decode(&line).unwrap();
        prop_assert_eq!(&back, &s);
        prop_assert_eq!(back.encode(), line);
    }

    /// No strict prefix of a valid encoding ever decodes — a torn write
    /// or truncated frame cannot masquerade as a smaller valid sketch.
    #[test]
    fn strict_prefixes_never_decode(
        levels in prop::collection::vec(LO..HI, 0..60),
        censored in 0usize..10,
    ) {
        let line = sketch_of(&levels, censored).encode();
        for cut in 0..line.len() {
            prop_assert!(
                QuantileSketch::decode(&line[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }
}
