//! # uucs-modelsvc — comfort-model aggregation
//!
//! The paper's measurement loop ends with per-user discomfort records;
//! its *application* (§6) starts where this crate does: turn the
//! fleet's uploaded records into **discomfort-level CDF models** the
//! server can serve back, so clients can pick a borrowing level whose
//! predicted discomfort probability stays under a target epsilon (the
//! paper's `c_0.05` summary statistic).
//!
//! The crate is deliberately small and std-only:
//!
//! * [`QuantileSketch`] — a deterministic, mergeable streaming sketch
//!   of a discomfort-level distribution over a bounded domain, with a
//!   documented one-bin-width error bound, exact commutative and
//!   associative merges, and a compact single-line text encoding reused
//!   verbatim for WAL persistence and the wire.
//! * [`ComfortModel`] — sketches keyed by cohort
//!   `(resource, task, skill-class)` with an epoch counter; updates
//!   arrive as [`ModelDelta`]s (one per accepted upload batch) that the
//!   server journals before applying, and full-model snapshots make
//!   WAL compaction and crash recovery byte-exact.
//!
//! The server half lives in `uucs-server` (`ModelStore`, the `MODEL`
//! and `ADVICE` verbs); the client half in `uucs-client`
//! (`BorrowingGovernor`); the closed-loop evaluation in `uucs-study`.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod model;
mod sketch;

pub use model::{CohortKey, ComfortModel, ModelDelta, Observation, SKILL_UNRATED};
pub use sketch::{MergeError, QuantileSketch, SketchDelta, DEFAULT_BINS, MAX_BINS};
