//! Cohort-keyed comfort models with epoch-versioned updates.
//!
//! A [`ComfortModel`] holds one [`QuantileSketch`] per cohort
//! `(resource, task, skill-class)` — the paper's observation that
//! comfort varies by foreground context (§4.2) and self-rated skill
//! (§4.4) made concrete as the aggregation key. The model advances in
//! **epochs**: every accepted upload batch that contributes at least
//! one observation becomes one [`ModelDelta`] with epoch `e+1`, applied
//! strictly in order. Deltas are what the server journals
//! (`WalEntry::Model`), the full [`ComfortModel::encode`] text is what
//! compaction snapshots, and replaying snapshot-then-deltas
//! reconstructs the exact same epoch and byte-identical sketches — the
//! same recovery contract as the record stores.

use crate::sketch::QuantileSketch;
use std::collections::BTreeMap;
use std::fmt;
use uucs_testcase::Resource;

/// The cohort skill class used when a record carries none (legacy
/// records, or clients that do not know their user).
pub const SKILL_UNRATED: &str = "unrated";

/// Replaces whitespace so task/skill names stay single wire tokens, and
/// maps the empty string to the `-` placeholder the record format uses.
fn token(s: &str) -> String {
    if s.is_empty() {
        return "-".to_string();
    }
    s.chars()
        .map(|c| if c.is_whitespace() { '_' } else { c })
        .collect()
}

fn detoken(s: &str) -> String {
    if s == "-" {
        String::new()
    } else {
        s.to_string()
    }
}

/// The aggregation key: which population's discomfort CDF a sample
/// belongs to.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CohortKey {
    /// The borrowed resource.
    pub resource: Resource,
    /// Foreground task name (empty = unknown context).
    pub task: String,
    /// Self-rated skill class in the task's dimension (empty = unrated).
    pub skill: String,
}

/// One sample destined for a cohort sketch.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// The borrowed resource.
    pub resource: Resource,
    /// Foreground task name (empty = unknown context).
    pub task: String,
    /// Self-rated skill class (empty = unrated).
    pub skill: String,
    /// The contention level in force at the feedback point.
    pub level: f64,
    /// True when the run exhausted without feedback: the user's real
    /// threshold lies *above* `level`, so only the total rises.
    pub censored: bool,
}

impl Observation {
    fn cohort(&self) -> CohortKey {
        CohortKey {
            resource: self.resource,
            task: self.task.clone(),
            skill: if self.skill.is_empty() {
                SKILL_UNRATED.to_string()
            } else {
                self.skill.clone()
            },
        }
    }
}

/// One epoch's worth of model updates — what the server journals per
/// accepted upload batch.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelDelta {
    /// The epoch this delta advances the model *to* (`current + 1`).
    pub epoch: u64,
    /// The samples.
    pub observations: Vec<Observation>,
}

impl ModelDelta {
    /// Serializes the delta:
    ///
    /// ```text
    /// MODELDELTA <epoch> <n>
    /// OBS <resource> <task|-> <skill|-> <discomfort|exhausted> <level>
    /// ...
    /// END
    /// ```
    pub fn encode(&self) -> String {
        use fmt::Write;
        let mut out = String::new();
        writeln!(out, "MODELDELTA {} {}", self.epoch, self.observations.len()).unwrap();
        for o in &self.observations {
            writeln!(
                out,
                "OBS {} {} {} {} {}",
                o.resource,
                token(&o.task),
                token(&o.skill),
                if o.censored { "exhausted" } else { "discomfort" },
                if o.level.is_finite() { o.level } else { 0.0 },
            )
            .unwrap();
        }
        out.push_str("END\n");
        out
    }

    /// Parses [`ModelDelta::encode`] output.
    pub fn decode(text: &str) -> Result<ModelDelta, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty model delta")?;
        let mut toks = header.split_whitespace();
        if toks.next() != Some("MODELDELTA") {
            return Err(format!("bad model delta header {header:?}"));
        }
        let epoch: u64 = toks
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or("model delta missing epoch")?;
        let n: usize = toks
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or("model delta missing count")?;
        let mut observations = Vec::new();
        let mut closed = false;
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if line == "END" {
                closed = true;
                break;
            }
            let mut toks = line.split_whitespace();
            if toks.next() != Some("OBS") {
                return Err(format!("bad model delta line {line:?}"));
            }
            let resource: Resource = toks
                .next()
                .ok_or("OBS missing resource")?
                .parse()
                .map_err(|_| "bad OBS resource".to_string())?;
            let task = detoken(toks.next().ok_or("OBS missing task")?);
            let skill = detoken(toks.next().ok_or("OBS missing skill")?);
            let censored = match toks.next() {
                Some("discomfort") => false,
                Some("exhausted") => true,
                other => return Err(format!("bad OBS outcome {other:?}")),
            };
            let level: f64 = toks
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or("bad OBS level")?;
            if !level.is_finite() {
                return Err("non-finite OBS level".to_string());
            }
            if toks.next().is_some() {
                return Err(format!("trailing tokens on OBS line {line:?}"));
            }
            observations.push(Observation {
                resource,
                task,
                skill,
                level,
                censored,
            });
        }
        if !closed {
            return Err("model delta missing END".to_string());
        }
        if observations.len() != n {
            return Err(format!(
                "model delta promised {n} observations, parsed {}",
                observations.len()
            ));
        }
        Ok(ModelDelta {
            epoch,
            observations,
        })
    }
}

/// The server-side comfort model: cohort sketches plus the epoch
/// counter. See the module docs for the delta/snapshot contract.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ComfortModel {
    epoch: u64,
    cohorts: BTreeMap<CohortKey, QuantileSketch>,
}

impl ComfortModel {
    /// An empty model at epoch 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current epoch: the number of deltas applied since empty.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of cohorts holding at least one sample.
    pub fn cohort_count(&self) -> usize {
        self.cohorts.len()
    }

    /// Iterates cohorts in key order (deterministic).
    pub fn cohorts(&self) -> impl Iterator<Item = (&CohortKey, &QuantileSketch)> {
        self.cohorts.iter()
    }

    /// Reassembles a model from an epoch counter and cohort sketches —
    /// the inverse of [`ComfortModel::into_parts`]. Used by the server's
    /// shard-migration path, which repartitions cohorts by hash without
    /// replaying the original observations (the sketches are the state).
    pub fn from_parts(epoch: u64, cohorts: BTreeMap<CohortKey, QuantileSketch>) -> Self {
        ComfortModel { epoch, cohorts }
    }

    /// Decomposes the model into its epoch and cohort sketches.
    pub fn into_parts(self) -> (u64, BTreeMap<CohortKey, QuantileSketch>) {
        (self.epoch, self.cohorts)
    }

    /// Stamps a batch of observations as the *next* epoch's delta. The
    /// caller journals the delta, then [`ComfortModel::apply`]s it.
    pub fn next_delta(&self, observations: Vec<Observation>) -> ModelDelta {
        ModelDelta {
            epoch: self.epoch + 1,
            observations,
        }
    }

    /// Applies one delta. Deltas must arrive strictly in epoch order —
    /// the WAL replays them in append order, so a gap or repeat means a
    /// corrupt journal, not a retransmit (upload dedup happens before a
    /// delta is ever minted).
    pub fn apply(&mut self, delta: &ModelDelta) -> Result<(), String> {
        if delta.epoch != self.epoch + 1 {
            return Err(format!(
                "model delta epoch {} does not follow current epoch {}",
                delta.epoch, self.epoch
            ));
        }
        for o in &delta.observations {
            let sketch = self
                .cohorts
                .entry(o.cohort())
                .or_insert_with(|| QuantileSketch::for_resource(o.resource));
            if o.censored {
                sketch.insert_censored();
            } else {
                sketch.insert(o.level);
            }
        }
        self.epoch = delta.epoch;
        Ok(())
    }

    /// The merged sketch for a query: all cohorts of `resource`,
    /// narrowed to one task when given, merged across skill classes.
    /// An empty sketch (in the resource's configuration) when nothing
    /// matches — "no data yet" is an answerable question.
    pub fn merged(&self, resource: Resource, task: Option<&str>) -> QuantileSketch {
        let mut out = QuantileSketch::for_resource(resource);
        for (key, sketch) in &self.cohorts {
            if key.resource != resource {
                continue;
            }
            if let Some(t) = task {
                if key.task != t {
                    continue;
                }
            }
            // Same resource ⇒ same configuration (for_resource), so the
            // merge cannot fail; a mismatch would mean memory corruption.
            out.merge(sketch).expect("cohorts of one resource share a config");
        }
        out
    }

    /// The recommended borrowing level for a target discomfort
    /// probability `epsilon`: the epsilon-quantile of the task's merged
    /// cohort CDF, falling back to the resource aggregate when the task
    /// cohort is empty (mirroring `comfort::ThrottleAdvisor`), and to
    /// the maximum explored level when censoring saturates the
    /// quantile. `None` when no level was ever observed for the
    /// resource.
    pub fn advice(&self, resource: Resource, task: &str, epsilon: f64) -> Option<f64> {
        let contextual = self.merged(resource, Some(task));
        if contextual.observed() > 0 {
            return contextual.advice_level(epsilon);
        }
        self.merged(resource, None).advice_level(epsilon)
    }

    /// Serializes the full model — the compaction-snapshot format:
    ///
    /// ```text
    /// COMFORTMODEL <epoch> <ncohorts>
    /// COHORT <resource> <task|-> <skill|-> <sketch-line>
    /// ...
    /// END
    /// ```
    pub fn encode(&self) -> String {
        use fmt::Write;
        let mut out = String::new();
        writeln!(out, "COMFORTMODEL {} {}", self.epoch, self.cohorts.len()).unwrap();
        for (key, sketch) in &self.cohorts {
            writeln!(
                out,
                "COHORT {} {} {} {}",
                key.resource,
                token(&key.task),
                token(&key.skill),
                sketch.encode()
            )
            .unwrap();
        }
        out.push_str("END\n");
        out
    }

    /// Parses [`ComfortModel::encode`] output.
    pub fn decode(text: &str) -> Result<ComfortModel, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty model snapshot")?;
        let mut toks = header.split_whitespace();
        if toks.next() != Some("COMFORTMODEL") {
            return Err(format!("bad model snapshot header {header:?}"));
        }
        let epoch: u64 = toks
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or("model snapshot missing epoch")?;
        let n: usize = toks
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or("model snapshot missing cohort count")?;
        let mut cohorts = BTreeMap::new();
        let mut closed = false;
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if line == "END" {
                closed = true;
                break;
            }
            let mut toks = line.split_whitespace();
            if toks.next() != Some("COHORT") {
                return Err(format!("bad model snapshot line {line:?}"));
            }
            let resource: Resource = toks
                .next()
                .ok_or("COHORT missing resource")?
                .parse()
                .map_err(|_| "bad COHORT resource".to_string())?;
            let task = detoken(toks.next().ok_or("COHORT missing task")?);
            let skill = detoken(toks.next().ok_or("COHORT missing skill")?);
            let sketch = QuantileSketch::decode(toks.next().ok_or("COHORT missing sketch")?)?;
            if toks.next().is_some() {
                return Err(format!("trailing tokens on COHORT line {line:?}"));
            }
            let key = CohortKey {
                resource,
                task,
                skill,
            };
            if cohorts.insert(key.clone(), sketch).is_some() {
                return Err(format!("duplicate cohort {key:?} in model snapshot"));
            }
        }
        if !closed {
            return Err("model snapshot missing END".to_string());
        }
        if cohorts.len() != n {
            return Err(format!(
                "model snapshot promised {n} cohorts, parsed {}",
                cohorts.len()
            ));
        }
        Ok(ComfortModel { epoch, cohorts })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(resource: Resource, task: &str, skill: &str, level: f64, censored: bool) -> Observation {
        Observation {
            resource,
            task: task.into(),
            skill: skill.into(),
            level,
            censored,
        }
    }

    #[test]
    fn deltas_advance_epochs_in_order() {
        let mut m = ComfortModel::new();
        assert_eq!(m.epoch(), 0);
        let d1 = m.next_delta(vec![obs(Resource::Cpu, "Word", "Typical", 3.0, false)]);
        m.apply(&d1).unwrap();
        assert_eq!(m.epoch(), 1);
        // Replaying the same delta is a corruption, not a retransmit.
        assert!(m.apply(&d1).is_err());
        let d3 = ModelDelta {
            epoch: 3,
            observations: vec![],
        };
        assert!(m.apply(&d3).is_err(), "epoch gaps rejected");
        assert_eq!(m.epoch(), 1);
    }

    #[test]
    fn cohorts_key_on_resource_task_and_skill() {
        let mut m = ComfortModel::new();
        let d = m.next_delta(vec![
            obs(Resource::Cpu, "Word", "Typical", 3.0, false),
            obs(Resource::Cpu, "Word", "Power", 6.0, false),
            obs(Resource::Cpu, "Quake", "Typical", 1.0, false),
            obs(Resource::Disk, "Word", "Typical", 2.0, false),
            obs(Resource::Cpu, "Word", "", 4.0, true),
        ]);
        m.apply(&d).unwrap();
        assert_eq!(m.cohort_count(), 5, "unrated skill is its own cohort");
        let word = m.merged(Resource::Cpu, Some("Word"));
        assert_eq!(word.observed(), 2);
        assert_eq!(word.censored(), 1);
        let all_cpu = m.merged(Resource::Cpu, None);
        assert_eq!(all_cpu.total(), 4);
        assert_eq!(m.merged(Resource::Memory, None).total(), 0);
    }

    #[test]
    fn advice_prefers_task_cohort_and_falls_back() {
        let mut m = ComfortModel::new();
        let d = m.next_delta(vec![
            obs(Resource::Cpu, "Word", "Typical", 5.0, false),
            obs(Resource::Cpu, "Quake", "Typical", 1.0, false),
        ]);
        m.apply(&d).unwrap();
        // The Quake cohort answers for Quake; an unknown task falls back
        // to the resource aggregate (whose rank-1 quantile is Quake's 1.0).
        let quake = m.advice(Resource::Cpu, "Quake", 0.05).unwrap();
        assert!(quake < 2.0, "{quake}");
        let unknown = m.advice(Resource::Cpu, "Photoshop", 0.05).unwrap();
        assert!(unknown < 2.0, "{unknown}");
        assert_eq!(m.advice(Resource::Memory, "Word", 0.05), None);
    }

    #[test]
    fn delta_and_model_roundtrip() {
        let mut m = ComfortModel::new();
        for i in 0..3u64 {
            let d = m.next_delta(vec![
                obs(Resource::Cpu, "Word", "Typical", 1.0 + i as f64, false),
                obs(Resource::Memory, "", "", 0.5, i % 2 == 0),
            ]);
            let text = d.encode();
            assert_eq!(ModelDelta::decode(&text).unwrap(), d);
            m.apply(&d).unwrap();
        }
        let text = m.encode();
        let back = ComfortModel::decode(&text).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.encode(), text, "snapshot encoding is canonical");
        assert_eq!(back.epoch(), 3);
    }

    #[test]
    fn decode_rejects_garbage() {
        for bad in [
            "",
            "NOPE 1 0\nEND\n",
            "MODELDELTA 1\nEND\n",
            "MODELDELTA 1 2\nOBS cpu Word Typical discomfort 1\nEND\n", // count mismatch
            "MODELDELTA 1 1\nOBS cpu Word Typical maybe 1\nEND\n",
            "MODELDELTA 1 1\nOBS gpu Word Typical discomfort 1\nEND\n",
            "MODELDELTA 1 1\nOBS cpu Word Typical discomfort 1 extra\nEND\n",
            "MODELDELTA 1 1\nOBS cpu Word Typical discomfort nan\nEND\n",
            "MODELDELTA 1 1\nOBS cpu Word Typical discomfort 1\n", // no END
        ] {
            assert!(ModelDelta::decode(bad).is_err(), "{bad:?} decoded");
        }
        for bad in [
            "",
            "NOPE 0 0\nEND\n",
            "COMFORTMODEL 0 1\nEND\n", // cohort count mismatch
            "COMFORTMODEL 0 1\nCOHORT cpu Word Typical garbage\nEND\n",
            "COMFORTMODEL 0 1\nCOHORT cpu Word Typical q1;0;10;4;0;0;0;\n", // no END
        ] {
            assert!(ComfortModel::decode(bad).is_err(), "{bad:?} decoded");
        }
        // Duplicate cohorts are corruption.
        let line = crate::sketch::QuantileSketch::for_resource(Resource::Cpu).encode();
        let dup = format!(
            "COMFORTMODEL 0 2\nCOHORT cpu Word Typical {line}\nCOHORT cpu Word Typical {line}\nEND\n"
        );
        assert!(ComfortModel::decode(&dup).is_err());
    }

    #[test]
    fn whitespace_in_names_is_sanitized() {
        let m = ComfortModel::new();
        let d = m.next_delta(vec![obs(Resource::Cpu, "My Task", "Power User", 2.0, false)]);
        let text = d.encode();
        let back = ModelDelta::decode(&text).unwrap();
        assert_eq!(back.observations[0].task, "My_Task");
        assert_eq!(back.observations[0].skill, "Power_User");
    }
}
