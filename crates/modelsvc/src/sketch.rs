//! A deterministic, mergeable streaming quantile sketch over a bounded
//! contention domain.
//!
//! The paper's discomfort CDFs (§4) live on known, bounded axes: a
//! contention level between 0 and the resource's calibrated maximum
//! (10 competing threads for CPU, a memory fraction of 1.0, 7 for
//! disk). That boundedness buys a sketch with properties a general
//! GK/KLL summary cannot offer simultaneously:
//!
//! * **Exactly commutative and associative merges.** The state is a
//!   fixed grid of `u64` bin counts plus an exact running maximum;
//!   merging adds counts and takes the max, so any merge order of any
//!   grouping yields bit-identical state. Fleet aggregation can proceed
//!   in whatever order uploads arrive.
//! * **A deterministic, documented error bound.** Every inserted level
//!   is attributed to the bin whose *upper edge* is the least grid
//!   point at or above it, so a quantile answer is always an upper
//!   bound on the true quantile and overshoots it by less than one bin
//!   width ([`QuantileSketch::value_error`]). CDF evaluation at grid
//!   points is exact. There is no randomness anywhere, so two servers
//!   fed the same uploads hold byte-identical models.
//! * **Bounded size.** The sketch never grows past its
//!   [`DEFAULT_BINS`] counters no matter how many samples stream in,
//!   and the sparse text encoding only pays for occupied bins.
//!
//! Censoring follows `uucs-stats::Ecdf`: a run that exhausted without
//! feedback raises only the *total* (its discomfort level is known to
//! lie above everything explored), so low quantiles stay honest and
//! high quantiles refuse to extrapolate ([`QuantileSketch::quantile`]
//! returns `None` when the requested rank falls in censored mass).

use std::fmt;
use uucs_testcase::Resource;

/// Grid resolution used by [`QuantileSketch::for_resource`]: the rank
/// answers of a 256-bin sketch are off by at most `max_contention/256`
/// in level (≈0.04 contention for CPU), far below the ~0.5-level grain
/// of the paper's testcase ramps.
pub const DEFAULT_BINS: usize = 256;

/// Upper bound on the bin count a decoder will accept, so a corrupt
/// header cannot make recovery allocate gigabytes.
pub const MAX_BINS: usize = 1 << 16;

/// Why two sketches could not be merged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeError {
    /// Human-readable description of the mismatch.
    pub what: String,
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sketch merge mismatch: {}", self.what)
    }
}

impl std::error::Error for MergeError {}

/// A fixed-grid streaming quantile sketch for discomfort levels.
///
/// See the module docs for the design rationale. The documented error
/// bound: for any `p` with an uncensored answer, `quantile(p)` returns
/// a grid point `v` such that the exact p-quantile `q` (in the sense of
/// `uucs-stats::Ecdf::quantile` over the same inserts) satisfies
/// `q <= v < q + value_error()`.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    observed: u64,
    censored: u64,
    /// Exact maximum observed (post-clamp) level; `lo` while empty.
    max_seen: f64,
}

impl QuantileSketch {
    /// A sketch over `[lo, hi]` with `nbins` equal-width bins.
    ///
    /// # Panics
    /// If the domain is not finite and non-empty or `nbins` is not in
    /// `1..=MAX_BINS` — sketch configurations are code, not data, so a
    /// bad one is a programming error.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "sketch domain must be a finite non-empty interval"
        );
        assert!(
            (1..=MAX_BINS).contains(&nbins),
            "sketch bin count must be in 1..={MAX_BINS}"
        );
        QuantileSketch {
            lo,
            hi,
            bins: vec![0; nbins],
            observed: 0,
            censored: 0,
            max_seen: lo,
        }
    }

    /// The standard sketch for a resource's contention axis:
    /// `[0, max_contention]` at [`DEFAULT_BINS`] resolution. Every
    /// cohort of the same resource shares this configuration, so their
    /// sketches always merge.
    pub fn for_resource(resource: Resource) -> Self {
        Self::new(0.0, resource.max_contention(), DEFAULT_BINS)
    }

    /// The bin width — also the sketch's documented quantile error
    /// bound in level space ([`QuantileSketch::value_error`]).
    pub fn width(&self) -> f64 {
        (self.hi - self.lo) / self.bins.len() as f64
    }

    /// The documented error bound: `quantile(p)` never undershoots the
    /// exact quantile and overshoots it by less than this.
    pub fn value_error(&self) -> f64 {
        self.width()
    }

    /// The domain `(lo, hi)`.
    pub fn domain(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    /// Number of grid bins.
    pub fn resolution(&self) -> usize {
        self.bins.len()
    }

    /// Count of uncensored (discomfort-level) observations.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Count of right-censored observations (runs exhausted without
    /// feedback).
    pub fn censored(&self) -> u64 {
        self.censored
    }

    /// Total observations, censored included — the quantile denominator.
    pub fn total(&self) -> u64 {
        self.observed + self.censored
    }

    /// True when nothing was ever inserted.
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }

    /// The exact maximum observed level, if any level was observed.
    pub fn max_observed(&self) -> Option<f64> {
        (self.observed > 0).then_some(self.max_seen)
    }

    /// The bin index a level lands in: the bin whose upper edge is the
    /// least grid point at or above the (clamped) level.
    fn bin_index(&self, level: f64) -> usize {
        let v = level.clamp(self.lo, self.hi);
        let i = ((v - self.lo) / self.width()).ceil() as usize;
        i.saturating_sub(1).min(self.bins.len() - 1)
    }

    /// The upper grid edge of bin `i` — the value quantile queries
    /// answer with.
    fn upper_edge(&self, i: usize) -> f64 {
        if i + 1 == self.bins.len() {
            // Computed edges can land a ULP past `hi`; the last edge is
            // `hi` by definition.
            self.hi
        } else {
            self.lo + (i as f64 + 1.0) * self.width()
        }
    }

    /// Inserts one observed discomfort level (clamped into the domain).
    pub fn insert(&mut self, level: f64) {
        let v = if level.is_finite() {
            level.clamp(self.lo, self.hi)
        } else {
            // A non-finite level carries no usable position; attribute
            // it to the nearest end of the domain deterministically.
            if level > 0.0 {
                self.hi
            } else {
                self.lo
            }
        };
        let i = self.bin_index(v);
        self.bins[i] += 1;
        self.observed += 1;
        self.max_seen = self.max_seen.max(v);
    }

    /// Records one right-censored run: it raises the total without
    /// contributing a level, exactly like `Ecdf`'s censored runs.
    pub fn insert_censored(&mut self) {
        self.censored += 1;
    }

    /// Merges another sketch of the *same configuration* into this one.
    /// Exactly commutative and associative: counts add, the maximum is
    /// the max of maxima.
    pub fn merge(&mut self, other: &QuantileSketch) -> Result<(), MergeError> {
        if self.lo != other.lo || self.hi != other.hi || self.bins.len() != other.bins.len() {
            return Err(MergeError {
                what: format!(
                    "[{}, {}]x{} vs [{}, {}]x{}",
                    self.lo,
                    self.hi,
                    self.bins.len(),
                    other.lo,
                    other.hi,
                    other.bins.len()
                ),
            });
        }
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.observed += other.observed;
        self.censored += other.censored;
        // Both maxima are >= lo (the empty-sketch sentinel), so a plain
        // max is correct whether either side is empty or not.
        self.max_seen = self.max_seen.max(other.max_seen);
        Ok(())
    }

    /// The p-quantile with `Ecdf` semantics: rank `max(ceil(p·total), 1)`
    /// over observed *and* censored mass. `None` when the sketch is
    /// empty or the rank falls into censored mass (the level lies above
    /// everything explored — refusing to extrapolate is the point of
    /// censoring). The answer is a grid point within
    /// [`QuantileSketch::value_error`] above the exact quantile.
    pub fn quantile(&self, p: f64) -> Option<f64> {
        let total = self.total();
        if total == 0 || !p.is_finite() {
            return None;
        }
        let need = ((p * total as f64).ceil() as u64).max(1);
        if need > self.observed {
            return None;
        }
        let mut cum = 0u64;
        for (i, c) in self.bins.iter().enumerate() {
            cum += c;
            if cum >= need {
                return Some(self.upper_edge(i));
            }
        }
        None
    }

    /// The borrowing level for a target discomfort probability:
    /// the p-quantile, or — when censoring saturates the query — the
    /// maximum explored level (mirroring
    /// `comfort::ThrottleAdvisor`: if nobody objected anywhere we
    /// looked, the best supportable answer is the highest level looked
    /// at). `None` only when no level was ever observed.
    pub fn advice_level(&self, p: f64) -> Option<f64> {
        self.quantile(p).or(self.max_observed())
    }

    /// The fraction of total mass at or below `c`, counting whole bins
    /// (exact when `c` is a grid point, conservative otherwise).
    pub fn eval(&self, c: f64) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let mut cum = 0u64;
        for (i, n) in self.bins.iter().enumerate() {
            if self.upper_edge(i) <= c {
                cum += n;
            } else {
                break;
            }
        }
        cum as f64 / total as f64
    }

    /// Evaluates several quantiles at once — the "quantile table" the
    /// `MODEL` verb's callers print.
    pub fn quantile_table(&self, ps: &[f64]) -> Vec<(f64, Option<f64>)> {
        ps.iter().map(|&p| (p, self.quantile(p))).collect()
    }

    /// Encodes the sketch as one whitespace-free line:
    ///
    /// ```text
    /// q1;<lo>;<hi>;<nbins>;<observed>;<censored>;<max>;<i>:<n>,<i>:<n>,...
    /// ```
    ///
    /// Floats use Rust's shortest round-trip formatting, so
    /// decode∘encode is the identity and encode∘decode is
    /// byte-identical. Empty bins are omitted (the final field may be
    /// empty). The same line is journaled in the WAL snapshot and sent
    /// on the wire.
    pub fn encode(&self) -> String {
        use fmt::Write;
        let mut out = String::new();
        write!(
            out,
            "q1;{};{};{};{};{};{};",
            self.lo,
            self.hi,
            self.bins.len(),
            self.observed,
            self.censored,
            self.max_seen
        )
        .unwrap();
        let mut first = true;
        for (i, n) in self.bins.iter().enumerate() {
            if *n == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            write!(out, "{i}:{n}").unwrap();
        }
        out
    }

    /// Decodes [`QuantileSketch::encode`] output, validating every
    /// invariant (finite non-empty domain, bins strictly increasing and
    /// in range, bin counts summing to the observed count, maximum
    /// inside the domain) so a truncated or garbled line never yields a
    /// plausible-looking sketch.
    pub fn decode(text: &str) -> Result<QuantileSketch, String> {
        let fields: Vec<&str> = text.split(';').collect();
        if fields.len() != 8 {
            return Err(format!("sketch line has {} fields, want 8", fields.len()));
        }
        if fields[0] != "q1" {
            return Err(format!("unknown sketch version {:?}", fields[0]));
        }
        let pf = |what: &str, s: &str| -> Result<f64, String> {
            let v: f64 = s.parse().map_err(|_| format!("bad sketch {what} {s:?}"))?;
            if !v.is_finite() {
                return Err(format!("non-finite sketch {what} {s:?}"));
            }
            Ok(v)
        };
        let lo = pf("lo", fields[1])?;
        let hi = pf("hi", fields[2])?;
        if lo >= hi {
            return Err(format!("empty sketch domain [{lo}, {hi}]"));
        }
        let nbins: usize = fields[3]
            .parse()
            .map_err(|_| format!("bad sketch bin count {:?}", fields[3]))?;
        if !(1..=MAX_BINS).contains(&nbins) {
            return Err(format!("sketch bin count {nbins} out of range"));
        }
        let observed: u64 = fields[4]
            .parse()
            .map_err(|_| format!("bad sketch observed count {:?}", fields[4]))?;
        let censored: u64 = fields[5]
            .parse()
            .map_err(|_| format!("bad sketch censored count {:?}", fields[5]))?;
        let max_seen = pf("max", fields[6])?;
        if max_seen < lo || max_seen > hi {
            return Err(format!("sketch max {max_seen} outside [{lo}, {hi}]"));
        }
        if observed == 0 && max_seen != lo {
            return Err("empty sketch must carry max = lo".to_string());
        }
        let mut bins = vec![0u64; nbins];
        let mut sum = 0u64;
        let mut prev: Option<usize> = None;
        if !fields[7].is_empty() {
            for seg in fields[7].split(',') {
                let (i, n) = seg
                    .split_once(':')
                    .ok_or_else(|| format!("bad sketch bin segment {seg:?}"))?;
                let i: usize = i
                    .parse()
                    .map_err(|_| format!("bad sketch bin index {i:?}"))?;
                let n: u64 = n
                    .parse()
                    .map_err(|_| format!("bad sketch bin count {n:?}"))?;
                if i >= nbins {
                    return Err(format!("sketch bin index {i} out of range"));
                }
                if n == 0 {
                    return Err("sketch encodes an empty bin".to_string());
                }
                if prev.is_some_and(|p| i <= p) {
                    return Err("sketch bin indices not strictly increasing".to_string());
                }
                prev = Some(i);
                bins[i] = n;
                sum = sum
                    .checked_add(n)
                    .ok_or_else(|| "sketch bin counts overflow".to_string())?;
            }
        }
        if sum != observed {
            return Err(format!(
                "sketch bins sum to {sum} but observed count is {observed}"
            ));
        }
        Ok(QuantileSketch {
            lo,
            hi,
            bins,
            observed,
            censored,
            max_seen,
        })
    }
}

/// The changed-bin difference between two snapshots of one *growing*
/// sketch — the payload of an epoch-delta `MODELDELTA` download.
///
/// Bin counts only ever increase and the configuration never changes,
/// so the delta from a cached base to the current sketch is the per-bin
/// **growth** of the bins that moved, plus the base and target totals.
/// Growth encoding makes the line self-checking: the changed-bin
/// growths must sum *exactly* to the observed-count growth, so a
/// truncated changed list (even one cut at a comma boundary) can never
/// decode. [`QuantileSketch::apply_delta`] additionally requires the
/// base totals to match the sketch it is applied to, so a delta
/// computed against a *different* base (a renumbered epoch after
/// failover, say) is rejected instead of silently merged.
#[derive(Debug, Clone, PartialEq)]
pub struct SketchDelta {
    lo: f64,
    hi: f64,
    nbins: usize,
    /// The totals of the base this delta was computed against.
    base_observed: u64,
    base_censored: u64,
    /// The target totals and maximum — what the base advances to.
    observed: u64,
    censored: u64,
    max_seen: f64,
    /// `(bin index, count growth)` for every bin that changed,
    /// strictly increasing by index, every growth >= 1.
    changed: Vec<(usize, u64)>,
}

impl SketchDelta {
    /// Number of bins that changed between base and target.
    pub fn changed_bins(&self) -> usize {
        self.changed.len()
    }

    /// The target's observed (uncensored) count.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// The target's censored count.
    pub fn censored(&self) -> u64 {
        self.censored
    }

    /// True when base and target were identical (the common polling
    /// case: the model has not advanced since the client's cached
    /// epoch, so the delta carries nothing but the unchanged totals).
    pub fn is_noop(&self) -> bool {
        self.changed.is_empty() && self.censored == self.base_censored
    }

    /// Encodes the delta as one whitespace-free line, mirroring
    /// [`QuantileSketch::encode`] with a `qd1` version tag:
    ///
    /// ```text
    /// qd1;<lo>;<hi>;<nbins>;<base-obs>;<base-cens>;<obs>;<cens>;<max>;<i>:<growth>,...
    /// ```
    pub fn encode(&self) -> String {
        use fmt::Write;
        let mut out = String::new();
        write!(
            out,
            "qd1;{};{};{};{};{};{};{};{};",
            self.lo,
            self.hi,
            self.nbins,
            self.base_observed,
            self.base_censored,
            self.observed,
            self.censored,
            self.max_seen
        )
        .unwrap();
        let mut first = true;
        for (i, g) in &self.changed {
            if !first {
                out.push(',');
            }
            first = false;
            write!(out, "{i}:{g}").unwrap();
        }
        out
    }

    /// Decodes [`SketchDelta::encode`] output with the same paranoia as
    /// the sketch decoder: a truncated or garbled line never yields a
    /// plausible-looking delta, because the changed-bin growths must
    /// account exactly for the observed-count growth.
    pub fn decode(text: &str) -> Result<SketchDelta, String> {
        let fields: Vec<&str> = text.split(';').collect();
        if fields.len() != 10 {
            return Err(format!("delta line has {} fields, want 10", fields.len()));
        }
        if fields[0] != "qd1" {
            return Err(format!("unknown delta version {:?}", fields[0]));
        }
        let pf = |what: &str, s: &str| -> Result<f64, String> {
            let v: f64 = s.parse().map_err(|_| format!("bad delta {what} {s:?}"))?;
            if !v.is_finite() {
                return Err(format!("non-finite delta {what} {s:?}"));
            }
            Ok(v)
        };
        let pu = |what: &str, s: &str| -> Result<u64, String> {
            s.parse().map_err(|_| format!("bad delta {what} {s:?}"))
        };
        let lo = pf("lo", fields[1])?;
        let hi = pf("hi", fields[2])?;
        if lo >= hi {
            return Err(format!("empty delta domain [{lo}, {hi}]"));
        }
        let nbins: usize = fields[3]
            .parse()
            .map_err(|_| format!("bad delta bin count {:?}", fields[3]))?;
        if !(1..=MAX_BINS).contains(&nbins) {
            return Err(format!("delta bin count {nbins} out of range"));
        }
        let base_observed = pu("base observed count", fields[4])?;
        let base_censored = pu("base censored count", fields[5])?;
        let observed = pu("observed count", fields[6])?;
        let censored = pu("censored count", fields[7])?;
        if observed < base_observed || censored < base_censored {
            return Err("delta shrinks a total count".to_string());
        }
        let max_seen = pf("max", fields[8])?;
        if max_seen < lo || max_seen > hi {
            return Err(format!("delta max {max_seen} outside [{lo}, {hi}]"));
        }
        let mut changed = Vec::new();
        let mut sum = 0u64;
        let mut prev: Option<usize> = None;
        if !fields[9].is_empty() {
            for seg in fields[9].split(',') {
                let (i, g) = seg
                    .split_once(':')
                    .ok_or_else(|| format!("bad delta bin segment {seg:?}"))?;
                let i: usize = i
                    .parse()
                    .map_err(|_| format!("bad delta bin index {i:?}"))?;
                let g: u64 = g
                    .parse()
                    .map_err(|_| format!("bad delta bin growth {g:?}"))?;
                if i >= nbins {
                    return Err(format!("delta bin index {i} out of range"));
                }
                if g == 0 {
                    return Err("delta encodes a zero-growth bin".to_string());
                }
                if prev.is_some_and(|p| i <= p) {
                    return Err("delta bin indices not strictly increasing".to_string());
                }
                prev = Some(i);
                sum = sum
                    .checked_add(g)
                    .ok_or_else(|| "delta bin growths overflow".to_string())?;
                changed.push((i, g));
            }
        }
        if sum != observed - base_observed {
            return Err(format!(
                "delta changed bins grow by {sum} but the observed count by {}",
                observed - base_observed
            ));
        }
        Ok(SketchDelta {
            lo,
            hi,
            nbins,
            base_observed,
            base_censored,
            observed,
            censored,
            max_seen,
            changed,
        })
    }
}

impl QuantileSketch {
    /// The delta that advances `base` to `self`. Fails when the
    /// configurations differ or `base` is not an ancestor of `self`
    /// (some count shrank) — both mean the two sketches do not belong
    /// to the same growth history and a delta would corrupt the base.
    pub fn delta_since(&self, base: &QuantileSketch) -> Result<SketchDelta, MergeError> {
        if self.lo != base.lo || self.hi != base.hi || self.bins.len() != base.bins.len() {
            return Err(MergeError {
                what: format!(
                    "[{}, {}]x{} vs [{}, {}]x{}",
                    self.lo,
                    self.hi,
                    self.bins.len(),
                    base.lo,
                    base.hi,
                    base.bins.len()
                ),
            });
        }
        if base.observed > self.observed
            || base.censored > self.censored
            || base.max_seen > self.max_seen
        {
            return Err(MergeError {
                what: "delta base is ahead of the target (not an ancestor)".to_string(),
            });
        }
        let mut changed = Vec::new();
        for (i, (&new, &old)) in self.bins.iter().zip(&base.bins).enumerate() {
            if new < old {
                return Err(MergeError {
                    what: format!("bin {i} shrank {old} -> {new} (base is not an ancestor)"),
                });
            }
            if new != old {
                changed.push((i, new - old));
            }
        }
        Ok(SketchDelta {
            lo: self.lo,
            hi: self.hi,
            nbins: self.bins.len(),
            base_observed: base.observed,
            base_censored: base.censored,
            observed: self.observed,
            censored: self.censored,
            max_seen: self.max_seen,
            changed,
        })
    }

    /// Advances this sketch by a delta computed against it. Validates
    /// everything *before* mutating — configuration match, exact
    /// base-total match, grow-only maximum — so a delta computed
    /// against a different base leaves the sketch untouched and the
    /// caller falls back to a full download.
    pub fn apply_delta(&mut self, delta: &SketchDelta) -> Result<(), MergeError> {
        if self.lo != delta.lo || self.hi != delta.hi || self.bins.len() != delta.nbins {
            return Err(MergeError {
                what: format!(
                    "[{}, {}]x{} vs delta [{}, {}]x{}",
                    self.lo,
                    self.hi,
                    self.bins.len(),
                    delta.lo,
                    delta.hi,
                    delta.nbins
                ),
            });
        }
        if self.observed != delta.base_observed || self.censored != delta.base_censored {
            return Err(MergeError {
                what: format!(
                    "delta base is {}+{} records but this sketch is {}+{} — \
                     it was computed against a different base",
                    delta.base_observed, delta.base_censored, self.observed, self.censored
                ),
            });
        }
        if delta.max_seen < self.max_seen {
            return Err(MergeError {
                what: format!(
                    "delta shrinks the maximum {} -> {}",
                    self.max_seen, delta.max_seen
                ),
            });
        }
        if delta.changed.iter().any(|&(i, _)| i >= self.bins.len()) {
            return Err(MergeError {
                what: "delta bin index out of range".to_string(),
            });
        }
        for &(i, g) in &delta.changed {
            self.bins[i] += g;
        }
        self.observed = delta.observed;
        self.censored = delta.censored;
        self.max_seen = delta.max_seen;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpu() -> QuantileSketch {
        QuantileSketch::for_resource(Resource::Cpu)
    }

    #[test]
    fn empty_sketch_answers_nothing() {
        let s = cpu();
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.advice_level(0.5), None);
        assert_eq!(s.max_observed(), None);
        assert_eq!(s.eval(10.0), 0.0);
    }

    #[test]
    fn quantile_tracks_exact_within_one_bin() {
        let mut s = cpu();
        let levels = [0.5, 1.25, 2.0, 3.75, 4.0, 4.0, 6.5, 8.0, 9.1, 10.0];
        for l in levels {
            s.insert(l);
        }
        // Exact quantile (Ecdf semantics): rank ceil(p*n).max(1).
        let mut sorted = levels.to_vec();
        sorted.sort_by(f64::total_cmp);
        for p in [0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
            let need = ((p * sorted.len() as f64).ceil() as usize).max(1);
            let exact = sorted[need - 1];
            let got = s.quantile(p).unwrap();
            assert!(
                got >= exact && got < exact + s.value_error() + 1e-12,
                "p={p}: got {got}, exact {exact}, bound {}",
                s.value_error()
            );
        }
    }

    #[test]
    fn censoring_blocks_extrapolation_and_advice_falls_back() {
        let mut s = cpu();
        s.insert(2.0);
        s.insert(3.0);
        for _ in 0..8 {
            s.insert_censored();
        }
        assert_eq!(s.total(), 10);
        // Rank 1..=2 is observed; deeper ranks are censored mass.
        assert!(s.quantile(0.2).is_some());
        assert_eq!(s.quantile(0.5), None);
        // Advice falls back to the maximum explored level.
        assert_eq!(s.advice_level(0.5), Some(3.0));
    }

    #[test]
    fn merge_is_exact_and_rejects_mismatches() {
        let mut a = cpu();
        let mut b = cpu();
        a.insert(1.0);
        a.insert_censored();
        b.insert(9.0);
        b.insert(2.0);
        let mut ab = a.clone();
        ab.merge(&b).unwrap();
        let mut ba = b.clone();
        ba.merge(&a).unwrap();
        assert_eq!(ab, ba);
        assert_eq!(ab.total(), 4);
        assert_eq!(ab.max_observed(), Some(9.0));
        let mem = QuantileSketch::for_resource(Resource::Memory);
        assert!(a.merge(&mem).is_err());
    }

    #[test]
    fn merge_into_empty_adopts_the_maximum() {
        let mut empty = cpu();
        let mut b = cpu();
        b.insert(4.5);
        empty.merge(&b).unwrap();
        assert_eq!(empty.max_observed(), Some(4.5));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut s = cpu();
        for l in [0.0, 0.01, 3.3, 9.99, 10.0] {
            s.insert(l);
        }
        s.insert_censored();
        let line = s.encode();
        assert!(!line.contains(char::is_whitespace));
        let back = QuantileSketch::decode(&line).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.encode(), line);
        // Empty sketch too.
        let e = cpu();
        assert_eq!(QuantileSketch::decode(&e.encode()).unwrap(), e);
    }

    #[test]
    fn decode_rejects_garbage_and_truncations() {
        let mut s = cpu();
        s.insert(5.0);
        s.insert(7.5);
        let line = s.encode();
        for cut in 0..line.len() {
            assert!(
                QuantileSketch::decode(&line[..cut]).is_err(),
                "prefix {:?} decoded",
                &line[..cut]
            );
        }
        for bad in [
            "",
            "q2;0;10;4;0;0;0;",
            "q1;0;10;4;0;0;0",           // 7 fields
            "q1;0;0;4;0;0;0;",           // empty domain
            "q1;0;10;0;0;0;0;",          // zero bins
            "q1;0;10;99999999;0;0;0;",   // absurd bins
            "q1;0;10;4;1;0;0;",          // sum mismatch
            "q1;0;10;4;1;0;11;0:1",      // max outside domain
            "q1;0;10;4;0;0;3;",          // empty sketch with max != lo
            "q1;0;10;4;2;0;9;1:1,1:1",   // non-increasing indices
            "q1;0;10;4;1;0;9;9:1",       // index out of range
            "q1;0;10;4;1;0;9;3:0",       // zero-count bin
            "q1;nan;10;4;0;0;0;",        // non-finite domain
            "q1;0;10;4;0;x;0;",          // garbled count
        ] {
            assert!(QuantileSketch::decode(bad).is_err(), "{bad:?} decoded");
        }
    }

    #[test]
    fn eval_is_exact_at_grid_points() {
        let mut s = QuantileSketch::new(0.0, 10.0, 10);
        for l in [0.5, 1.0, 1.5, 7.0] {
            s.insert(l);
        }
        // Grid point 1.0 covers levels in (0,1]: 0.5 and 1.0.
        assert_eq!(s.eval(1.0), 0.5);
        assert_eq!(s.eval(10.0), 1.0);
        assert_eq!(s.eval(0.0), 0.0);
    }

    #[test]
    fn non_finite_inserts_are_clamped_deterministically() {
        let mut s = cpu();
        s.insert(f64::INFINITY);
        s.insert(f64::NEG_INFINITY);
        assert_eq!(s.observed(), 2);
        assert_eq!(s.max_observed(), Some(10.0));
        let line = s.encode();
        assert_eq!(QuantileSketch::decode(&line).unwrap(), s);
    }

    #[test]
    fn delta_advances_base_to_target_exactly() {
        let mut base = cpu();
        base.insert(1.0);
        base.insert(4.5);
        base.insert_censored();
        let mut target = base.clone();
        target.insert(4.5);
        target.insert(9.0);
        target.insert_censored();
        let delta = target.delta_since(&base).unwrap();
        assert!(!delta.is_noop());
        assert!(delta.changed_bins() >= 1);
        let mut applied = base.clone();
        applied.apply_delta(&delta).unwrap();
        assert_eq!(applied, target);
        assert_eq!(applied.encode(), target.encode());
    }

    #[test]
    fn delta_roundtrips_through_text_including_noop() {
        let mut base = cpu();
        base.insert(2.0);
        let mut target = base.clone();
        target.insert(7.7);
        let delta = target.delta_since(&base).unwrap();
        let line = delta.encode();
        assert!(!line.contains(char::is_whitespace));
        let back = SketchDelta::decode(&line).unwrap();
        assert_eq!(back, delta);
        assert_eq!(back.encode(), line);
        // The no-op delta (polling an unchanged model) roundtrips too.
        let noop = target.delta_since(&target).unwrap();
        assert!(noop.is_noop());
        let back = SketchDelta::decode(&noop.encode()).unwrap();
        let mut applied = target.clone();
        applied.apply_delta(&back).unwrap();
        assert_eq!(applied, target);
    }

    #[test]
    fn delta_rejects_non_ancestor_bases() {
        let mut a = cpu();
        a.insert(1.0);
        let mut b = cpu();
        b.insert(9.0);
        // a is not an ancestor of b: a's bin for 1.0 would shrink.
        assert!(b.delta_since(&a).is_err());
        // Mismatched configuration fails on either side.
        let mem = QuantileSketch::for_resource(Resource::Memory);
        assert!(b.delta_since(&mem).is_err());
        let mut m = mem.clone();
        let d = b.delta_since(&cpu()).unwrap();
        assert!(m.apply_delta(&d).is_err());
    }

    #[test]
    fn apply_rejects_deltas_from_a_different_base_without_mutating() {
        let mut real_base = cpu();
        real_base.insert(3.0);
        real_base.insert(3.0);
        let mut target = real_base.clone();
        target.insert(6.0);
        let delta = target.delta_since(&real_base).unwrap();
        // A client whose cache diverged (same config, different counts)
        // must not silently adopt the delta.
        let mut other = cpu();
        other.insert(3.0);
        let snapshot = other.clone();
        assert!(other.apply_delta(&delta).is_err());
        assert_eq!(other, snapshot, "failed apply must leave the base untouched");
    }

    #[test]
    fn delta_decode_rejects_garbage_and_truncations() {
        let mut base = cpu();
        base.insert(1.0);
        let mut target = base.clone();
        target.insert(2.0);
        target.insert(8.0);
        let line = target.delta_since(&base).unwrap().encode();
        for cut in 0..line.len() {
            assert!(
                SketchDelta::decode(&line[..cut]).is_err(),
                "prefix {:?} decoded",
                &line[..cut]
            );
        }
        for bad in [
            "",
            "q1;0;10;4;0;0;1;0;5;0:1",      // sketch tag, not delta tag
            "qd2;0;10;4;0;0;1;0;5;0:1",     // unknown version
            "qd1;0;10;4;0;0;1;0;5",         // 9 fields
            "qd1;0;0;4;0;0;1;0;0;0:1",      // empty domain
            "qd1;0;10;0;0;0;1;0;5;0:1",     // zero bins
            "qd1;0;10;4;0;0;1;0;11;0:1",    // max outside domain
            "qd1;0;10;4;0;0;1;0;5;9:1",     // index out of range
            "qd1;0;10;4;0;0;1;0;5;0:0",     // zero-growth bin
            "qd1;0;10;4;0;0;2;0;5;1:1,1:1", // non-increasing indices
            "qd1;0;10;4;0;0;1;0;5;0:2",     // growth above observed growth
            "qd1;0;10;4;0;0;2;0;5;0:1",     // growth below observed growth
            "qd1;0;10;4;2;0;1;0;5;",        // shrinking observed total
            "qd1;nan;10;4;0;0;1;0;5;0:1",   // non-finite domain
            "qd1;0;10;4;x;0;1;0;5;0:1",     // garbled count
        ] {
            assert!(SketchDelta::decode(bad).is_err(), "{bad:?} decoded");
        }
    }
}
