//! Client-side connection pieces: the `--wire` mode knob, the text
//! `HELLO` negotiation, and a negotiated binary connection.

use crate::frame::{read_server_frame, write_client_frame};
use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::str::FromStr;
use uucs_protocol::wire::{read_server_msg, write_client_msg};
use uucs_protocol::{ClientMsg, ServerMsg, WIRE_VERSION_TEXT};

/// Which wire framing a client should use — the `--wire` flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireMode {
    /// Plain text (wire v1), no negotiation: byte-identical to a
    /// legacy client. The default for embedded transports, so existing
    /// behavior never changes without an explicit opt-in.
    #[default]
    Text,
    /// Require binary (wire v2): if the server cannot negotiate it,
    /// the connection fails with a permanent error instead of quietly
    /// degrading — for deployments that *mean* it.
    Binary,
    /// Negotiate: try `HELLO`, use binary if the server agrees, fall
    /// back to text (including against legacy servers that answer
    /// `ERROR`). What the `uucs-client` daemon defaults to.
    Auto,
}

impl FromStr for WireMode {
    type Err = String;
    fn from_str(s: &str) -> Result<WireMode, String> {
        match s {
            "text" => Ok(WireMode::Text),
            "binary" => Ok(WireMode::Binary),
            "auto" => Ok(WireMode::Auto),
            other => Err(format!("unknown wire mode {other:?} (text|binary|auto)")),
        }
    }
}

impl fmt::Display for WireMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            WireMode::Text => "text",
            WireMode::Binary => "binary",
            WireMode::Auto => "auto",
        })
    }
}

/// Outcome of the text-phase `HELLO` exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Negotiated {
    /// The server answered `HELLO <version>`; this connection speaks
    /// `version` from here on (1 = stay in text, 2 = switch to binary
    /// framing immediately).
    Version(u32),
    /// A legacy server answered `ERROR` (the unknown-verb rule): it
    /// speaks only text and the connection is still perfectly usable.
    LegacyText,
}

/// Runs the client half of the `HELLO` exchange on a fresh connection:
/// requests `want` (normally [`WIRE_VERSION_BINARY`]) and interprets
/// the reply. Must be the first exchange on the connection.
///
/// Errors: anything other than a `HELLO` or `ERROR` reply is
/// `InvalidData` (the peer is confused); transport errors pass
/// through.
pub fn negotiate(
    w: &mut impl Write,
    r: &mut impl BufRead,
    want: u32,
) -> io::Result<Negotiated> {
    write_client_msg(w, &ClientMsg::Hello { version: want })?;
    match read_server_msg(r)? {
        ServerMsg::Hello { version } => {
            if version > want || version < WIRE_VERSION_TEXT {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("server negotiated version {version}, outside 1..={want}"),
                ));
            }
            Ok(Negotiated::Version(version))
        }
        // A legacy server answers ERROR for the unknown HELLO verb and
        // keeps the connection — exactly the fallback path.
        ServerMsg::Error(_) => Ok(Negotiated::LegacyText),
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unexpected HELLO reply {other:?}"),
        )),
    }
}

/// A connection that has negotiated [`WIRE_VERSION_BINARY`]: framed,
/// CRC-checked, and pipelinable (request ids correlate replies).
#[derive(Debug)]
pub struct BinaryConn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    next_req: u32,
}

impl BinaryConn {
    /// Wraps an already-negotiated stream pair (the write half and the
    /// buffered read half of one socket).
    pub fn new(writer: TcpStream, reader: BufReader<TcpStream>) -> BinaryConn {
        BinaryConn {
            writer,
            reader,
            next_req: 1,
        }
    }

    /// The underlying socket (for deadlines and shutdown).
    pub fn stream(&self) -> &TcpStream {
        &self.writer
    }

    /// Sends one request and returns its request id (to pair with a
    /// later [`BinaryConn::recv`] — callers may pipeline several sends
    /// before receiving).
    pub fn send(&mut self, msg: &ClientMsg) -> io::Result<u32> {
        let req_id = self.next_req;
        // Wrapping: ids only need to be unique within the pipeline
        // window, not globally; skip 0 so "no request" stays
        // representable in logs.
        self.next_req = self.next_req.checked_add(1).unwrap_or(1);
        write_client_frame(&mut self.writer, req_id, msg)?;
        Ok(req_id)
    }

    /// Receives one reply, whichever request it answers.
    pub fn recv(&mut self) -> io::Result<(u32, ServerMsg)> {
        read_server_frame(&mut self.reader)
    }

    /// One strict request/reply exchange: send, then receive, and
    /// require the reply to answer *this* request (anything else on an
    /// unpipelined connection means the peer lost framing).
    pub fn exchange(&mut self, msg: &ClientMsg) -> io::Result<ServerMsg> {
        let sent = self.send(msg)?;
        let (req_id, reply) = self.recv()?;
        if req_id != sent {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("reply correlates request {req_id}, expected {sent}"),
            ));
        }
        Ok(reply)
    }

    /// Sends `BYE` and shuts the socket down; errors are ignored (the
    /// session is over either way).
    pub fn bye(mut self) {
        let _ = self.send(&ClientMsg::Bye);
        let _ = self.writer.shutdown(std::net::Shutdown::Both);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;
    use uucs_protocol::wire::write_server_msg;
    use uucs_protocol::WIRE_VERSION_BINARY;

    #[test]
    fn wire_mode_parses() {
        assert_eq!("text".parse::<WireMode>().unwrap(), WireMode::Text);
        assert_eq!("binary".parse::<WireMode>().unwrap(), WireMode::Binary);
        assert_eq!("auto".parse::<WireMode>().unwrap(), WireMode::Auto);
        assert!("fancy".parse::<WireMode>().is_err());
        assert_eq!(WireMode::default(), WireMode::Text);
        assert_eq!(WireMode::Auto.to_string(), "auto");
    }

    fn negotiate_against(reply: &ServerMsg) -> io::Result<Negotiated> {
        let mut reply_bytes = Vec::new();
        write_server_msg(&mut reply_bytes, reply).unwrap();
        let mut sent = Vec::new();
        let mut reader = Cursor::new(reply_bytes);
        negotiate(&mut sent, &mut reader, WIRE_VERSION_BINARY)
    }

    #[test]
    fn negotiation_interprets_replies() {
        assert_eq!(
            negotiate_against(&ServerMsg::Hello {
                version: WIRE_VERSION_BINARY
            })
            .unwrap(),
            Negotiated::Version(WIRE_VERSION_BINARY)
        );
        assert_eq!(
            negotiate_against(&ServerMsg::Hello {
                version: WIRE_VERSION_TEXT
            })
            .unwrap(),
            Negotiated::Version(WIRE_VERSION_TEXT)
        );
        assert_eq!(
            negotiate_against(&ServerMsg::Error("unknown client message".into())).unwrap(),
            Negotiated::LegacyText
        );
        // A server "negotiating" a version we never offered is broken.
        assert!(negotiate_against(&ServerMsg::Hello { version: 9 }).is_err());
        // Any other reply is a protocol violation.
        assert!(negotiate_against(&ServerMsg::Ack(1)).is_err());
    }

    #[test]
    fn negotiation_sends_hello_first() {
        let mut reply_bytes = Vec::new();
        write_server_msg(
            &mut reply_bytes,
            &ServerMsg::Hello {
                version: WIRE_VERSION_BINARY,
            },
        )
        .unwrap();
        let mut sent = Vec::new();
        let mut reader = Cursor::new(reply_bytes);
        negotiate(&mut sent, &mut reader, WIRE_VERSION_BINARY).unwrap();
        assert_eq!(String::from_utf8(sent).unwrap(), "HELLO 2\n");
    }
}
