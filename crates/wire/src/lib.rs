//! # uucs-wire — the negotiated binary wire protocol (v2)
//!
//! The text line protocol (`uucs_protocol::wire`, wire version 1) is
//! the permanent baseline: every connection starts there, and a v1
//! peer never sees anything else. This crate is what a connection
//! *upgrades into* when both sides agree on
//! `uucs_protocol::wire::WIRE_VERSION_BINARY` via the text `HELLO`
//! exchange:
//!
//! * **Framing** ([`frame`]) — every message is one length-prefixed,
//!   CRC-checked frame, the exact `[len u32 LE][crc u32 LE][payload]`
//!   discipline the WAL and the replication channel already use
//!   (`uucs_wal::frame`), so the corruption story is uniform across
//!   disk, replication, and client wire: a short frame is a torn send
//!   (retryable `UnexpectedEof`), a checksum mismatch is damage
//!   (`InvalidData`, drop the connection).
//! * **Typed encodings** ([`codec`]) — fixed-width little-endian
//!   integers and length-prefixed strings replace text parsing on the
//!   upload hot path; an `UPLOAD` frame carries its whole record batch
//!   in one frame.
//! * **Request pipelining** — every frame payload starts with a
//!   `request id` the reply echoes, so a client may keep up to
//!   [`MAX_PIPELINE`] requests in flight on one connection. Replies
//!   come back in request order (FIFO); the echoed id is an end-to-end
//!   check on that contract, not a license to reorder.
//! * **Forward compatibility** — an unknown opcode in an intact frame
//!   is reported distinctly ([`frame::FrameRead::Unknown`]) so a
//!   server can answer `ERROR` and keep the connection, mirroring the
//!   text protocol's unknown-verb rule.
//!
//! Epoch-delta model sync (`MODELDELTA`) is negotiated per-verb rather
//! than per-connection — it works over both framings; see the protocol
//! crate's versioning notes and `uucs_modelsvc::SketchDelta`.
//!
//! The [`conn`] module holds the client-side pieces: [`WireMode`] (the
//! `--wire text|binary|auto` knob) and [`BinaryConn`] (a negotiated
//! binary connection with send/recv correlation).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod codec;
pub mod conn;
pub mod frame;

pub use conn::{BinaryConn, WireMode};
pub use frame::{
    encode_client_frame, encode_server_frame, read_client_frame, read_server_frame,
    try_read_client_frame, FrameRead, MAX_WIRE_FRAME,
};

/// Re-export of the WAL CRC32 (the polynomial every UUCS frame and the
/// `MODELDELTA` base-CRC use), so callers need no direct `uucs-wal`
/// dependency to compute a `basecrc`.
pub use uucs_wal::crc::crc32;

/// How many requests a server lets one binary connection keep in
/// flight before it stops reading more from that socket (back
/// pressure). Clients may use the same bound for their send window.
pub const MAX_PIPELINE: usize = 64;
