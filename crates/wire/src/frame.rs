//! CRC-checked frames around [`crate::codec`] payloads.
//!
//! The envelope is the WAL's own `[len u32 LE][crc u32 LE][payload]`
//! (CRC over the length bytes *and* the payload — `uucs_wal::frame`),
//! so every byte stream in the system — segment files, replication,
//! and now the client wire — tears and corrupts the same way:
//!
//! * fewer bytes than the frame declares → **torn**
//!   ([`std::io::ErrorKind::UnexpectedEof`] from the blocking readers,
//!   [`FrameRead::Incomplete`] from the incremental one) — wait for
//!   more bytes or treat as an interrupted send;
//! * checksum mismatch or an implausible declared length →
//!   **corrupt** (`InvalidData`) — drop the connection, nothing after
//!   the damage can be trusted;
//! * an intact frame whose opcode is unknown →
//!   [`FrameRead::Unknown`] / `Unsupported` — a peer from the future;
//!   the server answers `ERROR` on the same connection and keeps
//!   going, because the frame boundary is clean.

use crate::codec::{self, DecodedClient};
use std::io::{self, Read, Write};
use uucs_protocol::{ClientMsg, ServerMsg};
use uucs_wal::frame::{encode_frame, FrameError, FrameScanner, FRAME_HEADER};

/// Upper bound on a wire frame payload. Deliberately *below* the WAL's
/// 64 MiB `MAX_FRAME` and the server's per-connection input buffer cap
/// (4 MiB), so a conforming frame always fits the server's buffer and
/// an over-long declared length is diagnosed as corruption here, not
/// as a buffer overrun there.
pub const MAX_WIRE_FRAME: u32 = 2 << 20;

fn bad(what: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.into())
}

fn check_size(payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_WIRE_FRAME as usize {
        return Err(bad(format!(
            "frame payload of {} bytes exceeds the {} byte wire cap",
            payload.len(),
            MAX_WIRE_FRAME
        )));
    }
    Ok(())
}

/// Encodes one client message as a complete frame (`req_id` is echoed
/// by the reply).
pub fn encode_client_frame(req_id: u32, msg: &ClientMsg) -> io::Result<Vec<u8>> {
    let payload = codec::encode_client(req_id, msg)?;
    check_size(&payload)?;
    Ok(encode_frame(&payload))
}

/// Encodes one server reply as a complete frame.
pub fn encode_server_frame(req_id: u32, msg: &ServerMsg) -> io::Result<Vec<u8>> {
    let payload = codec::encode_server(req_id, msg)?;
    check_size(&payload)?;
    Ok(encode_frame(&payload))
}

/// Outcome of one incremental parse attempt against a growing buffer.
#[derive(Debug, Clone, PartialEq)]
pub enum FrameRead {
    /// Not enough bytes for a whole frame yet — keep reading; nothing
    /// was consumed.
    Incomplete,
    /// One well-formed message; the first `consumed` buffer bytes are
    /// done.
    Msg {
        /// Bytes of buffer this frame occupied.
        consumed: usize,
        /// The request id to echo in the reply.
        req_id: u32,
        /// The decoded message.
        msg: ClientMsg,
    },
    /// An intact frame carrying an opcode this server does not know:
    /// answer `ERROR` (echoing `req_id`) and keep the connection.
    Unknown {
        /// Bytes of buffer this frame occupied.
        consumed: usize,
        /// The request id to echo in the error reply.
        req_id: u32,
        /// The unknown opcode, for the error message.
        opcode: u8,
    },
}

/// Attempts to parse one client frame from the front of `buf` without
/// blocking — the worker-pool engine's incremental entry point.
/// `Err(InvalidData)` means the connection must be dropped (corrupt
/// frame, malformed body, or implausible length).
pub fn try_read_client_frame(buf: &[u8]) -> io::Result<FrameRead> {
    if buf.len() < FRAME_HEADER {
        return Ok(FrameRead::Incomplete);
    }
    let len = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes"));
    if len > MAX_WIRE_FRAME {
        return Err(bad(format!("implausible wire frame length {len}")));
    }
    let total = FRAME_HEADER + len as usize;
    if buf.len() < total {
        return Ok(FrameRead::Incomplete);
    }
    let payload = match FrameScanner::new(&buf[..total]).next() {
        Some(Ok((_, payload))) => payload,
        Some(Err(FrameError::Corrupt { detail, .. })) => {
            return Err(bad(format!("corrupt wire frame: {detail}")));
        }
        // A torn result is impossible: we sized the slice to `total`.
        Some(Err(FrameError::Torn { .. })) | None => {
            return Err(bad("wire frame scanner disagreed about completeness"));
        }
    };
    match codec::decode_client(payload)? {
        (req_id, DecodedClient::Msg(msg)) => Ok(FrameRead::Msg {
            consumed: total,
            req_id,
            msg,
        }),
        (req_id, DecodedClient::Unknown(opcode)) => Ok(FrameRead::Unknown {
            consumed: total,
            req_id,
            opcode,
        }),
    }
}

/// Reads one whole frame's payload from a blocking stream. `Ok(None)`
/// on clean EOF before any byte.
fn read_frame_payload<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; FRAME_HEADER];
    let mut got = 0;
    while got < header.len() {
        match r.read(&mut header[got..])? {
            0 if got == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "torn wire frame: incomplete header",
                ))
            }
            n => got += n,
        }
    }
    let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes"));
    if len > MAX_WIRE_FRAME {
        return Err(bad(format!("implausible wire frame length {len}")));
    }
    let mut buf = Vec::with_capacity(FRAME_HEADER + len as usize);
    buf.extend_from_slice(&header);
    buf.resize(FRAME_HEADER + len as usize, 0);
    r.read_exact(&mut buf[FRAME_HEADER..]).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "torn wire frame: payload cut short",
            )
        } else {
            e
        }
    })?;
    match FrameScanner::new(&buf).next() {
        Some(Ok((_, payload))) => Ok(Some(payload.to_vec())),
        Some(Err(FrameError::Corrupt { detail, .. })) => {
            Err(bad(format!("corrupt wire frame: {detail}")))
        }
        Some(Err(FrameError::Torn { .. })) | None => {
            Err(bad("wire frame scanner disagreed about completeness"))
        }
    }
}

/// Reads one client frame from a blocking stream (the thread-per-conn
/// engine's loop). `Ok(None)` on clean EOF between frames. An unknown
/// opcode surfaces as [`FrameRead::Unknown`] with `consumed = 0` (the
/// stream already advanced past the frame).
pub fn read_client_frame<R: Read>(r: &mut R) -> io::Result<Option<FrameRead>> {
    let Some(payload) = read_frame_payload(r)? else {
        return Ok(None);
    };
    match codec::decode_client(&payload)? {
        (req_id, DecodedClient::Msg(msg)) => Ok(Some(FrameRead::Msg {
            consumed: 0,
            req_id,
            msg,
        })),
        (req_id, DecodedClient::Unknown(opcode)) => Ok(Some(FrameRead::Unknown {
            consumed: 0,
            req_id,
            opcode,
        })),
    }
}

/// Reads one server reply from a blocking stream. EOF where a reply
/// was due is `UnexpectedEof` (a connection failure, retryable), like
/// the text reader's contract.
pub fn read_server_frame<R: Read>(r: &mut R) -> io::Result<(u32, ServerMsg)> {
    let Some(payload) = read_frame_payload(r)? else {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed awaiting server frame",
        ));
    };
    codec::decode_server(&payload)
}

/// Writes one client frame.
pub fn write_client_frame<W: Write>(w: &mut W, req_id: u32, msg: &ClientMsg) -> io::Result<()> {
    w.write_all(&encode_client_frame(req_id, msg)?)?;
    w.flush()
}

/// Writes one server frame.
pub fn write_server_frame<W: Write>(w: &mut W, req_id: u32, msg: &ServerMsg) -> io::Result<()> {
    w.write_all(&encode_server_frame(req_id, msg)?)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sync_msg() -> ClientMsg {
        ClientMsg::Sync {
            client: "c-1".into(),
            have: 3,
            want: 9,
        }
    }

    #[test]
    fn incremental_parse_roundtrip_and_prefixes() {
        let frame = encode_client_frame(11, &sync_msg()).unwrap();
        // Every strict prefix is Incomplete — never an error, never a
        // message.
        for cut in 0..frame.len() {
            assert_eq!(
                try_read_client_frame(&frame[..cut]).unwrap(),
                FrameRead::Incomplete,
                "prefix {cut}"
            );
        }
        match try_read_client_frame(&frame).unwrap() {
            FrameRead::Msg {
                consumed,
                req_id,
                msg,
            } => {
                assert_eq!(consumed, frame.len());
                assert_eq!(req_id, 11);
                assert_eq!(msg, sync_msg());
            }
            other => panic!("{other:?}"),
        }
        // Two frames back to back: the first parse consumes exactly one.
        let mut two = frame.clone();
        two.extend_from_slice(&encode_client_frame(12, &ClientMsg::Bye).unwrap());
        match try_read_client_frame(&two).unwrap() {
            FrameRead::Msg { consumed, .. } => {
                match try_read_client_frame(&two[consumed..]).unwrap() {
                    FrameRead::Msg { req_id, msg, .. } => {
                        assert_eq!(req_id, 12);
                        assert_eq!(msg, ClientMsg::Bye);
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bit_flips_are_invalid_data() {
        let frame = encode_client_frame(5, &sync_msg()).unwrap();
        for i in 0..frame.len() {
            let mut damaged = frame.clone();
            damaged[i] ^= 0x40;
            // Every single-bit-flipped frame either still waits for
            // more bytes (length field grew) or errors — it never
            // yields the original message with the wrong content.
            match try_read_client_frame(&damaged) {
                Ok(FrameRead::Incomplete) => {
                    // The damaged length claims more bytes than we
                    // have. Feed it enough zeros: it must then fail the
                    // CRC (or the length cap), not parse.
                    let len =
                        u32::from_le_bytes(damaged[..4].try_into().unwrap());
                    if len <= MAX_WIRE_FRAME {
                        let mut padded = damaged.clone();
                        padded.resize(FRAME_HEADER + len as usize, 0);
                        assert!(
                            try_read_client_frame(&padded).is_err(),
                            "flip at {i} padded to a parse"
                        );
                    }
                }
                Ok(other) => panic!("flip at {i} parsed: {other:?}"),
                Err(e) => assert_eq!(e.kind(), io::ErrorKind::InvalidData, "flip at {i}"),
            }
        }
    }

    #[test]
    fn unknown_opcode_is_a_clean_frame_boundary() {
        // Hand-build a frame with opcode 250.
        let mut payload = 77u32.to_le_bytes().to_vec();
        payload.push(250);
        payload.extend_from_slice(b"mystery");
        let frame = uucs_wal::frame::encode_frame(&payload);
        match try_read_client_frame(&frame).unwrap() {
            FrameRead::Unknown {
                consumed,
                req_id,
                opcode,
            } => {
                assert_eq!(consumed, frame.len());
                assert_eq!(req_id, 77);
                assert_eq!(opcode, 250);
            }
            other => panic!("{other:?}"),
        }
        // Blocking reader agrees.
        let mut cur = Cursor::new(frame);
        match read_client_frame(&mut cur).unwrap().unwrap() {
            FrameRead::Unknown { req_id: 77, opcode: 250, .. } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn blocking_readers_roundtrip_and_tear_cleanly() {
        let frame = encode_client_frame(3, &sync_msg()).unwrap();
        let mut cur = Cursor::new(frame.clone());
        match read_client_frame(&mut cur).unwrap().unwrap() {
            FrameRead::Msg { req_id: 3, msg, .. } => assert_eq!(msg, sync_msg()),
            other => panic!("{other:?}"),
        }
        // Clean EOF between frames is None.
        assert!(read_client_frame(&mut cur).unwrap().is_none());
        // Every truncation tears (UnexpectedEof), never parses.
        for cut in 1..frame.len() {
            let mut cur = Cursor::new(frame[..cut].to_vec());
            let err = read_client_frame(&mut cur).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut {cut}");
        }
        // Server side: reply roundtrip + EOF-awaiting-reply contract.
        let reply = encode_server_frame(3, &ServerMsg::Ack(2)).unwrap();
        let mut cur = Cursor::new(reply);
        assert_eq!(
            read_server_frame(&mut cur).unwrap(),
            (3, ServerMsg::Ack(2))
        );
        let err = read_server_frame(&mut cur).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn implausible_length_is_invalid_data_not_a_wait() {
        // Text bytes misread as a binary frame: "REGISTER\n..." has a
        // first word that decodes as a huge length. The reader must
        // call it corrupt immediately instead of waiting for gigabytes
        // that will never come.
        let text = b"REGISTER tok-1\nHOST h1\nEND\n";
        let err = try_read_client_frame(text).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let mut cur = Cursor::new(text.to_vec());
        let err = read_client_frame(&mut cur).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn oversized_payload_is_refused_at_encode_time() {
        let msg = ClientMsg::Upload {
            client: "c".into(),
            seq: 1,
            records: (0..u16::MAX)
                .map(|i| RunRecordFixture::big(i as usize))
                .collect(),
        };
        assert!(encode_client_frame(1, &msg).is_err());
    }

    struct RunRecordFixture;
    impl RunRecordFixture {
        fn big(i: usize) -> uucs_protocol::RunRecord {
            uucs_protocol::RunRecord {
                client: format!("client-{i}"),
                user: "u".repeat(64),
                testcase: "t".repeat(64),
                task: "Quake".into(),
                skill: String::new(),
                outcome: uucs_protocol::RunOutcome::Discomfort,
                offset_secs: 1.0,
                last_levels: vec![],
                monitor: uucs_protocol::MonitorSummary::default(),
            }
        }
    }
}
