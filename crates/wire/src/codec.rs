//! Typed binary payload encodings for protocol v2.
//!
//! A frame payload is `[request id: u32 LE][opcode: u8][body]`. Bodies
//! use fixed-width little-endian integers, `f64` bits, and two
//! length-prefixed byte shapes:
//!
//! * **str** — `u16 LE` length + UTF-8 bytes (identifiers, tokens,
//!   resource names, sketch/delta encodings),
//! * **blob** — `u32 LE` length + bytes (machine snapshots, testcase
//!   blocks, STATS JSON),
//!
//! and result records are fully typed (see [`encode ▸ UPLOAD`](self)):
//! no per-field text parsing on the upload hot path.
//!
//! Decoding enforces the same deep-validation contract as the text
//! readers: a `MODEL` reply's sketch must decode and agree with its
//! counts, a `MODELDELTA` reply's delta must decode, `ADVICE` levels
//! and epsilons must be finite/in-range, and every payload must be
//! consumed *exactly* — trailing bytes are `InvalidData`, so two
//! messages can never hide in one frame.
//!
//! `HELLO` has no binary opcode on purpose: negotiation happens in the
//! text phase, *before* this framing is active. Asking either encoder
//! to emit one is `InvalidData`.

use std::io;
use uucs_modelsvc::{QuantileSketch, SketchDelta};
use uucs_protocol::record::{MonitorSummary, RunOutcome, RunRecord};
use uucs_protocol::snapshot::MachineSnapshot;
use uucs_protocol::{ClientMsg, ServerMsg};
use uucs_testcase::{format as tcformat, Resource};

/// Client opcodes (request frames).
pub mod client_op {
    /// `REGISTER` — snapshot blob + token str.
    pub const REGISTER: u8 = 1;
    /// `SYNC` — client str, have u64, want u64.
    pub const SYNC: u8 = 2;
    /// `UPLOAD` — client str, seq u64, typed record batch.
    pub const UPLOAD: u8 = 3;
    /// `MODEL` — resource str, optional task str.
    pub const MODEL: u8 = 4;
    /// `ADVICE` — resource str, task str, epsilon f64.
    pub const ADVICE: u8 = 5;
    /// `STATS` — reset flag u8.
    pub const STATS: u8 = 6;
    /// `BYE` — empty body.
    pub const BYE: u8 = 7;
    /// `MODELDELTA` — resource str, optional task str, since u64,
    /// basecrc u32.
    pub const MODELDELTA: u8 = 8;
}

/// Server opcodes (reply frames).
pub mod server_op {
    /// `ID` — id str, applied_seq u64.
    pub const ID: u8 = 1;
    /// `TESTCASES` — count u32 + testcase text blob.
    pub const TESTCASES: u8 = 2;
    /// `ACK` — count u64.
    pub const ACK: u8 = 3;
    /// `MODEL` — epoch u64, observed u64, censored u64, sketch str.
    pub const MODEL: u8 = 4;
    /// `ADVICE` — epoch u64, level f64.
    pub const ADVICE: u8 = 5;
    /// `STATS` — JSON blob.
    pub const STATS: u8 = 6;
    /// `ERROR` — message str.
    pub const ERROR: u8 = 7;
    /// `MODELDELTA` — epoch u64, since u64, delta str.
    pub const MODELDELTA: u8 = 8;
}

fn bad(what: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.into())
}

// ---------------------------------------------------------------- write

struct Out {
    buf: Vec<u8>,
}

impl Out {
    fn new(req_id: u32, opcode: u8) -> Out {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(&req_id.to_le_bytes());
        buf.push(opcode);
        Out { buf }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, what: &str, s: &str) -> io::Result<()> {
        let len: u16 = s
            .len()
            .try_into()
            .map_err(|_| bad(format!("{what} exceeds {} bytes", u16::MAX)))?;
        self.u16(len);
        self.buf.extend_from_slice(s.as_bytes());
        Ok(())
    }
    fn blob(&mut self, what: &str, b: &[u8]) -> io::Result<()> {
        let len: u32 = b
            .len()
            .try_into()
            .map_err(|_| bad(format!("{what} exceeds {} bytes", u32::MAX)))?;
        self.u32(len);
        self.buf.extend_from_slice(b);
        Ok(())
    }
    fn opt_str(&mut self, what: &str, s: &Option<String>) -> io::Result<()> {
        match s {
            Some(s) => {
                self.u8(1);
                self.str(what, s)
            }
            None => {
                self.u8(0);
                Ok(())
            }
        }
    }
}

fn check_epsilon(epsilon: f64) -> io::Result<()> {
    if !epsilon.is_finite() || epsilon <= 0.0 || epsilon >= 1.0 {
        return Err(bad(format!("ADVICE epsilon must be in (0, 1), got {epsilon}")));
    }
    Ok(())
}

fn put_record(out: &mut Out, rec: &RunRecord) -> io::Result<()> {
    out.str("record client", &rec.client)?;
    out.str("record user", &rec.user)?;
    out.str("record testcase", &rec.testcase)?;
    out.str("record task", &rec.task)?;
    out.str("record skill", &rec.skill)?;
    out.u8(match rec.outcome {
        RunOutcome::Discomfort => 0,
        RunOutcome::Exhausted => 1,
    });
    out.f64(rec.offset_secs);
    let n: u8 = rec
        .last_levels
        .len()
        .try_into()
        .map_err(|_| bad("record has more than 255 level series"))?;
    out.u8(n);
    for (resource, levels) in &rec.last_levels {
        out.str("record resource", &resource.to_string())?;
        let k: u16 = levels
            .len()
            .try_into()
            .map_err(|_| bad("record level series exceeds 65535 samples"))?;
        out.u16(k);
        for l in levels {
            out.f64(*l);
        }
    }
    let m = &rec.monitor;
    out.f64(m.cpu_util);
    out.f64(m.peak_mem_fraction);
    out.f64(m.disk_busy);
    out.u64(m.faults);
    match m.mean_latency_us {
        Some(v) => {
            out.u8(1);
            out.f64(v);
        }
        None => out.u8(0),
    }
    Ok(())
}

/// Encodes one client message as a frame payload
/// (`[req_id][opcode][body]`). [`ClientMsg::Hello`] is refused: the
/// negotiation verb exists only in the text phase.
pub fn encode_client(req_id: u32, msg: &ClientMsg) -> io::Result<Vec<u8>> {
    let out = match msg {
        ClientMsg::Hello { .. } => {
            return Err(bad("HELLO has no binary encoding (text-phase only)"));
        }
        ClientMsg::Register { snapshot, token } => {
            let mut out = Out::new(req_id, client_op::REGISTER);
            out.blob("REGISTER snapshot", snapshot.emit().as_bytes())?;
            out.str("REGISTER token", token)?;
            out
        }
        ClientMsg::Sync { client, have, want } => {
            let mut out = Out::new(req_id, client_op::SYNC);
            out.str("SYNC client", client)?;
            out.u64(*have as u64);
            out.u64(*want as u64);
            out
        }
        ClientMsg::Upload {
            client,
            seq,
            records,
        } => {
            let mut out = Out::new(req_id, client_op::UPLOAD);
            out.str("UPLOAD client", client)?;
            out.u64(*seq);
            let n: u16 = records
                .len()
                .try_into()
                .map_err(|_| bad("UPLOAD batch exceeds 65535 records"))?;
            out.u16(n);
            for rec in records {
                put_record(&mut out, rec)?;
            }
            out
        }
        ClientMsg::Model { resource, task } => {
            let mut out = Out::new(req_id, client_op::MODEL);
            out.str("MODEL resource", &resource.to_string())?;
            out.opt_str("MODEL task", task)?;
            out
        }
        ClientMsg::ModelDelta {
            resource,
            task,
            since,
            basecrc,
        } => {
            let mut out = Out::new(req_id, client_op::MODELDELTA);
            out.str("MODELDELTA resource", &resource.to_string())?;
            out.opt_str("MODELDELTA task", task)?;
            out.u64(*since);
            out.u32(*basecrc);
            out
        }
        ClientMsg::Advice {
            resource,
            task,
            epsilon,
        } => {
            check_epsilon(*epsilon)?;
            let mut out = Out::new(req_id, client_op::ADVICE);
            out.str("ADVICE resource", &resource.to_string())?;
            out.str("ADVICE task", task)?;
            out.f64(*epsilon);
            out
        }
        ClientMsg::Stats { reset } => {
            let mut out = Out::new(req_id, client_op::STATS);
            out.u8(u8::from(*reset));
            out
        }
        ClientMsg::Bye => Out::new(req_id, client_op::BYE),
    };
    Ok(out.buf)
}

/// Encodes one server message as a frame payload, echoing the
/// request's id. [`ServerMsg::Hello`] is refused: the negotiation
/// reply is sent in the text phase, before binary framing is active.
pub fn encode_server(req_id: u32, msg: &ServerMsg) -> io::Result<Vec<u8>> {
    let out = match msg {
        ServerMsg::Hello { .. } => {
            return Err(bad("HELLO has no binary encoding (text-phase only)"));
        }
        ServerMsg::Id { id, applied_seq } => {
            let mut out = Out::new(req_id, server_op::ID);
            out.str("ID id", id)?;
            out.u64(*applied_seq);
            out
        }
        ServerMsg::Testcases(tcs) => {
            let mut out = Out::new(req_id, server_op::TESTCASES);
            let n: u32 = tcs
                .len()
                .try_into()
                .map_err(|_| bad("TESTCASES batch exceeds u32"))?;
            out.u32(n);
            out.blob("TESTCASES body", tcformat::emit_many(tcs).as_bytes())?;
            out
        }
        ServerMsg::Ack(n) => {
            let mut out = Out::new(req_id, server_op::ACK);
            out.u64(*n as u64);
            out
        }
        ServerMsg::Model {
            epoch,
            observed,
            censored,
            sketch,
        } => {
            let mut out = Out::new(req_id, server_op::MODEL);
            out.u64(*epoch);
            out.u64(*observed);
            out.u64(*censored);
            out.str("MODEL sketch", sketch)?;
            out
        }
        ServerMsg::ModelDelta {
            epoch,
            since,
            delta,
        } => {
            let mut out = Out::new(req_id, server_op::MODELDELTA);
            out.u64(*epoch);
            out.u64(*since);
            out.str("MODELDELTA delta", delta)?;
            out
        }
        ServerMsg::Advice { epoch, level } => {
            if !level.is_finite() {
                return Err(bad("ADVICE level must be finite"));
            }
            let mut out = Out::new(req_id, server_op::ADVICE);
            out.u64(*epoch);
            out.f64(*level);
            out
        }
        ServerMsg::Stats(json) => {
            let mut out = Out::new(req_id, server_op::STATS);
            out.blob("STATS payload", json.as_bytes())?;
            out
        }
        ServerMsg::Error(e) => {
            let mut out = Out::new(req_id, server_op::ERROR);
            out.str("ERROR message", e)?;
            out
        }
    };
    Ok(out.buf)
}

// ----------------------------------------------------------------- read

struct In<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> In<'a> {
    fn new(buf: &'a [u8]) -> In<'a> {
        In { buf, pos: 0 }
    }
    fn take(&mut self, n: usize, what: &str) -> io::Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| bad(format!("payload too short reading {what}")))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self, what: &str) -> io::Result<u8> {
        Ok(self.take(1, what)?[0])
    }
    fn u16(&mut self, what: &str) -> io::Result<u16> {
        Ok(u16::from_le_bytes(self.take(2, what)?.try_into().unwrap()))
    }
    fn u32(&mut self, what: &str) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }
    fn u64(&mut self, what: &str) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }
    fn f64(&mut self, what: &str) -> io::Result<f64> {
        Ok(f64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }
    fn str(&mut self, what: &str) -> io::Result<String> {
        let len = self.u16(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| bad(format!("{what} is not utf-8")))
    }
    fn blob(&mut self, what: &str) -> io::Result<&'a [u8]> {
        let len = self.u32(what)? as usize;
        self.take(len, what)
    }
    fn opt_str(&mut self, what: &str) -> io::Result<Option<String>> {
        match self.u8(what)? {
            0 => Ok(None),
            1 => Ok(Some(self.str(what)?)),
            other => Err(bad(format!("bad {what} presence flag {other}"))),
        }
    }
    fn resource(&mut self, what: &str) -> io::Result<Resource> {
        self.str(what)?
            .parse()
            .map_err(|_| bad(format!("unknown {what}")))
    }
    /// Every decoder must land exactly at the end: trailing bytes mean
    /// the frame was built by a confused (or malicious) encoder, and
    /// parsing "most of" a frame is how divergence starts.
    fn done(&self, what: &str) -> io::Result<()> {
        if self.pos != self.buf.len() {
            return Err(bad(format!(
                "{} trailing bytes after {what}",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

fn take_record(r: &mut In<'_>) -> io::Result<RunRecord> {
    let client = r.str("record client")?;
    let user = r.str("record user")?;
    let testcase = r.str("record testcase")?;
    let task = r.str("record task")?;
    let skill = r.str("record skill")?;
    let outcome = match r.u8("record outcome")? {
        0 => RunOutcome::Discomfort,
        1 => RunOutcome::Exhausted,
        other => return Err(bad(format!("bad record outcome {other}"))),
    };
    let offset_secs = r.f64("record offset")?;
    if !offset_secs.is_finite() || offset_secs < 0.0 {
        return Err(bad(format!("bad record offset {offset_secs}")));
    }
    let series = r.u8("record level series count")?;
    let mut last_levels = Vec::with_capacity(series as usize);
    for _ in 0..series {
        let resource = r.resource("record resource")?;
        let k = r.u16("record level count")?;
        let mut levels = Vec::with_capacity(k as usize);
        for _ in 0..k {
            let l = r.f64("record level")?;
            if !l.is_finite() {
                return Err(bad("non-finite record level"));
            }
            levels.push(l);
        }
        last_levels.push((resource, levels));
    }
    let monitor = MonitorSummary {
        cpu_util: r.f64("monitor cpu")?,
        peak_mem_fraction: r.f64("monitor mem")?,
        disk_busy: r.f64("monitor disk")?,
        faults: r.u64("monitor faults")?,
        mean_latency_us: match r.u8("monitor latency flag")? {
            0 => None,
            1 => Some(r.f64("monitor latency")?),
            other => return Err(bad(format!("bad monitor latency flag {other}"))),
        },
    };
    Ok(RunRecord {
        client,
        user,
        testcase,
        task,
        skill,
        outcome,
        offset_secs,
        last_levels,
        monitor,
    })
}

/// A decoded client frame payload: either a message, or an intact
/// frame carrying an opcode from the future — the server answers
/// `ERROR` and keeps the connection (the binary analogue of the text
/// protocol's unknown-verb rule; the frame boundary is clean, so
/// nothing is torn).
#[derive(Debug, Clone, PartialEq)]
pub enum DecodedClient {
    /// A well-formed known message.
    Msg(ClientMsg),
    /// An intact frame with an opcode this peer does not know.
    Unknown(u8),
}

/// Decodes a client frame payload produced by [`encode_client`].
pub fn decode_client(payload: &[u8]) -> io::Result<(u32, DecodedClient)> {
    let mut r = In::new(payload);
    let req_id = r.u32("request id")?;
    let opcode = r.u8("opcode")?;
    let msg = match opcode {
        client_op::REGISTER => {
            let body = r.blob("REGISTER snapshot")?;
            let text = std::str::from_utf8(body)
                .map_err(|_| bad("REGISTER snapshot is not utf-8"))?;
            let snapshot = MachineSnapshot::parse(text).map_err(bad)?;
            let token = r.str("REGISTER token")?;
            ClientMsg::Register { snapshot, token }
        }
        client_op::SYNC => ClientMsg::Sync {
            client: r.str("SYNC client")?,
            have: r.u64("SYNC have")? as usize,
            want: r.u64("SYNC want")? as usize,
        },
        client_op::UPLOAD => {
            let client = r.str("UPLOAD client")?;
            let seq = r.u64("UPLOAD seq")?;
            let n = r.u16("UPLOAD count")?;
            let mut records = Vec::with_capacity(n as usize);
            for _ in 0..n {
                records.push(take_record(&mut r)?);
            }
            ClientMsg::Upload {
                client,
                seq,
                records,
            }
        }
        client_op::MODEL => ClientMsg::Model {
            resource: r.resource("MODEL resource")?,
            task: r.opt_str("MODEL task")?,
        },
        client_op::MODELDELTA => ClientMsg::ModelDelta {
            resource: r.resource("MODELDELTA resource")?,
            task: r.opt_str("MODELDELTA task")?,
            since: r.u64("MODELDELTA since")?,
            basecrc: r.u32("MODELDELTA basecrc")?,
        },
        client_op::ADVICE => {
            let resource = r.resource("ADVICE resource")?;
            let task = r.str("ADVICE task")?;
            let epsilon = r.f64("ADVICE epsilon")?;
            check_epsilon(epsilon)?;
            ClientMsg::Advice {
                resource,
                task,
                epsilon,
            }
        }
        client_op::STATS => ClientMsg::Stats {
            reset: match r.u8("STATS reset flag")? {
                0 => false,
                1 => true,
                other => return Err(bad(format!("bad STATS reset flag {other}"))),
            },
        },
        client_op::BYE => ClientMsg::Bye,
        other => {
            // Don't validate the rest of the body — we can't know its
            // shape — but the frame itself was CRC-intact.
            return Ok((req_id, DecodedClient::Unknown(other)));
        }
    };
    r.done("client message")?;
    Ok((req_id, DecodedClient::Msg(msg)))
}

/// Decodes a server frame payload produced by [`encode_server`]. An
/// unknown opcode is [`std::io::ErrorKind::Unsupported`] (a reply from
/// the future), mirroring the text reader.
pub fn decode_server(payload: &[u8]) -> io::Result<(u32, ServerMsg)> {
    let mut r = In::new(payload);
    let req_id = r.u32("request id")?;
    let opcode = r.u8("opcode")?;
    let msg = match opcode {
        server_op::ID => {
            let id = r.str("ID id")?;
            if id.is_empty() {
                return Err(bad("empty ID id"));
            }
            ServerMsg::Id {
                id,
                applied_seq: r.u64("ID applied-seq")?,
            }
        }
        server_op::TESTCASES => {
            let n = r.u32("TESTCASES count")? as usize;
            let body = r.blob("TESTCASES body")?;
            let text = std::str::from_utf8(body)
                .map_err(|_| bad("TESTCASES body is not utf-8"))?;
            let tcs = tcformat::parse_many(text)
                .map_err(|e| bad(format!("bad testcase block: {e}")))?;
            if tcs.len() != n {
                return Err(bad("TESTCASES count mismatch"));
            }
            ServerMsg::Testcases(tcs)
        }
        server_op::ACK => ServerMsg::Ack(r.u64("ACK count")? as usize),
        server_op::MODEL => {
            let epoch = r.u64("MODEL epoch")?;
            let observed = r.u64("MODEL observed")?;
            let censored = r.u64("MODEL censored")?;
            let sketch = r.str("MODEL sketch")?;
            let decoded = QuantileSketch::decode(&sketch)
                .map_err(|e| bad(format!("bad MODEL sketch: {e}")))?;
            if decoded.observed() != observed || decoded.censored() != censored {
                return Err(bad("MODEL counts disagree with sketch"));
            }
            ServerMsg::Model {
                epoch,
                observed,
                censored,
                sketch,
            }
        }
        server_op::MODELDELTA => {
            let epoch = r.u64("MODELDELTA epoch")?;
            let since = r.u64("MODELDELTA since")?;
            let delta = r.str("MODELDELTA delta")?;
            SketchDelta::decode(&delta)
                .map_err(|e| bad(format!("bad MODELDELTA delta: {e}")))?;
            ServerMsg::ModelDelta {
                epoch,
                since,
                delta,
            }
        }
        server_op::ADVICE => {
            let epoch = r.u64("ADVICE epoch")?;
            let level = r.f64("ADVICE level")?;
            if !level.is_finite() {
                return Err(bad("non-finite ADVICE level"));
            }
            ServerMsg::Advice { epoch, level }
        }
        server_op::STATS => {
            let body = r.blob("STATS payload")?;
            let json = std::str::from_utf8(body)
                .map_err(|_| bad("STATS payload is not utf-8"))?;
            ServerMsg::Stats(json.to_string())
        }
        server_op::ERROR => ServerMsg::Error(r.str("ERROR message")?),
        other => {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                format!("unknown server opcode {other}"),
            ));
        }
    };
    r.done("server message")?;
    Ok((req_id, msg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use uucs_testcase::{ExerciseSpec, Testcase};

    fn record() -> RunRecord {
        RunRecord {
            client: "c1".into(),
            user: "u1".into(),
            testcase: "t1".into(),
            task: "Quake".into(),
            skill: String::new(),
            outcome: RunOutcome::Exhausted,
            offset_secs: 12.5,
            last_levels: vec![
                (Resource::Cpu, vec![0.5, 0.55, 0.6]),
                (Resource::Memory, vec![]),
            ],
            monitor: MonitorSummary {
                cpu_util: 0.9,
                peak_mem_fraction: 0.4,
                disk_busy: 0.1,
                faults: 3,
                mean_latency_us: Some(120.0),
            },
        }
    }

    fn sketch_token() -> String {
        let mut s = QuantileSketch::new(0.0, 10.0, 8);
        s.insert(1.0);
        s.insert(7.0);
        s.insert_censored();
        s.encode()
    }

    #[test]
    fn client_roundtrips() {
        let msgs = vec![
            ClientMsg::register(MachineSnapshot::study_machine("h1")),
            ClientMsg::Register {
                snapshot: MachineSnapshot::study_machine("h2"),
                token: "tok-1234".into(),
            },
            ClientMsg::Sync {
                client: "c-9".into(),
                have: 12,
                want: 30,
            },
            ClientMsg::Upload {
                client: "c-9".into(),
                seq: 17,
                records: vec![record(), record()],
            },
            ClientMsg::Upload {
                client: "c-9".into(),
                seq: 0,
                records: vec![],
            },
            ClientMsg::Model {
                resource: Resource::Cpu,
                task: None,
            },
            ClientMsg::Model {
                resource: Resource::Disk,
                task: Some("Word".into()),
            },
            ClientMsg::ModelDelta {
                resource: Resource::Memory,
                task: Some("Quake".into()),
                since: 42,
                basecrc: 0xdead_beef,
            },
            ClientMsg::Advice {
                resource: Resource::Cpu,
                task: "Word".into(),
                epsilon: 0.05,
            },
            ClientMsg::Stats { reset: true },
            ClientMsg::Stats { reset: false },
            ClientMsg::Bye,
        ];
        for (i, msg) in msgs.into_iter().enumerate() {
            let req_id = 1000 + i as u32;
            let payload = encode_client(req_id, &msg).unwrap();
            let (rid, decoded) = decode_client(&payload).unwrap();
            assert_eq!(rid, req_id);
            assert_eq!(decoded, DecodedClient::Msg(msg));
        }
    }

    #[test]
    fn server_roundtrips() {
        let tc = Testcase::single(
            "x",
            1.0,
            Resource::Disk,
            ExerciseSpec::Ramp {
                level: 5.0,
                duration: 120.0,
            },
        );
        let sk = sketch_token();
        let decoded_sketch = QuantileSketch::decode(&sk).unwrap();
        let mut target = decoded_sketch.clone();
        target.insert(3.0);
        let delta = target.delta_since(&decoded_sketch).unwrap().encode();
        let msgs = vec![
            ServerMsg::id("guid-42"),
            ServerMsg::Id {
                id: "guid-42".into(),
                applied_seq: 17,
            },
            ServerMsg::Testcases(vec![tc.clone(), tc]),
            ServerMsg::Testcases(vec![]),
            ServerMsg::Ack(7),
            ServerMsg::Model {
                epoch: 9,
                observed: decoded_sketch.observed(),
                censored: decoded_sketch.censored(),
                sketch: sk,
            },
            ServerMsg::ModelDelta {
                epoch: 10,
                since: 9,
                delta,
            },
            ServerMsg::Advice {
                epoch: 9,
                level: 4.25,
            },
            ServerMsg::Stats("{\"counters\":{}}".into()),
            ServerMsg::Error("nope".into()),
        ];
        for (i, msg) in msgs.into_iter().enumerate() {
            let req_id = 7 * i as u32;
            let payload = encode_server(req_id, &msg).unwrap();
            let (rid, decoded) = decode_server(&payload).unwrap();
            assert_eq!(rid, req_id);
            assert_eq!(decoded, msg);
        }
    }

    #[test]
    fn hello_has_no_binary_encoding() {
        assert!(encode_client(1, &ClientMsg::Hello { version: 2 }).is_err());
        assert!(encode_server(1, &ServerMsg::Hello { version: 2 }).is_err());
    }

    #[test]
    fn unknown_client_opcode_is_reported_not_errored() {
        let mut payload = 9u32.to_le_bytes().to_vec();
        payload.push(200);
        payload.extend_from_slice(b"future stuff");
        match decode_client(&payload).unwrap() {
            (9, DecodedClient::Unknown(200)) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_server_opcode_is_unsupported() {
        let mut payload = 9u32.to_le_bytes().to_vec();
        payload.push(200);
        let err = decode_server(&payload).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Unsupported);
    }

    #[test]
    fn strict_prefixes_never_decode() {
        let payload = encode_client(
            3,
            &ClientMsg::Upload {
                client: "c".into(),
                seq: 4,
                records: vec![record()],
            },
        )
        .unwrap();
        for cut in 0..payload.len() {
            assert!(
                decode_client(&payload[..cut]).is_err(),
                "client prefix {cut} decoded"
            );
        }
        let payload = encode_server(
            3,
            &ServerMsg::Model {
                epoch: 1,
                observed: 2,
                censored: 1,
                sketch: sketch_token(),
            },
        )
        .unwrap();
        for cut in 0..payload.len() {
            assert!(
                decode_server(&payload[..cut]).is_err(),
                "server prefix {cut} decoded"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut payload = encode_client(1, &ClientMsg::Bye).unwrap();
        payload.push(0);
        assert!(decode_client(&payload).is_err());
        let mut payload = encode_server(1, &ServerMsg::Ack(3)).unwrap();
        payload.push(0);
        assert!(decode_server(&payload).is_err());
    }

    #[test]
    fn deep_validation_matches_the_text_readers() {
        // MODEL counts must agree with the sketch.
        let sk = sketch_token();
        let payload = encode_server(
            1,
            &ServerMsg::Model {
                epoch: 1,
                observed: 99,
                censored: 1,
                sketch: sk,
            },
        )
        .unwrap();
        assert!(decode_server(&payload).is_err());
        // Epsilon out of range is refused on encode and decode.
        assert!(encode_client(
            1,
            &ClientMsg::Advice {
                resource: Resource::Cpu,
                task: "Word".into(),
                epsilon: 1.5,
            }
        )
        .is_err());
        // Bad outcome byte.
        let mut payload = encode_client(
            2,
            &ClientMsg::Upload {
                client: "c".into(),
                seq: 1,
                records: vec![record()],
            },
        )
        .unwrap();
        // Find the outcome byte: after 5 strings; flip it to 9. The
        // record starts at req(4)+op(1)+client str(2+1)+seq(8)+count(2).
        let rec_start = 4 + 1 + 3 + 8 + 2;
        let mut pos = rec_start;
        for _ in 0..5 {
            let len = u16::from_le_bytes([payload[pos], payload[pos + 1]]) as usize;
            pos += 2 + len;
        }
        payload[pos] = 9;
        assert!(decode_client(&payload).is_err());
    }
}
