//! Testcases and exercise functions (paper §2.1, Figures 3, 4, 8).
//!
//! A *testcase* encodes the details of resource borrowing for various
//! resources: a unique identifier, a sample rate, and a collection of
//! *exercise functions*, one per resource used during the run. An exercise
//! function is a vector of contention values sampled at the testcase rate:
//! value `v[i]` is the contention to apply during
//! `[i/rate, (i+1)/rate)` seconds from the start of the run.
//!
//! Contention semantics (paper §2.2):
//! * **CPU / disk** — contention `c` behaves like `c` competing
//!   equal-priority busy threads: another busy thread runs at `1/(1+c)` of
//!   its standalone rate.
//! * **Memory** — contention is the *fraction of physical memory* borrowed
//!   (the paper caps it at 1.0 to avoid uncontrollable thrashing).
//!
//! This crate provides the exercise-function catalog of Figure 3 (step,
//! ramp, sin, saw, `expexp` = M/M/1, `exppar` = M/G/1), the testcase
//! container, the paper's text-file storage format, and generator tools
//! for building testcase libraries like the 2000-testcase Internet-study
//! set.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod exercise;
pub mod format;
pub mod generate;
pub mod resource;
pub mod testcase;
pub mod trace_io;

pub use exercise::{ExerciseFunction, ExerciseSpec};
pub use resource::Resource;
pub use testcase::{Testcase, TestcaseId};
pub use trace_io::HostLoadTrace;
