//! The resources a testcase can borrow.

use std::fmt;
use std::str::FromStr;

/// A borrowable host resource (paper §2.2).
///
/// `Network` is reserved: the paper built network exercisers but declined
/// to study them because their impact extends beyond the client machine
/// (§2.2). We keep the variant so testcase files mentioning it parse, but
/// the study drivers never schedule it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Resource {
    /// CPU time (contention = number of competing busy-thread equivalents).
    Cpu,
    /// Physical memory (contention = fraction of physical memory, ≤ 1.0).
    Memory,
    /// Disk bandwidth (contention = competing disk-busy thread equivalents).
    Disk,
    /// Network bandwidth (reserved, unstudied — see §2.2).
    Network,
}

impl Resource {
    /// The three resources the paper studies, in its presentation order.
    pub const STUDIED: [Resource; 3] = [Resource::Cpu, Resource::Memory, Resource::Disk];

    /// Canonical lower-case name used in the text file format.
    pub fn name(self) -> &'static str {
        match self {
            Resource::Cpu => "cpu",
            Resource::Memory => "memory",
            Resource::Disk => "disk",
            Resource::Network => "network",
        }
    }

    /// Maximum meaningful contention for this resource. CPU is verified to
    /// level 10 and disk to level 7 in the paper; memory is capped at 1.0
    /// (fraction of physical memory) to avoid uncontrollable thrashing.
    pub fn max_contention(self) -> f64 {
        match self {
            Resource::Cpu => 10.0,
            Resource::Memory => 1.0,
            Resource::Disk => 7.0,
            Resource::Network => 10.0,
        }
    }

    /// Clamps a contention level into this resource's valid range.
    pub fn clamp(self, level: f64) -> f64 {
        level.clamp(0.0, self.max_contention())
    }
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown resource name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseResourceError(pub String);

impl fmt::Display for ParseResourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown resource name: {:?}", self.0)
    }
}

impl std::error::Error for ParseResourceError {}

impl FromStr for Resource {
    type Err = ParseResourceError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "cpu" => Ok(Resource::Cpu),
            "memory" | "mem" => Ok(Resource::Memory),
            "disk" => Ok(Resource::Disk),
            "network" | "net" => Ok(Resource::Network),
            other => Err(ParseResourceError(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_names() {
        for r in [Resource::Cpu, Resource::Memory, Resource::Disk, Resource::Network] {
            assert_eq!(r.name().parse::<Resource>().unwrap(), r);
        }
    }

    #[test]
    fn aliases_parse() {
        assert_eq!("mem".parse::<Resource>().unwrap(), Resource::Memory);
        assert_eq!("CPU".parse::<Resource>().unwrap(), Resource::Cpu);
    }

    #[test]
    fn unknown_name_errors() {
        let e = "gpu".parse::<Resource>().unwrap_err();
        assert!(e.to_string().contains("gpu"));
    }

    #[test]
    fn clamp_respects_limits() {
        assert_eq!(Resource::Memory.clamp(1.7), 1.0);
        assert_eq!(Resource::Cpu.clamp(-3.0), 0.0);
        assert_eq!(Resource::Cpu.clamp(25.0), 10.0);
        assert_eq!(Resource::Disk.clamp(6.5), 6.5);
    }

    #[test]
    fn studied_excludes_network() {
        assert!(!Resource::STUDIED.contains(&Resource::Network));
        assert_eq!(Resource::STUDIED.len(), 3);
    }
}
