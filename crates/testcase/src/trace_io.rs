//! Host-load trace playback.
//!
//! The paper's CPU exerciser descends from the authors' host-load trace
//! playback work ("Realistic CPU workloads through host load trace
//! playback", the paper's reference 6): recorded load averages replayed as
//! contention. This module reads such traces — whitespace-separated
//! `time load` pairs, or bare load values at a stated rate — and turns
//! them into [`ExerciseSpec::Trace`] functions, resampled to a testcase's
//! rate.

use crate::exercise::ExerciseSpec;

/// Errors from trace parsing.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceError {
    /// A token failed to parse as a number.
    BadNumber {
        /// 1-based line.
        line: usize,
        /// The token.
        token: String,
    },
    /// Timestamps must be strictly increasing.
    NonMonotonicTime {
        /// 1-based line.
        line: usize,
    },
    /// The trace contained no samples.
    Empty,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::BadNumber { line, token } => {
                write!(f, "line {line}: bad number {token:?}")
            }
            TraceError::NonMonotonicTime { line } => {
                write!(f, "line {line}: timestamps must increase")
            }
            TraceError::Empty => write!(f, "trace has no samples"),
        }
    }
}

impl std::error::Error for TraceError {}

/// A parsed host-load trace: `(seconds, load)` samples with strictly
/// increasing time.
#[derive(Debug, Clone, PartialEq)]
pub struct HostLoadTrace {
    samples: Vec<(f64, f64)>,
}

impl HostLoadTrace {
    /// Parses a two-column `time load` trace (comments with `#`, blank
    /// lines ignored).
    pub fn parse(text: &str) -> Result<HostLoadTrace, TraceError> {
        let mut samples = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut toks = line.split_whitespace();
            let t: f64 = parse_tok(toks.next().unwrap_or(""), i + 1)?;
            let load: f64 = parse_tok(toks.next().unwrap_or(""), i + 1)?;
            if let Some(&(prev, _)) = samples.last() {
                if t <= prev {
                    return Err(TraceError::NonMonotonicTime { line: i + 1 });
                }
            }
            samples.push((t, load.max(0.0)));
        }
        if samples.is_empty() {
            return Err(TraceError::Empty);
        }
        Ok(HostLoadTrace { samples })
    }

    /// Builds a trace from bare load values at a fixed sample rate.
    pub fn from_values(values: &[f64], rate_hz: f64) -> Result<HostLoadTrace, TraceError> {
        if values.is_empty() {
            return Err(TraceError::Empty);
        }
        assert!(rate_hz > 0.0);
        Ok(HostLoadTrace {
            samples: values
                .iter()
                .enumerate()
                .map(|(i, &v)| (i as f64 / rate_hz, v.max(0.0)))
                .collect(),
        })
    }

    /// The trace duration in seconds (time of the last sample).
    pub fn duration(&self) -> f64 {
        self.samples.last().map(|&(t, _)| t).unwrap_or(0.0)
    }

    /// The load at time `t`, by step interpolation (the sample in force
    /// at `t`; before the first sample, the first value).
    pub fn load_at(&self, t: f64) -> f64 {
        match self.samples.iter().rev().find(|&&(st, _)| st <= t) {
            Some(&(_, v)) => v,
            None => self.samples[0].1,
        }
    }

    /// Resamples the trace into an [`ExerciseSpec::Trace`] at the target
    /// rate, optionally scaled (e.g. to turn a load-average trace into a
    /// gentler borrowing schedule).
    pub fn to_spec(&self, rate_hz: f64, scale: f64) -> ExerciseSpec {
        assert!(rate_hz > 0.0 && scale >= 0.0);
        let n = (self.duration() * rate_hz).ceil().max(1.0) as usize;
        let values = (0..n)
            .map(|i| self.load_at(i as f64 / rate_hz) * scale)
            .collect();
        ExerciseSpec::Trace { values }
    }
}

fn parse_tok(tok: &str, line: usize) -> Result<f64, TraceError> {
    tok.parse().map_err(|_| TraceError::BadNumber {
        line,
        token: tok.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::Resource;

    const SAMPLE: &str = "\
# host load trace, 2 s period
0 0.10
2 0.50
4 2.30   # burst
6 0.20
8 0.00
";

    #[test]
    fn parse_two_column_trace() {
        let t = HostLoadTrace::parse(SAMPLE).unwrap();
        assert_eq!(t.duration(), 8.0);
        assert_eq!(t.load_at(0.0), 0.10);
        assert_eq!(t.load_at(3.9), 0.50);
        assert_eq!(t.load_at(4.0), 2.30);
        assert_eq!(t.load_at(100.0), 0.0);
    }

    #[test]
    fn resample_to_spec() {
        let t = HostLoadTrace::parse(SAMPLE).unwrap();
        let spec = t.to_spec(1.0, 1.0);
        let f = spec.sample(Resource::Cpu, 1.0);
        assert_eq!(f.values.len(), 8);
        assert_eq!(f.value_at(4.0), Some(2.30));
        // Scaling halves everything.
        let f2 = t.to_spec(1.0, 0.5).sample(Resource::Cpu, 1.0);
        assert_eq!(f2.value_at(4.0), Some(1.15));
    }

    #[test]
    fn upsampling_repeats_steps() {
        let t = HostLoadTrace::parse(SAMPLE).unwrap();
        let f = t.to_spec(2.0, 1.0).sample(Resource::Cpu, 2.0);
        assert_eq!(f.values.len(), 16);
        assert_eq!(f.value_at(2.0), Some(0.5));
        assert_eq!(f.value_at(2.5), Some(0.5));
    }

    #[test]
    fn from_values_fixed_rate() {
        let t = HostLoadTrace::from_values(&[0.0, 1.0, 2.0, 1.0], 0.5).unwrap();
        assert_eq!(t.duration(), 6.0);
        assert_eq!(t.load_at(2.0), 1.0);
        assert_eq!(t.load_at(4.0), 2.0);
    }

    #[test]
    fn negative_loads_clamped() {
        let t = HostLoadTrace::parse("0 -1.0\n1 0.5\n").unwrap();
        assert_eq!(t.load_at(0.0), 0.0);
    }

    #[test]
    fn errors_reported() {
        assert_eq!(HostLoadTrace::parse("").unwrap_err(), TraceError::Empty);
        assert!(matches!(
            HostLoadTrace::parse("0 x\n").unwrap_err(),
            TraceError::BadNumber { line: 1, .. }
        ));
        assert!(matches!(
            HostLoadTrace::parse("0 1\n0 2\n").unwrap_err(),
            TraceError::NonMonotonicTime { line: 2 }
        ));
        assert_eq!(
            HostLoadTrace::from_values(&[], 1.0).unwrap_err(),
            TraceError::Empty
        );
    }
}
