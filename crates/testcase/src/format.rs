//! The text-file storage format for testcases (paper §2: "Both are Windows
//! applications that store testcases and results on permanent storage in
//! text files").
//!
//! Format (line oriented, whitespace-delimited, `#` comments allowed):
//!
//! ```text
//! TESTCASE <id>
//! RATE <hz>
//! FUNCTION <resource> <count>
//! <v> <v> <v> ...          # `count` values across any number of lines
//! END
//! ```
//!
//! Several testcases may be concatenated in one file; [`parse_many`]
//! reads them all. [`emit`] and [`parse`] round-trip exactly (values are
//! printed with enough digits to reproduce the `f64` bit pattern).

use crate::exercise::ExerciseFunction;
use crate::resource::Resource;
use crate::testcase::Testcase;
use std::fmt;

/// Errors produced while parsing the testcase text format.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// Expected a keyword but found something else.
    Expected {
        /// What was expected.
        what: &'static str,
        /// 1-based line number.
        line: usize,
        /// What was actually found.
        found: String,
    },
    /// A number failed to parse.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// Unknown resource name.
    BadResource {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// The input ended in the middle of a testcase.
    UnexpectedEof,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Expected { what, line, found } => {
                write!(f, "line {line}: expected {what}, found {found:?}")
            }
            ParseError::BadNumber { line, token } => {
                write!(f, "line {line}: bad number {token:?}")
            }
            ParseError::BadResource { line, token } => {
                write!(f, "line {line}: unknown resource {token:?}")
            }
            ParseError::UnexpectedEof => write!(f, "unexpected end of input"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Serializes one testcase into the text format.
pub fn emit(tc: &Testcase) -> String {
    let mut out = String::new();
    emit_into(tc, &mut out);
    out
}

/// Serializes one testcase, appending to `out`.
pub fn emit_into(tc: &Testcase, out: &mut String) {
    use fmt::Write;
    writeln!(out, "TESTCASE {}", tc.id).unwrap();
    writeln!(out, "RATE {}", fmt_f64(tc.sample_rate_hz)).unwrap();
    for f in &tc.functions {
        writeln!(out, "FUNCTION {} {}", f.resource, f.values.len()).unwrap();
        for chunk in f.values.chunks(8) {
            let line: Vec<String> = chunk.iter().map(|v| fmt_f64(*v)).collect();
            writeln!(out, "{}", line.join(" ")).unwrap();
        }
    }
    writeln!(out, "END").unwrap();
}

/// Serializes many testcases into one file body.
pub fn emit_many(tcs: &[Testcase]) -> String {
    let mut out = String::new();
    for tc in tcs {
        emit_into(tc, &mut out);
    }
    out
}

/// Formats an f64 so that parsing it back yields the identical value.
fn fmt_f64(v: f64) -> String {
    // The shortest roundtrip representation Rust produces for {} is exact.
    let s = format!("{v}");
    debug_assert_eq!(s.parse::<f64>().unwrap().to_bits(), v.to_bits());
    s
}

/// Tokenizer: yields (line_number, token) over the input, skipping
/// comments (from `#` to end of line) and blank lines.
struct Tokens<'a> {
    inner: std::vec::IntoIter<(usize, &'a str)>,
}

impl<'a> Tokens<'a> {
    fn new(input: &'a str) -> Self {
        let mut toks = Vec::new();
        for (i, raw) in input.lines().enumerate() {
            let line = match raw.find('#') {
                Some(pos) => &raw[..pos],
                None => raw,
            };
            for tok in line.split_whitespace() {
                toks.push((i + 1, tok));
            }
        }
        Tokens {
            inner: toks.into_iter(),
        }
    }

    fn next(&mut self) -> Option<(usize, &'a str)> {
        self.inner.next()
    }

    fn expect_keyword(&mut self, kw: &'static str) -> Result<usize, ParseError> {
        match self.next() {
            Some((line, t)) if t == kw => Ok(line),
            Some((line, t)) => Err(ParseError::Expected {
                what: kw,
                line,
                found: t.to_string(),
            }),
            None => Err(ParseError::UnexpectedEof),
        }
    }

    fn expect_f64(&mut self) -> Result<(usize, f64), ParseError> {
        match self.next() {
            Some((line, t)) => t
                .parse::<f64>()
                .map(|v| (line, v))
                .map_err(|_| ParseError::BadNumber {
                    line,
                    token: t.to_string(),
                }),
            None => Err(ParseError::UnexpectedEof),
        }
    }

    fn expect_usize(&mut self) -> Result<(usize, usize), ParseError> {
        match self.next() {
            Some((line, t)) => t
                .parse::<usize>()
                .map(|v| (line, v))
                .map_err(|_| ParseError::BadNumber {
                    line,
                    token: t.to_string(),
                }),
            None => Err(ParseError::UnexpectedEof),
        }
    }
}

/// Parses exactly one testcase from the input.
pub fn parse(input: &str) -> Result<Testcase, ParseError> {
    let mut toks = Tokens::new(input);
    parse_one(&mut toks)
}

/// Parses every testcase in the input (possibly zero).
pub fn parse_many(input: &str) -> Result<Vec<Testcase>, ParseError> {
    let mut toks = Tokens::new(input);
    let mut out = Vec::new();
    loop {
        // Peek: clone the iterator state by checking with a fresh parse
        // attempt only when a TESTCASE token remains.
        match toks.next() {
            None => return Ok(out),
            Some((line, "TESTCASE")) => {
                out.push(parse_after_keyword(&mut toks, line)?);
            }
            Some((line, other)) => {
                return Err(ParseError::Expected {
                    what: "TESTCASE",
                    line,
                    found: other.to_string(),
                })
            }
        }
    }
}

fn parse_one(toks: &mut Tokens<'_>) -> Result<Testcase, ParseError> {
    let line = toks.expect_keyword("TESTCASE")?;
    parse_after_keyword(toks, line)
}

fn parse_after_keyword(toks: &mut Tokens<'_>, _kw_line: usize) -> Result<Testcase, ParseError> {
    let (_, id) = toks.next().ok_or(ParseError::UnexpectedEof)?;
    toks.expect_keyword("RATE")?;
    let (_, rate) = toks.expect_f64()?;
    let mut functions = Vec::new();
    loop {
        match toks.next() {
            Some((_, "END")) => break,
            Some((line, "FUNCTION")) => {
                let (rline, rtok) = toks.next().ok_or(ParseError::UnexpectedEof)?;
                let resource: Resource =
                    rtok.parse().map_err(|_| ParseError::BadResource {
                        line: rline,
                        token: rtok.to_string(),
                    })?;
                let (_, count) = toks.expect_usize()?;
                let mut values = Vec::with_capacity(count);
                for _ in 0..count {
                    let (_, v) = toks.expect_f64()?;
                    values.push(v);
                }
                let _ = line;
                functions.push(ExerciseFunction::from_values(resource, rate, values));
            }
            Some((line, other)) => {
                return Err(ParseError::Expected {
                    what: "FUNCTION or END",
                    line,
                    found: other.to_string(),
                })
            }
            None => return Err(ParseError::UnexpectedEof),
        }
    }
    Ok(Testcase::new(id, rate, functions))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exercise::ExerciseSpec;

    fn sample_tc() -> Testcase {
        Testcase::from_specs(
            "demo-1",
            2.0,
            &[
                (
                    Resource::Cpu,
                    ExerciseSpec::Ramp {
                        level: 2.0,
                        duration: 10.0,
                    },
                ),
                (
                    Resource::Disk,
                    ExerciseSpec::Step {
                        level: 3.0,
                        duration: 10.0,
                        start: 4.0,
                    },
                ),
            ],
        )
    }

    #[test]
    fn roundtrip_single() {
        let tc = sample_tc();
        let text = emit(&tc);
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed, tc);
    }

    #[test]
    fn roundtrip_many() {
        let tcs = vec![
            sample_tc(),
            Testcase::blank("blank-x", 1.0, 120.0),
            Testcase::single(
                "mem-r",
                1.0,
                Resource::Memory,
                ExerciseSpec::Ramp {
                    level: 1.0,
                    duration: 120.0,
                },
            ),
        ];
        let text = emit_many(&tcs);
        let parsed = parse_many(&text).unwrap();
        assert_eq!(parsed, tcs);
    }

    #[test]
    fn parse_empty_is_empty() {
        assert_eq!(parse_many("").unwrap(), Vec::new());
        assert_eq!(parse_many("# just a comment\n\n").unwrap(), Vec::new());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\
# library header
TESTCASE t1
RATE 1   # one hertz
FUNCTION cpu 3
0 0.5 1   # rising
END
";
        let tc = parse(text).unwrap();
        assert_eq!(tc.id.as_str(), "t1");
        assert_eq!(tc.functions[0].values, vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn error_reports_line_numbers() {
        let text = "TESTCASE t1\nRATE 1\nFUNCTION cpu 2\n0 zebra\nEND\n";
        match parse(text) {
            Err(ParseError::BadNumber { line, token }) => {
                assert_eq!(line, 4);
                assert_eq!(token, "zebra");
            }
            other => panic!("expected BadNumber, got {other:?}"),
        }
    }

    #[test]
    fn unknown_resource_rejected() {
        let text = "TESTCASE t1\nRATE 1\nFUNCTION gpu 1\n0\nEND\n";
        assert!(matches!(
            parse(text),
            Err(ParseError::BadResource { token, .. }) if token == "gpu"
        ));
    }

    #[test]
    fn truncated_input_rejected() {
        let text = "TESTCASE t1\nRATE 1\nFUNCTION cpu 5\n0 0 0\n";
        assert_eq!(parse(text), Err(ParseError::UnexpectedEof));
    }

    #[test]
    fn garbage_keyword_rejected() {
        let text = "TESTCASE t1\nRATE 1\nFROBNICATE\nEND\n";
        assert!(matches!(
            parse(text),
            Err(ParseError::Expected { what: "FUNCTION or END", .. })
        ));
    }

    #[test]
    fn exact_float_roundtrip() {
        // Values chosen to stress decimal printing.
        // All within the CPU contention range so construction-time clamping
        // does not alter them.
        let vals = vec![0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 1e-300, 9.876543210123456];
        let tc = Testcase::new(
            "floats",
            1.0,
            vec![ExerciseFunction::from_values(Resource::Cpu, 1.0, vals.clone())],
        );
        let parsed = parse(&emit(&tc)).unwrap();
        for (a, b) in parsed.functions[0].values.iter().zip(&vals) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
