//! Exercise functions — the contention time series of Figure 3.
//!
//! An [`ExerciseSpec`] is the parametric description (what the paper's
//! testcase tools manipulate); [`ExerciseSpec::sample`] renders it into an
//! [`ExerciseFunction`] — the concrete value vector the client plays back.

use crate::resource::Resource;
use uucs_stats::Pcg64;

/// Parametric description of an exercise function (Figure 3).
///
/// All times are in seconds; `level`/`amplitude` are contention values in
/// the resource's units (thread-equivalents for CPU/disk, memory fraction
/// for memory).
#[derive(Debug, Clone, PartialEq)]
pub enum ExerciseSpec {
    /// Zero contention for the whole duration. Blank testcases measure the
    /// paper's *noise floor* — discomfort reported with no borrowing at all.
    Blank {
        /// Total duration in seconds.
        duration: f64,
    },
    /// `step(x, t, b)`: contention of zero to time `b`, then `x` to time `t`.
    Step {
        /// Plateau contention level `x`.
        level: f64,
        /// Total duration `t` in seconds.
        duration: f64,
        /// Time `b` at which the step rises.
        start: f64,
    },
    /// `ramp(x, t)`: contention rises linearly from zero to `x` over
    /// `[0, t]`.
    Ramp {
        /// Final contention level `x`.
        level: f64,
        /// Total duration `t` in seconds.
        duration: f64,
    },
    /// Sine wave: `offset + amplitude * sin(2π t / period)`, clamped at 0.
    Sin {
        /// Peak deviation from `offset`.
        amplitude: f64,
        /// Center level.
        offset: f64,
        /// Period in seconds.
        period: f64,
        /// Total duration in seconds.
        duration: f64,
    },
    /// Sawtooth wave rising from 0 to `level` every `period` seconds.
    Saw {
        /// Peak level reached at the end of each tooth.
        level: f64,
        /// Tooth period in seconds.
        period: f64,
        /// Total duration in seconds.
        duration: f64,
    },
    /// `expexp`: Poisson arrivals of exponential-sized jobs (M/M/1).
    /// Contention at time `t` is the number of jobs in the simulated
    /// queueing system (processor sharing), as in host-load playback.
    ExpExp {
        /// Job arrival rate λ (jobs/second).
        arrival_rate: f64,
        /// Mean job size in seconds of service (1/μ).
        mean_job: f64,
        /// Total duration in seconds.
        duration: f64,
        /// Seed for the arrival/size stream, so the rendered function is a
        /// pure value.
        seed: u64,
    },
    /// `exppar`: Poisson arrivals of Pareto-sized jobs (M/G/1) — heavy
    /// tails produce the long contention bursts real host load shows.
    ExpPar {
        /// Job arrival rate λ (jobs/second).
        arrival_rate: f64,
        /// Pareto scale (minimum job size, seconds of service).
        x_min: f64,
        /// Pareto shape α (α > 1 for finite mean).
        alpha: f64,
        /// Total duration in seconds.
        duration: f64,
        /// Seed for the arrival/size stream.
        seed: u64,
    },
    /// A literal value vector (1 value per sample period) — used for
    /// trace playback and for testcases read from files.
    Trace {
        /// The contention values.
        values: Vec<f64>,
    },
}

impl ExerciseSpec {
    /// Short type tag matching Figure 3's "Name" column.
    pub fn kind_name(&self) -> &'static str {
        match self {
            ExerciseSpec::Blank { .. } => "blank",
            ExerciseSpec::Step { .. } => "step",
            ExerciseSpec::Ramp { .. } => "ramp",
            ExerciseSpec::Sin { .. } => "sin",
            ExerciseSpec::Saw { .. } => "saw",
            ExerciseSpec::ExpExp { .. } => "expexp",
            ExerciseSpec::ExpPar { .. } => "exppar",
            ExerciseSpec::Trace { .. } => "trace",
        }
    }

    /// Total duration of the rendered function at the given sample rate.
    pub fn duration(&self, sample_rate_hz: f64) -> f64 {
        match self {
            ExerciseSpec::Blank { duration }
            | ExerciseSpec::Step { duration, .. }
            | ExerciseSpec::Ramp { duration, .. }
            | ExerciseSpec::Sin { duration, .. }
            | ExerciseSpec::Saw { duration, .. }
            | ExerciseSpec::ExpExp { duration, .. }
            | ExerciseSpec::ExpPar { duration, .. } => *duration,
            ExerciseSpec::Trace { values } => values.len() as f64 / sample_rate_hz,
        }
    }

    /// Renders the spec into a concrete value vector for `resource` at
    /// `sample_rate_hz`. Values are clamped into the resource's valid
    /// contention range.
    pub fn sample(&self, resource: Resource, sample_rate_hz: f64) -> ExerciseFunction {
        assert!(sample_rate_hz > 0.0, "sample rate must be positive");
        let n = (self.duration(sample_rate_hz) * sample_rate_hz).round() as usize;
        let dt = 1.0 / sample_rate_hz;
        let values: Vec<f64> = match self {
            ExerciseSpec::Blank { .. } => vec![0.0; n],
            ExerciseSpec::Step { level, start, .. } => (0..n)
                .map(|i| {
                    let t = i as f64 * dt;
                    if t >= *start {
                        *level
                    } else {
                        0.0
                    }
                })
                .collect(),
            ExerciseSpec::Ramp { level, duration } => (0..n)
                .map(|i| {
                    let t = i as f64 * dt;
                    level * (t / duration).min(1.0)
                })
                .collect(),
            ExerciseSpec::Sin {
                amplitude,
                offset,
                period,
                ..
            } => (0..n)
                .map(|i| {
                    let t = i as f64 * dt;
                    (offset + amplitude * (2.0 * std::f64::consts::PI * t / period).sin()).max(0.0)
                })
                .collect(),
            ExerciseSpec::Saw { level, period, .. } => (0..n)
                .map(|i| {
                    let t = i as f64 * dt;
                    level * (t % period) / period
                })
                .collect(),
            ExerciseSpec::ExpExp {
                arrival_rate,
                mean_job,
                duration,
                seed,
            } => {
                let mut rng = Pcg64::new(*seed);
                queue_occupancy(
                    *arrival_rate,
                    *duration,
                    sample_rate_hz,
                    &mut rng,
                    |r| r.exponential(1.0 / mean_job.max(1e-9)),
                )
            }
            ExerciseSpec::ExpPar {
                arrival_rate,
                x_min,
                alpha,
                duration,
                seed,
            } => {
                let mut rng = Pcg64::new(*seed);
                queue_occupancy(*arrival_rate, *duration, sample_rate_hz, &mut rng, |r| {
                    r.pareto(*x_min, *alpha)
                })
            }
            ExerciseSpec::Trace { values } => values.clone(),
        };
        let values = values.into_iter().map(|v| resource.clamp(v)).collect();
        ExerciseFunction {
            resource,
            sample_rate_hz,
            values,
        }
    }
}

/// Simulates a processor-sharing queue with Poisson(λ) arrivals and job
/// sizes drawn by `draw_size`, and samples the number-in-system at the
/// given rate. The contention value at each sample is the queue occupancy —
/// the number of competing jobs a foreground thread would see, exactly the
/// paper's M/M/1 / M/G/1 playback semantics.
fn queue_occupancy(
    arrival_rate: f64,
    duration: f64,
    sample_rate_hz: f64,
    rng: &mut Pcg64,
    mut draw_size: impl FnMut(&mut Pcg64) -> f64,
) -> Vec<f64> {
    assert!(arrival_rate >= 0.0 && duration >= 0.0);
    let n = (duration * sample_rate_hz).round() as usize;
    let dt = 1.0 / sample_rate_hz;
    let mut values = vec![0.0f64; n];
    if n == 0 {
        return values;
    }
    // Remaining service requirement of each in-system job (processor
    // sharing: all jobs progress at rate 1/k when k jobs are present).
    let mut jobs: Vec<f64> = Vec::new();
    let mut next_arrival = if arrival_rate > 0.0 {
        rng.exponential(arrival_rate)
    } else {
        f64::INFINITY
    };
    let mut now = 0.0;
    for slot in values.iter_mut() {
        let slot_end = now + dt;
        // Advance the queue through this sample period, handling arrivals
        // and departures in order.
        while now < slot_end {
            let step_end = next_arrival.min(slot_end);
            let mut remaining = step_end - now;
            // Serve (processor sharing) until a departure or step_end.
            while remaining > 1e-12 && !jobs.is_empty() {
                let k = jobs.len() as f64;
                let min_rem = jobs.iter().cloned().fold(f64::INFINITY, f64::min);
                let time_to_departure = min_rem * k;
                let advance = time_to_departure.min(remaining);
                let work = advance / k;
                for j in jobs.iter_mut() {
                    *j -= work;
                }
                jobs.retain(|&j| j > 1e-12);
                remaining -= advance;
            }
            now = step_end;
            if (next_arrival - now).abs() < 1e-12 && next_arrival.is_finite() {
                jobs.push(draw_size(rng).max(1e-9));
                next_arrival = now + rng.exponential(arrival_rate);
            }
        }
        *slot = jobs.len() as f64;
    }
    values
}

/// A rendered exercise function: one contention value per sample period for
/// a single resource (paper §2.1).
#[derive(Debug, Clone, PartialEq)]
pub struct ExerciseFunction {
    /// The resource this function exercises.
    pub resource: Resource,
    /// Sample rate in Hz.
    pub sample_rate_hz: f64,
    /// One contention value per sample period.
    pub values: Vec<f64>,
}

impl ExerciseFunction {
    /// Creates a function directly from values (clamped to the resource's
    /// valid range).
    pub fn from_values(resource: Resource, sample_rate_hz: f64, values: Vec<f64>) -> Self {
        assert!(sample_rate_hz > 0.0);
        let values = values.into_iter().map(|v| resource.clamp(v)).collect();
        ExerciseFunction {
            resource,
            sample_rate_hz,
            values,
        }
    }

    /// Duration in seconds.
    pub fn duration(&self) -> f64 {
        self.values.len() as f64 / self.sample_rate_hz
    }

    /// The contention value in force at `t` seconds into the run, or `None`
    /// once the function is exhausted.
    pub fn value_at(&self, t: f64) -> Option<f64> {
        if t < 0.0 {
            return None;
        }
        let idx = (t * self.sample_rate_hz).floor() as usize;
        self.values.get(idx).copied()
    }

    /// The last `k` contention values at or before time `t` — the paper
    /// records "the last five contention values used in each exercise
    /// function at the point of user feedback" (§2.3).
    pub fn last_values_at(&self, t: f64, k: usize) -> Vec<f64> {
        if self.values.is_empty() || t < 0.0 {
            return Vec::new();
        }
        let idx = ((t * self.sample_rate_hz).floor() as usize).min(self.values.len() - 1);
        let lo = (idx + 1).saturating_sub(k);
        self.values[lo..=idx].to_vec()
    }

    /// Maximum contention value in the function.
    pub fn peak(&self) -> f64 {
        self.values.iter().cloned().fold(0.0, f64::max)
    }

    /// Mean contention value.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// True if every value is zero (a blank function).
    pub fn is_blank(&self) -> bool {
        self.values.iter().all(|&v| v == 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RATE: f64 = 1.0;

    #[test]
    fn paper_example_vector_semantics() {
        // §2.1: rate 1 Hz, [0, 0.5, 1.0, 1.5, 2.0] persists 0..5 s and
        // commands 1.5 during [3,4) and 2.0 during [4,5).
        let f = ExerciseFunction::from_values(
            Resource::Cpu,
            1.0,
            vec![0.0, 0.5, 1.0, 1.5, 2.0],
        );
        assert_eq!(f.duration(), 5.0);
        assert_eq!(f.value_at(3.0), Some(1.5));
        assert_eq!(f.value_at(3.999), Some(1.5));
        assert_eq!(f.value_at(4.0), Some(2.0));
        assert_eq!(f.value_at(5.0), None);
        assert_eq!(f.value_at(-0.1), None);
    }

    #[test]
    fn step_shape() {
        // step(2.0, 120, 40) — Figure 4 left.
        let spec = ExerciseSpec::Step {
            level: 2.0,
            duration: 120.0,
            start: 40.0,
        };
        let f = spec.sample(Resource::Cpu, RATE);
        assert_eq!(f.values.len(), 120);
        assert_eq!(f.value_at(0.0), Some(0.0));
        assert_eq!(f.value_at(39.0), Some(0.0));
        assert_eq!(f.value_at(40.0), Some(2.0));
        assert_eq!(f.value_at(119.0), Some(2.0));
        assert_eq!(f.peak(), 2.0);
    }

    #[test]
    fn ramp_shape() {
        // ramp(2.0, 120) — Figure 4 right: linear 0 -> 2 over 120 s.
        let spec = ExerciseSpec::Ramp {
            level: 2.0,
            duration: 120.0,
        };
        let f = spec.sample(Resource::Cpu, RATE);
        assert_eq!(f.values.len(), 120);
        assert_eq!(f.value_at(0.0), Some(0.0));
        let mid = f.value_at(60.0).unwrap();
        assert!((mid - 1.0).abs() < 0.02, "mid {mid}");
        let last = *f.values.last().unwrap();
        assert!((last - 2.0).abs() < 0.02, "last {last}");
        // Monotone nondecreasing.
        assert!(f.values.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn blank_is_blank() {
        let f = ExerciseSpec::Blank { duration: 120.0 }.sample(Resource::Disk, RATE);
        assert!(f.is_blank());
        assert_eq!(f.values.len(), 120);
    }

    #[test]
    fn sin_oscillates_and_clamps_at_zero() {
        let spec = ExerciseSpec::Sin {
            amplitude: 2.0,
            offset: 0.5,
            period: 20.0,
            duration: 60.0,
        };
        let f = spec.sample(Resource::Cpu, 10.0);
        assert!(f.values.iter().all(|&v| v >= 0.0));
        assert!(f.peak() > 2.0 && f.peak() <= 2.5);
        // Should touch zero (offset - amplitude < 0 clamps).
        assert!(f.values.contains(&0.0));
    }

    #[test]
    fn saw_resets_each_period() {
        let spec = ExerciseSpec::Saw {
            level: 3.0,
            period: 10.0,
            duration: 30.0,
        };
        let f = spec.sample(Resource::Cpu, 1.0);
        // Start of each tooth is 0.
        assert_eq!(f.value_at(0.0), Some(0.0));
        assert_eq!(f.value_at(10.0), Some(0.0));
        assert_eq!(f.value_at(20.0), Some(0.0));
        // Just before reset it is near the peak.
        assert!(f.value_at(9.0).unwrap() > 2.5);
    }

    #[test]
    fn memory_values_clamped_to_one() {
        let spec = ExerciseSpec::Ramp {
            level: 3.0,
            duration: 10.0,
        };
        let f = spec.sample(Resource::Memory, 1.0);
        assert!(f.values.iter().all(|&v| v <= 1.0));
        assert_eq!(f.peak(), 1.0);
    }

    #[test]
    fn expexp_is_deterministic_and_stable() {
        let spec = ExerciseSpec::ExpExp {
            arrival_rate: 0.5,
            mean_job: 1.0,
            duration: 300.0,
            seed: 7,
        };
        let a = spec.sample(Resource::Cpu, 1.0);
        let b = spec.sample(Resource::Cpu, 1.0);
        assert_eq!(a, b);
        // rho = 0.5: mean queue length for M/M/1-PS is rho/(1-rho) = 1.0.
        // With only 300 samples allow generous slack.
        assert!(a.mean() > 0.2 && a.mean() < 3.0, "mean {}", a.mean());
        assert!(!a.is_blank());
    }

    #[test]
    fn expexp_longrun_mean_matches_mm1() {
        let spec = ExerciseSpec::ExpExp {
            arrival_rate: 0.5,
            mean_job: 1.0,
            duration: 60_000.0,
            seed: 11,
        };
        let f = spec.sample(Resource::Cpu, 1.0);
        // E[N] = rho/(1-rho) = 1.0 for rho = 0.5.
        assert!((f.mean() - 1.0).abs() < 0.15, "mean {}", f.mean());
    }

    #[test]
    fn exppar_heavy_tail_has_bursts() {
        let spec = ExerciseSpec::ExpPar {
            arrival_rate: 0.3,
            x_min: 0.5,
            alpha: 1.5,
            duration: 5_000.0,
            seed: 13,
        };
        let f = spec.sample(Resource::Cpu, 1.0);
        // Heavy tails should produce multi-job pileups well above the mean.
        assert!(f.peak() >= 3.0, "peak {}", f.peak());
    }

    #[test]
    fn last_values_at_returns_tail() {
        let f = ExerciseFunction::from_values(
            Resource::Cpu,
            1.0,
            vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0],
        );
        assert_eq!(f.last_values_at(4.5, 5), vec![0.0, 1.0, 2.0, 3.0, 4.0]);
        assert_eq!(f.last_values_at(1.0, 5), vec![0.0, 1.0]);
        // Past the end: clamps to the final sample.
        assert_eq!(f.last_values_at(99.0, 2), vec![4.0, 5.0]);
        assert_eq!(f.last_values_at(-1.0, 2), Vec::<f64>::new());
    }

    #[test]
    fn duration_and_sampling_relationship() {
        let spec = ExerciseSpec::Ramp {
            level: 1.0,
            duration: 7.0,
        };
        let f = spec.sample(Resource::Cpu, 4.0);
        assert_eq!(f.values.len(), 28);
        assert!((f.duration() - 7.0).abs() < 1e-12);
    }
}
