//! The `uucs-testcase` tool: "a set of tools for creating, viewing, and
//! manipulating testcases" (paper §2, Figure 2).
//!
//! ```text
//! uucs-testcase gen <out-file> [seed]       # generate the internet sweep
//! uucs-testcase show <file> [id]            # list, or ASCII-plot one testcase
//! uucs-testcase validate <file>             # parse + invariant checks
//! uucs-testcase from-trace <trace> <out> [scale]   # host-load trace -> testcase
//! ```

use uucs_testcase::{format as tcformat, generate::Library, HostLoadTrace, Resource, Testcase};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("gen") => {
            let out = args.get(1).cloned().unwrap_or_else(|| "library.txt".into());
            let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(42);
            let lib = Library::internet_sweep(seed);
            std::fs::write(&out, tcformat::emit_many(lib.testcases())).expect("write library");
            println!("wrote {} testcases to {out}", lib.len());
        }
        Some("show") => {
            let file = args.get(1).expect("show needs a file");
            let text = std::fs::read_to_string(file).expect("read file");
            let tcs = tcformat::parse_many(&text).expect("parse");
            match args.get(2) {
                None => {
                    for tc in &tcs {
                        let resources: Vec<String> = tc
                            .borrowed_resources()
                            .iter()
                            .map(|r| r.to_string())
                            .collect();
                        println!(
                            "{:<28} {:>5.0}s  [{}]",
                            tc.id.to_string(),
                            tc.duration(),
                            resources.join(",")
                        );
                    }
                    println!("{} testcases", tcs.len());
                }
                Some(id) => {
                    let tc = tcs
                        .iter()
                        .find(|t| t.id.as_str() == id)
                        .unwrap_or_else(|| {
                            eprintln!("no testcase {id}");
                            std::process::exit(1);
                        });
                    for f in &tc.functions {
                        println!("{}", plot_function(tc, f.resource));
                    }
                }
            }
        }
        Some("validate") => {
            let file = args.get(1).expect("validate needs a file");
            let text = std::fs::read_to_string(file).expect("read file");
            match tcformat::parse_many(&text) {
                Ok(tcs) => {
                    let mut ids: Vec<&str> = tcs.iter().map(|t| t.id.as_str()).collect();
                    ids.sort_unstable();
                    let n = ids.len();
                    ids.dedup();
                    if ids.len() != n {
                        eprintln!("FAIL: duplicate testcase ids");
                        std::process::exit(1);
                    }
                    for tc in &tcs {
                        for f in &tc.functions {
                            assert!(
                                f.peak() <= f.resource.max_contention() + 1e-9,
                                "{}: {} exceeds limit",
                                tc.id,
                                f.resource
                            );
                        }
                    }
                    println!("OK: {n} testcases, unique ids, levels within limits");
                }
                Err(e) => {
                    eprintln!("FAIL: {e}");
                    std::process::exit(1);
                }
            }
        }
        Some("from-trace") => {
            let trace_file = args.get(1).expect("from-trace needs a trace file");
            let out = args.get(2).expect("from-trace needs an output file");
            let scale: f64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(1.0);
            let text = std::fs::read_to_string(trace_file).expect("read trace");
            let trace = HostLoadTrace::parse(&text).expect("parse trace");
            let spec = trace.to_spec(1.0, scale);
            let tc = Testcase::single("trace-playback", 1.0, Resource::Cpu, spec);
            std::fs::write(out, tcformat::emit(&tc)).expect("write testcase");
            println!(
                "wrote trace-playback testcase ({:.0}s, scale {scale}) to {out}",
                tc.duration()
            );
        }
        _ => {
            eprintln!("usage: uucs-testcase gen|show|validate|from-trace ...");
            std::process::exit(2);
        }
    }
}

/// A small ASCII plot of one exercise function (Figure 4 style).
fn plot_function(tc: &Testcase, resource: Resource) -> String {
    let f = tc.function(resource).expect("function present");
    let width = 72usize;
    let height = 12usize;
    let peak = f.peak().max(1e-9);
    let mut grid = vec![vec![b' '; width]; height];
    let cells: Vec<(usize, usize)> = (0..width)
        .map(|col| {
            let t = tc.duration() * (col as f64 + 0.5) / width as f64;
            let v = f.value_at(t).unwrap_or(0.0);
            let row = ((1.0 - v / peak) * (height - 1) as f64).round() as usize;
            (row.min(height - 1), col)
        })
        .collect();
    for (row, col) in cells {
        grid[row][col] = b'*';
    }
    let mut out = format!(
        "{} / {resource}: peak {:.2}, mean {:.2}, {:.0}s\n",
        tc.id,
        f.peak(),
        f.mean(),
        tc.duration()
    );
    for row in grid {
        out.push('|');
        out.push_str(std::str::from_utf8(&row).unwrap());
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(width));
    out
}
