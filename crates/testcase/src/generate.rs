//! Testcase generator tools (paper §2, Figure 2: "a set of tools for
//! creating, viewing, and manipulating testcases").
//!
//! [`Library`] builds testcase collections: the deterministic sets the
//! controlled study needs, and large parameter-swept libraries like the
//! Internet study's ">2000 testcases ... predominantly from the M/M/1 and
//! M/G/1 models" (§2.1).

use crate::exercise::ExerciseSpec;
use crate::resource::Resource;
use crate::testcase::Testcase;
use uucs_stats::Pcg64;

/// Default sample rate for generated testcases (the paper's example uses
/// 1 Hz; all controlled-study testcases are 2 minutes at 1 Hz).
pub const DEFAULT_RATE_HZ: f64 = 1.0;

/// Default testcase duration in seconds (2 minutes, §3.2).
pub const DEFAULT_DURATION: f64 = 120.0;

/// A growing collection of testcases with unique ids.
#[derive(Debug, Default)]
pub struct Library {
    testcases: Vec<Testcase>,
}

impl Library {
    /// An empty library.
    pub fn new() -> Self {
        Library::default()
    }

    /// All testcases, in insertion order.
    pub fn testcases(&self) -> &[Testcase] {
        &self.testcases
    }

    /// Number of testcases.
    pub fn len(&self) -> usize {
        self.testcases.len()
    }

    /// True if the library is empty.
    pub fn is_empty(&self) -> bool {
        self.testcases.is_empty()
    }

    /// Adds a testcase, enforcing id uniqueness.
    pub fn push(&mut self, tc: Testcase) {
        assert!(
            !self.testcases.iter().any(|t| t.id == tc.id),
            "duplicate testcase id {}",
            tc.id
        );
        self.testcases.push(tc);
    }

    /// Finds a testcase by id.
    pub fn get(&self, id: &str) -> Option<&Testcase> {
        self.testcases.iter().find(|t| t.id.as_str() == id)
    }

    /// Adds a ramp testcase `ramp(level, duration)` for `resource`.
    pub fn add_ramp(&mut self, resource: Resource, level: f64, duration: f64) -> &Testcase {
        let id = format!("{resource}-ramp-{level}-{duration}");
        self.push(Testcase::single(
            id,
            DEFAULT_RATE_HZ,
            resource,
            ExerciseSpec::Ramp { level, duration },
        ));
        self.testcases.last().unwrap()
    }

    /// Adds a step testcase `step(level, duration, start)` for `resource`.
    pub fn add_step(
        &mut self,
        resource: Resource,
        level: f64,
        duration: f64,
        start: f64,
    ) -> &Testcase {
        let id = format!("{resource}-step-{level}-{duration}-{start}");
        self.push(Testcase::single(
            id,
            DEFAULT_RATE_HZ,
            resource,
            ExerciseSpec::Step {
                level,
                duration,
                start,
            },
        ));
        self.testcases.last().unwrap()
    }

    /// Adds a blank testcase of the given duration.
    pub fn add_blank(&mut self, duration: f64) -> &Testcase {
        let id = format!("blank-{}-{duration}", self.testcases.len());
        self.push(Testcase::blank(id, DEFAULT_RATE_HZ, duration));
        self.testcases.last().unwrap()
    }

    /// Generates the Internet-study style library: a parameter sweep over
    /// every exercise-function type of Figure 3, "predominantly from the
    /// M/M/1 and M/G/1 models". With the default knobs this produces a
    /// little over 2000 testcases, like the paper's server.
    pub fn internet_sweep(seed: u64) -> Library {
        let mut lib = Library::new();
        let mut rng = Pcg64::new(seed);
        let d = DEFAULT_DURATION;

        // Deterministic structured sweeps: ramps and steps.
        for &res in &Resource::STUDIED {
            let max = res.max_contention();
            for i in 1..=10 {
                let level = max * i as f64 / 10.0;
                lib.add_ramp(res, round3(level), d);
                for &start in &[20.0, 40.0, 60.0] {
                    lib.add_step(res, round3(level), d, start);
                }
            }
        }
        // Periodic shapes.
        for &res in &Resource::STUDIED {
            let max = res.max_contention();
            for i in 1..=5 {
                let amp = max * i as f64 / 10.0;
                for &period in &[15.0, 30.0, 60.0] {
                    lib.push(Testcase::single(
                        format!("{res}-sin-{}-{period}", round3(amp)),
                        DEFAULT_RATE_HZ,
                        res,
                        ExerciseSpec::Sin {
                            amplitude: amp,
                            offset: amp,
                            period,
                            duration: d,
                        },
                    ));
                    lib.push(Testcase::single(
                        format!("{res}-saw-{}-{period}", round3(amp)),
                        DEFAULT_RATE_HZ,
                        res,
                        ExerciseSpec::Saw {
                            level: 2.0 * amp,
                            period,
                            duration: d,
                        },
                    ));
                }
            }
        }
        // The bulk: M/M/1 and M/G/1 playback, randomized parameters.
        // CPU and disk only (queue occupancy is meaningless for the memory
        // fraction semantics).
        let mut counter = 0u64;
        for &res in &[Resource::Cpu, Resource::Disk] {
            for _ in 0..500 {
                let rho = rng.uniform(0.1, 0.9);
                let mean_job = rng.uniform(0.5, 4.0);
                let arrival_rate = rho / mean_job;
                counter += 1;
                lib.push(Testcase::single(
                    format!("{res}-expexp-{counter:04}"),
                    DEFAULT_RATE_HZ,
                    res,
                    ExerciseSpec::ExpExp {
                        arrival_rate,
                        mean_job,
                        duration: d,
                        seed: rng.next_u64(),
                    },
                ));
            }
            for _ in 0..500 {
                let arrival_rate = rng.uniform(0.05, 0.5);
                let x_min = rng.uniform(0.2, 1.0);
                let alpha = rng.uniform(1.1, 2.5);
                counter += 1;
                lib.push(Testcase::single(
                    format!("{res}-exppar-{counter:04}"),
                    DEFAULT_RATE_HZ,
                    res,
                    ExerciseSpec::ExpPar {
                        arrival_rate,
                        x_min,
                        alpha,
                        duration: d,
                        seed: rng.next_u64(),
                    },
                ));
            }
        }
        // Blanks for the noise floor.
        for _ in 0..20 {
            lib.add_blank(d);
        }
        lib
    }
}

fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ramp_and_step_helpers() {
        let mut lib = Library::new();
        lib.add_ramp(Resource::Cpu, 7.0, 120.0);
        lib.add_step(Resource::Disk, 5.0, 120.0, 40.0);
        lib.add_blank(120.0);
        assert_eq!(lib.len(), 3);
        let r = lib.get("cpu-ramp-7-120").unwrap();
        assert!((r.duration() - 120.0).abs() < 1e-9);
        assert!(lib.get("nope").is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_id_rejected() {
        let mut lib = Library::new();
        lib.add_ramp(Resource::Cpu, 1.0, 10.0);
        lib.add_ramp(Resource::Cpu, 1.0, 10.0);
    }

    #[test]
    fn internet_sweep_size_and_uniqueness() {
        let lib = Library::internet_sweep(1);
        // The paper: "we currently have over 2000 testcases".
        assert!(lib.len() > 2000, "got {}", lib.len());
        let mut ids: Vec<&str> = lib.testcases().iter().map(|t| t.id.as_str()).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before, "ids must be unique");
    }

    #[test]
    fn internet_sweep_is_deterministic() {
        let a = Library::internet_sweep(5);
        let b = Library::internet_sweep(5);
        assert_eq!(a.testcases(), b.testcases());
    }

    #[test]
    fn internet_sweep_covers_all_kinds() {
        let lib = Library::internet_sweep(2);
        for kind in ["ramp", "step", "sin", "saw", "expexp", "exppar", "blank"] {
            assert!(
                lib.testcases().iter().any(|t| t.id.as_str().contains(kind)),
                "missing kind {kind}"
            );
        }
    }

    #[test]
    fn sweep_respects_resource_limits() {
        let lib = Library::internet_sweep(3);
        for tc in lib.testcases() {
            for f in &tc.functions {
                assert!(
                    f.peak() <= f.resource.max_contention() + 1e-9,
                    "{} exceeds {} limit",
                    tc.id,
                    f.resource
                );
            }
        }
    }
}
