//! The testcase container (paper §2.1).

use crate::exercise::{ExerciseFunction, ExerciseSpec};
use crate::resource::Resource;
use std::fmt;

/// A globally unique testcase identifier.
///
/// The paper's server assigns identifiers; we use free-form tokens
/// (no whitespace) like `cpu-ramp-7.0-120` or `itc-000142`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TestcaseId(String);

impl TestcaseId {
    /// Creates an id. Panics if the token is empty or contains whitespace
    /// (ids are written into whitespace-delimited text files).
    pub fn new(id: impl Into<String>) -> Self {
        let id = id.into();
        assert!(
            !id.is_empty() && !id.chars().any(|c| c.is_whitespace()),
            "testcase id must be a non-empty token without whitespace: {id:?}"
        );
        TestcaseId(id)
    }

    /// The id as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for TestcaseId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A testcase: a unique identifier, a sample rate, and one exercise
/// function per resource borrowed during the run.
///
/// ```
/// use uucs_testcase::{ExerciseSpec, Resource, Testcase};
/// // Figure 4's ramp: CPU contention 0 -> 2.0 over two minutes.
/// let tc = Testcase::single(
///     "cpu-ramp",
///     1.0,
///     Resource::Cpu,
///     ExerciseSpec::Ramp { level: 2.0, duration: 120.0 },
/// );
/// assert_eq!(tc.duration(), 120.0);
/// assert!((tc.contention_at(Resource::Cpu, 60.0) - 1.0).abs() < 0.02);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Testcase {
    /// Unique identifier.
    pub id: TestcaseId,
    /// Sample rate shared by all exercise functions, in Hz.
    pub sample_rate_hz: f64,
    /// One rendered exercise function per resource (at most one each).
    pub functions: Vec<ExerciseFunction>,
}

impl Testcase {
    /// Builds a testcase from parametric specs, rendering each at the
    /// testcase sample rate. Panics if a resource appears twice.
    pub fn from_specs(
        id: impl Into<String>,
        sample_rate_hz: f64,
        specs: &[(Resource, ExerciseSpec)],
    ) -> Self {
        let functions: Vec<ExerciseFunction> = specs
            .iter()
            .map(|(r, s)| s.sample(*r, sample_rate_hz))
            .collect();
        Self::new(id, sample_rate_hz, functions)
    }

    /// Builds a testcase from pre-rendered functions. Panics if a resource
    /// appears twice or a function's rate disagrees with the testcase rate.
    pub fn new(
        id: impl Into<String>,
        sample_rate_hz: f64,
        functions: Vec<ExerciseFunction>,
    ) -> Self {
        assert!(sample_rate_hz > 0.0);
        for (i, f) in functions.iter().enumerate() {
            assert!(
                (f.sample_rate_hz - sample_rate_hz).abs() < 1e-9,
                "function {i} rate {} != testcase rate {sample_rate_hz}",
                f.sample_rate_hz
            );
            for g in &functions[..i] {
                assert!(
                    g.resource != f.resource,
                    "duplicate exercise function for {}",
                    f.resource
                );
            }
        }
        Testcase {
            id: TestcaseId::new(id),
            sample_rate_hz,
            functions,
        }
    }

    /// A single-resource testcase (the controlled study uses only these).
    pub fn single(
        id: impl Into<String>,
        sample_rate_hz: f64,
        resource: Resource,
        spec: ExerciseSpec,
    ) -> Self {
        Self::from_specs(id, sample_rate_hz, &[(resource, spec)])
    }

    /// A blank testcase touching no resource at all but lasting `duration`
    /// seconds. The paper uses blanks to measure the discomfort noise
    /// floor. We encode it as a zero CPU function so the run still has a
    /// duration.
    pub fn blank(id: impl Into<String>, sample_rate_hz: f64, duration: f64) -> Self {
        Self::single(
            id,
            sample_rate_hz,
            Resource::Cpu,
            ExerciseSpec::Blank { duration },
        )
    }

    /// Run duration: the longest function's duration (the run is over when
    /// all exercise functions are exhausted, §2.3).
    pub fn duration(&self) -> f64 {
        self.functions
            .iter()
            .map(ExerciseFunction::duration)
            .fold(0.0, f64::max)
    }

    /// The function for `resource`, if present.
    pub fn function(&self, resource: Resource) -> Option<&ExerciseFunction> {
        self.functions.iter().find(|f| f.resource == resource)
    }

    /// The contention in force for `resource` at time `t` (0 if the
    /// testcase does not exercise that resource or the function is over).
    pub fn contention_at(&self, resource: Resource, t: f64) -> f64 {
        self.function(resource)
            .and_then(|f| f.value_at(t))
            .unwrap_or(0.0)
    }

    /// True if all functions are blank (or there are none).
    pub fn is_blank(&self) -> bool {
        self.functions.iter().all(ExerciseFunction::is_blank)
    }

    /// The resources this testcase actually borrows (non-blank functions).
    pub fn borrowed_resources(&self) -> Vec<Resource> {
        self.functions
            .iter()
            .filter(|f| !f.is_blank())
            .map(|f| f.resource)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(level: f64, duration: f64) -> ExerciseSpec {
        ExerciseSpec::Ramp { level, duration }
    }

    #[test]
    fn single_resource_testcase() {
        let tc = Testcase::single("cpu-r", 1.0, Resource::Cpu, ramp(2.0, 120.0));
        assert_eq!(tc.duration(), 120.0);
        assert_eq!(tc.borrowed_resources(), vec![Resource::Cpu]);
        assert!(!tc.is_blank());
        assert!(tc.function(Resource::Disk).is_none());
        assert_eq!(tc.contention_at(Resource::Disk, 10.0), 0.0);
        assert!(tc.contention_at(Resource::Cpu, 60.0) > 0.9);
    }

    #[test]
    fn blank_testcase() {
        let tc = Testcase::blank("b1", 1.0, 120.0);
        assert!(tc.is_blank());
        assert_eq!(tc.duration(), 120.0);
        assert!(tc.borrowed_resources().is_empty());
        assert_eq!(tc.contention_at(Resource::Cpu, 50.0), 0.0);
    }

    #[test]
    fn multi_resource_duration_is_max() {
        let tc = Testcase::from_specs(
            "multi",
            1.0,
            &[
                (Resource::Cpu, ramp(1.0, 60.0)),
                (Resource::Disk, ramp(2.0, 120.0)),
            ],
        );
        assert_eq!(tc.duration(), 120.0);
        assert_eq!(
            tc.borrowed_resources(),
            vec![Resource::Cpu, Resource::Disk]
        );
        // CPU function exhausted after 60 s -> contention reverts to 0.
        assert_eq!(tc.contention_at(Resource::Cpu, 90.0), 0.0);
        assert!(tc.contention_at(Resource::Disk, 90.0) > 1.0);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_resource_panics() {
        Testcase::from_specs(
            "dup",
            1.0,
            &[
                (Resource::Cpu, ramp(1.0, 10.0)),
                (Resource::Cpu, ramp(2.0, 10.0)),
            ],
        );
    }

    #[test]
    #[should_panic(expected = "whitespace")]
    fn id_with_space_panics() {
        TestcaseId::new("bad id");
    }

    #[test]
    fn id_display_roundtrip() {
        let id = TestcaseId::new("cpu-ramp-7.0");
        assert_eq!(id.to_string(), "cpu-ramp-7.0");
        assert_eq!(id.as_str(), "cpu-ramp-7.0");
    }
}
