//! Transports carrying the wire protocol to a server.

use std::io::{self, BufReader};
use std::net::TcpStream;
use std::sync::Arc;
use uucs_protocol::wire::{read_server_msg, write_client_msg, Endpoint};
use uucs_protocol::{ClientMsg, ServerMsg};

/// A connection to a UUCS server.
pub trait ClientTransport {
    /// Sends one message and reads the reply.
    fn exchange(&mut self, msg: &ClientMsg) -> io::Result<ServerMsg>;
}

/// TCP transport over the text wire protocol.
pub struct TcpTransport {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl TcpTransport {
    /// Connects to a server address.
    pub fn connect(addr: impl std::net::ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        // The protocol is strictly request/reply; Nagle only adds
        // latency to the many small line writes a frame is made of.
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(TcpTransport {
            writer,
            reader: BufReader::new(stream),
        })
    }

    /// Connects with `deadline` bounding the dial and every subsequent
    /// read and write — no exchange over this transport can block
    /// forever on a black-holed peer.
    pub fn connect_with_deadline(
        addr: impl std::net::ToSocketAddrs,
        deadline: std::time::Duration,
    ) -> io::Result<Self> {
        let mut last_err = None;
        for sa in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&sa, deadline) {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    stream.set_read_timeout(Some(deadline))?;
                    stream.set_write_timeout(Some(deadline))?;
                    let writer = stream.try_clone()?;
                    return Ok(TcpTransport {
                        writer,
                        reader: BufReader::new(stream),
                    });
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
        }))
    }

    /// Ends the session politely.
    pub fn bye(&mut self) -> io::Result<()> {
        write_client_msg(&mut self.writer, &ClientMsg::Bye)
    }

    /// Splits the transport into its socket halves — what the wire
    /// negotiation needs to run the text `HELLO` exchange and then hand
    /// the same socket to a binary connection.
    pub fn into_parts(self) -> (TcpStream, BufReader<TcpStream>) {
        (self.writer, self.reader)
    }

    /// Reassembles a transport from socket halves (the text fallback
    /// after a negotiation that settled on wire v1).
    pub fn from_parts(writer: TcpStream, reader: BufReader<TcpStream>) -> Self {
        TcpTransport { writer, reader }
    }
}

impl ClientTransport for TcpTransport {
    fn exchange(&mut self, msg: &ClientMsg) -> io::Result<ServerMsg> {
        write_client_msg(&mut self.writer, msg)?;
        read_server_msg(&mut self.reader)
    }
}

/// In-process transport: calls the server's handler directly. The same
/// [`Endpoint`] backs the TCP listener, so tests exercise identical
/// server logic without sockets.
pub struct LocalTransport {
    endpoint: Arc<dyn Endpoint>,
}

impl LocalTransport {
    /// Wraps a shared endpoint.
    pub fn new(endpoint: Arc<dyn Endpoint>) -> Self {
        LocalTransport { endpoint }
    }
}

impl ClientTransport for LocalTransport {
    fn exchange(&mut self, msg: &ClientMsg) -> io::Result<ServerMsg> {
        Ok(self.endpoint.handle(msg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;
    impl Endpoint for Echo {
        fn handle(&self, msg: &ClientMsg) -> ServerMsg {
            match msg {
                ClientMsg::Sync { have, .. } => ServerMsg::Ack(*have),
                _ => ServerMsg::Error("unexpected".into()),
            }
        }
    }

    #[test]
    fn local_transport_calls_endpoint() {
        let mut t = LocalTransport::new(Arc::new(Echo));
        let reply = t
            .exchange(&ClientMsg::Sync {
                client: "c".into(),
                have: 5,
                want: 1,
            })
            .unwrap();
        assert_eq!(reply, ServerMsg::Ack(5));
    }
}
