//! The UUCS client (paper §2, Figure 5).
//!
//! The client keeps local testcase and result stores so it "can operate
//! disconnected from the server", registers once (uploading a machine
//! snapshot, receiving a GUID), and periodically *hot syncs*: downloading
//! a growing random sample of new testcases and uploading new results.
//! Testcase executions arrive as a Poisson process with locally random
//! testcase choice, so a collection of clients executes a random sample
//! with respect to testcases, users, and times (§2).
//!
//! For the controlled study the client runs in *deterministic mode*,
//! "executing a predefined set of commands from a local file" — the
//! [`script`] module implements that command file.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod governor;
pub mod resilient;
pub mod script;
pub mod store;
pub mod transport;

pub use client::{SyncReport, UucsClient};
pub use governor::{BorrowingGovernor, RefreshOutcome};
pub use resilient::{classify, FailureClass, ResilientTransport, RetryPolicy};
pub use script::{Command, Script};
pub use store::ClientStore;
pub use transport::{ClientTransport, LocalTransport, TcpTransport};
pub use uucs_wire::WireMode;
