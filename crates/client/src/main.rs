//! The `uucs-client` daemon: registers with a server, hot-syncs a
//! growing random sample of testcases, executes them at Poisson arrivals
//! with a synthetic user in the loop, and uploads the results — an
//! Internet-study participant in a box.
//!
//! ```text
//! uucs-client --server 127.0.0.1:4004[,HOST:PORT...] [--store DIR] [--no-store]
//!             [--runs N] [--mean-gap SECS] [--seed N] [--script FILE]
//!             [--timeout SECS] [--retries N] [--wire text|binary|auto]
//! ```
//!
//! With `--script`, runs in deterministic mode instead: executes the
//! command file (the controlled study's mode) and exits. With
//! `--no-store`, runs ephemerally: nothing is spooled or persisted, and
//! the registration identity is derived only from `--seed` + hostname —
//! running that way with the *default* seed earns a loud warning, since
//! every defaulted store-less daemon on a host would present the same
//! identity token.
//!
//! The daemon degrades gracefully when the server is unreachable: runs
//! keep executing, results spool to the store directory, and the next
//! successful sync drains the backlog. The process exits nonzero only
//! when its *local* ground gives way — the store directory or the script
//! file cannot be opened — never because the network is having a bad
//! day. If any exchange failed along the way, the telemetry flight
//! recorder is dumped to `<store>/flight-recorder.jsonl` as a
//! post-mortem artifact.

use std::path::PathBuf;
use std::time::Duration;
use uucs_client::{ClientStore, ResilientTransport, RetryPolicy, Script, UucsClient, WireMode};
use uucs_comfort::{Fidelity, UserPopulation};
use uucs_protocol::MachineSnapshot;
use uucs_stats::Pcg64;
use uucs_telemetry::{flight, trace};
use uucs_workloads::Task;

fn main() {
    let mut server = "127.0.0.1:4004".to_string();
    let mut store_dir = PathBuf::from("uucs-client-data");
    let mut runs = 10usize;
    let mut mean_gap = 2.0f64; // seconds between runs in daemon demo mode
    let mut seed = 1u64;
    let mut seed_explicit = false;
    let mut no_store = false;
    let mut script: Option<PathBuf> = None;
    let mut timeout = 10.0f64;
    let mut retries = 4u32;
    let mut wire = WireMode::Auto;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--server" => {
                i += 1;
                server = args.get(i).cloned().unwrap_or(server);
            }
            "--store" => {
                i += 1;
                store_dir = args.get(i).map(PathBuf::from).unwrap_or(store_dir);
            }
            "--no-store" => {
                no_store = true;
            }
            "--runs" => {
                i += 1;
                runs = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(runs);
            }
            "--mean-gap" => {
                i += 1;
                mean_gap = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(mean_gap);
            }
            "--seed" => {
                i += 1;
                if let Some(s) = args.get(i).and_then(|s| s.parse().ok()) {
                    seed = s;
                    seed_explicit = true;
                }
            }
            "--script" => {
                i += 1;
                script = args.get(i).map(PathBuf::from);
            }
            "--timeout" => {
                i += 1;
                timeout = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(timeout);
            }
            "--retries" => {
                i += 1;
                retries = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(retries);
            }
            "--wire" => {
                i += 1;
                wire = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("bad --wire mode (want text, binary, or auto)");
                        std::process::exit(2);
                    });
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    // Local ground: these two failures are fatal. Everything network-side
    // is survivable.
    let store = if no_store {
        None
    } else {
        Some(ClientStore::open(&store_dir).unwrap_or_else(|e| {
            eprintln!("cannot open client store {store_dir:?}: {e}");
            std::process::exit(1);
        }))
    };
    if no_store && !seed_explicit {
        // Store-less, the seed+hostname token is the ONLY identity this
        // daemon presents — and the seed just defaulted. Every defaulted
        // store-less daemon on this host collapses into one server-side
        // identity (and one upload dedup horizon, which silently
        // discards "replayed" batches the others actually never sent).
        eprintln!(
            "warning: running store-less with the default --seed {seed}; \
             the registration identity is derived only from the seed and \
             hostname, so concurrent defaulted daemons on this host would \
             share one server identity. Pass an explicit --seed (or drop \
             --no-store) to get a distinct, persistent identity."
        );
    }
    let script_text = script.as_ref().map(|path| {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read script {path:?}: {e}");
            std::process::exit(1);
        })
    });

    let mut client = UucsClient::new(
        MachineSnapshot::study_machine(format!("daemon-{seed}")),
        seed,
    );
    if let Some(store) = &store {
        if let Err(e) = client.restore(store) {
            eprintln!("store is damaged, starting fresh: {e}");
        }
        client.attach_store(store.clone());
    }
    // `--server` accepts a comma-separated list; exchanges fail over
    // down the list, so a replicated tier's follower can take over.
    let addrs: Vec<String> = server.split(',').map(str::to_string).collect();
    let mut transport = ResilientTransport::multi(addrs)
        .with_wire_mode(wire)
        .with_timeout(Duration::from_secs_f64(timeout.max(0.1)))
        .with_policy(RetryPolicy {
            max_attempts: retries.max(1),
            seed,
            ..RetryPolicy::default()
        });
    // Any failed exchange flips this; the session then leaves the
    // flight-recorder tail in the store directory as a post-mortem.
    let mut had_errors = false;
    match client.register(&mut transport) {
        Ok(id) => eprintln!("registered as {id}"),
        Err(e) => {
            had_errors = true;
            trace::event("client.register.failed", &[("error", &e.to_string())]);
            eprintln!("server unreachable ({e}); running offline, results will spool");
        }
    }

    // The synthetic user at this machine.
    let population = UserPopulation::generate(1, seed ^ 0xface);
    let user = &population.users()[0];
    let mut rng = Pcg64::new(seed).split_str("daemon");

    if let Some(text) = script_text {
        let script = Script::parse(&text).unwrap_or_else(|e| {
            eprintln!("bad script: {e}");
            std::process::exit(2);
        });
        // Deterministic mode wants a local testcase file; hot-sync first
        // so the store holds something — offline, whatever the store
        // already has will do.
        if let Err(e) = client.hot_sync(&mut transport) {
            had_errors = true;
            trace::event("client.sync.failed", &[("error", &e.to_string())]);
            eprintln!("initial sync failed ({e}); using the local testcase store");
        }
        match client.execute_script(&script, user, Fidelity::Fast, &mut transport, seed) {
            Ok(n) => eprintln!("deterministic session complete: {n} runs"),
            Err(e) => {
                had_errors = true;
                trace::event("client.script.failed", &[("error", &e.to_string())]);
                eprintln!("script session stopped early: {e}");
            }
        }
    } else {
        match client.hot_sync(&mut transport) {
            Ok(_) => eprintln!("synced {} testcases", client.testcases().len()),
            Err(e) => {
                had_errors = true;
                trace::event("client.sync.failed", &[("error", &e.to_string())]);
                eprintln!(
                    "sync failed ({e}); continuing with {} local testcases",
                    client.testcases().len()
                );
            }
        }
        for k in 0..runs {
            let gap = client.next_arrival_gap(mean_gap);
            std::thread::sleep(std::time::Duration::from_secs_f64(gap.min(10.0)));
            if k % 5 == 4 {
                match client.hot_sync(&mut transport) {
                    Ok(r) => eprintln!(
                        "hot sync: +{} testcases, {} results uploaded",
                        r.downloaded, r.uploaded
                    ),
                    Err(e) => {
                        had_errors = true;
                        trace::event("client.sync.failed", &[("error", &e.to_string())]);
                        eprintln!(
                            "hot sync failed ({e}); {} results spooled locally",
                            client.unsynced()
                        );
                    }
                }
            }
            let Some(tc) = client.choose_testcase() else {
                continue;
            };
            let task = *rng.choose(&Task::ALL);
            let rec = client.perform_run(user, task, &tc, Fidelity::Fast, rng.next_u64());
            eprintln!(
                "run {k}: {} under {} -> {} at {:.0}s",
                rec.testcase,
                rec.task,
                rec.outcome.token(),
                rec.offset_secs
            );
        }
        match client.hot_sync(&mut transport) {
            Ok(r) => eprintln!("final sync: {} results uploaded", r.uploaded),
            Err(e) => {
                had_errors = true;
                trace::event("client.sync.failed", &[("error", &e.to_string())]);
                eprintln!(
                    "final sync failed ({e}); {} results spooled for the next session",
                    client.unsynced()
                );
            }
        }
    }
    if let Some(store) = &store {
        if let Err(e) = client.persist(store) {
            eprintln!("warning: could not persist session state: {e}");
        }
    }
    if had_errors && !no_store {
        // Post-mortem artifact: the last telemetry events (what failed,
        // with what error, in what order) next to the spooled records.
        match flight::dump_global_to_dir(&store_dir) {
            Ok(path) => eprintln!("flight recorder dumped to {}", path.display()),
            Err(e) => eprintln!("warning: could not dump flight recorder: {e}"),
        }
    }
    transport.bye();
}
