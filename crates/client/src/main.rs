//! The `uucs-client` daemon: registers with a server, hot-syncs a
//! growing random sample of testcases, executes them at Poisson arrivals
//! with a synthetic user in the loop, and uploads the results — an
//! Internet-study participant in a box.
//!
//! ```text
//! uucs-client --server 127.0.0.1:4004 [--store DIR] [--runs N]
//!             [--mean-gap SECS] [--seed N] [--script FILE]
//! ```
//!
//! With `--script`, runs in deterministic mode instead: executes the
//! command file (the controlled study's mode) and exits.

use std::path::PathBuf;
use uucs_client::{ClientStore, Script, TcpTransport, UucsClient};
use uucs_comfort::{Fidelity, UserPopulation};
use uucs_protocol::MachineSnapshot;
use uucs_stats::Pcg64;
use uucs_workloads::Task;

fn main() {
    let mut server = "127.0.0.1:4004".to_string();
    let mut store_dir = PathBuf::from("uucs-client-data");
    let mut runs = 10usize;
    let mut mean_gap = 2.0f64; // seconds between runs in daemon demo mode
    let mut seed = 1u64;
    let mut script: Option<PathBuf> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--server" => {
                i += 1;
                server = args.get(i).cloned().unwrap_or(server);
            }
            "--store" => {
                i += 1;
                store_dir = args.get(i).map(PathBuf::from).unwrap_or(store_dir);
            }
            "--runs" => {
                i += 1;
                runs = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(runs);
            }
            "--mean-gap" => {
                i += 1;
                mean_gap = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(mean_gap);
            }
            "--seed" => {
                i += 1;
                seed = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(seed);
            }
            "--script" => {
                i += 1;
                script = args.get(i).map(PathBuf::from);
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let store = ClientStore::open(&store_dir).expect("open client store");
    let mut client = UucsClient::new(
        MachineSnapshot::study_machine(format!("daemon-{seed}")),
        seed,
    );
    client.restore(&store).expect("restore state");
    let mut transport = TcpTransport::connect(&server).unwrap_or_else(|e| {
        eprintln!("cannot connect to {server}: {e}");
        std::process::exit(1);
    });
    let id = client.register(&mut transport).expect("register");
    eprintln!("registered as {id}");

    // The synthetic user at this machine.
    let population = UserPopulation::generate(1, seed ^ 0xface);
    let user = &population.users()[0];
    let mut rng = Pcg64::new(seed).split_str("daemon");

    if let Some(path) = script {
        let text = std::fs::read_to_string(&path).expect("read script");
        let script = Script::parse(&text).unwrap_or_else(|e| {
            eprintln!("bad script: {e}");
            std::process::exit(2);
        });
        // Deterministic mode needs a local testcase file; hot-sync first
        // so the store holds something, then run.
        client.hot_sync(&mut transport).expect("sync");
        let n = client
            .execute_script(&script, user, Fidelity::Fast, &mut transport, seed)
            .expect("script session");
        eprintln!("deterministic session complete: {n} runs");
    } else {
        client.hot_sync(&mut transport).expect("sync");
        eprintln!("synced {} testcases", client.testcases().len());
        for k in 0..runs {
            let gap = client.next_arrival_gap(mean_gap);
            std::thread::sleep(std::time::Duration::from_secs_f64(gap.min(10.0)));
            if k % 5 == 4 {
                let r = client.hot_sync(&mut transport).expect("sync");
                eprintln!("hot sync: +{} testcases, {} results uploaded", r.downloaded, r.uploaded);
            }
            let Some(tc) = client.choose_testcase() else {
                continue;
            };
            let task = *rng.choose(&Task::ALL);
            let rec = client.perform_run(user, task, &tc, Fidelity::Fast, rng.next_u64());
            eprintln!(
                "run {k}: {} under {} -> {} at {:.0}s",
                rec.testcase,
                rec.task,
                rec.outcome.token(),
                rec.offset_secs
            );
        }
        let r = client.hot_sync(&mut transport).expect("final sync");
        eprintln!("final sync: {} results uploaded", r.uploaded);
    }
    client.persist(&store).expect("persist");
    transport.bye().ok();
}
