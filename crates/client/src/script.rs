//! Deterministic mode: "A UUCS client can also be configured to behave
//! deterministically, executing a predefined set of commands from a
//! local file. We use this feature in our controlled study." (§2)
//!
//! The command file is line-oriented:
//!
//! ```text
//! # word session for subject u07
//! RUN word-cpu-ramp Word
//! RUN word-blank-1 Word
//! WAIT 5
//! SYNC
//! ```

use std::fmt;
use std::str::FromStr;
use uucs_workloads::Task;

/// One scripted command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Execute a testcase (by id) under a foreground task.
    Run {
        /// Testcase id in the client's local store.
        testcase: String,
        /// The foreground task context.
        task: Task,
    },
    /// Hot sync with the server.
    Sync,
    /// Idle for the given seconds (between-testcase pauses).
    Wait(f64),
}

/// A parsed command file.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Script {
    /// The commands in order.
    pub commands: Vec<Command>,
}

impl Script {
    /// Parses a command file.
    pub fn parse(text: &str) -> Result<Script, String> {
        let mut commands = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut toks = line.split_whitespace();
            match toks.next() {
                Some("RUN") => {
                    let testcase = toks
                        .next()
                        .ok_or_else(|| format!("line {}: RUN missing testcase", i + 1))?
                        .to_string();
                    let task_tok = toks
                        .next()
                        .ok_or_else(|| format!("line {}: RUN missing task", i + 1))?;
                    let task = Task::from_str(task_tok)
                        .map_err(|e| format!("line {}: {e}", i + 1))?;
                    commands.push(Command::Run { testcase, task });
                }
                Some("SYNC") => commands.push(Command::Sync),
                Some("WAIT") => {
                    let secs: f64 = toks
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| format!("line {}: WAIT needs seconds", i + 1))?;
                    commands.push(Command::Wait(secs));
                }
                Some(other) => return Err(format!("line {}: unknown command {other:?}", i + 1)),
                None => unreachable!(),
            }
        }
        Ok(Script { commands })
    }

    /// Serializes back to the file format.
    pub fn emit(&self) -> String {
        use fmt::Write;
        let mut out = String::new();
        for c in &self.commands {
            match c {
                Command::Run { testcase, task } => writeln!(out, "RUN {testcase} {task}").unwrap(),
                Command::Sync => writeln!(out, "SYNC").unwrap(),
                Command::Wait(s) => writeln!(out, "WAIT {s}").unwrap(),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_emit_roundtrip() {
        let text = "RUN word-cpu-ramp Word\nWAIT 5\nSYNC\nRUN quake-blank-1 Quake\n";
        let script = Script::parse(text).unwrap();
        assert_eq!(script.commands.len(), 4);
        assert_eq!(Script::parse(&script.emit()).unwrap(), script);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "# session file\n\nRUN t1 IE # trailing comment\n";
        let script = Script::parse(text).unwrap();
        assert_eq!(
            script.commands,
            vec![Command::Run {
                testcase: "t1".into(),
                task: Task::Ie
            }]
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        assert!(Script::parse("FLY\n").unwrap_err().contains("line 1"));
        assert!(Script::parse("RUN only-id\n").unwrap_err().contains("missing task"));
        assert!(Script::parse("RUN x NotATask\n").unwrap_err().contains("line 1"));
        assert!(Script::parse("WAIT soon\n").unwrap_err().contains("WAIT"));
    }
}
