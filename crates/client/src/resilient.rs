//! A fault-tolerant [`ClientTransport`]: per-exchange deadlines, bounded
//! retries with deterministic exponential backoff, and automatic
//! reconnection.
//!
//! The plain [`TcpTransport`](crate::transport::TcpTransport) blocks
//! forever on a black-holed server and dies on the first torn
//! connection. [`ResilientTransport`] wraps the same wire protocol in a
//! retry loop: every exchange gets a read/write deadline, a failed
//! exchange drops the connection and reconnects after a backoff delay,
//! and after a bounded number of attempts the error surfaces to the
//! caller — who keeps the records spooled locally and tries again at the
//! next sync ("the client can operate disconnected from the server").
//!
//! Retrying an exchange is safe because every message in the protocol is
//! idempotent from the server's point of view: `SYNC` is a read,
//! `UPLOAD` carries a per-client batch sequence number the server
//! deduplicates on, and a re-`REGISTER` merely burns an id. The backoff
//! schedule is a pure function of the policy (including its jitter
//! seed), so tests replay identical timing decisions.
//!
//! Only *transient* failures are retried (timeouts, refused dials,
//! resets, torn frames). A peer that speaks an unknown protocol
//! ([`std::io::ErrorKind::Unsupported`]) or emits unparseable bytes
//! (`InvalidData`) fails the exchange immediately: it would answer
//! every retry the same way, and the caller's offline spool is the
//! right fallback.

use crate::transport::{ClientTransport, TcpTransport};
use std::io;
use std::sync::OnceLock;
use std::time::Duration;
use uucs_protocol::{ClientMsg, ServerMsg, WIRE_VERSION_BINARY, WIRE_VERSION_TEXT};
use uucs_stats::Pcg64;
use uucs_telemetry::{metrics, Counter, Gauge};
use uucs_wire::conn::{negotiate, Negotiated};
use uucs_wire::{BinaryConn, WireMode};

/// Pre-registered transport telemetry (`client.transport.*`): one
/// registry lookup per process, a few atomic ops per exchange.
struct TransportMetrics {
    attempts: Counter,
    retries: Counter,
    backoff_ns: Counter,
    timeouts: Counter,
    exchanges_ok: Counter,
    failures: Counter,
    failovers: Counter,
    /// The wire version the current connection negotiated (1 = text,
    /// 2 = binary, 0 = no connection yet).
    negotiated: Gauge,
}

fn transport_metrics() -> &'static TransportMetrics {
    static METRICS: OnceLock<TransportMetrics> = OnceLock::new();
    METRICS.get_or_init(|| TransportMetrics {
        attempts: metrics::counter("client.transport.attempts"),
        retries: metrics::counter("client.transport.retries"),
        backoff_ns: metrics::counter("client.transport.backoff_ns"),
        timeouts: metrics::counter("client.transport.timeouts"),
        exchanges_ok: metrics::counter("client.transport.exchanges_ok"),
        failures: metrics::counter("client.transport.failures"),
        failovers: metrics::counter("client.failover.count"),
        negotiated: metrics::gauge("client.wire.negotiated"),
    })
}

/// One live connection, in whichever framing negotiation settled on.
enum WireConn {
    /// Wire v1: the text line protocol, byte-identical to a legacy
    /// client (and the only framing a [`WireMode::Text`] transport
    /// ever speaks — no `HELLO` is sent at all).
    Text(TcpTransport),
    /// Wire v2: negotiated binary framing.
    Binary(BinaryConn),
}

impl WireConn {
    fn exchange(&mut self, msg: &ClientMsg) -> io::Result<ServerMsg> {
        match self {
            WireConn::Text(t) => t.exchange(msg),
            WireConn::Binary(b) => b.exchange(msg),
        }
    }
}

/// What a failed exchange attempt means for the retry loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureClass {
    /// The peer would answer every retry identically (unknown protocol,
    /// unparseable bytes): surface the error now.
    Permanent,
    /// Nobody is home at *this* address — the OS refused the dial
    /// without waiting. With a server list, the next address deserves
    /// an immediate try: a refused dial costs milliseconds, unlike a
    /// timeout, so backing off before pivoting just delays failover.
    FastFailover,
    /// A transient fault where the server may yet answer (timeout,
    /// reset, torn frame): back off, then retry.
    Backoff,
}

/// The retry classification table. Pure, total, and unit-tested — the
/// one place deciding which failures burn backoff time, which pivot to
/// the next server immediately, and which give up.
pub fn classify(kind: io::ErrorKind) -> FailureClass {
    match kind {
        io::ErrorKind::Unsupported | io::ErrorKind::InvalidData => FailureClass::Permanent,
        io::ErrorKind::ConnectionRefused => FailureClass::FastFailover,
        _ => FailureClass::Backoff,
    }
}

/// Bounded-retry schedule: exponential backoff with multiplicative
/// jitter, deterministic under a fixed seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total exchange attempts before giving up (>= 1).
    pub max_attempts: u32,
    /// Delay before the second attempt; doubles per attempt after that.
    pub base: Duration,
    /// Ceiling on any single delay.
    pub cap: Duration,
    /// Jitter seed; the same seed always yields the same schedule.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base: Duration::from_millis(50),
            cap: Duration::from_secs(2),
            seed: 0x7e57,
        }
    }
}

impl RetryPolicy {
    /// The full backoff schedule: `max_attempts - 1` delays, where delay
    /// `i` is `min(cap, base << i)` scaled by a jitter factor in
    /// `[0.5, 1.0)` drawn from the seeded generator. Pure — two calls
    /// return identical schedules.
    pub fn delays(&self) -> Vec<Duration> {
        let mut rng = Pcg64::new(self.seed).split_str("backoff");
        (0..self.max_attempts.saturating_sub(1))
            .map(|i| {
                let exp = self
                    .base
                    .saturating_mul(1u32.checked_shl(i).unwrap_or(u32::MAX))
                    .min(self.cap);
                let jitter = rng.uniform(0.5, 1.0);
                Duration::from_secs_f64(exp.as_secs_f64() * jitter)
            })
            .collect()
    }
}

/// How long a `ResilientTransport` waits for connect, read, and write.
const DEFAULT_TIMEOUT: Duration = Duration::from_secs(10);

/// A reconnecting TCP transport with deadlines, bounded retries, and
/// multi-address failover: give it every node of a replicated server
/// tier and it pivots to the next address when the current one refuses
/// the dial or answers "not leader".
pub struct ResilientTransport {
    addrs: Vec<String>,
    current: usize,
    /// Index of the address the last successful exchange used; a
    /// success elsewhere counts one failover.
    last_good: Option<usize>,
    timeout: Duration,
    policy: RetryPolicy,
    wire: WireMode,
    conn: Option<WireConn>,
    sleeper: Box<dyn FnMut(Duration) + Send>,
}

impl ResilientTransport {
    /// Creates a transport for `addr` with the default deadline and
    /// retry policy. Does not connect — the first exchange does.
    pub fn new(addr: impl Into<String>) -> Self {
        Self::multi(vec![addr.into()])
    }

    /// Creates a transport over a server list (at least one address).
    /// Exchanges start at the first address and fail over in list order,
    /// wrapping around.
    pub fn multi(addrs: Vec<String>) -> Self {
        assert!(!addrs.is_empty(), "at least one server address required");
        ResilientTransport {
            addrs,
            current: 0,
            last_good: None,
            timeout: DEFAULT_TIMEOUT,
            policy: RetryPolicy::default(),
            wire: WireMode::default(),
            conn: None,
            sleeper: Box::new(std::thread::sleep),
        }
    }

    /// The address the next exchange will dial.
    pub fn current_addr(&self) -> &str {
        &self.addrs[self.current]
    }

    /// Drops the connection and advances to the next address in the
    /// list (a no-op rotation with a single address).
    fn rotate(&mut self) {
        self.conn = None;
        self.current = (self.current + 1) % self.addrs.len();
    }

    /// Replaces the retry policy.
    pub fn with_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Replaces the per-exchange connect/read/write deadline.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Selects the wire framing. [`WireMode::Text`] (the default) never
    /// sends `HELLO` and stays byte-identical to a legacy client;
    /// [`WireMode::Auto`] negotiates per fresh connection — so a
    /// failover to a legacy server renegotiates and degrades to text,
    /// and a failover back upgrades again; [`WireMode::Binary`] fails
    /// the exchange (permanently, no retries) when the server cannot
    /// speak binary.
    pub fn with_wire_mode(mut self, wire: WireMode) -> Self {
        self.wire = wire;
        self
    }

    /// The framing the current connection speaks, if connected.
    pub fn negotiated_wire(&self) -> Option<u32> {
        self.conn.as_ref().map(|c| match c {
            WireConn::Text(_) => WIRE_VERSION_TEXT,
            WireConn::Binary(_) => WIRE_VERSION_BINARY,
        })
    }

    /// Replaces the sleep function used between attempts (tests inject a
    /// recorder to assert the schedule without waiting it out).
    pub fn with_sleeper(mut self, sleeper: Box<dyn FnMut(Duration) + Send>) -> Self {
        self.sleeper = sleeper;
        self
    }

    /// Whether a live connection is currently held.
    pub fn is_connected(&self) -> bool {
        self.conn.is_some()
    }

    /// Ends the session politely if a connection is up.
    pub fn bye(&mut self) {
        match self.conn.take() {
            Some(WireConn::Text(mut t)) => {
                let _ = t.bye();
            }
            Some(WireConn::Binary(b)) => b.bye(),
            None => {}
        }
        transport_metrics().negotiated.set(0);
    }

    fn ensure_connected(&mut self) -> io::Result<&mut WireConn> {
        if self.conn.is_none() {
            let text = TcpTransport::connect_with_deadline(&self.addrs[self.current], self.timeout)?;
            let conn = match self.wire {
                // Text mode sends no HELLO: the byte stream is exactly
                // what a pre-negotiation client produced.
                WireMode::Text => WireConn::Text(text),
                WireMode::Binary | WireMode::Auto => {
                    // Negotiation runs per fresh connection, so each
                    // address in the failover list gets its own verdict.
                    let (mut writer, mut reader) = text.into_parts();
                    match negotiate(&mut writer, &mut reader, WIRE_VERSION_BINARY)? {
                        Negotiated::Version(v) if v >= WIRE_VERSION_BINARY => {
                            WireConn::Binary(BinaryConn::new(writer, reader))
                        }
                        // The server spoke HELLO but settled on text, or
                        // is a legacy server that answered ERROR.
                        Negotiated::Version(_) | Negotiated::LegacyText => {
                            if self.wire == WireMode::Binary {
                                // Forced binary: classified Permanent
                                // (InvalidData), so the retry loop
                                // surfaces it instead of burning backoff
                                // against a server that cannot comply.
                                return Err(io::Error::new(
                                    io::ErrorKind::InvalidData,
                                    format!(
                                        "server {} cannot speak the binary wire (--wire binary)",
                                        self.addrs[self.current]
                                    ),
                                ));
                            }
                            WireConn::Text(TcpTransport::from_parts(writer, reader))
                        }
                    }
                }
            };
            transport_metrics().negotiated.set(match conn {
                WireConn::Text(_) => WIRE_VERSION_TEXT as i64,
                WireConn::Binary(_) => WIRE_VERSION_BINARY as i64,
            });
            self.conn = Some(conn);
        }
        Ok(self.conn.as_mut().expect("just connected"))
    }
}

/// A server-side refusal that means "this node is a follower" — the
/// reply every read-only cluster node gives mutating verbs. Worth a
/// pivot, not a backoff: some other node in the list leads.
fn is_not_leader(reply: &ServerMsg) -> bool {
    matches!(reply, ServerMsg::Error(msg) if msg.starts_with("not leader"))
}

impl ClientTransport for ResilientTransport {
    /// Sends `msg`, reconnecting, failing over, and retrying per the
    /// policy. Failures route through the [`classify`] table: permanent
    /// ones surface immediately, refused dials (and "not leader"
    /// refusals) pivot to the next address without burning backoff
    /// time — bounded to one lap of the list per attempt — and
    /// everything else sleeps the (deterministic) backoff delay, also
    /// rotating so the retry lands on a different server when there is
    /// one. The last error surfaces after `max_attempts` failures.
    fn exchange(&mut self, msg: &ClientMsg) -> io::Result<ServerMsg> {
        let tm = transport_metrics();
        let delays = self.policy.delays();
        let mut last_err: Option<io::Error> = None;
        let mut attempt = 0u32;
        // Fast pivots taken since the last backoff-class failure; one
        // full lap of dead addresses forfeits the fast path (otherwise
        // a fully-down cluster would spin instead of backing off).
        let mut fast_hops = 0usize;
        while attempt < self.policy.max_attempts.max(1) {
            if attempt > 0 && fast_hops == 0 {
                let delay = delays
                    .get(attempt as usize - 1)
                    .copied()
                    .unwrap_or(self.policy.cap);
                tm.retries.inc();
                tm.backoff_ns.add(delay.as_nanos() as u64);
                (self.sleeper)(delay);
            }
            tm.attempts.inc();
            let result = self
                .ensure_connected()
                .and_then(|conn| conn.exchange(msg));
            match result {
                Ok(reply) => {
                    if is_not_leader(&reply) && fast_hops + 1 < self.addrs.len() {
                        // A healthy follower answered: the leader is
                        // some other list entry. Pivot like a refused
                        // dial — this costs one round trip, not a
                        // backoff window.
                        fast_hops += 1;
                        self.rotate();
                        continue;
                    }
                    tm.exchanges_ok.inc();
                    if self.last_good.is_some_and(|i| i != self.current) {
                        tm.failovers.inc();
                    }
                    self.last_good = Some(self.current);
                    return Ok(reply);
                }
                Err(e) => {
                    if matches!(e.kind(), io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock) {
                        tm.timeouts.inc();
                    }
                    // Connection state is unknown (torn write, half a
                    // reply, a timeout mid-frame): drop it and reconnect
                    // on the next attempt.
                    self.conn = None;
                    match classify(e.kind()) {
                        // A peer that speaks an unknown protocol
                        // (`Unsupported`) or emits bytes that cannot
                        // parse (`InvalidData`) will say the same thing
                        // after every backoff — burning the whole
                        // schedule per message just delays the caller's
                        // fallback to the offline spool.
                        FailureClass::Permanent => {
                            tm.failures.inc();
                            return Err(e);
                        }
                        FailureClass::FastFailover if fast_hops + 1 < self.addrs.len() => {
                            fast_hops += 1;
                            self.rotate();
                            last_err = Some(e);
                            continue;
                        }
                        // Timeouts, resets, torn frames (`UnexpectedEof`)
                        // — and refused dials once the whole list
                        // refused: back off, then try the next address.
                        FailureClass::FastFailover | FailureClass::Backoff => {
                            fast_hops = 0;
                            self.rotate();
                            last_err = Some(e);
                            attempt += 1;
                        }
                    }
                }
            }
        }
        tm.failures.inc();
        Err(last_err
            .unwrap_or_else(|| io::Error::other("retry policy allows zero attempts")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    #[test]
    fn backoff_schedule_is_deterministic_and_bounded() {
        let policy = RetryPolicy {
            max_attempts: 6,
            base: Duration::from_millis(100),
            cap: Duration::from_millis(400),
            seed: 99,
        };
        let a = policy.delays();
        let b = policy.delays();
        assert_eq!(a, b, "same seed must give the same schedule");
        assert_eq!(a.len(), 5);
        for (i, d) in a.iter().enumerate() {
            let exp = Duration::from_millis(100)
                .saturating_mul(1 << i)
                .min(Duration::from_millis(400));
            assert!(*d >= exp / 2, "delay {i} below jitter floor: {d:?}");
            assert!(*d <= exp, "delay {i} above cap: {d:?}");
        }
        // A different seed jitters differently.
        let other = RetryPolicy { seed: 100, ..policy }.delays();
        assert_ne!(a, other);
    }

    #[test]
    fn dead_server_fails_after_bounded_attempts() {
        // Bind-then-drop yields an address nothing listens on.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let slept: Arc<Mutex<Vec<Duration>>> = Arc::new(Mutex::new(Vec::new()));
        let rec = slept.clone();
        let policy = RetryPolicy {
            max_attempts: 3,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(20),
            seed: 7,
        };
        let expected = policy.delays();
        let mut t = ResilientTransport::new(addr.to_string())
            .with_timeout(Duration::from_millis(200))
            .with_policy(policy)
            .with_sleeper(Box::new(move |d| rec.lock().unwrap().push(d)));
        let err = t.exchange(&ClientMsg::Bye).unwrap_err();
        assert!(!t.is_connected());
        // Exactly max_attempts - 1 sleeps, following the pure schedule.
        assert_eq!(*slept.lock().unwrap(), expected);
        // And the failure is a refused dial, not a silent hang.
        assert!(
            matches!(
                err.kind(),
                io::ErrorKind::ConnectionRefused | io::ErrorKind::TimedOut
            ),
            "unexpected error: {err}"
        );
    }

    /// A protocol-mismatched peer is a *permanent* failure: the error
    /// must surface on the first attempt, not after burning the whole
    /// backoff schedule against a server that will answer the same way
    /// every time.
    #[test]
    fn protocol_mismatch_fails_without_retries() {
        use std::io::Write;

        // A "server" from another planet: answers every connection with
        // an unknown tag, which the wire reader reports as Unsupported.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let h = std::thread::spawn(move || {
            // One connection is all a non-retrying transport makes; a
            // regression that retries would find the listener gone and
            // surface ConnectionRefused instead of Unsupported, failing
            // the kind assertion below.
            if let Ok((mut stream, _)) = listener.accept() {
                let _ = stream.write_all(b"WARP speed 9\n");
            }
        });
        let slept: Arc<Mutex<Vec<Duration>>> = Arc::new(Mutex::new(Vec::new()));
        let rec = slept.clone();
        let mut t = ResilientTransport::new(addr.to_string())
            .with_timeout(Duration::from_millis(500))
            .with_policy(RetryPolicy {
                max_attempts: 5,
                base: Duration::from_millis(10),
                cap: Duration::from_millis(20),
                seed: 11,
            })
            .with_sleeper(Box::new(move |d| rec.lock().unwrap().push(d)));
        let err = t.exchange(&ClientMsg::Bye).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Unsupported, "{err}");
        assert!(
            slept.lock().unwrap().is_empty(),
            "permanent failure was retried: {:?}",
            slept.lock().unwrap()
        );
        assert!(!t.is_connected());
        drop(t);
        h.join().unwrap();
    }

    #[test]
    fn reconnects_after_server_restarts() {
        use std::io::BufReader;
        use uucs_protocol::wire::{read_client_msg, write_server_msg};

        // A single-shot server: answers one exchange then slams the door.
        fn one_shot(listener: std::net::TcpListener) -> std::thread::JoinHandle<()> {
            std::thread::spawn(move || {
                let (stream, _) = listener.accept().unwrap();
                let mut writer = stream.try_clone().unwrap();
                let mut reader = BufReader::new(stream);
                if read_client_msg(&mut reader).unwrap().is_some() {
                    write_server_msg(&mut writer, &ServerMsg::Ack(1)).unwrap();
                }
                // Dropping both halves resets the connection.
            })
        }

        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let h1 = one_shot(listener);
        let mut t = ResilientTransport::new(addr.to_string())
            .with_timeout(Duration::from_millis(500))
            .with_policy(RetryPolicy {
                max_attempts: 5,
                base: Duration::from_millis(1),
                cap: Duration::from_millis(5),
                seed: 3,
            });
        let msg = ClientMsg::Sync {
            client: "c".into(),
            have: 0,
            want: 1,
        };
        assert_eq!(t.exchange(&msg).unwrap(), ServerMsg::Ack(1));
        h1.join().unwrap();

        // The first server is gone; a second generation binds the same
        // port is racy, so re-bind a fresh listener and retarget — the
        // point is the dropped connection is detected and re-dialed.
        let listener2 = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr2 = listener2.local_addr().unwrap();
        let h2 = one_shot(listener2);
        t.addrs = vec![addr2.to_string()];
        t.current = 0;
        assert_eq!(t.exchange(&msg).unwrap(), ServerMsg::Ack(1));
        h2.join().unwrap();
    }

    /// The classification table, pinned: exactly which error kinds are
    /// permanent, which pivot to the next address without backoff, and
    /// which sleep. A regression here silently changes failover latency
    /// across the whole fleet.
    #[test]
    fn failure_classification_table() {
        use io::ErrorKind::*;
        for (kind, want) in [
            (Unsupported, FailureClass::Permanent),
            (InvalidData, FailureClass::Permanent),
            (ConnectionRefused, FailureClass::FastFailover),
            (TimedOut, FailureClass::Backoff),
            (WouldBlock, FailureClass::Backoff),
            (ConnectionReset, FailureClass::Backoff),
            (ConnectionAborted, FailureClass::Backoff),
            (UnexpectedEof, FailureClass::Backoff),
            (BrokenPipe, FailureClass::Backoff),
            (NotConnected, FailureClass::Backoff),
            (AddrNotAvailable, FailureClass::Backoff),
            (Other, FailureClass::Backoff),
        ] {
            assert_eq!(classify(kind), want, "{kind:?}");
        }
    }

    /// A refused dial on the first address must reach the second
    /// address *without* sleeping: fast failover is the difference
    /// between a sub-millisecond pivot and a multi-second backoff lap
    /// while a perfectly healthy replica sits in the list.
    #[test]
    fn connection_refused_fails_over_without_backoff() {
        use std::io::BufReader;
        use uucs_protocol::wire::{read_client_msg, write_server_msg};

        // A dead first address and a live second one.
        let dead = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let live = listener.local_addr().unwrap();
        let h = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut writer = stream.try_clone().unwrap();
            let mut reader = BufReader::new(stream);
            if read_client_msg(&mut reader).unwrap().is_some() {
                write_server_msg(&mut writer, &ServerMsg::Ack(7)).unwrap();
            }
        });
        let slept: Arc<Mutex<Vec<Duration>>> = Arc::new(Mutex::new(Vec::new()));
        let rec = slept.clone();
        let mut t = ResilientTransport::multi(vec![dead.to_string(), live.to_string()])
            .with_timeout(Duration::from_millis(500))
            .with_sleeper(Box::new(move |d| rec.lock().unwrap().push(d)));
        let msg = ClientMsg::Sync {
            client: "c".into(),
            have: 0,
            want: 1,
        };
        assert_eq!(t.exchange(&msg).unwrap(), ServerMsg::Ack(7));
        assert!(
            slept.lock().unwrap().is_empty(),
            "fast failover must not sleep: {:?}",
            slept.lock().unwrap()
        );
        assert_eq!(t.current_addr(), live.to_string());
        h.join().unwrap();
    }

    /// With every address refusing, the transport must not spin on the
    /// fast path forever: one lap of the list forfeits it, and the
    /// bounded backoff schedule runs as in the single-address case.
    #[test]
    fn all_addresses_dead_still_fails_in_bounded_time() {
        let dead = |_: ()| {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let slept: Arc<Mutex<Vec<Duration>>> = Arc::new(Mutex::new(Vec::new()));
        let rec = slept.clone();
        let policy = RetryPolicy {
            max_attempts: 3,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(20),
            seed: 7,
        };
        let expected = policy.delays();
        let mut t = ResilientTransport::multi(vec![dead(()), dead(())])
            .with_timeout(Duration::from_millis(200))
            .with_policy(policy)
            .with_sleeper(Box::new(move |d| rec.lock().unwrap().push(d)));
        let err = t.exchange(&ClientMsg::Bye).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused, "{err}");
        assert_eq!(
            *slept.lock().unwrap(),
            expected,
            "backoff schedule must still bound a fully-dead list"
        );
    }
}
