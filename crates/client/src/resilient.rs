//! A fault-tolerant [`ClientTransport`]: per-exchange deadlines, bounded
//! retries with deterministic exponential backoff, and automatic
//! reconnection.
//!
//! The plain [`TcpTransport`](crate::transport::TcpTransport) blocks
//! forever on a black-holed server and dies on the first torn
//! connection. [`ResilientTransport`] wraps the same wire protocol in a
//! retry loop: every exchange gets a read/write deadline, a failed
//! exchange drops the connection and reconnects after a backoff delay,
//! and after a bounded number of attempts the error surfaces to the
//! caller — who keeps the records spooled locally and tries again at the
//! next sync ("the client can operate disconnected from the server").
//!
//! Retrying an exchange is safe because every message in the protocol is
//! idempotent from the server's point of view: `SYNC` is a read,
//! `UPLOAD` carries a per-client batch sequence number the server
//! deduplicates on, and a re-`REGISTER` merely burns an id. The backoff
//! schedule is a pure function of the policy (including its jitter
//! seed), so tests replay identical timing decisions.
//!
//! Only *transient* failures are retried (timeouts, refused dials,
//! resets, torn frames). A peer that speaks an unknown protocol
//! ([`std::io::ErrorKind::Unsupported`]) or emits unparseable bytes
//! (`InvalidData`) fails the exchange immediately: it would answer
//! every retry the same way, and the caller's offline spool is the
//! right fallback.

use crate::transport::{ClientTransport, TcpTransport};
use std::io;
use std::sync::OnceLock;
use std::time::Duration;
use uucs_protocol::{ClientMsg, ServerMsg};
use uucs_stats::Pcg64;
use uucs_telemetry::{metrics, Counter};

/// Pre-registered transport telemetry (`client.transport.*`): one
/// registry lookup per process, a few atomic ops per exchange.
struct TransportMetrics {
    attempts: Counter,
    retries: Counter,
    backoff_ns: Counter,
    timeouts: Counter,
    exchanges_ok: Counter,
    failures: Counter,
}

fn transport_metrics() -> &'static TransportMetrics {
    static METRICS: OnceLock<TransportMetrics> = OnceLock::new();
    METRICS.get_or_init(|| TransportMetrics {
        attempts: metrics::counter("client.transport.attempts"),
        retries: metrics::counter("client.transport.retries"),
        backoff_ns: metrics::counter("client.transport.backoff_ns"),
        timeouts: metrics::counter("client.transport.timeouts"),
        exchanges_ok: metrics::counter("client.transport.exchanges_ok"),
        failures: metrics::counter("client.transport.failures"),
    })
}

/// Bounded-retry schedule: exponential backoff with multiplicative
/// jitter, deterministic under a fixed seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total exchange attempts before giving up (>= 1).
    pub max_attempts: u32,
    /// Delay before the second attempt; doubles per attempt after that.
    pub base: Duration,
    /// Ceiling on any single delay.
    pub cap: Duration,
    /// Jitter seed; the same seed always yields the same schedule.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base: Duration::from_millis(50),
            cap: Duration::from_secs(2),
            seed: 0x7e57,
        }
    }
}

impl RetryPolicy {
    /// The full backoff schedule: `max_attempts - 1` delays, where delay
    /// `i` is `min(cap, base << i)` scaled by a jitter factor in
    /// `[0.5, 1.0)` drawn from the seeded generator. Pure — two calls
    /// return identical schedules.
    pub fn delays(&self) -> Vec<Duration> {
        let mut rng = Pcg64::new(self.seed).split_str("backoff");
        (0..self.max_attempts.saturating_sub(1))
            .map(|i| {
                let exp = self
                    .base
                    .saturating_mul(1u32.checked_shl(i).unwrap_or(u32::MAX))
                    .min(self.cap);
                let jitter = rng.uniform(0.5, 1.0);
                Duration::from_secs_f64(exp.as_secs_f64() * jitter)
            })
            .collect()
    }
}

/// How long a `ResilientTransport` waits for connect, read, and write.
const DEFAULT_TIMEOUT: Duration = Duration::from_secs(10);

/// A reconnecting TCP transport with deadlines and bounded retries.
pub struct ResilientTransport {
    addr: String,
    timeout: Duration,
    policy: RetryPolicy,
    conn: Option<TcpTransport>,
    sleeper: Box<dyn FnMut(Duration) + Send>,
}

impl ResilientTransport {
    /// Creates a transport for `addr` with the default deadline and
    /// retry policy. Does not connect — the first exchange does.
    pub fn new(addr: impl Into<String>) -> Self {
        ResilientTransport {
            addr: addr.into(),
            timeout: DEFAULT_TIMEOUT,
            policy: RetryPolicy::default(),
            conn: None,
            sleeper: Box::new(std::thread::sleep),
        }
    }

    /// Replaces the retry policy.
    pub fn with_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Replaces the per-exchange connect/read/write deadline.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Replaces the sleep function used between attempts (tests inject a
    /// recorder to assert the schedule without waiting it out).
    pub fn with_sleeper(mut self, sleeper: Box<dyn FnMut(Duration) + Send>) -> Self {
        self.sleeper = sleeper;
        self
    }

    /// Whether a live connection is currently held.
    pub fn is_connected(&self) -> bool {
        self.conn.is_some()
    }

    /// Ends the session politely if a connection is up.
    pub fn bye(&mut self) {
        if let Some(conn) = &mut self.conn {
            let _ = conn.bye();
        }
        self.conn = None;
    }

    fn ensure_connected(&mut self) -> io::Result<&mut TcpTransport> {
        if self.conn.is_none() {
            self.conn = Some(TcpTransport::connect_with_deadline(
                &self.addr,
                self.timeout,
            )?);
        }
        Ok(self.conn.as_mut().expect("just connected"))
    }
}

impl ClientTransport for ResilientTransport {
    /// Sends `msg`, reconnecting and retrying per the policy. Each
    /// attempt is bounded by the deadline; between attempts the transport
    /// sleeps the (deterministic) backoff delay. The last error surfaces
    /// after `max_attempts` failures.
    fn exchange(&mut self, msg: &ClientMsg) -> io::Result<ServerMsg> {
        let tm = transport_metrics();
        let delays = self.policy.delays();
        let mut last_err: Option<io::Error> = None;
        for attempt in 0..self.policy.max_attempts.max(1) {
            if attempt > 0 {
                let delay = delays
                    .get(attempt as usize - 1)
                    .copied()
                    .unwrap_or(self.policy.cap);
                tm.retries.inc();
                tm.backoff_ns.add(delay.as_nanos() as u64);
                (self.sleeper)(delay);
            }
            tm.attempts.inc();
            let result = self
                .ensure_connected()
                .and_then(|conn| conn.exchange(msg));
            match result {
                Ok(reply) => {
                    tm.exchanges_ok.inc();
                    return Ok(reply);
                }
                Err(e) => {
                    if matches!(e.kind(), io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock) {
                        tm.timeouts.inc();
                    }
                    // Connection state is unknown (torn write, half a
                    // reply, a timeout mid-frame): drop it and reconnect
                    // on the next attempt.
                    self.conn = None;
                    // Permanent failures don't earn a retry: a peer that
                    // speaks an unknown protocol (`Unsupported`) or
                    // emits bytes that cannot parse (`InvalidData`)
                    // will say the same thing after every backoff —
                    // burning the whole schedule per message just delays
                    // the caller's fallback to the offline spool.
                    // (Timeouts, refused dials, resets, and torn frames
                    // — `UnexpectedEof` — all stay retryable.)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::Unsupported | io::ErrorKind::InvalidData
                    ) {
                        tm.failures.inc();
                        return Err(e);
                    }
                    last_err = Some(e);
                }
            }
        }
        tm.failures.inc();
        Err(last_err
            .unwrap_or_else(|| io::Error::other("retry policy allows zero attempts")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    #[test]
    fn backoff_schedule_is_deterministic_and_bounded() {
        let policy = RetryPolicy {
            max_attempts: 6,
            base: Duration::from_millis(100),
            cap: Duration::from_millis(400),
            seed: 99,
        };
        let a = policy.delays();
        let b = policy.delays();
        assert_eq!(a, b, "same seed must give the same schedule");
        assert_eq!(a.len(), 5);
        for (i, d) in a.iter().enumerate() {
            let exp = Duration::from_millis(100)
                .saturating_mul(1 << i)
                .min(Duration::from_millis(400));
            assert!(*d >= exp / 2, "delay {i} below jitter floor: {d:?}");
            assert!(*d <= exp, "delay {i} above cap: {d:?}");
        }
        // A different seed jitters differently.
        let other = RetryPolicy { seed: 100, ..policy }.delays();
        assert_ne!(a, other);
    }

    #[test]
    fn dead_server_fails_after_bounded_attempts() {
        // Bind-then-drop yields an address nothing listens on.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let slept: Arc<Mutex<Vec<Duration>>> = Arc::new(Mutex::new(Vec::new()));
        let rec = slept.clone();
        let policy = RetryPolicy {
            max_attempts: 3,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(20),
            seed: 7,
        };
        let expected = policy.delays();
        let mut t = ResilientTransport::new(addr.to_string())
            .with_timeout(Duration::from_millis(200))
            .with_policy(policy)
            .with_sleeper(Box::new(move |d| rec.lock().unwrap().push(d)));
        let err = t.exchange(&ClientMsg::Bye).unwrap_err();
        assert!(!t.is_connected());
        // Exactly max_attempts - 1 sleeps, following the pure schedule.
        assert_eq!(*slept.lock().unwrap(), expected);
        // And the failure is a refused dial, not a silent hang.
        assert!(
            matches!(
                err.kind(),
                io::ErrorKind::ConnectionRefused | io::ErrorKind::TimedOut
            ),
            "unexpected error: {err}"
        );
    }

    /// A protocol-mismatched peer is a *permanent* failure: the error
    /// must surface on the first attempt, not after burning the whole
    /// backoff schedule against a server that will answer the same way
    /// every time.
    #[test]
    fn protocol_mismatch_fails_without_retries() {
        use std::io::Write;

        // A "server" from another planet: answers every connection with
        // an unknown tag, which the wire reader reports as Unsupported.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let h = std::thread::spawn(move || {
            // One connection is all a non-retrying transport makes; a
            // regression that retries would find the listener gone and
            // surface ConnectionRefused instead of Unsupported, failing
            // the kind assertion below.
            if let Ok((mut stream, _)) = listener.accept() {
                let _ = stream.write_all(b"WARP speed 9\n");
            }
        });
        let slept: Arc<Mutex<Vec<Duration>>> = Arc::new(Mutex::new(Vec::new()));
        let rec = slept.clone();
        let mut t = ResilientTransport::new(addr.to_string())
            .with_timeout(Duration::from_millis(500))
            .with_policy(RetryPolicy {
                max_attempts: 5,
                base: Duration::from_millis(10),
                cap: Duration::from_millis(20),
                seed: 11,
            })
            .with_sleeper(Box::new(move |d| rec.lock().unwrap().push(d)));
        let err = t.exchange(&ClientMsg::Bye).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Unsupported, "{err}");
        assert!(
            slept.lock().unwrap().is_empty(),
            "permanent failure was retried: {:?}",
            slept.lock().unwrap()
        );
        assert!(!t.is_connected());
        drop(t);
        h.join().unwrap();
    }

    #[test]
    fn reconnects_after_server_restarts() {
        use std::io::BufReader;
        use uucs_protocol::wire::{read_client_msg, write_server_msg};

        // A single-shot server: answers one exchange then slams the door.
        fn one_shot(listener: std::net::TcpListener) -> std::thread::JoinHandle<()> {
            std::thread::spawn(move || {
                let (stream, _) = listener.accept().unwrap();
                let mut writer = stream.try_clone().unwrap();
                let mut reader = BufReader::new(stream);
                if read_client_msg(&mut reader).unwrap().is_some() {
                    write_server_msg(&mut writer, &ServerMsg::Ack(1)).unwrap();
                }
                // Dropping both halves resets the connection.
            })
        }

        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let h1 = one_shot(listener);
        let mut t = ResilientTransport::new(addr.to_string())
            .with_timeout(Duration::from_millis(500))
            .with_policy(RetryPolicy {
                max_attempts: 5,
                base: Duration::from_millis(1),
                cap: Duration::from_millis(5),
                seed: 3,
            });
        let msg = ClientMsg::Sync {
            client: "c".into(),
            have: 0,
            want: 1,
        };
        assert_eq!(t.exchange(&msg).unwrap(), ServerMsg::Ack(1));
        h1.join().unwrap();

        // The first server is gone; a second generation binds the same
        // port is racy, so re-bind a fresh listener and retarget — the
        // point is the dropped connection is detected and re-dialed.
        let listener2 = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr2 = listener2.local_addr().unwrap();
        let h2 = one_shot(listener2);
        t.addr = addr2.to_string();
        assert_eq!(t.exchange(&msg).unwrap(), ServerMsg::Ack(1));
        h2.join().unwrap();
    }
}
