//! Closed-loop borrowing governor: turns server-side comfort models
//! into a local contention cap.
//!
//! The paper measures *how much* resource can be borrowed before users
//! object; the governor closes the loop by asking the server's model
//! service (`ADVICE`) for the highest borrowing level whose predicted
//! discomfort probability stays under a target `epsilon`, and capping
//! the local exerciser's contention at that level. Between refreshes —
//! and whenever the server is unreachable — it falls back to the last
//! cached model snapshot, so a disconnected client degrades gracefully
//! instead of borrowing blind.
//!
//! Epoch handling is monotone: the governor only adopts advice stamped
//! with an epoch at least as new as the newest it has ever seen. A lagging
//! replica (or a chaos-delayed duplicate reply) can therefore never roll
//! the cap back to a stale model.

use crate::transport::ClientTransport;
use std::sync::OnceLock;
use uucs_modelsvc::{QuantileSketch, SketchDelta};
use uucs_protocol::{ClientMsg, ServerMsg};
use uucs_telemetry::{metrics, Counter};
use uucs_testcase::{ExerciseSpec, Resource};
use uucs_wire::crc32;

/// Pre-registered governor telemetry (`client.governor.*`).
struct GovernorMetrics {
    ok: Counter,
    stale: Counter,
    nomodel: Counter,
    offline: Counter,
    /// Snapshot refreshes satisfied by an epoch delta applied onto the
    /// cached sketch.
    delta_applied: Counter,
    /// Snapshot refreshes that fell back to a full `MODEL` fetch
    /// (first snapshot, CRC mismatch, legacy server, failed apply).
    delta_fullsync: Counter,
}

fn governor_metrics() -> &'static GovernorMetrics {
    static METRICS: OnceLock<GovernorMetrics> = OnceLock::new();
    METRICS.get_or_init(|| GovernorMetrics {
        ok: metrics::counter("client.governor.refresh.ok"),
        stale: metrics::counter("client.governor.refresh.stale"),
        nomodel: metrics::counter("client.governor.refresh.nomodel"),
        offline: metrics::counter("client.governor.refresh.offline"),
        delta_applied: metrics::counter("client.governor.delta.applied"),
        delta_fullsync: metrics::counter("client.governor.delta.fullsync"),
    })
}

/// What a [`BorrowingGovernor::refresh`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefreshOutcome {
    /// Fresh advice adopted (epoch ≥ newest previously seen).
    Adopted,
    /// The reply carried an older epoch than one already seen; the
    /// current level was kept.
    Stale,
    /// The server answered but has no model for this resource yet; the
    /// governor keeps its current (fallback or cached) level.
    NoModel,
    /// The exchange failed in transport; the governor degraded to the
    /// last cached model snapshot (or the static fallback).
    Offline,
}

/// A client-side controller that caps exerciser contention at the level
/// the server's comfort model recommends for a target discomfort
/// probability.
#[derive(Debug, Clone)]
pub struct BorrowingGovernor {
    resource: Resource,
    task: String,
    epsilon: f64,
    fallback: f64,
    level: f64,
    epoch: Option<u64>,
    cached: Option<QuantileSketch>,
    /// The model epoch [`BorrowingGovernor::cached`] corresponds to —
    /// the `since` a delta request diffs from. Tracked separately from
    /// the advice epoch: the two verbs can observe different epochs.
    cached_epoch: Option<u64>,
}

impl BorrowingGovernor {
    /// Creates a governor targeting discomfort probability `epsilon` for
    /// one (resource, task) cell. Until the first successful refresh the
    /// cap is `fallback` — choose it conservatively (e.g. zero).
    ///
    /// # Panics
    ///
    /// If `epsilon` is not strictly between 0 and 1, or `fallback` is
    /// negative or non-finite: both are programming errors, and the wire
    /// layer would reject the epsilon anyway.
    pub fn new(resource: Resource, task: &str, epsilon: f64, fallback: f64) -> Self {
        assert!(
            epsilon.is_finite() && epsilon > 0.0 && epsilon < 1.0,
            "epsilon must be in (0, 1)"
        );
        assert!(
            fallback.is_finite() && fallback >= 0.0,
            "fallback level must be finite and non-negative"
        );
        BorrowingGovernor {
            resource,
            task: task.to_string(),
            epsilon,
            fallback,
            level: fallback,
            epoch: None,
            cached: None,
            cached_epoch: None,
        }
    }

    /// The resource this governor caps.
    pub fn resource(&self) -> Resource {
        self.resource
    }

    /// The target discomfort probability.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The current recommended borrowing cap.
    pub fn level(&self) -> f64 {
        self.level
    }

    /// The newest model epoch ever adopted, if any advice has arrived.
    pub fn epoch(&self) -> Option<u64> {
        self.epoch
    }

    /// The last cached model snapshot, used when the server is offline.
    pub fn cached_model(&self) -> Option<&QuantileSketch> {
        self.cached.as_ref()
    }

    /// The epoch the cached snapshot was taken at, if one is cached.
    pub fn cached_epoch(&self) -> Option<u64> {
        self.cached_epoch
    }

    /// Caps a requested contention level at the governed level.
    pub fn cap(&self, requested: f64) -> f64 {
        requested.min(self.level)
    }

    /// An exercise spec borrowing steadily at the governed cap for
    /// `duration` seconds — the closed-loop replacement for a fixed-level
    /// step testcase.
    pub fn governed_spec(&self, duration: f64) -> ExerciseSpec {
        ExerciseSpec::Step {
            level: self.level,
            duration,
            start: 0.0,
        }
    }

    /// Fetches fresh advice from the server and updates the cap.
    ///
    /// On success the advice is adopted only if its epoch is at least as
    /// new as the newest epoch previously seen (monotone adoption), and a
    /// best-effort `MODEL` fetch caches the full sketch for offline use.
    /// On a transport failure the governor recomputes the cap from the
    /// cached sketch (or keeps the static fallback) — it never errors and
    /// never panics, because it *is* the degradation layer.
    pub fn refresh<T: ClientTransport>(&mut self, transport: &mut T) -> RefreshOutcome {
        let gm = governor_metrics();
        let ask = ClientMsg::Advice {
            resource: self.resource,
            task: self.task.clone(),
            epsilon: self.epsilon,
        };
        match transport.exchange(&ask) {
            Ok(ServerMsg::Advice { epoch, level }) => {
                if self.epoch.is_some_and(|seen| epoch < seen) {
                    gm.stale.inc();
                    return RefreshOutcome::Stale;
                }
                self.epoch = Some(epoch);
                self.level = level;
                self.cache_snapshot(transport, epoch);
                gm.ok.inc();
                RefreshOutcome::Adopted
            }
            Ok(_) => {
                // The server answered but has nothing for us (most often
                // an Error("no comfort model …") before any uploads).
                // The current level — fallback or previously adopted —
                // stays in force.
                gm.nomodel.inc();
                RefreshOutcome::NoModel
            }
            Err(_) => {
                self.degrade();
                gm.offline.inc();
                RefreshOutcome::Offline
            }
        }
    }

    /// Best-effort snapshot refresh so the governor can answer from
    /// cache while offline. With a cached sketch it asks `MODELDELTA`
    /// for just the bins that changed since the cached epoch — the CRC
    /// of the cached encoding identifies the base, so a server whose
    /// epoch numbering diverged (failover) fails the match and
    /// full-syncs instead of corrupting the cache. Without a cache, on
    /// any delta mismatch, or against a legacy server (which answers
    /// `ERROR` to the unknown verb), it falls back to a full `MODEL`
    /// fetch. Ignores transport failures and replies from older epochs.
    fn cache_snapshot<T: ClientTransport>(&mut self, transport: &mut T, adopted_epoch: u64) {
        let gm = governor_metrics();
        if let (Some(sketch), Some(since)) = (&self.cached, self.cached_epoch) {
            let ask = ClientMsg::ModelDelta {
                resource: self.resource,
                task: Some(self.task.clone()),
                since,
                basecrc: crc32(sketch.encode().as_bytes()),
            };
            match transport.exchange(&ask) {
                Ok(ServerMsg::ModelDelta {
                    epoch,
                    since: base,
                    delta,
                }) if base == since && epoch >= since => {
                    let applied = SketchDelta::decode(&delta).ok().and_then(|d| {
                        self.cached.as_mut().and_then(|c| c.apply_delta(&d).ok())
                    });
                    if applied.is_some() {
                        self.cached_epoch = Some(epoch);
                        gm.delta_applied.inc();
                        return;
                    }
                    // A delta that does not apply is a divergence
                    // signal: full-sync below.
                }
                Ok(ServerMsg::Model { epoch, sketch, .. }) => {
                    // The server chose (or had) to full-sync.
                    gm.delta_fullsync.inc();
                    self.adopt_snapshot(epoch, &sketch, adopted_epoch);
                    return;
                }
                // A legacy server answers ERROR for the unknown verb
                // (connection intact): full-fetch below.
                Ok(_) => {}
                // Best-effort: keep the existing cache.
                Err(_) => return,
            }
        }
        gm.delta_fullsync.inc();
        let ask = ClientMsg::Model {
            resource: self.resource,
            task: Some(self.task.clone()),
        };
        if let Ok(ServerMsg::Model { epoch, sketch, .. }) = transport.exchange(&ask) {
            self.adopt_snapshot(epoch, &sketch, adopted_epoch);
        }
    }

    /// Installs a full snapshot, monotone in epoch: replies older than
    /// the advice just adopted (a lagging replica) are discarded.
    fn adopt_snapshot(&mut self, epoch: u64, sketch: &str, adopted_epoch: u64) {
        if epoch >= adopted_epoch {
            if let Ok(decoded) = QuantileSketch::decode(sketch) {
                self.cached = Some(decoded);
                self.cached_epoch = Some(epoch);
            }
        }
    }

    /// Recomputes the cap from the cached sketch; without one, the static
    /// fallback applies (the level may already be fallback or a previously
    /// adopted value — both are safe to keep, but recomputing pins the cap
    /// to data the client actually holds).
    fn degrade(&mut self) {
        if let Some(sketch) = &self.cached {
            if let Some(level) = sketch.advice_level(self.epsilon) {
                self.level = level;
                return;
            }
        }
        if self.epoch.is_none() {
            self.level = self.fallback;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::LocalTransport;
    use std::io;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use uucs_protocol::wire::Endpoint;

    /// A transport that always fails, simulating a black-holed server.
    struct Dead;
    impl ClientTransport for Dead {
        fn exchange(&mut self, _msg: &ClientMsg) -> io::Result<ServerMsg> {
            Err(io::Error::new(io::ErrorKind::TimedOut, "black hole"))
        }
    }

    /// Serves advice at a controllable epoch, with a matching sketch.
    struct Advisor {
        epoch: AtomicU64,
        level: f64,
    }
    impl Endpoint for Advisor {
        fn handle(&self, msg: &ClientMsg) -> ServerMsg {
            let epoch = self.epoch.load(Ordering::SeqCst);
            match msg {
                ClientMsg::Advice { .. } => ServerMsg::Advice {
                    epoch,
                    level: self.level,
                },
                ClientMsg::Model { resource, .. } => {
                    let mut s = QuantileSketch::for_resource(*resource);
                    s.insert(self.level);
                    ServerMsg::Model {
                        epoch,
                        observed: s.observed(),
                        censored: s.censored(),
                        sketch: s.encode(),
                    }
                }
                _ => ServerMsg::Error("unexpected".into()),
            }
        }
    }

    #[test]
    fn governor_starts_at_fallback_and_adopts_advice() {
        let srv = Arc::new(Advisor {
            epoch: AtomicU64::new(3),
            level: 2.5,
        });
        let mut t = LocalTransport::new(srv.clone());
        let mut g = BorrowingGovernor::new(Resource::Cpu, "Word", 0.05, 0.25);
        assert_eq!(g.level(), 0.25);
        assert_eq!(g.epoch(), None);
        assert_eq!(g.refresh(&mut t), RefreshOutcome::Adopted);
        assert_eq!(g.level(), 2.5);
        assert_eq!(g.epoch(), Some(3));
        assert!(g.cached_model().is_some());
        assert_eq!(g.cap(10.0), 2.5);
        assert_eq!(g.cap(1.0), 1.0);
        match g.governed_spec(60.0) {
            ExerciseSpec::Step {
                level, duration, ..
            } => {
                assert_eq!(level, 2.5);
                assert_eq!(duration, 60.0);
            }
            other => panic!("unexpected spec {other:?}"),
        }
    }

    #[test]
    fn stale_epochs_are_never_adopted() {
        let srv = Arc::new(Advisor {
            epoch: AtomicU64::new(7),
            level: 4.0,
        });
        let mut t = LocalTransport::new(srv.clone());
        let mut g = BorrowingGovernor::new(Resource::Cpu, "Word", 0.05, 0.0);
        assert_eq!(g.refresh(&mut t), RefreshOutcome::Adopted);
        assert_eq!(g.epoch(), Some(7));
        srv.epoch.store(5, Ordering::SeqCst);
        assert_eq!(g.refresh(&mut t), RefreshOutcome::Stale);
        assert_eq!(g.epoch(), Some(7), "epoch never regresses");
        srv.epoch.store(7, Ordering::SeqCst);
        assert_eq!(g.refresh(&mut t), RefreshOutcome::Adopted);
    }

    #[test]
    fn offline_refresh_degrades_to_cached_model() {
        let srv = Arc::new(Advisor {
            epoch: AtomicU64::new(1),
            level: 3.0,
        });
        let mut t = LocalTransport::new(srv);
        let mut g = BorrowingGovernor::new(Resource::Cpu, "Quake", 0.1, 0.5);
        assert_eq!(g.refresh(&mut t), RefreshOutcome::Adopted);
        let cached = g.cached_model().expect("sketch cached").clone();
        let expected = cached.advice_level(0.1).expect("non-empty sketch");
        assert_eq!(g.refresh(&mut Dead), RefreshOutcome::Offline);
        assert_eq!(g.level(), expected);
        assert_eq!(g.epoch(), Some(1), "offline keeps the adopted epoch");
    }

    #[test]
    fn offline_before_any_model_keeps_the_fallback() {
        let mut g = BorrowingGovernor::new(Resource::Memory, "Ie", 0.05, 0.125);
        assert_eq!(g.refresh(&mut Dead), RefreshOutcome::Offline);
        assert_eq!(g.level(), 0.125);
        assert_eq!(g.epoch(), None);
    }

    #[test]
    fn no_model_reply_keeps_current_level() {
        struct Empty;
        impl Endpoint for Empty {
            fn handle(&self, _msg: &ClientMsg) -> ServerMsg {
                ServerMsg::Error("no comfort model for cpu yet".into())
            }
        }
        let mut t = LocalTransport::new(Arc::new(Empty));
        let mut g = BorrowingGovernor::new(Resource::Cpu, "Word", 0.05, 0.75);
        assert_eq!(g.refresh(&mut t), RefreshOutcome::NoModel);
        assert_eq!(g.level(), 0.75);
    }

    #[test]
    #[should_panic(expected = "epsilon must be in (0, 1)")]
    fn rejects_out_of_range_epsilon() {
        let _ = BorrowingGovernor::new(Resource::Cpu, "Word", 1.0, 0.0);
    }
}
