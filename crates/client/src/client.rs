//! The client state machine: registration, hot sync, run scheduling, and
//! run execution.

use crate::script::{Command, Script};
use crate::transport::ClientTransport;
use std::io;
use std::sync::OnceLock;
use uucs_comfort::{execute_run, Fidelity, RunSetup, RunStyle, UserProfile};
use uucs_protocol::{ClientMsg, MachineSnapshot, RunRecord, ServerMsg};
use uucs_stats::Pcg64;
use uucs_telemetry::{metrics, Counter, Gauge};
use uucs_testcase::Testcase;
use uucs_workloads::Task;

/// Pre-registered session telemetry (`client.register.*`,
/// `client.upload.*`, `client.spool.depth`). The spool gauge tracks
/// [`UucsClient::unsynced`] — how many records would be lost if the
/// disk store also vanished — updated wherever that count changes.
struct ClientMetrics {
    register_ok: Counter,
    register_err: Counter,
    upload_ok: Counter,
    upload_err: Counter,
    spool_depth: Gauge,
}

fn client_metrics() -> &'static ClientMetrics {
    static METRICS: OnceLock<ClientMetrics> = OnceLock::new();
    METRICS.get_or_init(|| ClientMetrics {
        register_ok: metrics::counter("client.register.ok"),
        register_err: metrics::counter("client.register.err"),
        upload_ok: metrics::counter("client.upload.ok"),
        upload_err: metrics::counter("client.upload.err"),
        spool_depth: metrics::gauge("client.spool.depth"),
    })
}

/// The client-id stamp on records measured before registration ever
/// succeeded; [`UucsClient::register`] re-stamps such records with the
/// real id so they do not enter the study misattributed.
const UNREGISTERED: &str = "unregistered";

/// What a hot sync accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncReport {
    /// Testcases downloaded.
    pub downloaded: usize,
    /// Result records uploaded.
    pub uploaded: usize,
}

/// The UUCS client.
pub struct UucsClient {
    snapshot: MachineSnapshot,
    id: Option<String>,
    testcases: Vec<Testcase>,
    pending: Vec<RunRecord>,
    /// The frozen batch: records assigned a sequence number and sent at
    /// least once, but not yet acknowledged. Retries resend exactly this
    /// set — new records queue in `pending` for the *next* sequence
    /// number, so a retried batch never grows (the server would discard
    /// the growth as a replay).
    inflight: Option<(u64, Vec<RunRecord>)>,
    /// The last batch sequence number assigned; the next freeze uses
    /// `seq + 1`.
    seq: u64,
    /// Optional on-disk store; when attached, fresh records are spooled
    /// and the seq/in-flight state journaled as it changes, so a crash
    /// mid-upload resumes safely.
    store: Option<crate::store::ClientStore>,
    rng: Pcg64,
    /// Size of the next sync's download request; grows per sync ("a
    /// growing random sample of testcases").
    next_batch: usize,
    /// Registration idempotency token: a registration retried after a
    /// lost `ID` reply (or after a client restart against the same
    /// store) resolves to the same server-side identity instead of
    /// minting a duplicate client. A store-less client derives it from
    /// the seed and hostname; attaching a store replaces it with the
    /// store's persisted machine-unique token
    /// ([`ClientStore::reg_token`](crate::store::ClientStore::reg_token)),
    /// so two machines that happen to share a seed never collapse into
    /// one identity.
    reg_token: String,
}

impl UucsClient {
    /// Creates a client for a machine, seeded for reproducible local
    /// random choices.
    pub fn new(snapshot: MachineSnapshot, seed: u64) -> Self {
        // Seed AND hostname: a seed alone is a footgun (the daemon's
        // --seed defaults to a constant), and two machines presenting
        // the same token would share one server identity — and one
        // upload dedup horizon, silently discarding each other's
        // batches. Store-backed clients get a stronger, persisted
        // machine-unique token in `attach_store`/`restore`.
        let reg_token = format!(
            "tok-{:016x}",
            Pcg64::new(seed)
                .split_str("reg-token")
                .split_str(&snapshot.hostname)
                .next_u64()
        );
        UucsClient {
            snapshot,
            id: None,
            testcases: Vec::new(),
            pending: Vec::new(),
            inflight: None,
            seq: 0,
            store: None,
            rng: Pcg64::new(seed).split_str("client"),
            next_batch: 8,
            reg_token,
        }
    }

    /// Attaches an on-disk store: from now on every fresh record is
    /// spooled the moment it exists, and batch state is journaled across
    /// freeze/ack transitions. The store's persisted machine-unique
    /// registration token replaces the seed-derived default, so seed
    /// collisions across machines cannot merge identities.
    pub fn attach_store(&mut self, store: crate::store::ClientStore) {
        match store.reg_token() {
            Ok(token) => self.reg_token = token,
            // Keep the seed-derived token: weaker against collision,
            // but the session must not die because one file write
            // failed.
            Err(e) => eprintln!("uucs-client: cannot persist registration token: {e}"),
        }
        self.store = Some(store);
    }

    /// The assigned GUID, once registered.
    pub fn id(&self) -> Option<&str> {
        self.id.as_deref()
    }

    /// The locally held testcases.
    pub fn testcases(&self) -> &[Testcase] {
        &self.testcases
    }

    /// Results awaiting upload (not yet frozen into a batch).
    pub fn pending(&self) -> &[RunRecord] {
        &self.pending
    }

    /// The frozen, unacknowledged batch, if an upload is in flight.
    pub fn inflight(&self) -> Option<(u64, &[RunRecord])> {
        self.inflight.as_ref().map(|(s, r)| (*s, r.as_slice()))
    }

    /// Every record not yet acknowledged by the server: the in-flight
    /// batch plus the pending queue.
    pub fn unsynced(&self) -> usize {
        self.pending.len() + self.inflight.as_ref().map_or(0, |(_, r)| r.len())
    }

    /// Injects testcases directly (deterministic mode gets its set from a
    /// local file rather than a sync).
    pub fn install_testcases(&mut self, tcs: Vec<Testcase>) {
        self.testcases = tcs;
    }

    /// Restores persisted state (id, testcases, pending results, batch
    /// sequence, and any batch that was in flight when the last session
    /// died). Records present in both the pending spool and the
    /// in-flight batch (a crash can land between the spool append and
    /// the freeze) are kept only in the batch, so nothing uploads twice.
    pub fn restore(&mut self, store: &crate::store::ClientStore) -> io::Result<()> {
        self.reg_token = store.reg_token()?;
        self.id = store.load_id();
        self.testcases = store.load_testcases()?;
        self.pending = store.load_pending()?;
        let seq = store.try_load_seq();
        self.seq = seq.unwrap_or(0);
        self.inflight = store.load_inflight()?;
        if let Some((seq, records)) = &self.inflight {
            self.seq = self.seq.max(*seq);
            self.pending.retain(|r| !records.contains(r));
        }
        // An id without a counter file means the store lost its sequence
        // state (registration journals them together). Keeping the
        // cached id would skip the registration exchange — the only
        // place the server's applied horizon is learned — so the first
        // batch would reuse a burned seq and be acknowledged as a
        // replay, never stored. Drop the id (the persisted token brings
        // the same identity back) to force that exchange. A surviving
        // in-flight batch carries the exact last-assigned seq, so it
        // heals the counter on its own.
        if self.id.is_some() && seq.is_none() && self.inflight.is_none() {
            self.id = None;
        }
        Ok(())
    }

    /// Persists state.
    pub fn persist(&self, store: &crate::store::ClientStore) -> io::Result<()> {
        if let Some(id) = &self.id {
            store.save_id(id)?;
        }
        store.save_testcases(&self.testcases)?;
        store.save_pending(&self.pending)?;
        store.save_seq(self.seq)?;
        match &self.inflight {
            Some((seq, records)) => store.save_inflight(*seq, records),
            None => store.clear_inflight(),
        }
    }

    /// Registers with the server, obtaining a GUID. Idempotent: an
    /// already-registered client keeps its id.
    ///
    /// Registration is also where a client resynchronizes with its
    /// server-side past: the `ID` reply carries the server's applied
    /// upload horizon for the identity, and the batch counter
    /// fast-forwards to it — a client whose local store was wiped would
    /// otherwise restart at seq 1 and have every new batch ACKed as a
    /// replay of one the server already holds, acknowledged but never
    /// stored. Records measured before registration succeeded (stamped
    /// "unregistered") are re-stamped with the real id here.
    pub fn register(&mut self, transport: &mut dyn ClientTransport) -> io::Result<String> {
        if let Some(id) = &self.id {
            return Ok(id.clone());
        }
        let msg = ClientMsg::Register {
            snapshot: self.snapshot.clone(),
            token: self.reg_token.clone(),
        };
        let reply = transport.exchange(&msg);
        if reply.is_err() {
            client_metrics().register_err.inc();
        }
        match reply? {
            ServerMsg::Id { id, applied_seq } => {
                client_metrics().register_ok.inc();
                self.id = Some(id.clone());
                self.seq = self.seq.max(applied_seq);
                let mut restamped = false;
                for rec in self
                    .pending
                    .iter_mut()
                    .chain(self.inflight.iter_mut().flat_map(|(_, r)| r.iter_mut()))
                {
                    if rec.client == UNREGISTERED {
                        rec.client = id.clone();
                        restamped = true;
                    }
                }
                // Journal the identity now rather than waiting for the
                // session's final persist(): best-effort, like the
                // spool — a failed write must not undo a successful
                // registration.
                if let Some(store) = &self.store {
                    let journal = || -> io::Result<()> {
                        store.save_id(&id)?;
                        store.save_seq(self.seq)?;
                        if restamped {
                            store.save_pending(&self.pending)?;
                            if let Some((seq, records)) = &self.inflight {
                                store.save_inflight(*seq, records)?;
                            }
                        }
                        Ok(())
                    };
                    if let Err(e) = journal() {
                        eprintln!("uucs-client: cannot journal registration: {e}");
                    }
                }
                Ok(id)
            }
            other => {
                client_metrics().register_err.inc();
                Err(protocol_err(other))
            }
        }
    }

    /// Hot sync: download new testcases (growing random sample), upload
    /// pending results.
    pub fn hot_sync(&mut self, transport: &mut dyn ClientTransport) -> io::Result<SyncReport> {
        let id = self
            .id
            .clone()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "not registered"))?;
        let want = self.next_batch;
        // The sample grows sync over sync.
        self.next_batch = self.next_batch + self.next_batch / 2 + 1;
        let downloaded = match transport.exchange(&ClientMsg::Sync {
            client: id.clone(),
            have: self.testcases.len(),
            want,
        })? {
            ServerMsg::Testcases(tcs) => {
                let n = tcs.len();
                self.testcases.extend(tcs);
                n
            }
            other => return Err(protocol_err(other)),
        };
        // Upload loop: first re-send any frozen batch from an earlier,
        // unacknowledged attempt (same seq, same records — the server
        // dedups), then freeze and send the pending queue as the next
        // batch. An error leaves the current batch frozen in-flight for
        // the next sync.
        let mut uploaded = 0;
        loop {
            if self.inflight.is_none() {
                if self.pending.is_empty() {
                    break;
                }
                self.seq += 1;
                let records = std::mem::take(&mut self.pending);
                self.inflight = Some((self.seq, records));
                if let Some(store) = &self.store {
                    let (seq, records) = self.inflight.as_ref().expect("just frozen");
                    store.save_seq(*seq)?;
                    store.save_inflight(*seq, records)?;
                    store.save_pending(&self.pending)?;
                }
            }
            let (seq, records) = self.inflight.clone().expect("checked above");
            let n = records.len();
            let reply = transport.exchange(&ClientMsg::Upload {
                client: id.clone(),
                seq,
                records,
            });
            if reply.is_err() {
                client_metrics().upload_err.inc();
            }
            match reply? {
                ServerMsg::Ack(k) if k == n => {
                    client_metrics().upload_ok.add(n as u64);
                    uploaded += n;
                    if let Some((_, records)) = self.inflight.take() {
                        if let Some(store) = &self.store {
                            store.archive(&records)?;
                            store.clear_inflight()?;
                        }
                    }
                    client_metrics().spool_depth.set(self.unsynced() as i64);
                }
                other => {
                    client_metrics().upload_err.inc();
                    return Err(protocol_err(other));
                }
            }
        }
        Ok(SyncReport {
            downloaded,
            uploaded,
        })
    }

    /// Locally random testcase choice (§2: "local random choice of
    /// testcases").
    pub fn choose_testcase(&mut self) -> Option<Testcase> {
        if self.testcases.is_empty() {
            return None;
        }
        let i = self.rng.below(self.testcases.len() as u64) as usize;
        Some(self.testcases[i].clone())
    }

    /// Seconds until the next testcase execution: Poisson arrivals (§2)
    /// with the given mean gap.
    pub fn next_arrival_gap(&mut self, mean_secs: f64) -> f64 {
        assert!(mean_secs > 0.0);
        self.rng.exponential(1.0 / mean_secs)
    }

    /// Executes one testcase for `user` under `task` and queues the
    /// result for upload. `run_seed` should identify the run uniquely.
    pub fn perform_run(
        &mut self,
        user: &UserProfile,
        task: Task,
        testcase: &Testcase,
        fidelity: Fidelity,
        run_seed: u64,
    ) -> &RunRecord {
        let setup = RunSetup {
            user,
            task,
            testcase,
            style: RunStyle::infer(testcase),
            seed: run_seed,
            fidelity,
            client_id: self.id.clone().unwrap_or_else(|| "unregistered".into()),
        };
        let record = execute_run(&setup);
        if let Some(store) = &self.store {
            // Journal the record the moment it exists; losing a run
            // because the process died before the next persist() would
            // waste a user's discomfort.
            if let Err(e) = store.spool_append(&record) {
                eprintln!("uucs-client: cannot spool record: {e}");
            }
        }
        self.pending.push(record);
        client_metrics().spool_depth.set(self.unsynced() as i64);
        self.pending.last().unwrap()
    }

    /// Deterministic mode: executes a command script for one subject.
    /// `RUN` commands look testcases up in the local store; `SYNC`
    /// commands hot-sync through the transport; `WAIT` is a no-op offline
    /// pause. Returns the number of runs executed.
    pub fn execute_script(
        &mut self,
        script: &Script,
        user: &UserProfile,
        fidelity: Fidelity,
        transport: &mut dyn ClientTransport,
        seed: u64,
    ) -> io::Result<usize> {
        let mut runs = 0usize;
        for (i, cmd) in script.commands.clone().iter().enumerate() {
            match cmd {
                Command::Run { testcase, task } => {
                    let tc = self
                        .testcases
                        .iter()
                        .find(|t| t.id.as_str() == testcase)
                        .cloned()
                        .ok_or_else(|| {
                            io::Error::new(
                                io::ErrorKind::NotFound,
                                format!("testcase {testcase} not in local store"),
                            )
                        })?;
                    let run_seed = Pcg64::new(seed).split(i as u64).next_u64();
                    self.perform_run(user, *task, &tc, fidelity, run_seed);
                    runs += 1;
                }
                Command::Sync => {
                    // A failed sync is not fatal: the records stay
                    // queued (or frozen in flight) and the next SYNC —
                    // or the next session — retries them.
                    if let Err(e) = self.hot_sync(transport) {
                        eprintln!("uucs-client: sync failed, results kept locally: {e}");
                    }
                }
                Command::Wait(_) => {}
            }
        }
        Ok(runs)
    }
}

fn protocol_err(msg: ServerMsg) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected server reply: {msg:?}"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::LocalTransport;
    use std::sync::Arc;
    use uucs_comfort::UserPopulation;
    use uucs_server::{TestcaseStore, UucsServer};
    use uucs_testcase::generate::Library;

    fn server(n_testcases: usize) -> Arc<UucsServer> {
        let mut lib = Library::new();
        for i in 0..n_testcases {
            lib.add_ramp(
                uucs_testcase::Resource::Cpu,
                1.0 + (i as f64) * 0.1,
                120.0,
            );
        }
        Arc::new(UucsServer::new(
            TestcaseStore::from_testcases(lib.testcases().to_vec()).expect("unique ids"),
            77,
        ))
    }

    #[test]
    fn register_is_idempotent() {
        let srv = server(3);
        let mut t = LocalTransport::new(srv.clone());
        let mut c = UucsClient::new(MachineSnapshot::study_machine("h"), 1);
        let id1 = c.register(&mut t).unwrap();
        let id2 = c.register(&mut t).unwrap();
        assert_eq!(id1, id2);
        assert_eq!(srv.client_count(), 1);
    }

    #[test]
    fn hot_sync_grows_the_sample_and_uploads() {
        let srv = server(40);
        let mut t = LocalTransport::new(srv.clone());
        let mut c = UucsClient::new(MachineSnapshot::study_machine("h"), 2);
        c.register(&mut t).unwrap();
        let r1 = c.hot_sync(&mut t).unwrap();
        assert_eq!(r1.downloaded, 8);
        let r2 = c.hot_sync(&mut t).unwrap();
        assert!(r2.downloaded > 8, "growing sample: {}", r2.downloaded);
        assert_eq!(c.testcases().len(), r1.downloaded + r2.downloaded);
        // No duplicates across syncs.
        let mut ids: Vec<_> = c.testcases().iter().map(|t| t.id.as_str()).collect();
        ids.sort_unstable();
        let n = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }

    #[test]
    fn sync_before_register_fails() {
        let srv = server(3);
        let mut t = LocalTransport::new(srv);
        let mut c = UucsClient::new(MachineSnapshot::study_machine("h"), 3);
        assert!(c.hot_sync(&mut t).is_err());
    }

    #[test]
    fn perform_run_queues_result_and_sync_uploads_it() {
        let srv = server(5);
        let mut t = LocalTransport::new(srv.clone());
        let mut c = UucsClient::new(MachineSnapshot::study_machine("h"), 4);
        c.register(&mut t).unwrap();
        c.hot_sync(&mut t).unwrap();
        let pop = UserPopulation::generate(1, 9);
        let tc = c.choose_testcase().unwrap();
        c.perform_run(&pop.users()[0], Task::Ie, &tc, Fidelity::Fast, 42);
        assert_eq!(c.pending().len(), 1);
        let report = c.hot_sync(&mut t).unwrap();
        assert_eq!(report.uploaded, 1);
        assert!(c.pending().is_empty());
        assert_eq!(srv.result_count(), 1);
        assert_eq!(srv.results()[0].task, "IE");
    }

    #[test]
    fn poisson_arrival_gaps_have_right_mean() {
        let mut c = UucsClient::new(MachineSnapshot::study_machine("h"), 5);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| c.next_arrival_gap(300.0)).sum::<f64>() / n as f64;
        assert!((mean - 300.0).abs() < 10.0, "mean {mean}");
    }

    #[test]
    fn deterministic_script_executes_runs() {
        let srv = server(2);
        let mut t = LocalTransport::new(srv.clone());
        let mut c = UucsClient::new(MachineSnapshot::study_machine("h"), 6);
        c.register(&mut t).unwrap();
        // Deterministic mode: testcases from the local file, not a sync.
        let tcs = uucs_comfort::calibration::controlled_testcases(Task::Word);
        let script_text = "RUN word-cpu-ramp Word\nWAIT 2\nRUN word-blank-1 Word\nSYNC\n";
        c.install_testcases(tcs);
        let script = Script::parse(script_text).unwrap();
        let pop = UserPopulation::generate(1, 10);
        let runs = c
            .execute_script(&script, &pop.users()[0], Fidelity::Fast, &mut t, 99)
            .unwrap();
        assert_eq!(runs, 2);
        // The SYNC uploaded both results.
        assert_eq!(srv.result_count(), 2);
    }

    #[test]
    fn script_with_unknown_testcase_errors() {
        let srv = server(1);
        let mut t = LocalTransport::new(srv);
        let mut c = UucsClient::new(MachineSnapshot::study_machine("h"), 7);
        c.register(&mut t).unwrap();
        let script = Script::parse("RUN ghost Word\n").unwrap();
        let pop = UserPopulation::generate(1, 11);
        assert!(c
            .execute_script(&script, &pop.users()[0], Fidelity::Fast, &mut t, 1)
            .is_err());
    }

    #[test]
    fn failed_upload_keeps_results_pending() {
        use uucs_protocol::wire::Endpoint;
        use uucs_protocol::ServerMsg;
        /// A server that registers and syncs but rejects uploads.
        struct Flaky;
        impl Endpoint for Flaky {
            fn handle(&self, msg: &ClientMsg) -> ServerMsg {
                match msg {
                    ClientMsg::Register { .. } => ServerMsg::id("c-flaky"),
                    ClientMsg::Sync { .. } => ServerMsg::Testcases(vec![]),
                    ClientMsg::Upload { .. } => ServerMsg::Error("storage full".into()),
                    ClientMsg::Stats { .. } => ServerMsg::Stats("{}".into()),
                    ClientMsg::Model { .. }
                    | ClientMsg::ModelDelta { .. }
                    | ClientMsg::Advice { .. } => ServerMsg::Error("no model".into()),
                    ClientMsg::Hello { .. } => ServerMsg::Error("unknown client message".into()),
                    ClientMsg::Bye => ServerMsg::Ack(0),
                }
            }
        }
        let mut t = LocalTransport::new(Arc::new(Flaky));
        let mut c = UucsClient::new(MachineSnapshot::study_machine("h"), 20);
        c.register(&mut t).unwrap();
        c.install_testcases(uucs_comfort::calibration::controlled_testcases(Task::Ie));
        let pop = UserPopulation::generate(1, 21);
        let tc = c.choose_testcase().unwrap();
        c.perform_run(&pop.users()[0], Task::Ie, &tc, Fidelity::Fast, 1);
        assert_eq!(c.pending().len(), 1);
        // The upload fails; the result stays held locally — frozen in
        // the in-flight batch — so the client "can operate disconnected
        // from the server" and retry later.
        assert!(c.hot_sync(&mut t).is_err());
        assert_eq!(c.unsynced(), 1);
        let (seq, frozen) = c.inflight().expect("batch stays frozen");
        assert_eq!(seq, 1);
        assert_eq!(frozen.len(), 1);
    }

    /// Once a batch is frozen under a sequence number, retries resend
    /// exactly that batch; records produced in the meantime queue for the
    /// next sequence number. (If a retried batch grew, the server would
    /// drop the growth as a replay.)
    #[test]
    fn retried_batch_is_frozen_and_new_records_form_the_next_one() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Mutex;
        use uucs_protocol::wire::Endpoint;
        /// Fails the first upload attempt, then behaves, recording every
        /// upload it sees.
        struct FlakyOnce {
            failures_left: AtomicUsize,
            seen: Mutex<Vec<(u64, usize)>>,
        }
        impl Endpoint for FlakyOnce {
            fn handle(&self, msg: &ClientMsg) -> ServerMsg {
                match msg {
                    ClientMsg::Register { .. } => ServerMsg::id("c-flaky"),
                    ClientMsg::Sync { .. } => ServerMsg::Testcases(vec![]),
                    ClientMsg::Upload { seq, records, .. } => {
                        if self
                            .failures_left
                            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                                n.checked_sub(1)
                            })
                            .is_ok()
                        {
                            return ServerMsg::Error("injected".into());
                        }
                        self.seen.lock().unwrap().push((*seq, records.len()));
                        ServerMsg::Ack(records.len())
                    }
                    ClientMsg::Stats { .. } => ServerMsg::Stats("{}".into()),
                    ClientMsg::Model { .. }
                    | ClientMsg::ModelDelta { .. }
                    | ClientMsg::Advice { .. } => ServerMsg::Error("no model".into()),
                    ClientMsg::Hello { .. } => ServerMsg::Error("unknown client message".into()),
                    ClientMsg::Bye => ServerMsg::Ack(0),
                }
            }
        }
        let srv = Arc::new(FlakyOnce {
            failures_left: AtomicUsize::new(1),
            seen: Mutex::new(Vec::new()),
        });
        let mut t = LocalTransport::new(srv.clone());
        let mut c = UucsClient::new(MachineSnapshot::study_machine("h"), 30);
        c.register(&mut t).unwrap();
        c.install_testcases(uucs_comfort::calibration::controlled_testcases(Task::Ie));
        let pop = UserPopulation::generate(1, 31);
        let tc = c.choose_testcase().unwrap();
        c.perform_run(&pop.users()[0], Task::Ie, &tc, Fidelity::Fast, 1);
        assert!(c.hot_sync(&mut t).is_err(), "first attempt must fail");
        assert_eq!(c.inflight().unwrap().0, 1);
        // A second record arrives while batch 1 is stuck in flight.
        c.perform_run(&pop.users()[0], Task::Ie, &tc, Fidelity::Fast, 2);
        assert_eq!(c.pending().len(), 1, "new record queues outside the batch");
        let report = c.hot_sync(&mut t).unwrap();
        assert_eq!(report.uploaded, 2);
        assert_eq!(c.unsynced(), 0);
        // The server saw batch 1 with one record, then batch 2 with one:
        // the retry did not absorb the new record.
        assert_eq!(*srv.seen.lock().unwrap(), vec![(1, 1), (2, 1)]);
    }

    /// Two machines launched with the same seed (the daemon's `--seed`
    /// defaults to a constant) but their own stores must register as two
    /// identities. Seed-derived tokens used to collide here, fusing the
    /// fleet into one server-side client whose shared dedup horizon
    /// silently discarded the second machine's uploads as replays.
    #[test]
    fn same_seed_different_stores_are_distinct_identities() {
        let base = std::env::temp_dir().join(format!("uucs-client-twins-{}", std::process::id()));
        std::fs::remove_dir_all(&base).ok();
        let srv = server(3);
        let mut t = LocalTransport::new(srv.clone());
        let mut a = UucsClient::new(MachineSnapshot::study_machine("h"), 1);
        a.attach_store(crate::store::ClientStore::open(base.join("a")).unwrap());
        let mut b = UucsClient::new(MachineSnapshot::study_machine("h"), 1);
        b.attach_store(crate::store::ClientStore::open(base.join("b")).unwrap());
        assert_ne!(a.register(&mut t).unwrap(), b.register(&mut t).unwrap());
        assert_eq!(srv.client_count(), 2);
        // Store-less clients at least distinguish by hostname.
        let mut c = UucsClient::new(MachineSnapshot::study_machine("h-other"), 1);
        assert_ne!(c.register(&mut t).unwrap(), a.id().unwrap());
        assert_eq!(srv.client_count(), 3);
        std::fs::remove_dir_all(&base).ok();
    }

    /// A client that lost its local batch counter but kept its identity
    /// (wiped or damaged store, surviving registration token) must
    /// resume *above* the server's applied horizon. Without the
    /// fast-forward in the `ID` reply, its new batches would restart at
    /// seq 1 — at or below the horizon — and be ACKed as replays
    /// without being stored: silent, acknowledged data loss.
    #[test]
    fn registration_fast_forwards_seq_past_server_horizon() {
        let srv = server(5);
        let mut t = LocalTransport::new(srv.clone());
        let pop = UserPopulation::generate(1, 50);
        let mut c1 = UucsClient::new(MachineSnapshot::study_machine("h"), 50);
        c1.register(&mut t).unwrap();
        c1.hot_sync(&mut t).unwrap();
        let tc = c1.choose_testcase().unwrap();
        for run in 0..2 {
            c1.perform_run(&pop.users()[0], Task::Ie, &tc, Fidelity::Fast, run);
            c1.hot_sync(&mut t).unwrap();
        }
        assert_eq!(srv.result_count(), 2);
        assert_eq!(srv.applied_seq(c1.id().unwrap()), 2);

        // The "wipe": a fresh client presenting the same token (same
        // seed and hostname, no restored state) — all counters lost.
        let mut c2 = UucsClient::new(MachineSnapshot::study_machine("h"), 50);
        assert_eq!(c2.register(&mut t).unwrap(), c1.id().unwrap());
        c2.hot_sync(&mut t).unwrap();
        let tc = c2.choose_testcase().unwrap();
        c2.perform_run(&pop.users()[0], Task::Ie, &tc, Fidelity::Fast, 9);
        let report = c2.hot_sync(&mut t).unwrap();
        assert_eq!(report.uploaded, 1);
        assert_eq!(
            srv.result_count(),
            3,
            "post-wipe upload was discarded as a replay"
        );
        assert_eq!(srv.applied_seq(c1.id().unwrap()), 3);
    }

    /// Partial store damage: the seq counter file is lost but `id.txt`
    /// survives. A cached id short-circuits registration — the only
    /// exchange that carries the server's applied horizon — so restore
    /// must refuse the orphaned id and force a re-registration (the
    /// persisted token brings the same identity back). Otherwise the
    /// next batch reuses a burned seq and is ACKed as a replay: the
    /// client archives records the server never stored.
    #[test]
    fn lost_seq_counter_forces_reregistration() {
        let dir = std::env::temp_dir().join(format!("uucs-client-lostseq-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let store = crate::store::ClientStore::open(&dir).unwrap();
        let srv = server(7);
        let mut t = LocalTransport::new(srv.clone());
        let pop = UserPopulation::generate(1, 70);
        let mut c1 = UucsClient::new(MachineSnapshot::study_machine("h"), 70);
        c1.attach_store(store.clone());
        c1.register(&mut t).unwrap();
        c1.hot_sync(&mut t).unwrap();
        let tc = c1.choose_testcase().unwrap();
        for run in 0..2 {
            c1.perform_run(&pop.users()[0], Task::Ie, &tc, Fidelity::Fast, run);
            c1.hot_sync(&mut t).unwrap();
        }
        let id = c1.id().unwrap().to_string();
        assert_eq!(srv.applied_seq(&id), 2);

        // The damage: the counter file vanishes, the id survives.
        std::fs::remove_file(dir.join("seq.txt")).unwrap();
        let mut c2 = UucsClient::new(MachineSnapshot::study_machine("h"), 70);
        c2.restore(&store).unwrap();
        assert_eq!(c2.id(), None, "orphaned id must not be trusted");
        c2.attach_store(store.clone());
        assert_eq!(c2.register(&mut t).unwrap(), id, "token restores identity");

        c2.install_testcases(uucs_comfort::calibration::controlled_testcases(Task::Ie));
        let tc = c2.choose_testcase().unwrap();
        c2.perform_run(&pop.users()[0], Task::Ie, &tc, Fidelity::Fast, 9);
        let report = c2.hot_sync(&mut t).unwrap();
        assert_eq!(report.uploaded, 1);
        assert_eq!(
            srv.result_count(),
            3,
            "post-damage upload was discarded as a replay"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Records measured before registration ever succeeded (offline
    /// start) are stamped "unregistered" at creation; registration must
    /// re-stamp them — in memory and in the spool — so they enter the
    /// study attributed to the client that measured them.
    #[test]
    fn offline_records_are_restamped_at_registration() {
        let dir = std::env::temp_dir().join(format!("uucs-client-restamp-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let store = crate::store::ClientStore::open(&dir).unwrap();
        let srv = server(2);
        let mut t = LocalTransport::new(srv.clone());
        let mut c = UucsClient::new(MachineSnapshot::study_machine("h"), 60);
        c.attach_store(store.clone());
        c.install_testcases(uucs_comfort::calibration::controlled_testcases(Task::Word));
        let pop = UserPopulation::generate(1, 61);
        let tc = c.choose_testcase().unwrap();
        c.perform_run(&pop.users()[0], Task::Word, &tc, Fidelity::Fast, 1);
        assert_eq!(c.pending()[0].client, "unregistered");

        let id = c.register(&mut t).unwrap();
        assert!(c.pending().iter().all(|r| r.client == id));
        let spooled = store.load_pending().unwrap();
        assert!(
            spooled.iter().all(|r| r.client == id),
            "spool still holds the placeholder stamp"
        );
        assert_eq!(store.load_id().as_deref(), Some(id.as_str()));

        let report = c.hot_sync(&mut t).unwrap();
        assert_eq!(report.uploaded, 1);
        assert!(srv.results().iter().all(|r| r.client == id));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn persistence_roundtrip() {
        let dir = std::env::temp_dir().join(format!("uucs-client-{}", std::process::id()));
        let store = crate::store::ClientStore::open(&dir).unwrap();
        let srv = server(6);
        let mut t = LocalTransport::new(srv);
        let mut c = UucsClient::new(MachineSnapshot::study_machine("h"), 8);
        c.register(&mut t).unwrap();
        c.hot_sync(&mut t).unwrap();
        let pop = UserPopulation::generate(1, 12);
        let tc = c.choose_testcase().unwrap();
        c.perform_run(&pop.users()[0], Task::Quake, &tc, Fidelity::Fast, 5);
        c.persist(&store).unwrap();

        let mut c2 = UucsClient::new(MachineSnapshot::study_machine("h"), 8);
        c2.restore(&store).unwrap();
        assert_eq!(c2.id(), c.id());
        assert_eq!(c2.testcases(), c.testcases());
        assert_eq!(c2.pending(), c.pending());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A session that dies with a batch in flight resumes it on restore:
    /// the frozen batch (and its sequence number) survive, and any spool
    /// entries duplicated into the batch collapse back to one copy.
    #[test]
    fn restore_resumes_inflight_batch_without_duplicates() {
        use uucs_protocol::wire::Endpoint;
        struct Reject;
        impl Endpoint for Reject {
            fn handle(&self, msg: &ClientMsg) -> ServerMsg {
                match msg {
                    ClientMsg::Register { .. } => ServerMsg::id("c-r"),
                    ClientMsg::Sync { .. } => ServerMsg::Testcases(vec![]),
                    _ => ServerMsg::Error("down".into()),
                }
            }
        }
        let dir = std::env::temp_dir().join(format!("uucs-client-ifl-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let store = crate::store::ClientStore::open(&dir).unwrap();
        let mut t = LocalTransport::new(Arc::new(Reject));
        let mut c = UucsClient::new(MachineSnapshot::study_machine("h"), 40);
        c.attach_store(store.clone());
        c.register(&mut t).unwrap();
        c.install_testcases(uucs_comfort::calibration::controlled_testcases(Task::Word));
        let pop = UserPopulation::generate(1, 41);
        let tc = c.choose_testcase().unwrap();
        // perform_run spools to disk; the failed sync freezes batch 1 and
        // journals it. The spool file still holds the same record — the
        // session "dies" here without a tidy persist().
        c.perform_run(&pop.users()[0], Task::Word, &tc, Fidelity::Fast, 1);
        assert!(c.hot_sync(&mut t).is_err());
        assert_eq!(c.inflight().unwrap().0, 1);
        // Simulate a crash that landed between the in-flight journal
        // write and the spool rewrite: the record sits in both files.
        let frozen_copy = c.inflight().unwrap().1[0].clone();
        store.spool_append(&frozen_copy).unwrap();

        let mut c2 = UucsClient::new(MachineSnapshot::study_machine("h"), 40);
        c2.restore(&store).unwrap();
        assert_eq!(c2.unsynced(), 1, "spool + inflight must dedupe to one");
        let (seq, frozen) = c2.inflight().expect("batch resumes");
        assert_eq!(seq, 1);
        assert_eq!(frozen.len(), 1);
        assert!(c2.pending().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
