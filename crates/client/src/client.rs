//! The client state machine: registration, hot sync, run scheduling, and
//! run execution.

use crate::script::{Command, Script};
use crate::transport::ClientTransport;
use std::io;
use uucs_comfort::{execute_run, Fidelity, RunSetup, RunStyle, UserProfile};
use uucs_protocol::{ClientMsg, MachineSnapshot, RunRecord, ServerMsg};
use uucs_stats::Pcg64;
use uucs_testcase::Testcase;
use uucs_workloads::Task;

/// What a hot sync accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncReport {
    /// Testcases downloaded.
    pub downloaded: usize,
    /// Result records uploaded.
    pub uploaded: usize,
}

/// The UUCS client.
pub struct UucsClient {
    snapshot: MachineSnapshot,
    id: Option<String>,
    testcases: Vec<Testcase>,
    pending: Vec<RunRecord>,
    rng: Pcg64,
    /// Size of the next sync's download request; grows per sync ("a
    /// growing random sample of testcases").
    next_batch: usize,
}

impl UucsClient {
    /// Creates a client for a machine, seeded for reproducible local
    /// random choices.
    pub fn new(snapshot: MachineSnapshot, seed: u64) -> Self {
        UucsClient {
            snapshot,
            id: None,
            testcases: Vec::new(),
            pending: Vec::new(),
            rng: Pcg64::new(seed).split_str("client"),
            next_batch: 8,
        }
    }

    /// The assigned GUID, once registered.
    pub fn id(&self) -> Option<&str> {
        self.id.as_deref()
    }

    /// The locally held testcases.
    pub fn testcases(&self) -> &[Testcase] {
        &self.testcases
    }

    /// Results awaiting upload.
    pub fn pending(&self) -> &[RunRecord] {
        &self.pending
    }

    /// Injects testcases directly (deterministic mode gets its set from a
    /// local file rather than a sync).
    pub fn install_testcases(&mut self, tcs: Vec<Testcase>) {
        self.testcases = tcs;
    }

    /// Restores persisted state (id, testcases, pending results).
    pub fn restore(&mut self, store: &crate::store::ClientStore) -> io::Result<()> {
        self.id = store.load_id();
        self.testcases = store.load_testcases()?;
        self.pending = store.load_pending()?;
        Ok(())
    }

    /// Persists state.
    pub fn persist(&self, store: &crate::store::ClientStore) -> io::Result<()> {
        if let Some(id) = &self.id {
            store.save_id(id)?;
        }
        store.save_testcases(&self.testcases)?;
        store.save_pending(&self.pending)
    }

    /// Registers with the server, obtaining a GUID. Idempotent: an
    /// already-registered client keeps its id.
    pub fn register(&mut self, transport: &mut dyn ClientTransport) -> io::Result<String> {
        if let Some(id) = &self.id {
            return Ok(id.clone());
        }
        match transport.exchange(&ClientMsg::Register(self.snapshot.clone()))? {
            ServerMsg::Id(id) => {
                self.id = Some(id.clone());
                Ok(id)
            }
            other => Err(protocol_err(other)),
        }
    }

    /// Hot sync: download new testcases (growing random sample), upload
    /// pending results.
    pub fn hot_sync(&mut self, transport: &mut dyn ClientTransport) -> io::Result<SyncReport> {
        let id = self
            .id
            .clone()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "not registered"))?;
        let want = self.next_batch;
        // The sample grows sync over sync.
        self.next_batch = self.next_batch + self.next_batch / 2 + 1;
        let downloaded = match transport.exchange(&ClientMsg::Sync {
            client: id.clone(),
            have: self.testcases.len(),
            want,
        })? {
            ServerMsg::Testcases(tcs) => {
                let n = tcs.len();
                self.testcases.extend(tcs);
                n
            }
            other => return Err(protocol_err(other)),
        };
        let uploaded = if self.pending.is_empty() {
            0
        } else {
            let records = std::mem::take(&mut self.pending);
            let n = records.len();
            match transport.exchange(&ClientMsg::Upload {
                client: id,
                records: records.clone(),
            })? {
                ServerMsg::Ack(k) if k == n => n,
                other => {
                    // Put the records back; they remain pending.
                    self.pending = records;
                    return Err(protocol_err(other));
                }
            }
        };
        Ok(SyncReport {
            downloaded,
            uploaded,
        })
    }

    /// Locally random testcase choice (§2: "local random choice of
    /// testcases").
    pub fn choose_testcase(&mut self) -> Option<Testcase> {
        if self.testcases.is_empty() {
            return None;
        }
        let i = self.rng.below(self.testcases.len() as u64) as usize;
        Some(self.testcases[i].clone())
    }

    /// Seconds until the next testcase execution: Poisson arrivals (§2)
    /// with the given mean gap.
    pub fn next_arrival_gap(&mut self, mean_secs: f64) -> f64 {
        assert!(mean_secs > 0.0);
        self.rng.exponential(1.0 / mean_secs)
    }

    /// Executes one testcase for `user` under `task` and queues the
    /// result for upload. `run_seed` should identify the run uniquely.
    pub fn perform_run(
        &mut self,
        user: &UserProfile,
        task: Task,
        testcase: &Testcase,
        fidelity: Fidelity,
        run_seed: u64,
    ) -> &RunRecord {
        let setup = RunSetup {
            user,
            task,
            testcase,
            style: RunStyle::infer(testcase),
            seed: run_seed,
            fidelity,
            client_id: self.id.clone().unwrap_or_else(|| "unregistered".into()),
        };
        let record = execute_run(&setup);
        self.pending.push(record);
        self.pending.last().unwrap()
    }

    /// Deterministic mode: executes a command script for one subject.
    /// `RUN` commands look testcases up in the local store; `SYNC`
    /// commands hot-sync through the transport; `WAIT` is a no-op offline
    /// pause. Returns the number of runs executed.
    pub fn execute_script(
        &mut self,
        script: &Script,
        user: &UserProfile,
        fidelity: Fidelity,
        transport: &mut dyn ClientTransport,
        seed: u64,
    ) -> io::Result<usize> {
        let mut runs = 0usize;
        for (i, cmd) in script.commands.clone().iter().enumerate() {
            match cmd {
                Command::Run { testcase, task } => {
                    let tc = self
                        .testcases
                        .iter()
                        .find(|t| t.id.as_str() == testcase)
                        .cloned()
                        .ok_or_else(|| {
                            io::Error::new(
                                io::ErrorKind::NotFound,
                                format!("testcase {testcase} not in local store"),
                            )
                        })?;
                    let run_seed = Pcg64::new(seed).split(i as u64).next_u64();
                    self.perform_run(user, *task, &tc, fidelity, run_seed);
                    runs += 1;
                }
                Command::Sync => {
                    self.hot_sync(transport)?;
                }
                Command::Wait(_) => {}
            }
        }
        Ok(runs)
    }
}

fn protocol_err(msg: ServerMsg) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected server reply: {msg:?}"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::LocalTransport;
    use std::sync::Arc;
    use uucs_comfort::UserPopulation;
    use uucs_server::{TestcaseStore, UucsServer};
    use uucs_testcase::generate::Library;

    fn server(n_testcases: usize) -> Arc<UucsServer> {
        let mut lib = Library::new();
        for i in 0..n_testcases {
            lib.add_ramp(
                uucs_testcase::Resource::Cpu,
                1.0 + (i as f64) * 0.1,
                120.0,
            );
        }
        Arc::new(UucsServer::new(
            TestcaseStore::from_testcases(lib.testcases().to_vec()).expect("unique ids"),
            77,
        ))
    }

    #[test]
    fn register_is_idempotent() {
        let srv = server(3);
        let mut t = LocalTransport::new(srv.clone());
        let mut c = UucsClient::new(MachineSnapshot::study_machine("h"), 1);
        let id1 = c.register(&mut t).unwrap();
        let id2 = c.register(&mut t).unwrap();
        assert_eq!(id1, id2);
        assert_eq!(srv.client_count(), 1);
    }

    #[test]
    fn hot_sync_grows_the_sample_and_uploads() {
        let srv = server(40);
        let mut t = LocalTransport::new(srv.clone());
        let mut c = UucsClient::new(MachineSnapshot::study_machine("h"), 2);
        c.register(&mut t).unwrap();
        let r1 = c.hot_sync(&mut t).unwrap();
        assert_eq!(r1.downloaded, 8);
        let r2 = c.hot_sync(&mut t).unwrap();
        assert!(r2.downloaded > 8, "growing sample: {}", r2.downloaded);
        assert_eq!(c.testcases().len(), r1.downloaded + r2.downloaded);
        // No duplicates across syncs.
        let mut ids: Vec<_> = c.testcases().iter().map(|t| t.id.as_str()).collect();
        ids.sort_unstable();
        let n = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }

    #[test]
    fn sync_before_register_fails() {
        let srv = server(3);
        let mut t = LocalTransport::new(srv);
        let mut c = UucsClient::new(MachineSnapshot::study_machine("h"), 3);
        assert!(c.hot_sync(&mut t).is_err());
    }

    #[test]
    fn perform_run_queues_result_and_sync_uploads_it() {
        let srv = server(5);
        let mut t = LocalTransport::new(srv.clone());
        let mut c = UucsClient::new(MachineSnapshot::study_machine("h"), 4);
        c.register(&mut t).unwrap();
        c.hot_sync(&mut t).unwrap();
        let pop = UserPopulation::generate(1, 9);
        let tc = c.choose_testcase().unwrap();
        c.perform_run(&pop.users()[0], Task::Ie, &tc, Fidelity::Fast, 42);
        assert_eq!(c.pending().len(), 1);
        let report = c.hot_sync(&mut t).unwrap();
        assert_eq!(report.uploaded, 1);
        assert!(c.pending().is_empty());
        assert_eq!(srv.result_count(), 1);
        assert_eq!(srv.results()[0].task, "IE");
    }

    #[test]
    fn poisson_arrival_gaps_have_right_mean() {
        let mut c = UucsClient::new(MachineSnapshot::study_machine("h"), 5);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| c.next_arrival_gap(300.0)).sum::<f64>() / n as f64;
        assert!((mean - 300.0).abs() < 10.0, "mean {mean}");
    }

    #[test]
    fn deterministic_script_executes_runs() {
        let srv = server(2);
        let mut t = LocalTransport::new(srv.clone());
        let mut c = UucsClient::new(MachineSnapshot::study_machine("h"), 6);
        c.register(&mut t).unwrap();
        // Deterministic mode: testcases from the local file, not a sync.
        let tcs = uucs_comfort::calibration::controlled_testcases(Task::Word);
        let script_text = "RUN word-cpu-ramp Word\nWAIT 2\nRUN word-blank-1 Word\nSYNC\n";
        c.install_testcases(tcs);
        let script = Script::parse(script_text).unwrap();
        let pop = UserPopulation::generate(1, 10);
        let runs = c
            .execute_script(&script, &pop.users()[0], Fidelity::Fast, &mut t, 99)
            .unwrap();
        assert_eq!(runs, 2);
        // The SYNC uploaded both results.
        assert_eq!(srv.result_count(), 2);
    }

    #[test]
    fn script_with_unknown_testcase_errors() {
        let srv = server(1);
        let mut t = LocalTransport::new(srv);
        let mut c = UucsClient::new(MachineSnapshot::study_machine("h"), 7);
        c.register(&mut t).unwrap();
        let script = Script::parse("RUN ghost Word\n").unwrap();
        let pop = UserPopulation::generate(1, 11);
        assert!(c
            .execute_script(&script, &pop.users()[0], Fidelity::Fast, &mut t, 1)
            .is_err());
    }

    #[test]
    fn failed_upload_keeps_results_pending() {
        use uucs_protocol::wire::Endpoint;
        use uucs_protocol::ServerMsg;
        /// A server that registers and syncs but rejects uploads.
        struct Flaky;
        impl Endpoint for Flaky {
            fn handle(&self, msg: &ClientMsg) -> ServerMsg {
                match msg {
                    ClientMsg::Register(_) => ServerMsg::Id("c-flaky".into()),
                    ClientMsg::Sync { .. } => ServerMsg::Testcases(vec![]),
                    ClientMsg::Upload { .. } => ServerMsg::Error("storage full".into()),
                    ClientMsg::Bye => ServerMsg::Ack(0),
                }
            }
        }
        let mut t = LocalTransport::new(Arc::new(Flaky));
        let mut c = UucsClient::new(MachineSnapshot::study_machine("h"), 20);
        c.register(&mut t).unwrap();
        c.install_testcases(uucs_comfort::calibration::controlled_testcases(Task::Ie));
        let pop = UserPopulation::generate(1, 21);
        let tc = c.choose_testcase().unwrap();
        c.perform_run(&pop.users()[0], Task::Ie, &tc, Fidelity::Fast, 1);
        assert_eq!(c.pending().len(), 1);
        // The upload fails; the result must stay pending (the client
        // "can operate disconnected from the server").
        assert!(c.hot_sync(&mut t).is_err());
        assert_eq!(c.pending().len(), 1);
    }

    #[test]
    fn persistence_roundtrip() {
        let dir = std::env::temp_dir().join(format!("uucs-client-{}", std::process::id()));
        let store = crate::store::ClientStore::open(&dir).unwrap();
        let srv = server(6);
        let mut t = LocalTransport::new(srv);
        let mut c = UucsClient::new(MachineSnapshot::study_machine("h"), 8);
        c.register(&mut t).unwrap();
        c.hot_sync(&mut t).unwrap();
        let pop = UserPopulation::generate(1, 12);
        let tc = c.choose_testcase().unwrap();
        c.perform_run(&pop.users()[0], Task::Quake, &tc, Fidelity::Fast, 5);
        c.persist(&store).unwrap();

        let mut c2 = UucsClient::new(MachineSnapshot::study_machine("h"), 8);
        c2.restore(&store).unwrap();
        assert_eq!(c2.id(), c.id());
        assert_eq!(c2.testcases(), c.testcases());
        assert_eq!(c2.pending(), c.pending());
        std::fs::remove_dir_all(&dir).ok();
    }
}
