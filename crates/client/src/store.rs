//! The client's local text-file stores (Figure 5's "Testcases" and
//! "Results" boxes): downloaded testcases, the assigned identifier, and
//! results not yet uploaded — everything needed to "operate disconnected
//! from the server".

use std::path::{Path, PathBuf};
use uucs_protocol::RunRecord;
use uucs_testcase::{format as tcformat, Testcase};

/// On-disk client state rooted at a directory.
#[derive(Debug, Clone)]
pub struct ClientStore {
    dir: PathBuf,
}

impl ClientStore {
    /// Opens (creating if needed) a store directory.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(ClientStore { dir })
    }

    /// The root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Persists the assigned client id.
    pub fn save_id(&self, id: &str) -> std::io::Result<()> {
        std::fs::write(self.dir.join("id.txt"), format!("{id}\n"))
    }

    /// Loads the assigned id, if the client ever registered.
    pub fn load_id(&self) -> Option<String> {
        std::fs::read_to_string(self.dir.join("id.txt"))
            .ok()
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
    }

    /// Persists the downloaded testcase library.
    pub fn save_testcases(&self, tcs: &[Testcase]) -> std::io::Result<()> {
        std::fs::write(self.dir.join("testcases.txt"), tcformat::emit_many(tcs))
    }

    /// Loads the testcase library (empty if never synced).
    pub fn load_testcases(&self) -> std::io::Result<Vec<Testcase>> {
        match std::fs::read_to_string(self.dir.join("testcases.txt")) {
            Ok(text) => tcformat::parse_many(&text)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
            Err(e) => Err(e),
        }
    }

    /// Persists results awaiting upload.
    pub fn save_pending(&self, records: &[RunRecord]) -> std::io::Result<()> {
        std::fs::write(
            self.dir.join("results-pending.txt"),
            RunRecord::emit_many(records),
        )
    }

    /// Loads results awaiting upload.
    pub fn load_pending(&self) -> std::io::Result<Vec<RunRecord>> {
        match std::fs::read_to_string(self.dir.join("results-pending.txt")) {
            Ok(text) => RunRecord::parse_many(&text)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
            Err(e) => Err(e),
        }
    }

    /// Appends uploaded results to the local archive (the client keeps
    /// what it measured).
    pub fn archive(&self, records: &[RunRecord]) -> std::io::Result<()> {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.dir.join("results-archive.txt"))?;
        f.write_all(RunRecord::emit_many(records).as_bytes())
    }

    /// Loads the local archive.
    pub fn load_archive(&self) -> std::io::Result<Vec<RunRecord>> {
        match std::fs::read_to_string(self.dir.join("results-archive.txt")) {
            Ok(text) => RunRecord::parse_many(&text)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uucs_protocol::{MonitorSummary, RunOutcome};
    use uucs_testcase::{ExerciseSpec, Resource};

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("uucs-clientstore-{name}-{}", std::process::id()))
    }

    fn rec(n: u32) -> RunRecord {
        RunRecord {
            client: "c".into(),
            user: format!("u{n}"),
            testcase: "t".into(),
            task: "IE".into(),
            outcome: RunOutcome::Discomfort,
            offset_secs: n as f64,
            last_levels: vec![],
            monitor: MonitorSummary::default(),
        }
    }

    #[test]
    fn id_roundtrip_and_absence() {
        let dir = tmp("id");
        let s = ClientStore::open(&dir).unwrap();
        assert_eq!(s.load_id(), None);
        s.save_id("client-0042").unwrap();
        assert_eq!(s.load_id(), Some("client-0042".into()));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn testcases_roundtrip_and_default_empty() {
        let dir = tmp("tc");
        let s = ClientStore::open(&dir).unwrap();
        assert!(s.load_testcases().unwrap().is_empty());
        let tcs = vec![Testcase::single(
            "a",
            1.0,
            Resource::Memory,
            ExerciseSpec::Ramp {
                level: 1.0,
                duration: 10.0,
            },
        )];
        s.save_testcases(&tcs).unwrap();
        assert_eq!(s.load_testcases().unwrap(), tcs);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pending_and_archive_flow() {
        let dir = tmp("flow");
        let s = ClientStore::open(&dir).unwrap();
        s.save_pending(&[rec(1), rec(2)]).unwrap();
        assert_eq!(s.load_pending().unwrap().len(), 2);
        // Upload: archive then clear pending.
        s.archive(&[rec(1), rec(2)]).unwrap();
        s.save_pending(&[]).unwrap();
        s.archive(&[rec(3)]).unwrap();
        assert_eq!(s.load_pending().unwrap().len(), 0);
        assert_eq!(s.load_archive().unwrap().len(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }
}
