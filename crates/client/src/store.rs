//! The client's local text-file stores (Figure 5's "Testcases" and
//! "Results" boxes): downloaded testcases, the assigned identifier, and
//! results not yet uploaded — everything needed to "operate disconnected
//! from the server".

use std::path::{Path, PathBuf};
use uucs_protocol::RunRecord;
use uucs_testcase::{format as tcformat, Testcase};

/// On-disk client state rooted at a directory.
#[derive(Debug, Clone)]
pub struct ClientStore {
    dir: PathBuf,
}

impl ClientStore {
    /// Opens (creating if needed) a store directory.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(ClientStore { dir })
    }

    /// The root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Loads this store's registration idempotency token, minting and
    /// persisting one on the first call.
    ///
    /// The token is what the server keys client identity on, so it must
    /// be (a) stable across restarts of *this* installation — hence
    /// persisted in the store directory — and (b) unique across
    /// machines, hence minted from machine-local entropy rather than
    /// the RNG seed: two participants launched with the same `--seed`
    /// (the default is a constant) must not collapse into one
    /// server-side identity, where their independent batch counters
    /// would fight over a single dedup horizon and one machine's
    /// uploads would be ACKed as replays without ever being stored.
    pub fn reg_token(&self) -> std::io::Result<String> {
        let path = self.dir.join("reg-token.txt");
        match std::fs::read_to_string(&path) {
            Ok(text) => {
                let token = text.trim();
                if !token.is_empty() {
                    return Ok(token.to_string());
                }
            }
            Err(e) if e.kind() != std::io::ErrorKind::NotFound => return Err(e),
            Err(_) => {}
        }
        let token = mint_token();
        std::fs::write(&path, format!("{token}\n"))?;
        Ok(token)
    }

    /// Persists the assigned client id.
    pub fn save_id(&self, id: &str) -> std::io::Result<()> {
        std::fs::write(self.dir.join("id.txt"), format!("{id}\n"))
    }

    /// Loads the assigned id, if the client ever registered.
    pub fn load_id(&self) -> Option<String> {
        std::fs::read_to_string(self.dir.join("id.txt"))
            .ok()
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
    }

    /// Persists the downloaded testcase library.
    pub fn save_testcases(&self, tcs: &[Testcase]) -> std::io::Result<()> {
        std::fs::write(self.dir.join("testcases.txt"), tcformat::emit_many(tcs))
    }

    /// Loads the testcase library (empty if never synced).
    pub fn load_testcases(&self) -> std::io::Result<Vec<Testcase>> {
        match std::fs::read_to_string(self.dir.join("testcases.txt")) {
            Ok(text) => tcformat::parse_many(&text)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
            Err(e) => Err(e),
        }
    }

    /// Persists results awaiting upload.
    pub fn save_pending(&self, records: &[RunRecord]) -> std::io::Result<()> {
        std::fs::write(
            self.dir.join("results-pending.txt"),
            RunRecord::emit_many(records),
        )
    }

    /// Loads results awaiting upload.
    pub fn load_pending(&self) -> std::io::Result<Vec<RunRecord>> {
        match std::fs::read_to_string(self.dir.join("results-pending.txt")) {
            Ok(text) => RunRecord::parse_many(&text)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
            Err(e) => Err(e),
        }
    }

    /// Appends one freshly measured record to the pending spool. Unlike
    /// [`save_pending`](Self::save_pending), which rewrites the file,
    /// this journals the record the moment it exists — a crash between
    /// runs loses nothing.
    pub fn spool_append(&self, record: &RunRecord) -> std::io::Result<()> {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.dir.join("results-pending.txt"))?;
        f.write_all(RunRecord::emit_many(std::slice::from_ref(record)).as_bytes())
    }

    /// Persists the last batch sequence number this client assigned.
    pub fn save_seq(&self, seq: u64) -> std::io::Result<()> {
        std::fs::write(self.dir.join("seq.txt"), format!("{seq}\n"))
    }

    /// Loads the last assigned batch sequence number (0 if never synced).
    pub fn load_seq(&self) -> u64 {
        self.try_load_seq().unwrap_or(0)
    }

    /// Loads the batch sequence number, or `None` if the counter file is
    /// missing or unreadable. The distinction matters during restore: a
    /// store that has an id but no counter has *lost* state, and must
    /// not be allowed to reuse burned sequence numbers.
    pub fn try_load_seq(&self) -> Option<u64> {
        std::fs::read_to_string(self.dir.join("seq.txt"))
            .ok()
            .and_then(|s| s.trim().parse().ok())
    }

    /// Persists the in-flight batch: records frozen under `seq`, sent
    /// but not yet acknowledged. On restart the client re-uploads this
    /// exact batch — the server's dedup horizon makes the retry safe.
    pub fn save_inflight(&self, seq: u64, records: &[RunRecord]) -> std::io::Result<()> {
        let mut text = format!("BATCH {seq}\n");
        text.push_str(&RunRecord::emit_many(records));
        std::fs::write(self.dir.join("inflight.txt"), text)
    }

    /// Loads the in-flight batch, if an upload was cut off mid-ack.
    pub fn load_inflight(&self) -> std::io::Result<Option<(u64, Vec<RunRecord>)>> {
        let text = match std::fs::read_to_string(self.dir.join("inflight.txt")) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        let bad = |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, m.to_string());
        let (header, rest) = text
            .split_once('\n')
            .ok_or_else(|| bad("inflight file missing header"))?;
        let seq = header
            .strip_prefix("BATCH ")
            .and_then(|s| s.trim().parse().ok())
            .ok_or_else(|| bad("inflight header is not 'BATCH <seq>'"))?;
        let records = RunRecord::parse_many(rest).map_err(|e| bad(&e))?;
        Ok(Some((seq, records)))
    }

    /// Forgets the in-flight batch (it was acknowledged).
    pub fn clear_inflight(&self) -> std::io::Result<()> {
        match std::fs::remove_file(self.dir.join("inflight.txt")) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Appends uploaded results to the local archive (the client keeps
    /// what it measured).
    pub fn archive(&self, records: &[RunRecord]) -> std::io::Result<()> {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.dir.join("results-archive.txt"))?;
        f.write_all(RunRecord::emit_many(records).as_bytes())
    }

    /// Loads the local archive.
    pub fn load_archive(&self) -> std::io::Result<Vec<RunRecord>> {
        match std::fs::read_to_string(self.dir.join("results-archive.txt")) {
            Ok(text) => RunRecord::parse_many(&text)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
            Err(e) => Err(e),
        }
    }
}

/// Mints a fresh 128-bit registration token from machine-local entropy:
/// wall clock, process id, and an ASLR-randomized stack address, each
/// whitened through splitmix64. No cryptographic strength is claimed —
/// the token only needs to make accidental cross-machine collision
/// (the seed-collision failure mode) implausible, not resist forgery.
fn mint_token() -> String {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::{SystemTime, UNIX_EPOCH};
    use uucs_stats::rng::splitmix64;
    // Distinguishes stores minted in the same process within one clock
    // tick (test suites open many stores back to back).
    static MINTED: AtomicU64 = AtomicU64::new(0);
    let now = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or_default();
    let stack_marker = 0u8;
    let hi = splitmix64(now.as_secs()) ^ splitmix64(u64::from(std::process::id()).rotate_left(32));
    let lo = splitmix64(now.subsec_nanos() as u64)
        ^ splitmix64(&stack_marker as *const u8 as u64)
        ^ splitmix64(!MINTED.fetch_add(1, Ordering::Relaxed));
    format!("tok-{hi:016x}{lo:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use uucs_protocol::{MonitorSummary, RunOutcome};
    use uucs_testcase::{ExerciseSpec, Resource};

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("uucs-clientstore-{name}-{}", std::process::id()))
    }

    fn rec(n: u32) -> RunRecord {
        RunRecord {
            client: "c".into(),
            user: format!("u{n}"),
            testcase: "t".into(),
            task: "IE".into(),
            skill: "Typical".into(),
            outcome: RunOutcome::Discomfort,
            offset_secs: n as f64,
            last_levels: vec![],
            monitor: MonitorSummary::default(),
        }
    }

    #[test]
    fn id_roundtrip_and_absence() {
        let dir = tmp("id");
        let s = ClientStore::open(&dir).unwrap();
        assert_eq!(s.load_id(), None);
        s.save_id("client-0042").unwrap();
        assert_eq!(s.load_id(), Some("client-0042".into()));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The registration token is minted once per store (stable across
    /// reopens — that is what keeps a reinstalled client the same
    /// server-side identity) and distinct across stores (that is what
    /// keeps two machines with the same seed *different* identities).
    #[test]
    fn reg_token_is_stable_per_store_and_distinct_across_stores() {
        let dir_a = tmp("tok-a");
        let dir_b = tmp("tok-b");
        let a = ClientStore::open(&dir_a).unwrap();
        let tok_a = a.reg_token().unwrap();
        assert!(tok_a.starts_with("tok-"), "odd token {tok_a:?}");
        assert_eq!(a.reg_token().unwrap(), tok_a, "token changed in place");
        let reopened = ClientStore::open(&dir_a).unwrap();
        assert_eq!(reopened.reg_token().unwrap(), tok_a, "token lost on reopen");
        let b = ClientStore::open(&dir_b).unwrap();
        assert_ne!(b.reg_token().unwrap(), tok_a, "two stores, one identity");
        std::fs::remove_dir_all(&dir_a).ok();
        std::fs::remove_dir_all(&dir_b).ok();
    }

    #[test]
    fn testcases_roundtrip_and_default_empty() {
        let dir = tmp("tc");
        let s = ClientStore::open(&dir).unwrap();
        assert!(s.load_testcases().unwrap().is_empty());
        let tcs = vec![Testcase::single(
            "a",
            1.0,
            Resource::Memory,
            ExerciseSpec::Ramp {
                level: 1.0,
                duration: 10.0,
            },
        )];
        s.save_testcases(&tcs).unwrap();
        assert_eq!(s.load_testcases().unwrap(), tcs);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn spool_append_accumulates_without_rewrites() {
        let dir = tmp("spool");
        let s = ClientStore::open(&dir).unwrap();
        s.spool_append(&rec(1)).unwrap();
        s.spool_append(&rec(2)).unwrap();
        assert_eq!(s.load_pending().unwrap(), vec![rec(1), rec(2)]);
        // save_pending still rewrites, so the two paths compose.
        s.save_pending(&[rec(3)]).unwrap();
        s.spool_append(&rec(4)).unwrap();
        assert_eq!(s.load_pending().unwrap(), vec![rec(3), rec(4)]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn seq_and_inflight_roundtrip() {
        let dir = tmp("inflight");
        let s = ClientStore::open(&dir).unwrap();
        assert_eq!(s.load_seq(), 0);
        assert!(s.load_inflight().unwrap().is_none());
        s.save_seq(7).unwrap();
        s.save_inflight(7, &[rec(1), rec(2)]).unwrap();
        assert_eq!(s.load_seq(), 7);
        assert_eq!(s.load_inflight().unwrap(), Some((7, vec![rec(1), rec(2)])));
        s.clear_inflight().unwrap();
        assert!(s.load_inflight().unwrap().is_none());
        // Clearing twice is fine.
        s.clear_inflight().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_inflight_file_is_an_error_not_a_panic() {
        let dir = tmp("torn-inflight");
        let s = ClientStore::open(&dir).unwrap();
        std::fs::write(dir.join("inflight.txt"), "BATCH not-a-number\n").unwrap();
        assert!(s.load_inflight().is_err());
        std::fs::write(dir.join("inflight.txt"), "no header at all").unwrap();
        assert!(s.load_inflight().is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pending_and_archive_flow() {
        let dir = tmp("flow");
        let s = ClientStore::open(&dir).unwrap();
        s.save_pending(&[rec(1), rec(2)]).unwrap();
        assert_eq!(s.load_pending().unwrap().len(), 2);
        // Upload: archive then clear pending.
        s.archive(&[rec(1), rec(2)]).unwrap();
        s.save_pending(&[]).unwrap();
        s.archive(&[rec(3)]).unwrap();
        assert_eq!(s.load_pending().unwrap().len(), 0);
        assert_eq!(s.load_archive().unwrap().len(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }
}
