//! The server's message handler and registry, over sharded stores.
//!
//! Requests route to a shard by a stable hash of their key (client id,
//! testcase id — see [`crate::shard`]), so unrelated clients never
//! contend on a lock. With group commit enabled
//! ([`UucsServer::with_group_commit`]) the durable verbs split into two
//! halves: [`UucsServer::handle_deferred`] appends under the shard lock
//! and returns a [`CommitTicket`] alongside the provisional reply, and
//! the caller redeems the ticket (blocking [`GroupCommitter::wait`] in
//! `Endpoint::handle`, nonblocking `poll` in the worker-pool front end)
//! before the client sees the ack — preserving the invariant that an
//! `Ack` means "journaled on stable storage".

use crate::commit::{CommitTicket, GroupCommitter, StoreFlavor};
use crate::models::{observations_of, ModelStore};
use crate::shard::{Sharded, StoreSet};
use crate::store::{BatchStatus, RegistryStore, ResultStore, StoreError, TestcaseStore};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;
use uucs_modelsvc::{ComfortModel, QuantileSketch};
use uucs_pagecache::DiskScheduler;
use uucs_protocol::wire::Endpoint;
use uucs_protocol::{ClientMsg, MachineSnapshot, ServerMsg, WalEntry, WIRE_VERSION_BINARY};
use uucs_stats::Pcg64;
use uucs_wal::crc::crc32;
use uucs_telemetry::{metrics, Counter, Gauge, Histogram};
use uucs_testcase::format as tcformat;

/// Pre-registered telemetry handles for one wire verb: request count,
/// error count, handling-latency histogram. Registered once at first
/// request so the per-request cost is three atomic ops, not a registry
/// lookup.
struct VerbMetrics {
    count: Counter,
    errors: Counter,
    ns: Histogram,
}

impl VerbMetrics {
    fn new(verb: &str) -> Self {
        VerbMetrics {
            count: metrics::counter(&format!("server.verb.{verb}.count")),
            errors: metrics::counter(&format!("server.verb.{verb}.errors")),
            ns: metrics::histogram(&format!("server.verb.{verb}.ns")),
        }
    }
}

struct ServerMetrics {
    hello: VerbMetrics,
    register: VerbMetrics,
    sync: VerbMetrics,
    upload: VerbMetrics,
    model: VerbMetrics,
    modeldelta: VerbMetrics,
    advice: VerbMetrics,
    stats: VerbMetrics,
    bye: VerbMetrics,
}

fn server_metrics() -> &'static ServerMetrics {
    static METRICS: OnceLock<ServerMetrics> = OnceLock::new();
    METRICS.get_or_init(|| ServerMetrics {
        hello: VerbMetrics::new("hello"),
        register: VerbMetrics::new("register"),
        sync: VerbMetrics::new("sync"),
        upload: VerbMetrics::new("upload"),
        model: VerbMetrics::new("model"),
        modeldelta: VerbMetrics::new("modeldelta"),
        advice: VerbMetrics::new("advice"),
        stats: VerbMetrics::new("stats"),
        bye: VerbMetrics::new("bye"),
    })
}

/// Telemetry for the epoch-delta model-sync path: how many `MODELDELTA`
/// queries were answered with a delta vs. fell back to the full sketch.
struct DeltaMetrics {
    served: Counter,
    fallback: Counter,
}

fn delta_metrics() -> &'static DeltaMetrics {
    static METRICS: OnceLock<DeltaMetrics> = OnceLock::new();
    METRICS.get_or_init(|| DeltaMetrics {
        served: metrics::counter("server.model.delta.served"),
        fallback: metrics::counter("server.model.delta.fallback"),
    })
}

/// How many past merged-sketch snapshots the server retains per
/// `(resource, task)` query key for answering `MODELDELTA`. A client
/// more than this many *distinct served epochs* behind simply gets the
/// full sketch — correctness never depends on retention.
const DELTA_HISTORY: usize = 8;

/// One retained merged-sketch snapshot: the epoch it was served at, the
/// CRC32 of its encoded text (what clients echo as `basecrc`), and the
/// encoded text itself (decoded lazily — only a delta request pays).
struct DeltaSnap {
    epoch: u64,
    crc: u32,
    encoded: String,
}

/// The `MODELDELTA` base-history map: newest-first retained snapshots
/// per (resource name, task filter) query key.
type DeltaHistory = HashMap<(&'static str, Option<String>), VecDeque<DeltaSnap>>;

/// Per-shard occupancy gauges, pre-registered so the hot paths pay one
/// atomic store. `server.shard.results.<i>.records` and
/// `server.shard.registry.<i>.clients`.
struct ShardGauges {
    results: Vec<Gauge>,
    registry: Vec<Gauge>,
}

impl ShardGauges {
    fn new(stores: &StoreSet) -> Self {
        let results: Vec<Gauge> = (0..stores.results.count())
            .map(|i| metrics::gauge(&format!("server.shard.results.{i}.records")))
            .collect();
        let registry: Vec<Gauge> = (0..stores.registry.count())
            .map(|i| metrics::gauge(&format!("server.shard.registry.{i}.clients")))
            .collect();
        for (i, g) in results.iter().enumerate() {
            g.set(stores.results.read(i).len() as i64);
        }
        for (i, g) in registry.iter().enumerate() {
            g.set(stores.registry.read(i).len() as i64);
        }
        ShardGauges { results, registry }
    }
}

/// The error a mutating verb reports when its shard's lock was poisoned
/// by an earlier panic. The shard has already healed for the next
/// request (see [`Sharded::try_write`]).
fn poisoned(what: &str) -> ServerMsg {
    ServerMsg::Error(format!(
        "internal: {what} store was poisoned by an earlier panic; recovered, retry"
    ))
}

/// Where a leader ships every committed mutation. Implemented by the
/// cluster tier's replication hub; the server stays ignorant of wire
/// details and ack policy — under `--repl-ack=quorum` the sink blocks
/// until a follower acknowledged the entry, under `local` it returns as
/// soon as the entry is queued.
///
/// The sink is invoked *after* the local store accepted the mutation
/// but *before* the client's ack. Shipping ahead of the local fsync is
/// safe: if the leader dies in the gap, the follower holds an entry the
/// client was never acked — the client retries with the same sequence
/// number and the per-client horizon dedups it, so exactly-once holds.
pub trait ReplicationSink: Send + Sync {
    /// Ships one entry; an `Err` under quorum ack fails the client op.
    fn replicate(&self, entry: &WalEntry) -> std::io::Result<()>;
}

/// The UUCS server state. Thread-safe: the TCP front end shares one
/// instance across connections; each verb locks only the one shard its
/// key routes to.
pub struct UucsServer {
    stores: Arc<StoreSet>,
    /// Group-commit coordinator (None = the stores fsync per their own
    /// `SyncPolicy`, as before).
    committer: Option<Arc<GroupCommitter>>,
    commit_thread: Option<JoinHandle<()>>,
    /// Dedicated disk-I/O thread pool: when present, the group
    /// committer fans its per-shard fsyncs out here and segment
    /// rotations defer their fsync to the next commit pass.
    io_scheduler: Option<Arc<DiskScheduler>>,
    /// When false, the `UPLOAD` path skips comfort-model updates (the
    /// `MODEL`/`ADVICE` verbs then serve a frozen — typically empty —
    /// model). Benchmarks use this to isolate the update cost.
    model_updates: bool,
    /// Seed for the per-client sampling permutations.
    sample_seed: u64,
    /// Last assigned client-id number; ids are globally unique across
    /// shards, so assignment is a global atomic, not a per-shard count.
    next_client: AtomicU64,
    /// Serializes registrations: token dedup must scan every shard
    /// before a new id is minted, and two concurrent registrations with
    /// the same token must not both mint.
    reg_lock: Mutex<()>,
    shard_gauges: ShardGauges,
    /// Committed mutations are mirrored here when the node leads a
    /// replication tier (see [`ReplicationSink`]). Set once, after
    /// construction — the sink (the cluster hub) is built around the
    /// server, so it cannot exist at constructor time.
    replication: OnceLock<Arc<dyn ReplicationSink>>,
    /// A follower's engine: mutating verbs (`REGISTER`, `UPLOAD`) are
    /// refused with a retryable error while reads (`SYNC`, `MODEL`,
    /// `ADVICE`, `STATS`) keep serving — degraded advice is acceptable,
    /// divergent writes are not. Flipped off at promotion.
    read_only: AtomicBool,
    /// Recent merged-sketch snapshots per `(resource name, task)` query
    /// key, newest first — the bases `MODELDELTA` can diff against. A
    /// snapshot is recorded whenever a model query serves a new epoch,
    /// so any epoch a client *could* hold came through here. Empty on a
    /// freshly promoted follower, which makes every skewed delta
    /// request fall back to the full sketch — the safe answer.
    delta_history: Mutex<DeltaHistory>,
}

impl UucsServer {
    /// Creates a server around a testcase library, with a fresh
    /// non-durable result store.
    pub fn new(testcases: TestcaseStore, sample_seed: u64) -> Self {
        Self::with_stores(testcases, ResultStore::new(), sample_seed)
    }

    /// Creates a server around explicit testcase/result stores with a
    /// fresh in-memory registry — the entry point for WAL-backed
    /// durability of the data stores, where every accepted mutation is
    /// journaled before it is acknowledged.
    pub fn with_stores(testcases: TestcaseStore, results: ResultStore, sample_seed: u64) -> Self {
        Self::with_all_stores(testcases, results, RegistryStore::new(), sample_seed)
    }

    /// Creates a server around all three stores, including a (typically
    /// WAL-recovered) client registry, so a restarted server still
    /// recognizes every id it handed out and every client's upload
    /// dedup horizon. Single-shard: the legacy layout.
    pub fn with_all_stores(
        testcases: TestcaseStore,
        results: ResultStore,
        registry: RegistryStore,
        sample_seed: u64,
    ) -> Self {
        Self::with_store_set(
            StoreSet::from_single(testcases, results, registry, ModelStore::new()),
            sample_seed,
        )
    }

    /// Creates a server over an explicit (typically sharded, see
    /// [`StoreSet::open`]) store set.
    pub fn with_store_set(stores: StoreSet, sample_seed: u64) -> Self {
        let stores = Arc::new(stores);
        let mut max_id = 0u64;
        for i in 0..stores.registry.count() {
            for (id, _) in stores.registry.read(i).all() {
                if let Some(n) = id.strip_prefix("client-").and_then(|s| s.parse::<u64>().ok()) {
                    max_id = max_id.max(n);
                }
            }
        }
        let shard_gauges = ShardGauges::new(&stores);
        UucsServer {
            stores,
            committer: None,
            commit_thread: None,
            io_scheduler: None,
            model_updates: true,
            sample_seed,
            next_client: AtomicU64::new(max_id),
            reg_lock: Mutex::new(()),
            shard_gauges,
            replication: OnceLock::new(),
            read_only: AtomicBool::new(false),
            delta_history: Mutex::new(HashMap::new()),
        }
    }

    /// Mirrors every committed mutation into `sink` from now on — the
    /// leader side of the replication tier. One-shot: a second call is
    /// ignored (the first sink stays wired).
    pub fn set_replication(&self, sink: Arc<dyn ReplicationSink>) {
        let _ = self.replication.set(sink);
    }

    /// Switches the mutating verbs on (`false`, a leader) or off
    /// (`true`, a follower). Takes effect for the next request.
    pub fn set_read_only(&self, read_only: bool) {
        self.read_only.store(read_only, Ordering::SeqCst);
    }

    /// Whether mutating verbs are currently refused (follower mode).
    pub fn is_read_only(&self) -> bool {
        self.read_only.load(Ordering::SeqCst)
    }

    /// Replaces the comfort-model store — the entry point for WAL-backed
    /// model durability, paired with the data stores' `open_wal`. Must
    /// run before [`UucsServer::with_group_commit`] (the committer
    /// captures the store set).
    pub fn with_model_store(mut self, models: ModelStore) -> Self {
        let set = Arc::get_mut(&mut self.stores)
            .expect("install the model store before starting group commit");
        set.models = Sharded::new(vec![models]);
        self
    }

    /// Disables comfort-model updates on the `UPLOAD` path. The model
    /// verbs keep answering from whatever model the server holds; used
    /// by benchmarks to measure the upload path with aggregation off.
    pub fn without_model_updates(mut self) -> Self {
        self.model_updates = false;
        self
    }

    /// Starts the group-commit thread: store WALs should then run at
    /// `SyncPolicy::Never`, and every durable verb's ack waits for the
    /// committer's batched fsync instead of paying its own. `interval`
    /// is the gathering window per fsync pass.
    pub fn with_group_commit(mut self, interval: Duration) -> Self {
        if self.io_scheduler.is_some() {
            // The committer's regular sync passes drain deferred
            // rotation syncs, so rotation can leave the append path.
            self.stores.set_deferred_rotation_sync(true);
        }
        let (committer, handle) = GroupCommitter::start_with(
            self.stores.clone(),
            interval,
            self.io_scheduler.clone(),
        );
        self.committer = Some(committer);
        self.commit_thread = Some(handle);
        self
    }

    /// Installs the disk-scheduler thread pool (see
    /// [`crate::storage::StorageProfile::scheduler`]). Must run before
    /// [`UucsServer::with_group_commit`]: the committer captures it,
    /// fans per-shard fsyncs out to its threads, and store WALs defer
    /// segment-rotation fsyncs to the committer's passes.
    pub fn with_io_scheduler(mut self, scheduler: Arc<DiskScheduler>) -> Self {
        self.io_scheduler = Some(scheduler);
        self
    }

    /// The installed disk scheduler, if any.
    pub fn io_scheduler(&self) -> Option<Arc<DiskScheduler>> {
        self.io_scheduler.clone()
    }

    /// The group-commit coordinator, when enabled — the worker-pool
    /// front end polls it to finish deferred acks without blocking.
    pub fn group_committer(&self) -> Option<Arc<GroupCommitter>> {
        self.committer.clone()
    }

    /// The store shard count (all families open with the same count).
    pub fn shard_count(&self) -> usize {
        self.stores.results.count()
    }

    /// The comfort model's current epoch: the sum over shards (each
    /// shard mints its own epochs; only the sum — still monotone — is
    /// client-visible).
    pub fn model_epoch(&self) -> u64 {
        (0..self.stores.models.count())
            .map(|i| self.stores.models.read(i).epoch())
            .sum()
    }

    /// The merged comfort-model sketch for a resource (optionally one
    /// task) — offline analysis and test cross-checks. Merges across
    /// shards; sketch merges are exact, so sharding is invisible here.
    pub fn model_sketch(
        &self,
        resource: uucs_testcase::Resource,
        task: Option<&str>,
    ) -> QuantileSketch {
        let guards = self.stores.models.read_all();
        let mut out = QuantileSketch::for_resource(resource);
        for g in &guards {
            out.merge(&g.merged_sketch(resource, task))
                .expect("shard sketches of one resource share a config");
        }
        out
    }

    /// Adds a testcase to the library at runtime ("new testcases ... can
    /// be added to the server at any time"). Rejects duplicates; with a
    /// WAL-backed store the addition is durable once this returns `Ok`
    /// (under group commit, this waits for the covering fsync).
    pub fn add_testcase(&self, tc: uucs_testcase::Testcase) -> Result<(), StoreError> {
        let shard = self.stores.testcases.shard_for(tc.id.as_str());
        let mut guard = self.stores.testcases.write_recovered(shard);
        guard.add(tc.clone())?;
        let lsn = guard.wal_next_lsn();
        drop(guard);
        self.replicate(&WalEntry::Testcase(tc))
            .map_err(StoreError::Io)?;
        if let Some(ticket) = self.ticket(StoreFlavor::Testcases, shard, lsn) {
            self.committer
                .as_ref()
                .expect("ticket implies committer")
                .wait(ticket)
                .map_err(|e| StoreError::Io(crate::store::invalid(e)))?;
        }
        Ok(())
    }

    /// Folds every store's journal into a checkpoint and drops the
    /// covered segments. A no-op (returning `false`) for plain stores.
    pub fn compact(&self) -> std::io::Result<bool> {
        let mut any = false;
        for i in 0..self.stores.testcases.count() {
            any |= self.stores.testcases.write_recovered(i).compact()?;
        }
        for i in 0..self.stores.results.count() {
            any |= self.stores.results.write_recovered(i).compact()?;
        }
        for i in 0..self.stores.registry.count() {
            any |= self.stores.registry.write_recovered(i).compact()?;
        }
        for i in 0..self.stores.models.count() {
            any |= self.stores.models.write_recovered(i).compact()?;
        }
        Ok(any)
    }

    /// Number of testcases in the library.
    pub fn testcase_count(&self) -> usize {
        (0..self.stores.testcases.count())
            .map(|i| self.stores.testcases.read(i).len())
            .sum()
    }

    /// Number of uploaded result records.
    pub fn result_count(&self) -> usize {
        (0..self.stores.results.count())
            .map(|i| self.stores.results.read(i).len())
            .sum()
    }

    /// Snapshot of all uploaded results (cloned), shard order.
    pub fn results(&self) -> Vec<uucs_protocol::RunRecord> {
        let mut out = Vec::new();
        for g in self.stores.results.read_all() {
            out.extend(g.all().iter().cloned());
        }
        out
    }

    /// Number of registered clients.
    pub fn client_count(&self) -> usize {
        (0..self.stores.registry.count())
            .map(|i| self.stores.registry.read(i).len())
            .sum()
    }

    /// The registered snapshot for a client id.
    pub fn snapshot_of(&self, client: &str) -> Option<MachineSnapshot> {
        let shard = self.stores.registry.shard_for(client);
        self.stores.registry.read(shard).get(client).cloned()
    }

    /// The highest upload batch sequence number applied for a client.
    pub fn applied_seq(&self, client: &str) -> u64 {
        let shard = self.stores.results.shard_for(client);
        self.stores.results.read(shard).applied_seq(client)
    }

    /// Saves the merged stores under a directory (`testcases.txt`,
    /// `results.txt`) — the paper's whole-file text checkpoints.
    pub fn save(&self, dir: &std::path::Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let mut tcs = Vec::new();
        for g in self.stores.testcases.read_all() {
            tcs.extend(g.all().iter().cloned());
        }
        std::fs::write(dir.join("testcases.txt"), tcformat::emit_many(&tcs))?;
        let mut recs = Vec::new();
        for g in self.stores.results.read_all() {
            recs.extend(g.all().iter().cloned());
        }
        std::fs::write(
            dir.join("results.txt"),
            uucs_protocol::RunRecord::emit_many(&recs),
        )
    }

    /// Applies one replicated WAL entry into this node's own stores —
    /// the follower half of WAL shipping. Idempotent: a re-delivered
    /// entry (reconnect overlap, snapshot-then-tail seam) is absorbed
    /// without a second copy, so the stream only has to be at-least-once.
    ///
    /// Comfort-model state is deliberately *not* minted here: the model
    /// converges through gossip of each node's own contribution, and
    /// folding replicated batches locally would double-count them after
    /// a promotion. `Model` entries are ignored for the same reason.
    pub fn apply_entry(&self, entry: &WalEntry) -> std::io::Result<()> {
        match entry {
            WalEntry::Testcase(tc) => {
                let shard = self.stores.testcases.shard_for(tc.id.as_str());
                let mut guard = self.stores.testcases.write_recovered(shard);
                if guard.get(tc.id.as_str()).is_none() {
                    guard
                        .add(tc.clone())
                        .map_err(|e| crate::store::invalid(e.to_string()))?;
                }
                Ok(())
            }
            WalEntry::Client {
                id,
                token,
                snapshot,
            } => {
                let _serial = self.reg_lock.lock().unwrap_or_else(PoisonError::into_inner);
                let shard = self.stores.registry.shard_for(id);
                let mut reg = self.stores.registry.write_recovered(shard);
                if reg.get(id).is_none() {
                    reg.register_with_id(id.clone(), snapshot.clone(), token)
                        .map_err(|e| crate::store::invalid(e.to_string()))?;
                    let len = reg.len();
                    drop(reg);
                    self.shard_gauges.registry[shard].set(len as i64);
                    // Keep the id counter ahead of every replicated id so
                    // a promoted follower never re-mints one.
                    if let Some(n) = id.strip_prefix("client-").and_then(|s| s.parse().ok()) {
                        self.next_client.fetch_max(n, Ordering::SeqCst);
                    }
                }
                Ok(())
            }
            WalEntry::Batch {
                client,
                seq,
                records,
            } => {
                let shard = self.stores.results.shard_for(client);
                let mut results = self.stores.results.write_recovered(shard);
                results
                    .append_batch(client, *seq, records.clone())
                    .map_err(|e| crate::store::invalid(e.to_string()))?;
                let len = results.len();
                drop(results);
                self.shard_gauges.results[shard].set(len as i64);
                Ok(())
            }
            WalEntry::Result(rec) => {
                let shard = self.stores.results.shard_for(rec.client.as_str());
                self.stores
                    .results
                    .write_recovered(shard)
                    .append(vec![rec.clone()])
                    .map_err(|e| crate::store::invalid(e.to_string()))?;
                Ok(())
            }
            WalEntry::Model(_) => Ok(()),
        }
    }

    /// Applies one entry of a *snapshot* backfill stream. Snapshot
    /// `Batch` entries are synthetic — the client's full record set at
    /// its current sequence horizon — so a follower holding partial
    /// state (it was tailing the old leader before the seam) must
    /// absorb them record-by-record: records it already applied are
    /// skipped by equality, the rest append, and the horizon jumps to
    /// the snapshot's sequence. All other entries apply as in
    /// [`UucsServer::apply_entry`].
    pub fn apply_snapshot_entry(&self, entry: &WalEntry) -> std::io::Result<()> {
        let WalEntry::Batch {
            client,
            seq,
            records,
        } = entry
        else {
            return self.apply_entry(entry);
        };
        let shard = self.stores.results.shard_for(client);
        let mut results = self.stores.results.write_recovered(shard);
        if results.applied_seq(client) >= *seq {
            return Ok(());
        }
        let fresh: Vec<_> = records
            .iter()
            .filter(|r| !results.all().iter().any(|have| have == *r))
            .cloned()
            .collect();
        results
            .append_batch(client, *seq, fresh)
            .map_err(|e| crate::store::invalid(e.to_string()))?;
        let len = results.len();
        drop(results);
        self.shard_gauges.results[shard].set(len as i64);
        Ok(())
    }

    /// Folds the current store state into a stream of self-contained
    /// WAL entries — the backfill snapshot a leader sends a follower
    /// whose watermark predates the retained replication log. One
    /// `Client` entry per registration (token included, so the promoted
    /// follower honors re-registrations), then one synthetic `Batch`
    /// per client at its current applied sequence carrying all its
    /// records — applying it installs both the records and the upload
    /// dedup horizon in one step — then every `Testcase`.
    pub fn export_entries(&self) -> Vec<WalEntry> {
        let mut out = Vec::new();
        let mut clients = Vec::new();
        for i in 0..self.stores.registry.count() {
            let reg = self.stores.registry.read(i);
            for (id, snapshot) in reg.all() {
                let token = reg.token_of(id).unwrap_or("").to_string();
                out.push(WalEntry::Client {
                    id: id.clone(),
                    token,
                    snapshot: snapshot.clone(),
                });
                clients.push(id.clone());
            }
        }
        for id in clients {
            let shard = self.stores.results.shard_for(&id);
            let results = self.stores.results.read(shard);
            let seq = results.applied_seq(&id);
            let records: Vec<_> = results
                .all()
                .iter()
                .filter(|r| r.client == id)
                .cloned()
                .collect();
            if seq > 0 || !records.is_empty() {
                out.push(WalEntry::Batch {
                    client: id,
                    seq: seq.max(1),
                    records,
                });
            }
        }
        for g in self.stores.testcases.read_all() {
            for tc in g.all() {
                out.push(WalEntry::Testcase(tc.clone()));
            }
        }
        out
    }

    /// This node's own comfort-model contribution for gossip: the fold
    /// of its model shards (epochs summed, cohorts merged per key).
    /// Deterministic — `BTreeMap` ordering makes the encode canonical.
    pub fn model_contribution(&self) -> ComfortModel {
        let guards = self.stores.models.read_all();
        let mut epoch = 0u64;
        let mut cohorts: std::collections::BTreeMap<_, QuantileSketch> =
            std::collections::BTreeMap::new();
        for g in &guards {
            let model = g.model();
            epoch += model.epoch();
            for (key, sketch) in model.cohorts() {
                match cohorts.entry(key.clone()) {
                    std::collections::btree_map::Entry::Vacant(v) => {
                        v.insert(sketch.clone());
                    }
                    std::collections::btree_map::Entry::Occupied(mut o) => {
                        o.get_mut()
                            .merge(sketch)
                            .expect("cohort sketches of one key share a config");
                    }
                }
            }
        }
        ComfortModel::from_parts(epoch, cohorts)
    }

    /// Installs a merged cluster-wide comfort model (shard 0; the other
    /// shards stay empty — [`UucsServer::model_epoch`] sums, so the
    /// installed epoch is the one clients see). The promotion path:
    /// a follower never minted local model state, so this replaces
    /// nothing.
    pub fn install_model(&self, model: ComfortModel) -> std::io::Result<()> {
        self.stores.models.write_recovered(0).install_model(model)
    }

    /// The client-specific random order of the library. Deterministic per
    /// (server seed, client id), so each sync extends the client's sample
    /// without duplicates — the paper's "growing random sample". The
    /// global order is the concatenation of the shards in index order.
    fn client_order(&self, client: &str, total: usize) -> Vec<usize> {
        let mut rng = Pcg64::new(self.sample_seed).split_str(client);
        let mut idx: Vec<usize> = (0..total).collect();
        rng.shuffle(&mut idx);
        idx
    }

    /// Registers a durability request with the committer, when one is
    /// running and the store is WAL-backed.
    fn ticket(&self, flavor: StoreFlavor, shard: usize, lsn: Option<u64>) -> Option<CommitTicket> {
        match (&self.committer, lsn) {
            (Some(c), Some(upto)) => Some(c.submit(flavor, shard, upto)),
            _ => None,
        }
    }

    /// Handles one message up to (but not including) the durability
    /// wait: the reply is provisional until the returned ticket — if
    /// any — is redeemed against the committer. The worker-pool front
    /// end uses this to keep a worker serving other connections while
    /// an fsync is in flight; [`Endpoint::handle`] wraps it with a
    /// blocking wait. Verb telemetry is recorded here (the appended
    /// latency excludes the commit wait, which `server.commit.ns`
    /// covers separately).
    pub fn handle_deferred(&self, msg: &ClientMsg) -> (ServerMsg, Option<CommitTicket>) {
        let verb = match msg {
            ClientMsg::Hello { .. } => &server_metrics().hello,
            ClientMsg::Register { .. } => &server_metrics().register,
            ClientMsg::Sync { .. } => &server_metrics().sync,
            ClientMsg::Upload { .. } => &server_metrics().upload,
            ClientMsg::Model { .. } => &server_metrics().model,
            ClientMsg::ModelDelta { .. } => &server_metrics().modeldelta,
            ClientMsg::Advice { .. } => &server_metrics().advice,
            ClientMsg::Stats { .. } => &server_metrics().stats,
            ClientMsg::Bye => &server_metrics().bye,
        };
        verb.count.inc();
        let timer = verb.ns.start_timer();
        let (reply, ticket) = self.handle_inner(msg);
        drop(timer);
        if matches!(reply, ServerMsg::Error(_)) {
            verb.errors.inc();
        }
        (reply, ticket)
    }

    /// Mirrors one committed mutation to the replication sink, if any.
    /// Counted on failure; under quorum ack the error propagates so the
    /// client is *not* acked for an entry no follower holds.
    fn replicate(&self, entry: &WalEntry) -> std::io::Result<()> {
        match self.replication.get() {
            Some(sink) => sink.replicate(entry),
            None => Ok(()),
        }
    }

    fn handle_inner(&self, msg: &ClientMsg) -> (ServerMsg, Option<CommitTicket>) {
        if self.is_read_only()
            && matches!(msg, ClientMsg::Register { .. } | ClientMsg::Upload { .. })
        {
            // Same wording every follower uses: clients classify this as
            // a retryable server-side refusal and fail over to the next
            // address in their list.
            return (
                ServerMsg::Error("not leader: node is read-only (try another server)".into()),
                None,
            );
        }
        match msg {
            ClientMsg::Hello { version } => {
                // Version negotiation: agree to the highest version both
                // sides speak. The *reply* is all this verb does — the
                // framing switch (when the agreed version is binary) is
                // the transport front end's job, keyed off this reply.
                let agreed = (*version).min(WIRE_VERSION_BINARY);
                (ServerMsg::Hello { version: agreed }, None)
            }
            ClientMsg::Register { snapshot, token } => self.handle_register(snapshot, token),
            ClientMsg::Sync { client, have, want } => {
                if self.snapshot_of(client).is_none() {
                    return (
                        ServerMsg::Error(format!("unregistered client {client}")),
                        None,
                    );
                }
                // One consistent view across shards: all read guards in
                // index order. Writers take one shard lock at a time, so
                // this cannot deadlock against them.
                let guards = self.stores.testcases.read_all();
                let total: usize = guards.iter().map(|g| g.len()).sum();
                let order = self.client_order(client, total);
                let mut slice = Vec::new();
                for &global in order.iter().skip(*have).take(*want) {
                    let mut idx = global;
                    for g in &guards {
                        if idx < g.len() {
                            slice.push(g.all()[idx].clone());
                            break;
                        }
                        idx -= g.len();
                    }
                }
                (ServerMsg::Testcases(slice), None)
            }
            ClientMsg::Upload {
                client,
                seq,
                records,
            } => self.handle_upload(client, *seq, records),
            ClientMsg::Model { resource, task } => {
                let (epoch, observed, censored, sketch) = if self.stores.models.count() == 1 {
                    self.stores.models.read(0).merged(*resource, task.as_deref())
                } else {
                    let guards = self.stores.models.read_all();
                    let epoch: u64 = guards.iter().map(|g| g.epoch()).sum();
                    let mut merged = QuantileSketch::for_resource(*resource);
                    for g in &guards {
                        merged
                            .merge(&g.merged_sketch(*resource, task.as_deref()))
                            .expect("shard sketches of one resource share a config");
                    }
                    (epoch, merged.observed(), merged.censored(), merged.encode())
                };
                // Remember what this epoch looked like: a client holding
                // this reply may come back with `MODELDELTA <epoch>
                // <crc>` and the diff base has to be byte-identical.
                self.record_delta_base(*resource, task, epoch, &sketch);
                (
                    ServerMsg::Model {
                        epoch,
                        observed,
                        censored,
                        sketch,
                    },
                    None,
                )
            }
            ClientMsg::ModelDelta {
                resource,
                task,
                since,
                basecrc,
            } => (self.handle_model_delta(*resource, task, *since, *basecrc), None),
            ClientMsg::Advice {
                resource,
                task,
                epsilon,
            } => {
                let reply = if self.stores.models.count() == 1 {
                    match self.stores.models.read(0).advice(*resource, task, *epsilon) {
                        Some((epoch, level)) => ServerMsg::Advice { epoch, level },
                        None => ServerMsg::Error(format!(
                            "no comfort model for {resource} yet (no observations uploaded)"
                        )),
                    }
                } else {
                    // Same preference as the single-store path: the
                    // task-contextual sketch when it has observations,
                    // else the resource aggregate — each merged across
                    // every shard first.
                    let guards = self.stores.models.read_all();
                    let epoch: u64 = guards.iter().map(|g| g.epoch()).sum();
                    let mut contextual = QuantileSketch::for_resource(*resource);
                    let mut aggregate = QuantileSketch::for_resource(*resource);
                    for g in &guards {
                        contextual
                            .merge(&g.merged_sketch(*resource, Some(task)))
                            .expect("shard sketches of one resource share a config");
                        aggregate
                            .merge(&g.merged_sketch(*resource, None))
                            .expect("shard sketches of one resource share a config");
                    }
                    let pick = if contextual.observed() > 0 {
                        &contextual
                    } else {
                        &aggregate
                    };
                    match pick.advice_level(*epsilon) {
                        Some(level) => ServerMsg::Advice { epoch, level },
                        None => ServerMsg::Error(format!(
                            "no comfort model for {resource} yet (no observations uploaded)"
                        )),
                    }
                };
                (reply, None)
            }
            ClientMsg::Stats { reset } => {
                // Snapshot first, then optionally zero: `STATS RESET`
                // returns the counts it is about to clear, so no window
                // is ever unobservable.
                let json = metrics::snapshot_json();
                if *reset {
                    metrics::reset();
                }
                (ServerMsg::Stats(json), None)
            }
            ClientMsg::Bye => (ServerMsg::Ack(0), None),
        }
    }

    /// Retains the sketch a model query just served, so a later
    /// `MODELDELTA <epoch> <crc>` can diff against the byte-identical
    /// base. Newest first, capped at [`DELTA_HISTORY`]; same-epoch
    /// re-queries are absorbed by the front check.
    fn record_delta_base(
        &self,
        resource: uucs_testcase::Resource,
        task: &Option<String>,
        epoch: u64,
        encoded: &str,
    ) {
        let mut hist = self
            .delta_history
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let q = hist.entry((resource.name(), task.clone())).or_default();
        if q.front().map(|s| s.epoch) == Some(epoch) {
            return;
        }
        q.push_front(DeltaSnap {
            epoch,
            crc: crc32(encoded.as_bytes()),
            encoded: encoded.to_string(),
        });
        q.truncate(DELTA_HISTORY);
    }

    /// Answers a `MODELDELTA` query: the delta from the client's cached
    /// epoch when the server can prove (by CRC over the encoded base)
    /// that it still holds that exact base, else the full sketch. The
    /// CRC guard is what makes post-failover epoch collisions safe: a
    /// promoted leader whose epoch numbering diverged simply fails the
    /// match and full-syncs the client.
    fn handle_model_delta(
        &self,
        resource: uucs_testcase::Resource,
        task: &Option<String>,
        since: u64,
        basecrc: u32,
    ) -> ServerMsg {
        // One guard acquisition, so the epoch and the merged sketch
        // describe the same instant.
        let guards = self.stores.models.read_all();
        let epoch: u64 = guards.iter().map(|g| g.epoch()).sum();
        let mut merged = QuantileSketch::for_resource(resource);
        for g in &guards {
            merged
                .merge(&g.merged_sketch(resource, task.as_deref()))
                .expect("shard sketches of one resource share a config");
        }
        drop(guards);
        let encoded = merged.encode();
        self.record_delta_base(resource, task, epoch, &encoded);
        if let Some(delta) = self.delta_against(resource, task, since, basecrc, epoch, &merged, &encoded)
        {
            delta_metrics().served.inc();
            return ServerMsg::ModelDelta {
                epoch,
                since,
                delta,
            };
        }
        delta_metrics().fallback.inc();
        ServerMsg::Model {
            epoch,
            observed: merged.observed(),
            censored: merged.censored(),
            sketch: encoded,
        }
    }

    /// The encoded delta from the client's base to `merged`, or `None`
    /// when only a full sync is safe: unknown/skewed base, CRC
    /// mismatch, non-ancestor sketch, or a delta that would not
    /// actually be smaller than the full sketch.
    #[allow(clippy::too_many_arguments)]
    fn delta_against(
        &self,
        resource: uucs_testcase::Resource,
        task: &Option<String>,
        since: u64,
        basecrc: u32,
        epoch: u64,
        merged: &QuantileSketch,
        encoded: &str,
    ) -> Option<String> {
        if since == epoch {
            // Client is current; confirm byte identity, then a noop
            // delta tells it so without resending anything.
            if crc32(encoded.as_bytes()) != basecrc {
                return None;
            }
            return merged.delta_since(merged).ok().map(|d| d.encode());
        }
        if since > epoch {
            // The client negotiated with a differently-numbered leader
            // (failover skew); its base means nothing here.
            return None;
        }
        let hist = self
            .delta_history
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let snap = hist
            .get(&(resource.name(), task.clone()))?
            .iter()
            .find(|s| s.epoch == since && s.crc == basecrc)?;
        let base = QuantileSketch::decode(&snap.encoded).ok()?;
        drop(hist);
        let text = merged.delta_since(&base).ok()?.encode();
        // A delta carrying nearly every bin is a full sync in disguise;
        // send the real thing so the client also refreshes its base.
        if text.len() >= encoded.len() {
            return None;
        }
        Some(text)
    }

    fn handle_register(
        &self,
        snapshot: &MachineSnapshot,
        token: &str,
    ) -> (ServerMsg, Option<CommitTicket>) {
        // Registration is globally serialized: the token scan must see
        // every in-flight registration, and the id counter must only
        // advance for registrations that go on to insert.
        let _serial = self.reg_lock.lock().unwrap_or_else(PoisonError::into_inner);
        if !token.is_empty() {
            // Token-matched re-registration: same identity, and the
            // upload dedup horizon it must resume above — a client
            // whose local store (and batch counter) was wiped would
            // otherwise restart at seq 1, at or below the horizon, and
            // have its new batches ACKed as replays without being
            // stored.
            for i in 0..self.stores.registry.count() {
                let hit = self
                    .stores
                    .registry
                    .read(i)
                    .id_for_token(token)
                    .map(str::to_string);
                if let Some(id) = hit {
                    let applied_seq = self.applied_seq(&id);
                    return (ServerMsg::Id { id, applied_seq }, None);
                }
            }
        }
        let n = self.next_client.fetch_add(1, Ordering::SeqCst) + 1;
        let id = format!("client-{n:04}");
        let shard = self.stores.registry.shard_for(&id);
        let mut reg = match self.stores.registry.try_write(shard) {
            Ok(guard) => guard,
            Err(_) => return (poisoned("registry"), None),
        };
        match reg.register_with_id(id.clone(), snapshot.clone(), token) {
            Ok(()) => {
                let lsn = reg.wal_next_lsn();
                let len = reg.len();
                drop(reg);
                self.shard_gauges.registry[shard].set(len as i64);
                if let Err(e) = self.replicate(&WalEntry::Client {
                    id: id.clone(),
                    token: token.to_string(),
                    snapshot: snapshot.clone(),
                }) {
                    return (ServerMsg::Error(format!("replication failed: {e}")), None);
                }
                let applied_seq = self.applied_seq(&id);
                let ticket = self.ticket(StoreFlavor::Registry, shard, lsn);
                (ServerMsg::Id { id, applied_seq }, ticket)
            }
            Err(e) => (
                ServerMsg::Error(format!("registration rejected: {e}")),
                None,
            ),
        }
    }

    fn handle_upload(
        &self,
        client: &str,
        seq: u64,
        records: &[uucs_protocol::RunRecord],
    ) -> (ServerMsg, Option<CommitTicket>) {
        if self.snapshot_of(client).is_none() {
            return (
                ServerMsg::Error(format!("unregistered client {client}")),
                None,
            );
        }
        let shard = self.stores.results.shard_for(client);
        let mut results = match self.stores.results.try_write(shard) {
            Ok(guard) => guard,
            Err(_) => return (poisoned("result"), None),
        };
        // Ack only what the store accepted: with a WAL-backed store an
        // Ack means the records are journaled (and, under group commit,
        // fsynced by the time the ticket is redeemed), so a crash after
        // this reply loses nothing the client was told is safe. A
        // replayed batch (retransmit after a lost Ack) is
        // re-acknowledged without storing a second copy — its ticket
        // carries the *current* watermark, so the re-ack is never less
        // durable than the original.
        match results.append_batch(client, seq, records.to_vec()) {
            Ok(status) => {
                let lsn = results.wal_next_lsn();
                let len = results.len();
                drop(results);
                self.shard_gauges.results[shard].set(len as i64);
                // Fold the batch into the comfort model — only when it
                // was *applied*: a replayed retransmit must not
                // double-count its observations. A model journal failure
                // still acks (the records are the source of truth; the
                // model is derived state) but is counted for the
                // operator. Model appends are not ticketed for the same
                // reason.
                if self.model_updates && matches!(status, BatchStatus::Applied(_)) {
                    let obs = observations_of(records);
                    if !obs.is_empty() {
                        let mshard = self.stores.models.shard_for(client);
                        match self.stores.models.try_write(mshard) {
                            Ok(mut models) => {
                                if models.observe_batch(obs).is_err() {
                                    ModelStore::count_update_error();
                                }
                            }
                            Err(_) => ModelStore::count_update_error(),
                        }
                    }
                }
                // Ship the batch before the ack, and only when it was
                // applied — a replayed retransmit was already shipped
                // the first time around.
                if matches!(status, BatchStatus::Applied(_)) {
                    if let Err(e) = self.replicate(&WalEntry::Batch {
                        client: client.to_string(),
                        seq,
                        records: records.to_vec(),
                    }) {
                        return (ServerMsg::Error(format!("replication failed: {e}")), None);
                    }
                }
                let ticket = self.ticket(StoreFlavor::Results, shard, lsn);
                (ServerMsg::Ack(status.acked()), ticket)
            }
            Err(e) => (ServerMsg::Error(format!("upload rejected: {e}")), None),
        }
    }
}

impl Drop for UucsServer {
    fn drop(&mut self) {
        if let Some(committer) = &self.committer {
            committer.stop();
        }
        if let Some(handle) = self.commit_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Endpoint for UucsServer {
    /// Handles one message end to end, including the group-commit wait
    /// when the verb journaled something — an `Ack` through this path
    /// is always durable. Both the TCP front end and the in-memory test
    /// transport route through the same deferred core, so telemetry
    /// covers every transport identically.
    fn handle(&self, msg: &ClientMsg) -> ServerMsg {
        let (reply, ticket) = self.handle_deferred(msg);
        if let (Some(ticket), Some(committer)) = (ticket, &self.committer) {
            if let Err(e) = committer.wait(ticket) {
                return ServerMsg::Error(format!("journal commit failed: {e}"));
            }
        }
        reply
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uucs_testcase::{ExerciseSpec, Resource, Testcase};

    fn library(n: usize) -> TestcaseStore {
        TestcaseStore::from_testcases(
            (0..n)
                .map(|i| {
                    Testcase::single(
                        format!("tc-{i:03}"),
                        1.0,
                        Resource::Cpu,
                        ExerciseSpec::Ramp {
                            level: 1.0,
                            duration: 10.0,
                        },
                    )
                })
                .collect(),
        )
        .expect("generated ids are unique")
    }

    fn register(s: &UucsServer) -> String {
        match s.handle(&ClientMsg::register(MachineSnapshot::study_machine("h"))) {
            ServerMsg::Id { id, .. } => id,
            other => panic!("expected Id, got {other:?}"),
        }
    }

    #[test]
    fn registration_assigns_unique_ids() {
        let s = UucsServer::new(library(5), 1);
        let a = register(&s);
        let b = register(&s);
        assert_ne!(a, b);
        assert_eq!(s.client_count(), 2);
        assert!(s.snapshot_of(&a).is_some());
        assert!(s.snapshot_of("nope").is_none());
    }

    #[test]
    fn growing_random_sample_never_repeats() {
        let s = UucsServer::new(library(20), 2);
        let id = register(&s);
        let mut seen = Vec::new();
        for have in [0usize, 7, 14] {
            let want = 7.min(20 - have);
            match s.handle(&ClientMsg::Sync {
                client: id.clone(),
                have,
                want,
            }) {
                ServerMsg::Testcases(tcs) => {
                    assert!(tcs.len() <= want);
                    for tc in tcs {
                        assert!(
                            !seen.contains(&tc.id.as_str().to_string()),
                            "duplicate {}",
                            tc.id
                        );
                        seen.push(tc.id.as_str().to_string());
                    }
                }
                other => panic!("expected Testcases, got {other:?}"),
            }
        }
        // 7 + 7 + 6 = the whole 20-testcase library, no repeats.
        assert_eq!(seen.len(), 20);
    }

    #[test]
    fn different_clients_get_different_orders() {
        let s = UucsServer::new(library(30), 3);
        let a = register(&s);
        let b = register(&s);
        let get = |id: &str| match s.handle(&ClientMsg::Sync {
            client: id.to_string(),
            have: 0,
            want: 10,
        }) {
            ServerMsg::Testcases(tcs) => tcs.iter().map(|t| t.id.to_string()).collect::<Vec<_>>(),
            other => panic!("{other:?}"),
        };
        assert_ne!(get(&a), get(&b));
        // But each client's own order is stable.
        assert_eq!(get(&a), get(&a));
    }

    #[test]
    fn sync_past_the_end_returns_empty() {
        let s = UucsServer::new(library(3), 4);
        let id = register(&s);
        match s.handle(&ClientMsg::Sync {
            client: id,
            have: 3,
            want: 10,
        }) {
            ServerMsg::Testcases(tcs) => assert!(tcs.is_empty()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unregistered_clients_rejected() {
        let s = UucsServer::new(library(3), 5);
        assert!(matches!(
            s.handle(&ClientMsg::Sync {
                client: "ghost".into(),
                have: 0,
                want: 1
            }),
            ServerMsg::Error(_)
        ));
        assert!(matches!(
            s.handle(&ClientMsg::Upload {
                client: "ghost".into(),
                seq: 1,
                records: vec![]
            }),
            ServerMsg::Error(_)
        ));
    }

    #[test]
    fn uploads_accumulate() {
        use uucs_protocol::{MonitorSummary, RunOutcome, RunRecord};
        let s = UucsServer::new(library(1), 6);
        let id = register(&s);
        let rec = RunRecord {
            client: id.clone(),
            user: "u".into(),
            testcase: "tc-000".into(),
            task: "Word".into(),
            skill: "Typical".into(),
            outcome: RunOutcome::Exhausted,
            offset_secs: 10.0,
            last_levels: vec![],
            monitor: MonitorSummary::default(),
        };
        match s.handle(&ClientMsg::Upload {
            client: id.clone(),
            seq: 0,
            records: vec![rec.clone(), rec.clone()],
        }) {
            ServerMsg::Ack(2) => {}
            other => panic!("{other:?}"),
        }
        assert_eq!(s.result_count(), 2);
    }

    #[test]
    fn sequenced_upload_replay_is_acked_but_not_stored() {
        use uucs_protocol::{MonitorSummary, RunOutcome, RunRecord};
        let s = UucsServer::new(library(1), 9);
        let id = register(&s);
        let rec = RunRecord {
            client: id.clone(),
            user: "u".into(),
            testcase: "tc-000".into(),
            task: "Word".into(),
            skill: "Typical".into(),
            outcome: RunOutcome::Exhausted,
            offset_secs: 10.0,
            last_levels: vec![],
            monitor: MonitorSummary::default(),
        };
        let upload = ClientMsg::Upload {
            client: id.clone(),
            seq: 1,
            records: vec![rec.clone(), rec],
        };
        assert!(matches!(s.handle(&upload), ServerMsg::Ack(2)));
        // The retransmit (lost Ack) gets a fresh Ack, one stored copy.
        assert!(matches!(s.handle(&upload), ServerMsg::Ack(2)));
        assert_eq!(s.result_count(), 2);
        assert_eq!(s.applied_seq(&id), 1);
    }

    /// A token-matched re-registration reports the identity's applied
    /// upload horizon, so a client that lost its local batch counter
    /// (wiped store) can fast-forward instead of resuming below the
    /// horizon — where its new, different batches would be ACKed as
    /// replays and silently discarded.
    #[test]
    fn reregistration_reports_applied_horizon() {
        use uucs_protocol::{MonitorSummary, RunOutcome, RunRecord};
        let s = UucsServer::new(library(1), 10);
        let register = |token: &str| match s.handle(&ClientMsg::Register {
            snapshot: MachineSnapshot::study_machine("h"),
            token: token.into(),
        }) {
            ServerMsg::Id { id, applied_seq } => (id, applied_seq),
            other => panic!("expected Id, got {other:?}"),
        };
        let (id, horizon) = register("tok-wipe");
        assert_eq!(horizon, 0, "fresh identity has no horizon");
        let rec = RunRecord {
            client: id.clone(),
            user: "u".into(),
            testcase: "tc-000".into(),
            task: "Word".into(),
            skill: "Typical".into(),
            outcome: RunOutcome::Exhausted,
            offset_secs: 10.0,
            last_levels: vec![],
            monitor: MonitorSummary::default(),
        };
        for seq in 1..=3u64 {
            assert!(matches!(
                s.handle(&ClientMsg::Upload {
                    client: id.clone(),
                    seq,
                    records: vec![rec.clone()],
                }),
                ServerMsg::Ack(1)
            ));
        }
        // The "wiped" client re-registers with the same token: same id,
        // and the horizon it must resume above.
        let (id2, horizon) = register("tok-wipe");
        assert_eq!(id2, id);
        assert_eq!(horizon, 3);
        // Resuming above the horizon stores; at it, discards.
        assert!(matches!(
            s.handle(&ClientMsg::Upload {
                client: id.clone(),
                seq: 4,
                records: vec![rec.clone()],
            }),
            ServerMsg::Ack(1)
        ));
        assert_eq!(s.result_count(), 4);
    }

    #[test]
    fn poisoned_lock_degrades_to_error_then_recovers() {
        let s = std::sync::Arc::new(UucsServer::new(library(2), 8));
        // Poison the (single) registry shard: panic while holding the
        // write guard.
        let s2 = s.clone();
        let _ = std::thread::spawn(move || {
            let _guard = s2.stores.registry.raw(0).write().unwrap();
            panic!("poison the registry");
        })
        .join();
        assert!(s.stores.registry.raw(0).is_poisoned());
        // The first mutating request maps the poisoning to a protocol
        // error instead of panicking the handler thread...
        assert!(matches!(
            s.handle(&ClientMsg::register(MachineSnapshot::study_machine("h"))),
            ServerMsg::Error(_)
        ));
        // ...and clears the poison, so the server keeps serving.
        assert!(!s.stores.registry.raw(0).is_poisoned());
        let id = register(&s);
        assert!(s.snapshot_of(&id).is_some());
        // Read-side observers recover throughout.
        assert_eq!(s.testcase_count(), 2);
    }

    /// Sharded layout: poisoning one shard degrades requests routed to
    /// *that shard only*; every other shard keeps serving, and the
    /// poisoned one heals after a single failed request.
    #[test]
    fn per_shard_poisoning_is_isolated() {
        use uucs_protocol::{MonitorSummary, RunOutcome, RunRecord};
        let s = std::sync::Arc::new(UucsServer::with_store_set(StoreSet::plain(4), 12));
        for i in 0..4 {
            s.add_testcase(Testcase::blank(format!("tc-{i}"), 1.0, 60.0))
                .unwrap();
        }
        // Register clients until two land on different result shards.
        let mut ids = vec![register(&s)];
        while s.stores.results.shard_for(ids.last().unwrap())
            == s.stores.results.shard_for(&ids[0])
        {
            ids.push(register(&s));
        }
        let (victim, bystander) = (ids[0].clone(), ids.last().unwrap().clone());
        let victim_shard = s.stores.results.shard_for(&victim);
        let s2 = s.clone();
        let _ = std::thread::spawn(move || {
            let _guard = s2.stores.results.raw(victim_shard).write().unwrap();
            panic!("poison one result shard");
        })
        .join();
        assert!(s.stores.results.raw(victim_shard).is_poisoned());
        let rec = |client: &str| RunRecord {
            client: client.into(),
            user: "u".into(),
            testcase: "tc-0".into(),
            task: "Word".into(),
            skill: "Typical".into(),
            outcome: RunOutcome::Exhausted,
            offset_secs: 10.0,
            last_levels: vec![],
            monitor: MonitorSummary::default(),
        };
        // The bystander's shard is untouched: upload succeeds while the
        // victim shard is still poisoned.
        assert!(matches!(
            s.handle(&ClientMsg::Upload {
                client: bystander.clone(),
                seq: 1,
                records: vec![rec(&bystander)],
            }),
            ServerMsg::Ack(1)
        ));
        // The victim's shard fails one request...
        assert!(matches!(
            s.handle(&ClientMsg::Upload {
                client: victim.clone(),
                seq: 1,
                records: vec![rec(&victim)],
            }),
            ServerMsg::Error(_)
        ));
        // ...heals, and serves the retry.
        assert!(!s.stores.results.raw(victim_shard).is_poisoned());
        assert!(matches!(
            s.handle(&ClientMsg::Upload {
                client: victim.clone(),
                seq: 1,
                records: vec![rec(&victim)],
            }),
            ServerMsg::Ack(1)
        ));
        assert_eq!(s.result_count(), 2);
    }

    /// `STATS` answers with the telemetry snapshot, and the verbs that
    /// served this very test show up in it. Counts are asserted as
    /// presence, not exact values: the registry is process-global and
    /// other tests in this binary run concurrently.
    #[test]
    fn stats_verb_reports_verb_telemetry() {
        let s = UucsServer::new(library(2), 11);
        let id = register(&s);
        let _ = s.handle(&ClientMsg::Sync {
            client: id,
            have: 0,
            want: 1,
        });
        let json = match s.handle(&ClientMsg::Stats { reset: false }) {
            ServerMsg::Stats(json) => json,
            other => panic!("expected Stats, got {other:?}"),
        };
        assert!(json.starts_with("{\"counters\":{"), "{json}");
        for key in [
            "server.verb.register.count",
            "server.verb.sync.count",
            "server.verb.sync.ns",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(!json.contains('\n'));
        // Errors are attributed to their verb.
        let _ = s.handle(&ClientMsg::Sync {
            client: "ghost".into(),
            have: 0,
            want: 1,
        });
        match s.handle(&ClientMsg::Stats { reset: false }) {
            ServerMsg::Stats(json) => {
                assert!(json.contains("server.verb.sync.errors"), "{json}")
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn runtime_testcase_addition() {
        let s = UucsServer::new(library(2), 7);
        assert_eq!(s.testcase_count(), 2);
        s.add_testcase(Testcase::blank("late", 1.0, 60.0)).unwrap();
        assert_eq!(s.testcase_count(), 3);
        // A duplicate id is an error, not a panic, and leaves the
        // library untouched.
        let err = s.add_testcase(Testcase::blank("late", 1.0, 60.0)).unwrap_err();
        assert!(err.to_string().contains("duplicate"));
        assert_eq!(s.testcase_count(), 3);
    }

    /// The sharded server answers every verb with the same contract as
    /// the single-store one: uploads land on the uploader's shard, reads
    /// merge across shards.
    #[test]
    fn sharded_server_serves_all_verbs() {
        use uucs_protocol::{MonitorSummary, RunOutcome, RunRecord};
        let s = UucsServer::with_store_set(StoreSet::plain(4), 13);
        for i in 0..8 {
            s.add_testcase(Testcase::blank(format!("case-{i}"), 1.0, 60.0))
                .unwrap();
        }
        let a = register(&s);
        let b = register(&s);
        // Sync: the growing sample covers the whole sharded library.
        let mut seen = Vec::new();
        for have in [0usize, 4] {
            match s.handle(&ClientMsg::Sync {
                client: a.clone(),
                have,
                want: 4,
            }) {
                ServerMsg::Testcases(tcs) => {
                    for tc in tcs {
                        assert!(!seen.contains(&tc.id.to_string()));
                        seen.push(tc.id.to_string());
                    }
                }
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(seen.len(), 8);
        // Uploads from both clients (different shards or not) all count.
        let rec = |client: &str, level: f64| RunRecord {
            client: client.into(),
            user: "u".into(),
            testcase: "case-0".into(),
            task: "Word".into(),
            skill: "Typical".into(),
            outcome: RunOutcome::Discomfort,
            offset_secs: 10.0,
            last_levels: vec![(Resource::Cpu, vec![level])],
            monitor: MonitorSummary::default(),
        };
        for (i, id) in [&a, &b].into_iter().enumerate() {
            assert!(matches!(
                s.handle(&ClientMsg::Upload {
                    client: id.clone(),
                    seq: 1,
                    records: vec![rec(id, 1.0 + i as f64)],
                }),
                ServerMsg::Ack(1)
            ));
        }
        assert_eq!(s.result_count(), 2);
        // Model/advice merge across shards: both observations visible.
        match s.handle(&ClientMsg::Model {
            resource: Resource::Cpu,
            task: None,
        }) {
            ServerMsg::Model {
                epoch, observed, ..
            } => {
                assert_eq!(epoch, s.model_epoch());
                assert_eq!(observed, 2);
            }
            other => panic!("{other:?}"),
        }
        match s.handle(&ClientMsg::Advice {
            resource: Resource::Cpu,
            task: "Word".into(),
            epsilon: 0.05,
        }) {
            ServerMsg::Advice { .. } => {}
            other => panic!("{other:?}"),
        }
    }
}
