//! The server's message handler and registry.

use crate::models::{observations_of, ModelStore};
use crate::store::{BatchStatus, RegistryStore, ResultStore, TestcaseStore};
use std::sync::{OnceLock, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};
use uucs_protocol::wire::Endpoint;
use uucs_protocol::{ClientMsg, MachineSnapshot, ServerMsg};
use uucs_stats::Pcg64;
use uucs_telemetry::{metrics, Counter, Histogram};

/// Pre-registered telemetry handles for one wire verb: request count,
/// error count, handling-latency histogram. Registered once at first
/// request so the per-request cost is three atomic ops, not a registry
/// lookup.
struct VerbMetrics {
    count: Counter,
    errors: Counter,
    ns: Histogram,
}

impl VerbMetrics {
    fn new(verb: &str) -> Self {
        VerbMetrics {
            count: metrics::counter(&format!("server.verb.{verb}.count")),
            errors: metrics::counter(&format!("server.verb.{verb}.errors")),
            ns: metrics::histogram(&format!("server.verb.{verb}.ns")),
        }
    }
}

struct ServerMetrics {
    register: VerbMetrics,
    sync: VerbMetrics,
    upload: VerbMetrics,
    model: VerbMetrics,
    advice: VerbMetrics,
    stats: VerbMetrics,
    bye: VerbMetrics,
}

fn server_metrics() -> &'static ServerMetrics {
    static METRICS: OnceLock<ServerMetrics> = OnceLock::new();
    METRICS.get_or_init(|| ServerMetrics {
        register: VerbMetrics::new("register"),
        sync: VerbMetrics::new("sync"),
        upload: VerbMetrics::new("upload"),
        model: VerbMetrics::new("model"),
        advice: VerbMetrics::new("advice"),
        stats: VerbMetrics::new("stats"),
        bye: VerbMetrics::new("bye"),
    })
}

/// Reads a store lock, recovering from poisoning.
///
/// A poisoned lock means some handler panicked mid-update. The stores
/// are append-only collections whose elements are written before being
/// linked in, so a reader can never observe torn data — recovery by
/// `into_inner` is safe for observers. Mutating protocol paths instead
/// surface the poisoning to the client as a recoverable
/// [`ServerMsg::Error`] via [`UucsServer::try_write`].
fn read_recovered<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(PoisonError::into_inner)
}

/// The UUCS server state. Thread-safe: the TCP front end shares one
/// instance across connections.
pub struct UucsServer {
    testcases: RwLock<TestcaseStore>,
    results: RwLock<ResultStore>,
    registry: RwLock<RegistryStore>,
    models: RwLock<ModelStore>,
    /// When false, the `UPLOAD` path skips comfort-model updates (the
    /// `MODEL`/`ADVICE` verbs then serve a frozen — typically empty —
    /// model). Benchmarks use this to isolate the update cost.
    model_updates: bool,
    /// Seed for the per-client sampling permutations.
    sample_seed: u64,
}

impl UucsServer {
    /// Write-locks `lock` for a protocol mutation, mapping poisoning to
    /// the error the wire protocol reports instead of propagating the
    /// panic to every future connection. The poison flag is cleared so
    /// the server heals: the failed request sees an error, the next one
    /// proceeds.
    fn try_write<'a, T>(
        &self,
        lock: &'a RwLock<T>,
        what: &str,
    ) -> Result<RwLockWriteGuard<'a, T>, ServerMsg> {
        lock.write().map_err(|_| {
            lock.clear_poison();
            ServerMsg::Error(format!(
                "internal: {what} store was poisoned by an earlier panic; recovered, retry"
            ))
        })
    }
    /// Creates a server around a testcase library, with a fresh
    /// non-durable result store.
    pub fn new(testcases: TestcaseStore, sample_seed: u64) -> Self {
        Self::with_stores(testcases, ResultStore::new(), sample_seed)
    }

    /// Creates a server around explicit testcase/result stores with a
    /// fresh in-memory registry — the entry point for WAL-backed
    /// durability of the data stores, where every accepted mutation is
    /// journaled before it is acknowledged.
    pub fn with_stores(testcases: TestcaseStore, results: ResultStore, sample_seed: u64) -> Self {
        Self::with_all_stores(testcases, results, RegistryStore::new(), sample_seed)
    }

    /// Creates a server around all three stores, including a (typically
    /// WAL-recovered) client registry, so a restarted server still
    /// recognizes every id it handed out and every client's upload
    /// dedup horizon.
    pub fn with_all_stores(
        testcases: TestcaseStore,
        results: ResultStore,
        registry: RegistryStore,
        sample_seed: u64,
    ) -> Self {
        UucsServer {
            testcases: RwLock::new(testcases),
            results: RwLock::new(results),
            registry: RwLock::new(registry),
            models: RwLock::new(ModelStore::new()),
            model_updates: true,
            sample_seed,
        }
    }

    /// Replaces the comfort-model store — the entry point for WAL-backed
    /// model durability, paired with the data stores' `open_wal`.
    pub fn with_model_store(mut self, models: ModelStore) -> Self {
        self.models = RwLock::new(models);
        self
    }

    /// Disables comfort-model updates on the `UPLOAD` path. The model
    /// verbs keep answering from whatever model the server holds; used
    /// by benchmarks to measure the upload path with aggregation off.
    pub fn without_model_updates(mut self) -> Self {
        self.model_updates = false;
        self
    }

    /// The comfort model's current epoch.
    pub fn model_epoch(&self) -> u64 {
        read_recovered(&self.models).epoch()
    }

    /// The merged comfort-model sketch for a resource (optionally one
    /// task) — offline analysis and test cross-checks.
    pub fn model_sketch(
        &self,
        resource: uucs_testcase::Resource,
        task: Option<&str>,
    ) -> uucs_modelsvc::QuantileSketch {
        read_recovered(&self.models).merged_sketch(resource, task)
    }

    /// Adds a testcase to the library at runtime ("new testcases ... can
    /// be added to the server at any time"). Rejects duplicates; with a
    /// WAL-backed store the addition is durable once this returns `Ok`.
    pub fn add_testcase(&self, tc: uucs_testcase::Testcase) -> Result<(), crate::store::StoreError> {
        self.testcases
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .add(tc)
    }

    /// Folds every store's journal into a checkpoint and drops the
    /// covered segments. A no-op (returning `false`) for plain stores.
    pub fn compact(&self) -> std::io::Result<bool> {
        let a = self
            .testcases
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .compact()?;
        let b = self
            .results
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .compact()?;
        let c = self
            .registry
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .compact()?;
        let d = self
            .models
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .compact()?;
        Ok(a || b || c || d)
    }

    /// Number of testcases in the library.
    pub fn testcase_count(&self) -> usize {
        read_recovered(&self.testcases).len()
    }

    /// Number of uploaded result records.
    pub fn result_count(&self) -> usize {
        read_recovered(&self.results).len()
    }

    /// Snapshot of all uploaded results (cloned).
    pub fn results(&self) -> Vec<uucs_protocol::RunRecord> {
        read_recovered(&self.results).all().to_vec()
    }

    /// Number of registered clients.
    pub fn client_count(&self) -> usize {
        read_recovered(&self.registry).len()
    }

    /// The registered snapshot for a client id.
    pub fn snapshot_of(&self, client: &str) -> Option<MachineSnapshot> {
        read_recovered(&self.registry).get(client).cloned()
    }

    /// The highest upload batch sequence number applied for a client.
    pub fn applied_seq(&self, client: &str) -> u64 {
        read_recovered(&self.results).applied_seq(client)
    }

    /// Saves both stores under a directory (`testcases.txt`,
    /// `results.txt`).
    pub fn save(&self, dir: &std::path::Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        read_recovered(&self.testcases).save(&dir.join("testcases.txt"))?;
        read_recovered(&self.results).save(&dir.join("results.txt"))
    }

    /// The client-specific random order of the library. Deterministic per
    /// (server seed, client id), so each sync extends the client's sample
    /// without duplicates — the paper's "growing random sample".
    fn client_order(&self, client: &str, total: usize) -> Vec<usize> {
        let mut rng = Pcg64::new(self.sample_seed).split_str(client);
        let mut idx: Vec<usize> = (0..total).collect();
        rng.shuffle(&mut idx);
        idx
    }
}

impl Endpoint for UucsServer {
    /// Handles one message, instrumented: every verb counts its
    /// requests, errors, and handling latency into the process-global
    /// telemetry registry (the payload of the `STATS` verb). Both the
    /// TCP front end and the in-memory test transport route through
    /// here, so the numbers cover every transport identically.
    fn handle(&self, msg: &ClientMsg) -> ServerMsg {
        let verb = match msg {
            ClientMsg::Register { .. } => &server_metrics().register,
            ClientMsg::Sync { .. } => &server_metrics().sync,
            ClientMsg::Upload { .. } => &server_metrics().upload,
            ClientMsg::Model { .. } => &server_metrics().model,
            ClientMsg::Advice { .. } => &server_metrics().advice,
            ClientMsg::Stats { .. } => &server_metrics().stats,
            ClientMsg::Bye => &server_metrics().bye,
        };
        verb.count.inc();
        let timer = verb.ns.start_timer();
        let reply = self.handle_inner(msg);
        drop(timer);
        if matches!(reply, ServerMsg::Error(_)) {
            verb.errors.inc();
        }
        reply
    }
}

impl UucsServer {
    fn handle_inner(&self, msg: &ClientMsg) -> ServerMsg {
        match msg {
            ClientMsg::Register { snapshot, token } => {
                let mut reg = match self.try_write(&self.registry, "registry") {
                    Ok(guard) => guard,
                    Err(err) => return err,
                };
                match reg.register(snapshot.clone(), token) {
                    Ok(id) => {
                        drop(reg);
                        // Report the upload dedup horizon alongside the
                        // id: a token-matched re-registration may be a
                        // client whose local store (and batch counter)
                        // was wiped, and without the horizon its new
                        // batches would restart at seq 1 — at or below
                        // the horizon — and be ACKed as replays without
                        // ever being stored.
                        let applied_seq = read_recovered(&self.results).applied_seq(&id);
                        ServerMsg::Id { id, applied_seq }
                    }
                    Err(e) => ServerMsg::Error(format!("registration rejected: {e}")),
                }
            }
            ClientMsg::Sync { client, have, want } => {
                if self.snapshot_of(client).is_none() {
                    return ServerMsg::Error(format!("unregistered client {client}"));
                }
                let store = read_recovered(&self.testcases);
                let order = self.client_order(client, store.len());
                let slice: Vec<_> = order
                    .iter()
                    .skip(*have)
                    .take(*want)
                    .map(|&i| store.all()[i].clone())
                    .collect();
                ServerMsg::Testcases(slice)
            }
            ClientMsg::Upload {
                client,
                seq,
                records,
            } => {
                if self.snapshot_of(client).is_none() {
                    return ServerMsg::Error(format!("unregistered client {client}"));
                }
                match self.try_write(&self.results, "result") {
                    // Ack only what the store accepted: with a WAL-backed
                    // store an Ack means the records are journaled, so a
                    // crash after this reply loses nothing the client
                    // was told is safe. A replayed batch (retransmit
                    // after a lost Ack) is re-acknowledged without
                    // storing a second copy.
                    Ok(mut results) => match results.append_batch(client, *seq, records.clone()) {
                        Ok(status) => {
                            drop(results);
                            // Fold the batch into the comfort model —
                            // only when it was *applied*: a replayed
                            // retransmit must not double-count its
                            // observations. A model journal failure
                            // still acks (the records are the source of
                            // truth; the model is derived state) but is
                            // counted for the operator.
                            if self.model_updates && matches!(status, BatchStatus::Applied(_)) {
                                let obs = observations_of(records);
                                if !obs.is_empty() {
                                    match self.try_write(&self.models, "model") {
                                        Ok(mut models) => {
                                            if models.observe_batch(obs).is_err() {
                                                ModelStore::count_update_error();
                                            }
                                        }
                                        Err(_) => ModelStore::count_update_error(),
                                    }
                                }
                            }
                            ServerMsg::Ack(status.acked())
                        }
                        Err(e) => ServerMsg::Error(format!("upload rejected: {e}")),
                    },
                    Err(err) => err,
                }
            }
            ClientMsg::Model { resource, task } => {
                let (epoch, observed, censored, sketch) =
                    read_recovered(&self.models).merged(*resource, task.as_deref());
                ServerMsg::Model {
                    epoch,
                    observed,
                    censored,
                    sketch,
                }
            }
            ClientMsg::Advice {
                resource,
                task,
                epsilon,
            } => match read_recovered(&self.models).advice(*resource, task, *epsilon) {
                Some((epoch, level)) => ServerMsg::Advice { epoch, level },
                None => ServerMsg::Error(format!(
                    "no comfort model for {resource} yet (no observations uploaded)"
                )),
            },
            ClientMsg::Stats { reset } => {
                // Snapshot first, then optionally zero: `STATS RESET`
                // returns the counts it is about to clear, so no window
                // is ever unobservable.
                let json = metrics::snapshot_json();
                if *reset {
                    metrics::reset();
                }
                ServerMsg::Stats(json)
            }
            ClientMsg::Bye => ServerMsg::Ack(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uucs_testcase::{ExerciseSpec, Resource, Testcase};

    fn library(n: usize) -> TestcaseStore {
        TestcaseStore::from_testcases(
            (0..n)
                .map(|i| {
                    Testcase::single(
                        format!("tc-{i:03}"),
                        1.0,
                        Resource::Cpu,
                        ExerciseSpec::Ramp {
                            level: 1.0,
                            duration: 10.0,
                        },
                    )
                })
                .collect(),
        )
        .expect("generated ids are unique")
    }

    fn register(s: &UucsServer) -> String {
        match s.handle(&ClientMsg::register(MachineSnapshot::study_machine("h"))) {
            ServerMsg::Id { id, .. } => id,
            other => panic!("expected Id, got {other:?}"),
        }
    }

    #[test]
    fn registration_assigns_unique_ids() {
        let s = UucsServer::new(library(5), 1);
        let a = register(&s);
        let b = register(&s);
        assert_ne!(a, b);
        assert_eq!(s.client_count(), 2);
        assert!(s.snapshot_of(&a).is_some());
        assert!(s.snapshot_of("nope").is_none());
    }

    #[test]
    fn growing_random_sample_never_repeats() {
        let s = UucsServer::new(library(20), 2);
        let id = register(&s);
        let mut seen = Vec::new();
        for have in [0usize, 7, 14] {
            let want = 7.min(20 - have);
            match s.handle(&ClientMsg::Sync {
                client: id.clone(),
                have,
                want,
            }) {
                ServerMsg::Testcases(tcs) => {
                    assert!(tcs.len() <= want);
                    for tc in tcs {
                        assert!(
                            !seen.contains(&tc.id.as_str().to_string()),
                            "duplicate {}",
                            tc.id
                        );
                        seen.push(tc.id.as_str().to_string());
                    }
                }
                other => panic!("expected Testcases, got {other:?}"),
            }
        }
        // 7 + 7 + 6 = the whole 20-testcase library, no repeats.
        assert_eq!(seen.len(), 20);
    }

    #[test]
    fn different_clients_get_different_orders() {
        let s = UucsServer::new(library(30), 3);
        let a = register(&s);
        let b = register(&s);
        let get = |id: &str| match s.handle(&ClientMsg::Sync {
            client: id.to_string(),
            have: 0,
            want: 10,
        }) {
            ServerMsg::Testcases(tcs) => tcs.iter().map(|t| t.id.to_string()).collect::<Vec<_>>(),
            other => panic!("{other:?}"),
        };
        assert_ne!(get(&a), get(&b));
        // But each client's own order is stable.
        assert_eq!(get(&a), get(&a));
    }

    #[test]
    fn sync_past_the_end_returns_empty() {
        let s = UucsServer::new(library(3), 4);
        let id = register(&s);
        match s.handle(&ClientMsg::Sync {
            client: id,
            have: 3,
            want: 10,
        }) {
            ServerMsg::Testcases(tcs) => assert!(tcs.is_empty()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unregistered_clients_rejected() {
        let s = UucsServer::new(library(3), 5);
        assert!(matches!(
            s.handle(&ClientMsg::Sync {
                client: "ghost".into(),
                have: 0,
                want: 1
            }),
            ServerMsg::Error(_)
        ));
        assert!(matches!(
            s.handle(&ClientMsg::Upload {
                client: "ghost".into(),
                seq: 1,
                records: vec![]
            }),
            ServerMsg::Error(_)
        ));
    }

    #[test]
    fn uploads_accumulate() {
        use uucs_protocol::{MonitorSummary, RunOutcome, RunRecord};
        let s = UucsServer::new(library(1), 6);
        let id = register(&s);
        let rec = RunRecord {
            client: id.clone(),
            user: "u".into(),
            testcase: "tc-000".into(),
            task: "Word".into(),
            skill: "Typical".into(),
            outcome: RunOutcome::Exhausted,
            offset_secs: 10.0,
            last_levels: vec![],
            monitor: MonitorSummary::default(),
        };
        match s.handle(&ClientMsg::Upload {
            client: id.clone(),
            seq: 0,
            records: vec![rec.clone(), rec.clone()],
        }) {
            ServerMsg::Ack(2) => {}
            other => panic!("{other:?}"),
        }
        assert_eq!(s.result_count(), 2);
    }

    #[test]
    fn sequenced_upload_replay_is_acked_but_not_stored() {
        use uucs_protocol::{MonitorSummary, RunOutcome, RunRecord};
        let s = UucsServer::new(library(1), 9);
        let id = register(&s);
        let rec = RunRecord {
            client: id.clone(),
            user: "u".into(),
            testcase: "tc-000".into(),
            task: "Word".into(),
            skill: "Typical".into(),
            outcome: RunOutcome::Exhausted,
            offset_secs: 10.0,
            last_levels: vec![],
            monitor: MonitorSummary::default(),
        };
        let upload = ClientMsg::Upload {
            client: id.clone(),
            seq: 1,
            records: vec![rec.clone(), rec],
        };
        assert!(matches!(s.handle(&upload), ServerMsg::Ack(2)));
        // The retransmit (lost Ack) gets a fresh Ack, one stored copy.
        assert!(matches!(s.handle(&upload), ServerMsg::Ack(2)));
        assert_eq!(s.result_count(), 2);
        assert_eq!(s.applied_seq(&id), 1);
    }

    /// A token-matched re-registration reports the identity's applied
    /// upload horizon, so a client that lost its local batch counter
    /// (wiped store) can fast-forward instead of resuming below the
    /// horizon — where its new, different batches would be ACKed as
    /// replays and silently discarded.
    #[test]
    fn reregistration_reports_applied_horizon() {
        use uucs_protocol::{MonitorSummary, RunOutcome, RunRecord};
        let s = UucsServer::new(library(1), 10);
        let register = |token: &str| match s.handle(&ClientMsg::Register {
            snapshot: MachineSnapshot::study_machine("h"),
            token: token.into(),
        }) {
            ServerMsg::Id { id, applied_seq } => (id, applied_seq),
            other => panic!("expected Id, got {other:?}"),
        };
        let (id, horizon) = register("tok-wipe");
        assert_eq!(horizon, 0, "fresh identity has no horizon");
        let rec = RunRecord {
            client: id.clone(),
            user: "u".into(),
            testcase: "tc-000".into(),
            task: "Word".into(),
            skill: "Typical".into(),
            outcome: RunOutcome::Exhausted,
            offset_secs: 10.0,
            last_levels: vec![],
            monitor: MonitorSummary::default(),
        };
        for seq in 1..=3u64 {
            assert!(matches!(
                s.handle(&ClientMsg::Upload {
                    client: id.clone(),
                    seq,
                    records: vec![rec.clone()],
                }),
                ServerMsg::Ack(1)
            ));
        }
        // The "wiped" client re-registers with the same token: same id,
        // and the horizon it must resume above.
        let (id2, horizon) = register("tok-wipe");
        assert_eq!(id2, id);
        assert_eq!(horizon, 3);
        // Resuming above the horizon stores; at it, discards.
        assert!(matches!(
            s.handle(&ClientMsg::Upload {
                client: id.clone(),
                seq: 4,
                records: vec![rec.clone()],
            }),
            ServerMsg::Ack(1)
        ));
        assert_eq!(s.result_count(), 4);
    }

    #[test]
    fn poisoned_lock_degrades_to_error_then_recovers() {
        let s = std::sync::Arc::new(UucsServer::new(library(2), 8));
        // Poison the registry lock: panic while holding the write guard.
        let s2 = s.clone();
        let _ = std::thread::spawn(move || {
            let _guard = s2.registry.write().unwrap();
            panic!("poison the registry");
        })
        .join();
        assert!(s.registry.is_poisoned());
        // The first mutating request maps the poisoning to a protocol
        // error instead of panicking the handler thread...
        assert!(matches!(
            s.handle(&ClientMsg::register(MachineSnapshot::study_machine("h"))),
            ServerMsg::Error(_)
        ));
        // ...and clears the poison, so the server keeps serving.
        assert!(!s.registry.is_poisoned());
        let id = register(&s);
        assert!(s.snapshot_of(&id).is_some());
        // Read-side observers recover throughout.
        assert_eq!(s.testcase_count(), 2);
    }

    /// `STATS` answers with the telemetry snapshot, and the verbs that
    /// served this very test show up in it. Counts are asserted as
    /// presence, not exact values: the registry is process-global and
    /// other tests in this binary run concurrently.
    #[test]
    fn stats_verb_reports_verb_telemetry() {
        let s = UucsServer::new(library(2), 11);
        let id = register(&s);
        let _ = s.handle(&ClientMsg::Sync {
            client: id,
            have: 0,
            want: 1,
        });
        let json = match s.handle(&ClientMsg::Stats { reset: false }) {
            ServerMsg::Stats(json) => json,
            other => panic!("expected Stats, got {other:?}"),
        };
        assert!(json.starts_with("{\"counters\":{"), "{json}");
        for key in [
            "server.verb.register.count",
            "server.verb.sync.count",
            "server.verb.sync.ns",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(!json.contains('\n'));
        // Errors are attributed to their verb.
        let _ = s.handle(&ClientMsg::Sync {
            client: "ghost".into(),
            have: 0,
            want: 1,
        });
        match s.handle(&ClientMsg::Stats { reset: false }) {
            ServerMsg::Stats(json) => {
                assert!(json.contains("server.verb.sync.errors"), "{json}")
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn runtime_testcase_addition() {
        let s = UucsServer::new(library(2), 7);
        assert_eq!(s.testcase_count(), 2);
        s.add_testcase(Testcase::blank("late", 1.0, 60.0)).unwrap();
        assert_eq!(s.testcase_count(), 3);
        // A duplicate id is an error, not a panic, and leaves the
        // library untouched.
        let err = s.add_testcase(Testcase::blank("late", 1.0, 60.0)).unwrap_err();
        assert!(err.to_string().contains("duplicate"));
        assert_eq!(s.testcase_count(), 3);
    }
}
