//! Group-commit WAL fsync: one dedicated thread batches pending
//! appends, fsyncs once per shard, and wakes every waiter.
//!
//! The old engine ran each store WAL at `SyncPolicy::Always` — every
//! upload paid a full fsync while holding the store's write lock, so
//! durability cost scaled linearly with request count and serialized
//! the fleet behind the disk. Under group commit the stores run at
//! `SyncPolicy::Never`; a handler appends under the shard lock, records
//! the WAL's next-LSN as its durability watermark (a [`CommitTicket`]),
//! releases the lock, and then waits — without any lock held — until
//! the committer's periodic fsync pass covers that watermark. A pass
//! syncs each dirty shard exactly once no matter how many appends
//! landed since the last pass, so the per-request durability cost is
//! `fsync / batch size`, with the identical guarantee: **no request is
//! acknowledged before its journal entries are on stable storage**.
//!
//! `uucs-wal` itself stays dependency- and policy-free: the committer
//! drives the existing [`uucs_wal::Wal::sync`] (segment rotation and
//! snapshots already fsync under every policy), and batch shape is
//! observable through the `server.commit.*` telemetry series.
//!
//! Failure semantics: if an fsync fails, the slot is marked failed and
//! every current and future waiter on that shard gets the error — the
//! handler answers with a protocol error instead of an ack, exactly as
//! a failed synchronous append did before.

use crate::shard::StoreSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use uucs_pagecache::{DiskScheduler, OpKind};
use uucs_telemetry::{metrics, Counter, Histogram};
use uucs_wal::Lsn;

/// Which store family a ticket's append landed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreFlavor {
    /// The testcase library.
    Testcases,
    /// Uploaded results.
    Results,
    /// The client registry.
    Registry,
}

impl StoreFlavor {
    fn index(self) -> usize {
        match self {
            StoreFlavor::Testcases => 0,
            StoreFlavor::Results => 1,
            StoreFlavor::Registry => 2,
        }
    }
}

/// The number of ticketed families. Model-WAL appends are deliberately
/// not ticketed: the model is derived state, and a failed model journal
/// write never blocked an upload ack before (the records are the source
/// of truth) — so the committer syncs model shards opportunistically
/// but no reply waits on them.
const FLAVORS: usize = 3;

/// A durability watermark: "my append is safe once `upto` LSNs of this
/// shard's journal are on disk". Handlers capture it under the shard
/// write lock (where the post-append `next_lsn` is exact) and redeem it
/// lock-free via [`GroupCommitter::wait`] or [`GroupCommitter::poll`].
#[derive(Debug, Clone, Copy)]
pub struct CommitTicket {
    /// The store family the append landed in.
    pub flavor: StoreFlavor,
    /// The shard within the family.
    pub shard: usize,
    /// The journal's next-LSN right after the append.
    pub upto: Lsn,
}

/// Per-slot (flavor × shard) commit bookkeeping.
struct CommitState {
    /// Highest watermark any waiter has asked for, per slot.
    pending: Vec<Lsn>,
    /// Highest watermark known durable, per slot.
    synced: Vec<Lsn>,
    /// Sticky fsync failure, per slot. Once a shard's journal cannot be
    /// synced, nothing on it is ack-able until restart.
    failed: Vec<Option<String>>,
    stop: bool,
}

/// Telemetry for the commit loop.
struct CommitMetrics {
    /// fsync passes over a dirty slot.
    commits: Counter,
    /// Appends covered by one slot fsync (the amortization factor).
    batch: Histogram,
    /// Wall time of one slot fsync, ns.
    ns: Histogram,
}

/// The group-commit coordinator: shared state between request handlers
/// (submit/wait) and the dedicated commit thread.
pub struct GroupCommitter {
    stores: Arc<StoreSet>,
    state: Mutex<CommitState>,
    /// Wakes the commit thread when new work is pending.
    wake: Condvar,
    /// Wakes waiters when watermarks advance or a slot fails.
    done: Condvar,
    /// Group window: how long the commit thread gathers appends before
    /// an fsync pass. Zero = sync as soon as anything is pending.
    interval: Duration,
    counts: [usize; FLAVORS],
    stopped: AtomicBool,
    metrics: CommitMetrics,
    /// When present, slot fsyncs are submitted to the disk scheduler's
    /// thread pool instead of running serially on the commit thread —
    /// one pass over `k` dirty shards pays `max(fsync)` wall time, not
    /// `sum(fsync)`.
    scheduler: Option<Arc<DiskScheduler>>,
}

impl GroupCommitter {
    /// Starts the commit thread over `stores`. The returned handle must
    /// be joined after [`GroupCommitter::stop`] (the server's `Drop`
    /// does both).
    pub fn start(stores: Arc<StoreSet>, interval: Duration) -> (Arc<Self>, JoinHandle<()>) {
        Self::start_with(stores, interval, None)
    }

    /// [`GroupCommitter::start`], optionally over a [`DiskScheduler`]:
    /// with one, every fsync pass fans its per-shard syncs out to the
    /// scheduler's I/O threads and redeems the completion tickets, so
    /// independent shards sync in parallel.
    pub fn start_with(
        stores: Arc<StoreSet>,
        interval: Duration,
        scheduler: Option<Arc<DiskScheduler>>,
    ) -> (Arc<Self>, JoinHandle<()>) {
        let counts = [
            stores.testcases.count(),
            stores.results.count(),
            stores.registry.count(),
        ];
        let slots: usize = counts.iter().sum();
        let committer = Arc::new(GroupCommitter {
            stores,
            state: Mutex::new(CommitState {
                pending: vec![0; slots],
                synced: vec![0; slots],
                failed: vec![None; slots],
                stop: false,
            }),
            wake: Condvar::new(),
            done: Condvar::new(),
            interval,
            counts,
            stopped: AtomicBool::new(false),
            metrics: CommitMetrics {
                commits: metrics::counter("server.commit.count"),
                batch: metrics::histogram("server.commit.batch"),
                ns: metrics::histogram("server.commit.ns"),
            },
            scheduler,
        });
        let runner = committer.clone();
        let handle = std::thread::Builder::new()
            .name("uucs-group-commit".into())
            .spawn(move || runner.run())
            .expect("spawn group-commit thread");
        (committer, handle)
    }

    fn slot(&self, flavor: StoreFlavor, shard: usize) -> usize {
        let base: usize = self.counts[..flavor.index()].iter().sum();
        base + shard
    }

    fn flavor_shard(&self, slot: usize) -> (StoreFlavor, usize) {
        let mut rest = slot;
        for (i, &n) in self.counts.iter().enumerate() {
            if rest < n {
                let flavor = match i {
                    0 => StoreFlavor::Testcases,
                    1 => StoreFlavor::Results,
                    _ => StoreFlavor::Registry,
                };
                return (flavor, rest);
            }
            rest -= n;
        }
        unreachable!("slot {slot} out of range");
    }

    /// Registers a durability request and returns the redeemable ticket.
    /// (Also implicit in `wait`/`poll`; explicit submission lets the
    /// commit window start while the handler still serializes its reply.)
    pub fn submit(&self, flavor: StoreFlavor, shard: usize, upto: Lsn) -> CommitTicket {
        let slot = self.slot(flavor, shard);
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if st.pending[slot] < upto {
            st.pending[slot] = upto;
            self.wake.notify_one();
        }
        CommitTicket { flavor, shard, upto }
    }

    /// Blocks until the ticket's watermark is durable. `Err` means the
    /// shard's journal could not be synced — the caller must not ack.
    pub fn wait(&self, ticket: CommitTicket) -> Result<(), String> {
        let slot = self.slot(ticket.flavor, ticket.shard);
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if st.pending[slot] < ticket.upto {
            st.pending[slot] = ticket.upto;
            self.wake.notify_one();
        }
        loop {
            if let Some(e) = &st.failed[slot] {
                return Err(e.clone());
            }
            if st.synced[slot] >= ticket.upto {
                return Ok(());
            }
            if st.stop {
                return Err("server stopped before the commit completed".into());
            }
            st = self
                .done
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Nonblocking redemption for the worker-pool front end: `None`
    /// while the fsync is still outstanding, `Some(result)` once the
    /// watermark is durable (ack) or the shard failed (error reply).
    pub fn poll(&self, ticket: CommitTicket) -> Option<Result<(), String>> {
        let slot = self.slot(ticket.flavor, ticket.shard);
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(e) = &st.failed[slot] {
            return Some(Err(e.clone()));
        }
        if st.synced[slot] >= ticket.upto {
            return Some(Ok(()));
        }
        if st.pending[slot] < ticket.upto {
            st.pending[slot] = ticket.upto;
            self.wake.notify_one();
        }
        if st.stop {
            return Some(Err("server stopped before the commit completed".into()));
        }
        None
    }

    /// Asks the commit thread to drain pending work and exit, and fails
    /// any waiter whose watermark can no longer be reached.
    pub fn stop(&self) {
        if self.stopped.swap(true, Ordering::SeqCst) {
            return;
        }
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        st.stop = true;
        self.wake.notify_all();
        self.done.notify_all();
    }

    /// One fsync over a slot's shard. Takes the shard's write lock —
    /// handlers hold it only for in-memory appends now, so this is the
    /// only place the disk wait happens.
    fn sync_slot(&self, slot: usize) -> std::io::Result<Lsn> {
        let (flavor, shard) = self.flavor_shard(slot);
        Self::sync_store(&self.stores, flavor, shard)
    }

    /// The actual per-shard sync, callable from a scheduler thread
    /// (the shard's write lock is what serializes against handlers).
    fn sync_store(stores: &StoreSet, flavor: StoreFlavor, shard: usize) -> std::io::Result<Lsn> {
        match flavor {
            StoreFlavor::Testcases => stores.testcases.write_recovered(shard).sync_wal(),
            StoreFlavor::Results => stores.results.write_recovered(shard).sync_wal(),
            StoreFlavor::Registry => stores.registry.write_recovered(shard).sync_wal(),
        }
    }

    /// Publishes one slot's sync outcome: watermark advance (+ metrics)
    /// or sticky failure, then wakes the waiters.
    fn finish_slot(&self, slot: usize, since: Lsn, outcome: std::io::Result<Lsn>, elapsed: u64) {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        match outcome {
            Ok(watermark) => {
                self.metrics.commits.inc();
                self.metrics.batch.record(watermark.saturating_sub(since));
                self.metrics.ns.record(elapsed);
                if st.synced[slot] < watermark {
                    st.synced[slot] = watermark;
                }
            }
            Err(e) => {
                st.failed[slot] = Some(format!("journal sync failed: {e}"));
            }
        }
        self.done.notify_all();
    }

    fn run(&self) {
        loop {
            // Wait for work (or stop).
            {
                let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
                loop {
                    let dirty = (0..st.pending.len())
                        .any(|s| st.failed[s].is_none() && st.pending[s] > st.synced[s]);
                    if dirty {
                        break;
                    }
                    if st.stop {
                        return;
                    }
                    st = self
                        .wake
                        .wait(st)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                // (lock released here so the window below gathers appends)
            }
            // The group window: let more appends pile onto this pass.
            if !self.interval.is_zero() && !self.stopped.load(Ordering::SeqCst) {
                std::thread::sleep(self.interval);
            }
            // Snapshot the dirty slots, then sync each without the
            // state lock held (the shard lock is what serializes).
            let work: Vec<(usize, Lsn)> = {
                let st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
                (0..st.pending.len())
                    .filter(|&s| st.failed[s].is_none() && st.pending[s] > st.synced[s])
                    .map(|s| (s, st.synced[s]))
                    .collect()
            };
            if let Some(sched) = &self.scheduler {
                // Fan the dirty shards out to the I/O pool; each sync
                // serializes on its own shard lock, so independent
                // shards fsync in parallel and the pass costs the
                // slowest shard, not the sum.
                let t0 = Instant::now();
                let tickets: Vec<_> = work
                    .iter()
                    .map(|&(slot, since)| {
                        let (flavor, shard) = self.flavor_shard(slot);
                        let stores = self.stores.clone();
                        let ticket = sched.submit(OpKind::Fsync, move || {
                            Self::sync_store(&stores, flavor, shard)
                        });
                        (slot, since, ticket)
                    })
                    .collect();
                for (slot, since, ticket) in tickets {
                    let outcome = ticket.wait();
                    let elapsed = t0.elapsed().as_nanos() as u64;
                    self.finish_slot(slot, since, outcome, elapsed);
                }
            } else {
                for (slot, since) in work {
                    let t0 = Instant::now();
                    let outcome = self.sync_slot(slot);
                    let elapsed = t0.elapsed().as_nanos() as u64;
                    self.finish_slot(slot, since, outcome, elapsed);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uucs_harness::TempDir;
    use uucs_protocol::{MonitorSummary, RunOutcome, RunRecord};
    use uucs_testcase::Resource;
    use uucs_wal::{SyncPolicy, WalConfig};

    fn rec(client: &str) -> RunRecord {
        RunRecord {
            client: client.into(),
            user: "u".into(),
            testcase: "t".into(),
            task: "IE".into(),
            skill: "Typical".into(),
            outcome: RunOutcome::Discomfort,
            offset_secs: 1.0,
            last_levels: vec![(Resource::Cpu, vec![2.0])],
            monitor: MonitorSummary::default(),
        }
    }

    fn durable_set(dir: &std::path::Path) -> Arc<StoreSet> {
        let cfg = WalConfig {
            segment_bytes: 64 * 1024,
            sync: SyncPolicy::Never, // the committer is the only fsync
        };
        let (set, _) = StoreSet::open(dir, cfg, 2).unwrap();
        Arc::new(set)
    }

    #[test]
    fn wait_returns_once_watermark_is_durable() {
        let dir = TempDir::new("uucs-commit-wait");
        let stores = durable_set(dir.path());
        let (committer, handle) =
            GroupCommitter::start(stores.clone(), Duration::from_micros(200));
        let shard = stores.results.shard_for("c1");
        let ticket = {
            let mut g = stores.results.write_recovered(shard);
            g.append_batch("c1", 1, vec![rec("c1")]).unwrap();
            let upto = g.wal_next_lsn().unwrap();
            committer.submit(StoreFlavor::Results, shard, upto)
        };
        committer.wait(ticket).unwrap();
        committer.stop();
        handle.join().unwrap();
    }

    #[test]
    fn one_pass_covers_many_appends() {
        let dir = TempDir::new("uucs-commit-batch");
        let stores = durable_set(dir.path());
        let (committer, handle) =
            GroupCommitter::start(stores.clone(), Duration::from_millis(5));
        let mut tickets = Vec::new();
        for i in 0..32 {
            let client = format!("c{i}");
            let shard = stores.results.shard_for(&client);
            let mut g = stores.results.write_recovered(shard);
            g.append_batch(&client, 1, vec![rec(&client)]).unwrap();
            let upto = g.wal_next_lsn().unwrap();
            drop(g);
            tickets.push(committer.submit(StoreFlavor::Results, shard, upto));
        }
        for t in tickets {
            committer.wait(t).unwrap();
        }
        committer.stop();
        handle.join().unwrap();
    }

    #[test]
    fn poll_is_nonblocking_and_converges() {
        let dir = TempDir::new("uucs-commit-poll");
        let stores = durable_set(dir.path());
        let (committer, handle) =
            GroupCommitter::start(stores.clone(), Duration::from_micros(500));
        let shard = stores.results.shard_for("c9");
        let mut g = stores.results.write_recovered(shard);
        g.append_batch("c9", 1, vec![rec("c9")]).unwrap();
        let upto = g.wal_next_lsn().unwrap();
        drop(g);
        let ticket = committer.submit(StoreFlavor::Results, shard, upto);
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match committer.poll(ticket) {
                Some(r) => {
                    r.unwrap();
                    break;
                }
                None => {
                    assert!(Instant::now() < deadline, "commit never completed");
                    std::thread::sleep(Duration::from_micros(100));
                }
            }
        }
        committer.stop();
        handle.join().unwrap();
    }

    #[test]
    fn stop_fails_unreachable_waits() {
        let dir = TempDir::new("uucs-commit-stop");
        let stores = durable_set(dir.path());
        let (committer, handle) = GroupCommitter::start(stores.clone(), Duration::from_secs(30));
        committer.stop();
        handle.join().unwrap();
        // A watermark far beyond anything appended can never be reached.
        let ticket = CommitTicket {
            flavor: StoreFlavor::Results,
            shard: 0,
            upto: 1_000_000,
        };
        assert!(committer.wait(ticket).is_err());
        assert!(matches!(committer.poll(ticket), Some(Err(_))));
    }
}
