//! Store sharding: per-shard `RwLock`s and per-shard WAL streams.
//!
//! A [`Sharded<T>`] holds `n` independent copies of a store behind `n`
//! independent locks, keyed by a stable FNV-1a hash of the routing key
//! (client id, testcase id, cohort). Unrelated clients therefore never
//! contend on a lock or an fsync — the single-store server serialized
//! every upload behind one `RwLock<ResultStore>` and one WAL file.
//!
//! # On-disk layout and resharding
//!
//! A sharded family lives under `dir/by-N/shard-XXX/`, one WAL per
//! shard. The layout is **committed** by a `READY` marker file carrying
//! a monotonically increasing generation number; a `by-N` directory
//! without `READY` is an interrupted migration and is discarded. A
//! single-shard family with no committed layout uses the legacy flat
//! WAL directly in `dir` — byte-compatible with pre-sharding data dirs.
//!
//! Changing the shard count **migrates**: the current layout (or the
//! flat legacy WAL) is replayed, its logical state is repartitioned by
//! hash into fresh per-shard stores, each is checkpointed, and only
//! then is the new `READY` written (generation = source + 1) and the
//! source layout removed. A crash at any point leaves either the old
//! committed layout (marker not yet written) or the new one (marker
//! written); the highest generation wins, so recovery always sees
//! exactly one logical state — the property the reshard recovery test
//! pins down.

use crate::models::ModelStore;
use crate::storage::{StorageProfile, StoreIo};
use crate::store::{invalid, RegistryStore, ResultStore, TestcaseStore};
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};
use uucs_modelsvc::{CohortKey, ComfortModel, QuantileSketch};
use uucs_wal::{Recovery, WalConfig};

/// Stable shard routing: FNV-1a over the key, reduced modulo the shard
/// count. Must never change — recovery with an unchanged shard count
/// reopens each shard's WAL in place, assuming every key still routes
/// where it was written.
pub fn shard_of(key: &str, shards: usize) -> usize {
    debug_assert!(shards > 0);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % shards as u64) as usize
}

/// The shard's lock was poisoned by an earlier panic. The flag has been
/// cleared — this shard (and only this shard) failed the one request
/// that observed the poisoning and serves the next one normally.
#[derive(Debug, Clone, Copy)]
pub struct ShardPoisoned;

/// `n` copies of a store behind `n` independent `RwLock`s.
pub struct Sharded<T> {
    shards: Vec<RwLock<T>>,
}

impl<T> Sharded<T> {
    /// Wraps pre-built shard states (one entry = the unsharded layout).
    pub fn new(parts: Vec<T>) -> Self {
        assert!(!parts.is_empty(), "a sharded store needs at least 1 shard");
        Sharded {
            shards: parts.into_iter().map(RwLock::new).collect(),
        }
    }

    /// Number of shards.
    pub fn count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a routing key lands on.
    pub fn shard_for(&self, key: &str) -> usize {
        shard_of(key, self.count())
    }

    /// Read-locks one shard, recovering from poisoning: the stores are
    /// append-only collections whose elements are fully written before
    /// being linked in, so a reader can never observe torn data.
    pub fn read(&self, shard: usize) -> RwLockReadGuard<'_, T> {
        self.shards[shard]
            .read()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Read-locks every shard (in index order), for whole-family
    /// queries that need one consistent view — e.g. the global testcase
    /// order a `SYNC` samples from.
    pub fn read_all(&self) -> Vec<RwLockReadGuard<'_, T>> {
        (0..self.count()).map(|i| self.read(i)).collect()
    }

    /// Write-locks one shard for a protocol mutation. Poisoning fails
    /// *this* request (the caller maps [`ShardPoisoned`] to a protocol
    /// error) and clears the flag, so the shard heals — and every other
    /// shard keeps serving throughout.
    pub fn try_write(&self, shard: usize) -> Result<RwLockWriteGuard<'_, T>, ShardPoisoned> {
        self.shards[shard].write().map_err(|_| {
            self.shards[shard].clear_poison();
            ShardPoisoned
        })
    }

    /// Write-locks one shard for maintenance (compaction, group-commit
    /// fsync), recovering from — and clearing — poisoning: maintenance
    /// must proceed even if a handler panicked, and the append-only
    /// store invariant makes the recovered state safe to use.
    pub fn write_recovered(&self, shard: usize) -> RwLockWriteGuard<'_, T> {
        let guard = self.shards[shard]
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        self.shards[shard].clear_poison();
        guard
    }

    /// The raw lock of one shard — tests use it to poison a shard.
    #[cfg(test)]
    pub(crate) fn raw(&self, shard: usize) -> &RwLock<T> {
        &self.shards[shard]
    }
}

fn shard_dirname(i: usize) -> String {
    format!("shard-{i:03}")
}

const READY_MARKER: &str = "READY";

/// One committed `by-N` layout found on disk.
#[derive(Debug, Clone)]
struct Layout {
    shards: usize,
    generation: u64,
    path: PathBuf,
}

/// Finds every *committed* (READY-marked) layout under `dir`.
fn scan_layouts(dir: &Path) -> io::Result<Vec<Layout>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(n) = name.strip_prefix("by-").and_then(|s| s.parse::<usize>().ok()) else {
            continue;
        };
        if n == 0 || !entry.path().is_dir() {
            continue;
        }
        let marker = entry.path().join(READY_MARKER);
        let Ok(text) = std::fs::read_to_string(&marker) else {
            continue; // no READY: an interrupted migration, not a layout
        };
        let Ok(generation) = text.trim().parse::<u64>() else {
            continue;
        };
        out.push(Layout {
            shards: n,
            generation,
            path: entry.path(),
        });
    }
    Ok(out)
}

/// True when `dir` holds loose files — a legacy flat WAL predating the
/// sharded layout.
fn has_flat_files(dir: &Path) -> io::Result<bool> {
    for entry in std::fs::read_dir(dir)? {
        if entry?.path().is_file() {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Writes the commit marker: generation number, fsynced.
fn write_ready(layout_dir: &Path, generation: u64) -> io::Result<()> {
    use std::io::Write;
    let mut f = std::fs::File::create(layout_dir.join(READY_MARKER))?;
    f.write_all(generation.to_string().as_bytes())?;
    f.sync_all()
}

/// What a store family must provide to live under [`Sharded`] with a
/// per-shard WAL: how to open one shard's journal, and how to
/// repartition recovered state when the shard count changes.
trait ShardFamily: Sized {
    /// The merged logical state of the whole family, hash-partitionable.
    type State;
    /// Opens (replaying) one shard's WAL directory over the family's
    /// shared I/O backend (every shard of a flavor shares one page
    /// cache; a passthrough backend costs nothing).
    fn open_dir(io: StoreIo, dir: &Path, cfg: WalConfig) -> io::Result<(Self, Recovery)>;
    /// Merges recovered source shards into the family's logical state.
    fn extract(stores: Vec<Self>) -> io::Result<Self::State>;
    /// Loads shard `shard`-of-`n`'s partition of `state` into a fresh
    /// (just-opened, empty) store.
    fn load_part(&mut self, state: &Self::State, shard: usize, n: usize) -> io::Result<()>;
    /// Folds the freshly loaded state into a checkpoint.
    fn checkpoint(&mut self) -> io::Result<()>;
}

/// Opens a family of `n` WAL shards under `dir`, migrating from a
/// different committed shard count (or the legacy flat layout) when
/// needed. See the module docs for the crash-safety protocol.
fn open_sharded<F: ShardFamily>(
    dir: &Path,
    cfg: WalConfig,
    n: usize,
    io: &StoreIo,
) -> io::Result<(Sharded<F>, Vec<Recovery>)> {
    if n == 0 {
        return Err(invalid("shard count must be at least 1"));
    }
    std::fs::create_dir_all(dir)?;
    let current = scan_layouts(dir)?
        .into_iter()
        .max_by_key(|l| (l.generation, l.shards));

    // Fast path: one shard, nothing ever sharded — the legacy flat WAL,
    // byte-compatible with pre-sharding data directories.
    if n == 1 && current.is_none() {
        let (store, rec) = F::open_dir(io.clone(), dir, cfg)?;
        return Ok((Sharded::new(vec![store]), vec![rec]));
    }

    let target = dir.join(format!("by-{n}"));
    if current.as_ref().map(|c| c.shards) != Some(n) {
        // Migrate: replay the source, repartition by hash, rebuild.
        let state = match &current {
            Some(cur) => {
                let mut sources = Vec::with_capacity(cur.shards);
                for i in 0..cur.shards {
                    let (s, _) = F::open_dir(io.clone(), &cur.path.join(shard_dirname(i)), cfg)?;
                    sources.push(s);
                }
                Some(F::extract(sources)?)
            }
            None if has_flat_files(dir)? => {
                let (s, _) = F::open_dir(io.clone(), dir, cfg)?;
                Some(F::extract(vec![s])?)
            }
            None => None,
        };
        if target.exists() {
            // A previous migration to this count died before READY.
            std::fs::remove_dir_all(&target)?;
        }
        for i in 0..n {
            let (mut s, _) = F::open_dir(io.clone(), &target.join(shard_dirname(i)), cfg)?;
            if let Some(state) = &state {
                s.load_part(state, i, n)?;
            }
            s.checkpoint()?;
        }
        // Commit point. Until this marker lands, recovery still sees the
        // source layout; after it, the higher generation wins even if
        // the source removal below never runs.
        let generation = current.as_ref().map(|c| c.generation).unwrap_or(0) + 1;
        write_ready(&target, generation)?;
        if let Some(cur) = &current {
            std::fs::remove_dir_all(&cur.path)?;
        }
    }

    // Clear stale siblings: superseded layouts and interrupted builds.
    // (A legacy flat WAL that was migrated away stays on disk inertly —
    // any committed layout takes precedence over flat files.)
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.starts_with("by-") && entry.path() != target && entry.path().is_dir() {
            std::fs::remove_dir_all(entry.path())?;
        }
    }

    let mut stores = Vec::with_capacity(n);
    let mut recoveries = Vec::with_capacity(n);
    for i in 0..n {
        let (s, r) = F::open_dir(io.clone(), &target.join(shard_dirname(i)), cfg)?;
        stores.push(s);
        recoveries.push(r);
    }
    Ok((Sharded::new(stores), recoveries))
}

impl ShardFamily for TestcaseStore {
    type State = Vec<uucs_testcase::Testcase>;

    fn open_dir(io: StoreIo, dir: &Path, cfg: WalConfig) -> io::Result<(Self, Recovery)> {
        TestcaseStore::open_wal_with(io, dir, cfg)
    }

    fn extract(stores: Vec<Self>) -> io::Result<Self::State> {
        Ok(stores
            .into_iter()
            .flat_map(TestcaseStore::into_testcases)
            .collect())
    }

    fn load_part(&mut self, state: &Self::State, shard: usize, n: usize) -> io::Result<()> {
        for tc in state {
            if shard_of(tc.id.as_str(), n) == shard {
                self.add(tc.clone()).map_err(invalid)?;
            }
        }
        Ok(())
    }

    fn checkpoint(&mut self) -> io::Result<()> {
        self.compact().map(|_| ())
    }
}

impl ShardFamily for ResultStore {
    type State = (Vec<uucs_protocol::RunRecord>, BTreeMap<String, u64>);

    fn open_dir(io: StoreIo, dir: &Path, cfg: WalConfig) -> io::Result<(Self, Recovery)> {
        ResultStore::open_wal_with(io, dir, cfg)
    }

    fn extract(stores: Vec<Self>) -> io::Result<Self::State> {
        let mut records = Vec::new();
        let mut horizons: BTreeMap<String, u64> = BTreeMap::new();
        for s in stores {
            let (recs, applied) = s.into_parts();
            records.extend(recs);
            for (client, seq) in applied {
                let h = horizons.entry(client).or_insert(0);
                *h = (*h).max(seq);
            }
        }
        Ok((records, horizons))
    }

    fn load_part(&mut self, state: &Self::State, shard: usize, n: usize) -> io::Result<()> {
        let (records, horizons) = state;
        // Horizons first: an empty batch at the horizon seq journals the
        // idempotency watermark without touching the record stream.
        for (client, seq) in horizons {
            if shard_of(client, n) == shard {
                self.append_batch(client, *seq, Vec::new()).map_err(invalid)?;
            }
        }
        let mine: Vec<_> = records
            .iter()
            .filter(|r| shard_of(&r.client, n) == shard)
            .cloned()
            .collect();
        if !mine.is_empty() {
            self.append(mine).map_err(invalid)?;
        }
        Ok(())
    }

    fn checkpoint(&mut self) -> io::Result<()> {
        self.compact().map(|_| ())
    }
}

impl ShardFamily for RegistryStore {
    type State = (
        Vec<(String, uucs_protocol::MachineSnapshot)>,
        Vec<(String, String)>,
    );

    fn open_dir(io: StoreIo, dir: &Path, cfg: WalConfig) -> io::Result<(Self, Recovery)> {
        RegistryStore::open_wal_with(io, dir, cfg)
    }

    fn extract(stores: Vec<Self>) -> io::Result<Self::State> {
        let mut clients = Vec::new();
        let mut tokens = Vec::new();
        for s in stores {
            let (c, t) = s.into_parts();
            clients.extend(c);
            tokens.extend(t);
        }
        Ok((clients, tokens))
    }

    fn load_part(&mut self, state: &Self::State, shard: usize, n: usize) -> io::Result<()> {
        let (clients, tokens) = state;
        for (id, snap) in clients {
            if shard_of(id, n) != shard {
                continue;
            }
            let token = tokens
                .iter()
                .find(|(_, tid)| tid == id)
                .map(|(t, _)| t.as_str())
                .unwrap_or("");
            self.register_with_id(id.clone(), snap.clone(), token)
                .map_err(invalid)?;
        }
        Ok(())
    }

    fn checkpoint(&mut self) -> io::Result<()> {
        self.compact().map(|_| ())
    }
}

/// The routing key of a model cohort.
pub(crate) fn cohort_key_token(key: &CohortKey) -> String {
    format!("{}|{}|{}", key.resource, key.task, key.skill)
}

impl ShardFamily for ModelStore {
    type State = (u64, BTreeMap<CohortKey, QuantileSketch>);

    fn open_dir(io: StoreIo, dir: &Path, cfg: WalConfig) -> io::Result<(Self, Recovery)> {
        ModelStore::open_wal_with(io, dir, cfg)
    }

    fn extract(stores: Vec<Self>) -> io::Result<Self::State> {
        // The global epoch is the *sum* of shard epochs (each shard
        // mints its own); cohort sketches merge exactly, so the merged
        // model is identical no matter how the cohorts were spread.
        let mut epoch = 0u64;
        let mut cohorts: BTreeMap<CohortKey, QuantileSketch> = BTreeMap::new();
        for s in stores {
            let (e, cs) = s.into_model().into_parts();
            epoch += e;
            for (key, sketch) in cs {
                match cohorts.entry(key) {
                    std::collections::btree_map::Entry::Occupied(mut o) => {
                        o.get_mut().merge(&sketch).map_err(invalid)?;
                    }
                    std::collections::btree_map::Entry::Vacant(v) => {
                        v.insert(sketch);
                    }
                }
            }
        }
        Ok((epoch, cohorts))
    }

    fn load_part(&mut self, state: &Self::State, shard: usize, n: usize) -> io::Result<()> {
        let (epoch, cohorts) = state;
        let mine: BTreeMap<CohortKey, QuantileSketch> = cohorts
            .iter()
            .filter(|(k, _)| shard_of(&cohort_key_token(k), n) == shard)
            .map(|(k, s)| (k.clone(), s.clone()))
            .collect();
        // The epoch sum rides on shard 0; splitting it has no meaning,
        // and only the sum is client-visible.
        let e = if shard == 0 { *epoch } else { 0 };
        self.install_model(ComfortModel::from_parts(e, mine))
    }

    fn checkpoint(&mut self) -> io::Result<()> {
        self.compact().map(|_| ())
    }
}

/// The server's four store families, sharded. The committer thread and
/// the request handlers share one instance behind an `Arc`.
pub struct StoreSet {
    /// The testcase library, sharded by testcase id.
    pub testcases: Sharded<TestcaseStore>,
    /// Uploaded results and dedup horizons, sharded by client id.
    pub results: Sharded<ResultStore>,
    /// The client registry, sharded by client id.
    pub registry: Sharded<RegistryStore>,
    /// The comfort model, sharded by uploading client id (queries merge
    /// every shard's sketches — sketch merges are exact).
    pub models: Sharded<ModelStore>,
}

impl StoreSet {
    /// Wraps single (unsharded) stores — the layout every legacy
    /// constructor produces, behaviorally identical to the old server.
    pub fn from_single(
        testcases: TestcaseStore,
        results: ResultStore,
        registry: RegistryStore,
        models: ModelStore,
    ) -> Self {
        StoreSet {
            testcases: Sharded::new(vec![testcases]),
            results: Sharded::new(vec![results]),
            registry: Sharded::new(vec![registry]),
            models: Sharded::new(vec![models]),
        }
    }

    /// `n` empty in-memory shards per family (tests, benches).
    pub fn plain(shards: usize) -> Self {
        assert!(shards > 0);
        StoreSet {
            testcases: Sharded::new((0..shards).map(|_| TestcaseStore::new()).collect()),
            results: Sharded::new((0..shards).map(|_| ResultStore::new()).collect()),
            registry: Sharded::new((0..shards).map(|_| RegistryStore::new()).collect()),
            models: Sharded::new((0..shards).map(|_| ModelStore::new()).collect()),
        }
    }

    /// Opens all four WAL-backed families under `dir`
    /// (`dir/testcases`, `dir/results`, `dir/registry`, `dir/models`),
    /// each sharded `shards` ways — migrating any previously committed
    /// layout with a different count. Returns the per-shard recoveries
    /// (testcases, then results, registry, models) for torn-tail
    /// reporting.
    pub fn open(dir: &Path, cfg: WalConfig, shards: usize) -> io::Result<(Self, Vec<Recovery>)> {
        Self::open_with(dir, cfg, shards, &StorageProfile::default())
    }

    /// [`StoreSet::open`] under an explicit [`StorageProfile`]: each
    /// family's shards share one flavor-labelled page cache, so warm
    /// recovery replays, reshard migrations, and compaction scans are
    /// served from memory. The default profile is a passthrough —
    /// byte- and syscall-identical to [`StoreSet::open`] before it.
    pub fn open_with(
        dir: &Path,
        cfg: WalConfig,
        shards: usize,
        profile: &StorageProfile,
    ) -> io::Result<(Self, Vec<Recovery>)> {
        let (testcases, mut recs) = open_sharded::<TestcaseStore>(
            &dir.join("testcases"),
            cfg,
            shards,
            &profile.store_io("testcases"),
        )?;
        let (results, r) = open_sharded::<ResultStore>(
            &dir.join("results"),
            cfg,
            shards,
            &profile.store_io("results"),
        )?;
        recs.extend(r);
        let (registry, r) = open_sharded::<RegistryStore>(
            &dir.join("registry"),
            cfg,
            shards,
            &profile.store_io("registry"),
        )?;
        recs.extend(r);
        let (models, r) = open_sharded::<ModelStore>(
            &dir.join("models"),
            cfg,
            shards,
            &profile.store_io("model"),
        )?;
        recs.extend(r);
        Ok((
            StoreSet {
                testcases,
                results,
                registry,
                models,
            },
            recs,
        ))
    }

    /// Flips deferred rotation sync on every shard of every family —
    /// used once group commit owns durability, so segment rotation
    /// stops fsyncing on the append path (the committer's next pass
    /// drains the deferred syncs before anything is acknowledged).
    pub fn set_deferred_rotation_sync(&self, defer: bool) {
        for i in 0..self.testcases.count() {
            self.testcases
                .write_recovered(i)
                .set_deferred_rotation_sync(defer);
        }
        for i in 0..self.results.count() {
            self.results
                .write_recovered(i)
                .set_deferred_rotation_sync(defer);
        }
        for i in 0..self.registry.count() {
            self.registry
                .write_recovered(i)
                .set_deferred_rotation_sync(defer);
        }
        for i in 0..self.models.count() {
            self.models
                .write_recovered(i)
                .set_deferred_rotation_sync(defer);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::plain_io;
    use uucs_harness::TempDir;
    use uucs_protocol::{MachineSnapshot, MonitorSummary, RunOutcome, RunRecord};
    use uucs_testcase::{ExerciseSpec, Resource, Testcase};
    use uucs_wal::SyncPolicy;

    fn cfg() -> WalConfig {
        WalConfig {
            segment_bytes: 1024,
            sync: SyncPolicy::Always,
        }
    }

    fn tc(id: &str) -> Testcase {
        Testcase::single(
            id,
            1.0,
            Resource::Cpu,
            ExerciseSpec::Ramp {
                level: 1.0,
                duration: 10.0,
            },
        )
    }

    fn rec(client: &str, user: &str) -> RunRecord {
        RunRecord {
            client: client.into(),
            user: user.into(),
            testcase: "t".into(),
            task: "IE".into(),
            skill: "Typical".into(),
            outcome: RunOutcome::Discomfort,
            offset_secs: 10.0,
            last_levels: vec![(Resource::Cpu, vec![2.0])],
            monitor: MonitorSummary::default(),
        }
    }

    #[test]
    fn hashing_is_stable_and_in_range() {
        for n in 1..=16 {
            for key in ["client-0001", "client-0002", "x", ""] {
                let s = shard_of(key, n);
                assert!(s < n);
                assert_eq!(s, shard_of(key, n), "stable");
            }
        }
        // The hash actually spreads keys (not all on one shard).
        let spread: std::collections::BTreeSet<usize> = (0..100)
            .map(|i| shard_of(&format!("client-{i:04}"), 8))
            .collect();
        assert!(spread.len() > 4, "poor spread: {spread:?}");
    }

    #[test]
    fn single_shard_uses_legacy_flat_layout() {
        let dir = TempDir::new("uucs-shard-flat");
        {
            let (tcs, _) = open_sharded::<TestcaseStore>(dir.path(), cfg(), 1, &plain_io()).unwrap();
            tcs.write_recovered(0).add(tc("a")).unwrap();
        }
        // The flat files live directly in the dir — same as pre-sharding.
        assert!(has_flat_files(dir.path()).unwrap());
        // And a plain single-store open reads them back.
        let (store, _) = TestcaseStore::open_wal(dir.path(), cfg()).unwrap();
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn reshard_preserves_merged_state() {
        let dir = TempDir::new("uucs-shard-reshard");
        let ids: Vec<String> = (0..20).map(|i| format!("case-{i:02}")).collect();
        {
            let (tcs, _) = open_sharded::<TestcaseStore>(dir.path(), cfg(), 2, &plain_io()).unwrap();
            for id in &ids {
                let shard = tcs.shard_for(id);
                tcs.write_recovered(shard).add(tc(id)).unwrap();
            }
        }
        for n in [5usize, 3, 1, 4] {
            let (tcs, _) = open_sharded::<TestcaseStore>(dir.path(), cfg(), n, &plain_io()).unwrap();
            assert_eq!(tcs.count(), n);
            let mut seen: Vec<String> = Vec::new();
            for i in 0..n {
                let g = tcs.read(i);
                for t in g.all() {
                    // Every testcase sits on the shard its id hashes to.
                    assert_eq!(shard_of(t.id.as_str(), n), i);
                    seen.push(t.id.as_str().to_string());
                }
            }
            seen.sort();
            let mut want = ids.clone();
            want.sort();
            assert_eq!(seen, want, "reshard to {n} lost or duplicated state");
        }
    }

    #[test]
    fn flat_layout_migrates_to_sharded() {
        let dir = TempDir::new("uucs-shard-flatmig");
        {
            let (mut store, _) = ResultStore::open_wal(dir.path(), cfg()).unwrap();
            store.append_batch("c1", 3, vec![rec("c1", "u1")]).unwrap();
            store.append_batch("c2", 7, vec![rec("c2", "u2")]).unwrap();
        }
        let (res, _) = open_sharded::<ResultStore>(dir.path(), cfg(), 4, &plain_io()).unwrap();
        let total: usize = (0..4).map(|i| res.read(i).len()).sum();
        assert_eq!(total, 2);
        assert_eq!(res.read(res.shard_for("c1")).applied_seq("c1"), 3);
        assert_eq!(res.read(res.shard_for("c2")).applied_seq("c2"), 7);
        // The committed layout wins over the (stale, still present) flat
        // files on every subsequent open.
        let (res, _) = open_sharded::<ResultStore>(dir.path(), cfg(), 4, &plain_io()).unwrap();
        let total: usize = (0..4).map(|i| res.read(i).len()).sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn interrupted_migration_is_discarded() {
        let dir = TempDir::new("uucs-shard-interrupt");
        {
            let (reg, _) = open_sharded::<RegistryStore>(dir.path(), cfg(), 2, &plain_io()).unwrap();
            let shard = reg.shard_for("client-0001");
            reg.write_recovered(shard)
                .register_with_id(
                    "client-0001".into(),
                    MachineSnapshot::study_machine("h1"),
                    "tok",
                )
                .unwrap();
        }
        // Fake a migration to 3 shards that died before READY: a target
        // directory with garbage and no marker.
        let partial = dir.join("by-3");
        std::fs::create_dir_all(partial.join("shard-000")).unwrap();
        std::fs::write(partial.join("shard-000/junk"), b"half-written").unwrap();
        // Opening with 3 shards rebuilds from the committed 2-shard
        // layout; the junk is gone.
        let (reg, _) = open_sharded::<RegistryStore>(dir.path(), cfg(), 3, &plain_io()).unwrap();
        let shard = reg.shard_for("client-0001");
        assert_eq!(reg.read(shard).id_for_token("tok"), Some("client-0001"));
        assert!(!partial.join("shard-000/junk").exists());
    }

    #[test]
    fn model_reshard_preserves_merged_sketches_and_epoch_sum() {
        use uucs_modelsvc::Observation;
        let dir = TempDir::new("uucs-shard-model");
        let obs = |task: &str, level: f64| Observation {
            resource: Resource::Cpu,
            task: task.into(),
            skill: "Typical".into(),
            level,
            censored: false,
        };
        let baseline = {
            let (models, _) = open_sharded::<ModelStore>(dir.path(), cfg(), 3, &plain_io()).unwrap();
            models
                .write_recovered(0)
                .observe_batch(vec![obs("Word", 2.0), obs("Quake", 1.0)])
                .unwrap();
            models
                .write_recovered(1)
                .observe_batch(vec![obs("Word", 4.0)])
                .unwrap();
            models
                .write_recovered(2)
                .observe_batch(vec![obs("Quake", 1.5)])
                .unwrap();
            let mut merged = QuantileSketch::for_resource(Resource::Cpu);
            for i in 0..3 {
                merged
                    .merge(&models.read(i).merged_sketch(Resource::Cpu, None))
                    .unwrap();
            }
            let epoch: u64 = (0..3).map(|i| models.read(i).epoch()).sum();
            (epoch, merged.encode())
        };
        for n in [1usize, 4, 2] {
            let (models, _) = open_sharded::<ModelStore>(dir.path(), cfg(), n, &plain_io()).unwrap();
            let mut merged = QuantileSketch::for_resource(Resource::Cpu);
            for i in 0..n {
                merged
                    .merge(&models.read(i).merged_sketch(Resource::Cpu, None))
                    .unwrap();
            }
            let epoch: u64 = (0..n).map(|i| models.read(i).epoch()).sum();
            assert_eq!(epoch, baseline.0, "epoch sum changed at {n} shards");
            assert_eq!(merged.encode(), baseline.1, "sketch changed at {n} shards");
        }
    }

    #[test]
    fn per_shard_poisoning_is_isolated() {
        let sharded: Sharded<Vec<u32>> = Sharded::new(vec![vec![], vec![], vec![]]);
        let poison = |s: &Sharded<Vec<u32>>, i: usize| {
            let lock: &RwLock<Vec<u32>> = s.raw(i);
            std::thread::scope(|scope| {
                let _ = scope
                    .spawn(|| {
                        let _g = lock.write().unwrap();
                        panic!("poison shard");
                    })
                    .join();
            });
        };
        poison(&sharded, 1);
        assert!(sharded.raw(1).is_poisoned());
        // Other shards are untouched.
        sharded.try_write(0).unwrap().push(1);
        sharded.try_write(2).unwrap().push(2);
        // The poisoned shard fails one request and heals.
        assert!(sharded.try_write(1).is_err());
        sharded.try_write(1).unwrap().push(3);
        assert_eq!(*sharded.read(1), vec![3]);
    }
}
