//! The TCP front end: one thread per connection, each speaking the
//! line-oriented wire protocol against the shared [`UucsServer`].
//!
//! Hardened for the open internet the paper's clients lived on:
//!
//! * **Per-connection read deadlines** — a stalled or black-holed peer
//!   releases its thread after [`ServeConfig::read_timeout`] instead of
//!   holding it forever.
//! * **Connection cap** — past [`ServeConfig::max_connections`] live
//!   connections, new arrivals get `ERROR server at capacity` and are
//!   closed, so an accept storm degrades politely instead of exhausting
//!   threads.
//! * **Accept-error backoff** — a transient `accept(2)` failure (EMFILE,
//!   ECONNABORTED, ...) sleeps [`ServeConfig::accept_retry`] and
//!   retries; it does not kill the listener.
//! * **Graceful drain** — [`ServerHandle::shutdown`] tracks every
//!   connection thread (no detached leaks), closes their sockets to
//!   unblock reads, and joins them within a deadline.
//! * **Forward compatibility** — a message tag this server does not know
//!   ([`std::io::ErrorKind::Unsupported`]) is answered with
//!   `ERROR unsupported message ...` and the connection stays alive, so
//!   an old server degrades gracefully against a newer client. Torn
//!   framing (`InvalidData`) still closes the connection: the stream
//!   position is unknown.

use crate::server::UucsServer;
use std::io::BufReader;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use uucs_protocol::wire::{read_client_msg, write_server_msg, Endpoint};
use uucs_protocol::{ClientMsg, ServerMsg};
use uucs_telemetry::metrics;

/// Tuning knobs for the TCP front end.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Per-connection read deadline: a connection idle (or stalled
    /// mid-message) longer than this is closed. `None` waits forever —
    /// the pre-hardening behaviour.
    pub read_timeout: Option<Duration>,
    /// Maximum simultaneously served connections; arrivals beyond it are
    /// answered `ERROR server at capacity` and closed.
    pub max_connections: usize,
    /// Backoff after a transient `accept(2)` error.
    pub accept_retry: Duration,
    /// How long [`ServerHandle::shutdown`] waits for connection threads
    /// to drain before giving up on the stragglers.
    pub drain_deadline: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            read_timeout: Some(Duration::from_secs(30)),
            max_connections: 256,
            accept_retry: Duration::from_millis(50),
            drain_deadline: Duration::from_secs(5),
        }
    }
}

/// One tracked connection: its thread and a handle to its socket so
/// shutdown can unblock a pending read.
struct Conn {
    thread: JoinHandle<()>,
    stream: TcpStream,
}

/// Shared connection bookkeeping between the accept loop and shutdown.
#[derive(Default)]
struct Tracker {
    conns: Mutex<Vec<Conn>>,
    live: AtomicUsize,
}

impl Tracker {
    /// Drops finished threads from the table (joining them is instant).
    fn reap(&self) {
        let mut conns = self.conns.lock().unwrap_or_else(PoisonError::into_inner);
        let mut kept = Vec::with_capacity(conns.len());
        for c in conns.drain(..) {
            if c.thread.is_finished() {
                let _ = c.thread.join();
            } else {
                kept.push(c);
            }
        }
        *conns = kept;
    }
}

/// A running TCP server; dropping it (after [`ServerHandle::shutdown`])
/// joins the accept loop.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    tracker: Arc<Tracker>,
    drain_deadline: Duration,
    /// The shared server state, for inspection by tests and drivers.
    pub server: Arc<UucsServer>,
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of connections currently being served.
    pub fn live_connections(&self) -> usize {
        self.tracker.live.load(Ordering::SeqCst)
    }

    /// Requests shutdown and drains: stops accepting, closes every
    /// tracked connection's socket (unblocking pending reads), and joins
    /// the connection threads within the configured deadline. Returns
    /// `true` if everything drained, `false` if stragglers were left
    /// behind (their threads die with the process).
    pub fn shutdown(mut self) -> bool {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        let deadline = Instant::now() + self.drain_deadline;
        let mut conns = std::mem::take(
            &mut *self
                .tracker
                .conns
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        );
        for c in &conns {
            let _ = c.stream.shutdown(Shutdown::Both);
        }
        let mut drained = true;
        for c in conns.drain(..) {
            // `JoinHandle` has no timed join; poll `is_finished` against
            // the deadline — the socket shutdown above guarantees the
            // thread is already unblocking.
            while !c.thread.is_finished() && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(1));
            }
            if c.thread.is_finished() {
                let _ = c.thread.join();
            } else {
                drained = false;
            }
        }
        drained
    }
}

/// Binds `127.0.0.1:0` (or a specific address) and serves the given
/// server state until shutdown, with default hardening ([`ServeConfig`]).
pub fn serve(server: Arc<UucsServer>, addr: &str) -> std::io::Result<ServerHandle> {
    serve_with(server, addr, ServeConfig::default())
}

/// [`serve`] with explicit tuning.
pub fn serve_with(
    server: Arc<UucsServer>,
    addr: &str,
    config: ServeConfig,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = stop.clone();
    let server2 = server.clone();
    let tracker = Arc::new(Tracker::default());
    let tracker2 = tracker.clone();
    // Connection telemetry: the live gauge mirrors `Tracker::live`, the
    // counters record accept/reject outcomes — all surfaced by `STATS`.
    let live_gauge = metrics::gauge("server.connections.live");
    let accepted = metrics::counter("server.connections.accepted");
    let rejected = metrics::counter("server.connections.rejected");
    let accept_thread = std::thread::spawn(move || {
        for conn in listener.incoming() {
            if stop2.load(Ordering::SeqCst) {
                break;
            }
            match conn {
                Ok(stream) => {
                    tracker2.reap();
                    if tracker2.live.load(Ordering::SeqCst) >= config.max_connections {
                        // Over the cap: answer and close without
                        // spending a thread on the peer.
                        rejected.inc();
                        let mut w = stream;
                        let _ = write_server_msg(
                            &mut w,
                            &ServerMsg::Error("server at capacity".into()),
                        );
                        continue;
                    }
                    let Ok(tracked) = stream.try_clone() else {
                        continue;
                    };
                    let server = server2.clone();
                    let tracker3 = tracker2.clone();
                    tracker3.live.fetch_add(1, Ordering::SeqCst);
                    accepted.inc();
                    live_gauge.inc();
                    let t4 = tracker3.clone();
                    let live2 = live_gauge.clone();
                    let closer = tracked.try_clone().ok();
                    let thread = std::thread::spawn(move || {
                        handle_connection(stream, &*server, config.read_timeout);
                        // The tracker holds another clone of this socket,
                        // so dropping ours does not close it — shut it
                        // down explicitly so the peer sees EOF now.
                        if let Some(s) = closer {
                            let _ = s.shutdown(Shutdown::Both);
                        }
                        t4.live.fetch_sub(1, Ordering::SeqCst);
                        live2.dec();
                    });
                    tracker2
                        .conns
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .push(Conn {
                            thread,
                            stream: tracked,
                        });
                }
                // A transient accept failure (EMFILE, ECONNABORTED, a
                // half-open handshake torn down...) must not kill the
                // whole server: back off briefly and keep listening.
                Err(_) => std::thread::sleep(config.accept_retry),
            }
        }
    });
    Ok(ServerHandle {
        addr: local,
        stop,
        accept_thread: Some(accept_thread),
        tracker,
        drain_deadline: config.drain_deadline,
        server,
    })
}

/// Runs the message loop for one connection.
fn handle_connection(stream: TcpStream, server: &dyn Endpoint, read_timeout: Option<Duration>) {
    let _ = stream.set_read_timeout(read_timeout);
    // Replies are small multi-write frames; don't let Nagle sit on them.
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        match read_client_msg(&mut reader) {
            Ok(Some(ClientMsg::Bye)) | Ok(None) => return,
            Ok(Some(msg)) => {
                let reply = server.handle(&msg);
                if write_server_msg(&mut writer, &reply).is_err() {
                    return;
                }
            }
            // An unknown message tag from a newer client: the read
            // stopped at a clean line boundary, so report it and keep
            // serving the connection.
            Err(e) if e.kind() == std::io::ErrorKind::Unsupported => {
                let reply = ServerMsg::Error(format!("unsupported message: {e}"));
                if write_server_msg(&mut writer, &reply).is_err() {
                    return;
                }
            }
            // Read deadline expired (either error kind, depending on
            // platform), torn framing, or a dead peer: close.
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::TestcaseStore;
    use std::io::{BufReader, Write};
    use uucs_protocol::wire::{read_server_msg, write_client_msg};
    use uucs_protocol::{MachineSnapshot, ServerMsg};
    use uucs_testcase::{ExerciseSpec, Resource, Testcase};

    fn start() -> ServerHandle {
        start_with(ServeConfig::default())
    }

    fn start_with(config: ServeConfig) -> ServerHandle {
        let lib = TestcaseStore::from_testcases(
            (0..10)
                .map(|i| {
                    Testcase::single(
                        format!("t{i}"),
                        1.0,
                        Resource::Disk,
                        ExerciseSpec::Ramp {
                            level: 2.0,
                            duration: 10.0,
                        },
                    )
                })
                .collect(),
        )
        .expect("generated ids are unique");
        serve_with(Arc::new(UucsServer::new(lib, 9)), "127.0.0.1:0", config).unwrap()
    }

    #[test]
    fn register_sync_upload_over_tcp() {
        let handle = start();
        let stream = TcpStream::connect(handle.addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);

        write_client_msg(
            &mut writer,
            &ClientMsg::register(MachineSnapshot::study_machine("tcp-test")),
        )
        .unwrap();
        let id = match read_server_msg(&mut reader).unwrap() {
            ServerMsg::Id { id, .. } => id,
            other => panic!("{other:?}"),
        };

        write_client_msg(
            &mut writer,
            &ClientMsg::Sync {
                client: id.clone(),
                have: 0,
                want: 4,
            },
        )
        .unwrap();
        match read_server_msg(&mut reader).unwrap() {
            ServerMsg::Testcases(tcs) => assert_eq!(tcs.len(), 4),
            other => panic!("{other:?}"),
        }

        write_client_msg(
            &mut writer,
            &ClientMsg::Upload {
                client: id,
                seq: 1,
                records: vec![],
            },
        )
        .unwrap();
        assert!(matches!(
            read_server_msg(&mut reader).unwrap(),
            ServerMsg::Ack(0)
        ));

        write_client_msg(&mut writer, &ClientMsg::Bye).unwrap();
        assert_eq!(handle.server.client_count(), 1);
        handle.shutdown();
    }

    #[test]
    fn concurrent_clients() {
        let handle = start();
        let addr = handle.addr();
        let threads: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    let stream = TcpStream::connect(addr).unwrap();
                    let mut writer = stream.try_clone().unwrap();
                    let mut reader = BufReader::new(stream);
                    write_client_msg(
                        &mut writer,
                        &ClientMsg::register(MachineSnapshot::study_machine(format!("h{i}"))),
                    )
                    .unwrap();
                    match read_server_msg(&mut reader).unwrap() {
                        ServerMsg::Id { id, .. } => id,
                        other => panic!("{other:?}"),
                    }
                })
            })
            .collect();
        let mut ids: Vec<String> = threads.into_iter().map(|t| t.join().unwrap()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 4, "all clients got distinct ids");
        assert_eq!(handle.server.client_count(), 4);
        handle.shutdown();
    }

    #[test]
    fn shutdown_stops_accepting() {
        let handle = start();
        let addr = handle.addr();
        handle.shutdown();
        // After shutdown the listener is gone; connecting fails or the
        // connection is immediately useless. Either way no panic.
        let _ = TcpStream::connect(addr);
    }

    #[test]
    fn unknown_message_answered_and_connection_survives() {
        let handle = start();
        let stream = TcpStream::connect(handle.addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        // A message tag from the future.
        writer.write_all(b"TELEPORT now\n").unwrap();
        writer.flush().unwrap();
        match read_server_msg(&mut reader).unwrap() {
            ServerMsg::Error(e) => assert!(e.contains("unsupported"), "{e}"),
            other => panic!("{other:?}"),
        }
        // The connection is still alive and serves known messages.
        write_client_msg(
            &mut writer,
            &ClientMsg::register(MachineSnapshot::study_machine("future")),
        )
        .unwrap();
        assert!(matches!(
            read_server_msg(&mut reader).unwrap(),
            ServerMsg::Id { .. }
        ));
        handle.shutdown();
    }

    #[test]
    fn stalled_connection_is_closed_after_read_timeout() {
        let handle = start_with(ServeConfig {
            read_timeout: Some(Duration::from_millis(50)),
            ..ServeConfig::default()
        });
        let stream = TcpStream::connect(handle.addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        write_client_msg(
            &mut writer,
            &ClientMsg::register(MachineSnapshot::study_machine("staller")),
        )
        .unwrap();
        assert!(matches!(
            read_server_msg(&mut reader).unwrap(),
            ServerMsg::Id { .. }
        ));
        // ... then go silent. The server must hang up on us.
        stream
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        let mut buf = [0u8; 1];
        let hung_up = matches!(std::io::Read::read(&mut reader, &mut buf), Ok(0));
        assert!(hung_up, "server kept a stalled connection alive");
        handle.shutdown();
    }

    /// The documented production cap: changing it is a protocol-level
    /// decision, not a refactoring accident.
    #[test]
    fn default_connection_cap_is_256() {
        assert_eq!(ServeConfig::default().max_connections, 256);
    }

    #[test]
    fn connection_cap_rejects_politely() {
        let handle = start_with(ServeConfig {
            max_connections: 1,
            ..ServeConfig::default()
        });
        // First connection occupies the only slot.
        let first = TcpStream::connect(handle.addr()).unwrap();
        let mut w1 = first.try_clone().unwrap();
        let mut r1 = BufReader::new(first);
        write_client_msg(
            &mut w1,
            &ClientMsg::register(MachineSnapshot::study_machine("holder")),
        )
        .unwrap();
        assert!(matches!(read_server_msg(&mut r1).unwrap(), ServerMsg::Id { .. }));
        // Second arrival is told the server is full, not silently hung.
        let second = TcpStream::connect(handle.addr()).unwrap();
        let mut r2 = BufReader::new(second);
        match read_server_msg(&mut r2).unwrap() {
            ServerMsg::Error(e) => assert!(e.contains("capacity"), "{e}"),
            other => panic!("{other:?}"),
        }
        handle.shutdown();
    }

    #[test]
    fn shutdown_drains_open_connections() {
        let handle = start();
        let stream = TcpStream::connect(handle.addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        write_client_msg(
            &mut writer,
            &ClientMsg::register(MachineSnapshot::study_machine("lingerer")),
        )
        .unwrap();
        assert!(matches!(
            read_server_msg(&mut reader).unwrap(),
            ServerMsg::Id { .. }
        ));
        assert_eq!(handle.live_connections(), 1);
        // The connection is idle-open; shutdown must still drain it
        // within the deadline rather than leak the thread.
        assert!(handle.shutdown(), "connection thread did not drain");
    }
}
