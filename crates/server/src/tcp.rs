//! The TCP front end: a fixed worker pool sweeping nonblocking sockets
//! (default), or the legacy thread-per-connection engine.
//!
//! The worker pool decouples the connection count from the thread
//! count: each worker owns a set of connections and sweeps them in a
//! readiness loop — drain readable bytes into a per-connection buffer,
//! parse complete frames with the torn-frame-rejecting wire readers
//! (a strict prefix of a valid frame never parses, so a partial read
//! just waits for more bytes), hand complete messages to the shared
//! [`UucsServer`], and flush replies. A connection whose reply awaits a
//! group-commit fsync parks on its [`CommitTicket`] and is polled
//! nonblockingly, so a worker keeps serving its other connections while
//! the disk catches up. This raises the practical ceiling from
//! hundreds of threads to tens of thousands of sockets.
//!
//! Hardened for the open internet the paper's clients lived on:
//!
//! * **Per-connection read deadlines** — a stalled or black-holed peer
//!   is dropped after [`ServeConfig::read_timeout`].
//! * **Connection cap** — past [`ServeConfig::max_connections`] live
//!   connections, new arrivals get `ERROR server at capacity` and are
//!   closed, so an accept storm degrades politely.
//! * **Accept-error backoff** — a transient `accept(2)` failure (EMFILE,
//!   ECONNABORTED, ...) sleeps [`ServeConfig::accept_retry`] and
//!   retries; it does not kill the listener.
//! * **Graceful drain** — [`ServerHandle::shutdown`] stops accepting,
//!   closes every connection, and joins the workers within a deadline.
//! * **Forward compatibility** — a message tag this server does not know
//!   ([`std::io::ErrorKind::Unsupported`]) is answered with
//!   `ERROR unsupported message ...` and the connection stays alive.
//!   Torn framing (`InvalidData`) still closes the connection: the
//!   stream position is unknown.

use crate::commit::{CommitTicket, GroupCommitter};
use crate::server::UucsServer;
use std::collections::VecDeque;
use std::io::{BufReader, Cursor, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use uucs_protocol::wire::{read_client_msg, write_server_msg, Endpoint};
use uucs_protocol::{ClientMsg, ServerMsg, WIRE_VERSION_BINARY};
use uucs_telemetry::{metrics, Counter, Gauge};
use uucs_wire::frame::{read_client_frame, try_read_client_frame, write_server_frame};
use uucs_wire::{FrameRead, MAX_PIPELINE};

/// Wire-protocol telemetry: how many live connections speak each
/// framing, and how many verbs arrived over each wire version.
struct WireMetrics {
    text_conns: Gauge,
    binary_conns: Gauge,
    v1_verbs: Counter,
    v2_verbs: Counter,
}

fn wire_metrics() -> &'static WireMetrics {
    static METRICS: std::sync::OnceLock<WireMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| WireMetrics {
        text_conns: metrics::gauge("server.wire.text_conns"),
        binary_conns: metrics::gauge("server.wire.binary_conns"),
        v1_verbs: metrics::counter("server.wire.v1.verbs"),
        v2_verbs: metrics::counter("server.wire.v2.verbs"),
    })
}

/// RAII tracking of which framing gauge a connection occupies. Every
/// connection starts text (negotiation itself is text); `upgrade`
/// moves it to the binary gauge; drop releases whichever it holds.
struct WireConnGauge {
    binary: bool,
}

impl WireConnGauge {
    fn text() -> Self {
        wire_metrics().text_conns.inc();
        WireConnGauge { binary: false }
    }

    fn upgrade(&mut self) {
        if !self.binary {
            wire_metrics().text_conns.dec();
            wire_metrics().binary_conns.inc();
            self.binary = true;
        }
    }
}

impl Drop for WireConnGauge {
    fn drop(&mut self) {
        if self.binary {
            wire_metrics().binary_conns.dec();
        } else {
            wire_metrics().text_conns.dec();
        }
    }
}

/// Which connection engine serves the sockets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineMode {
    /// Fixed worker pool over nonblocking sockets (the default): the
    /// connection ceiling is file descriptors, not threads.
    WorkerPool,
    /// One thread per connection — the original engine, kept for
    /// comparison benchmarks and as a fallback.
    ThreadPerConn,
}

/// Tuning knobs for the TCP front end.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Per-connection read deadline: a connection idle (or stalled
    /// mid-message) longer than this is closed. `None` waits forever —
    /// the pre-hardening behaviour.
    pub read_timeout: Option<Duration>,
    /// Maximum simultaneously served connections; arrivals beyond it are
    /// answered `ERROR server at capacity` and closed.
    pub max_connections: usize,
    /// Backoff after a transient `accept(2)` error.
    pub accept_retry: Duration,
    /// How long [`ServerHandle::shutdown`] waits for connection threads
    /// to drain before giving up on the stragglers.
    pub drain_deadline: Duration,
    /// The connection engine.
    pub engine: EngineMode,
    /// Worker threads for [`EngineMode::WorkerPool`]; `0` sizes from
    /// the machine's available parallelism.
    pub workers: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            read_timeout: Some(Duration::from_secs(30)),
            // The worker pool spends a file descriptor, not a thread,
            // per connection — the default cap is sized for fleets, not
            // for the old 256-thread budget.
            max_connections: 4096,
            accept_retry: Duration::from_millis(50),
            drain_deadline: Duration::from_secs(5),
            engine: EngineMode::WorkerPool,
            workers: 0,
        }
    }
}

fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(2, 8)
}

/// One tracked connection of the thread-per-connection engine: its
/// thread and a handle to its socket so shutdown can unblock a pending
/// read.
struct Conn {
    thread: JoinHandle<()>,
    stream: TcpStream,
}

/// Shared connection bookkeeping between the accept loop and shutdown.
#[derive(Default)]
struct Tracker {
    conns: Mutex<Vec<Conn>>,
    live: AtomicUsize,
}

impl Tracker {
    /// Drops finished threads from the table (joining them is instant).
    fn reap(&self) {
        let mut conns = self.conns.lock().unwrap_or_else(PoisonError::into_inner);
        let mut kept = Vec::with_capacity(conns.len());
        for c in conns.drain(..) {
            if c.thread.is_finished() {
                let _ = c.thread.join();
            } else {
                kept.push(c);
            }
        }
        *conns = kept;
    }
}

/// A running TCP server; dropping it (after [`ServerHandle::shutdown`])
/// joins the accept loop.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    tracker: Arc<Tracker>,
    workers: Vec<JoinHandle<()>>,
    drain_deadline: Duration,
    /// The shared server state, for inspection by tests and drivers.
    pub server: Arc<UucsServer>,
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of connections currently being served.
    pub fn live_connections(&self) -> usize {
        self.tracker.live.load(Ordering::SeqCst)
    }

    /// Requests shutdown and drains: stops accepting, closes every
    /// connection, and joins the connection/worker threads within the
    /// configured deadline. Returns `true` if everything drained,
    /// `false` if stragglers were left behind (their threads die with
    /// the process).
    pub fn shutdown(mut self) -> bool {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        let deadline = Instant::now() + self.drain_deadline;
        // Thread-per-connection drains by socket shutdown + join.
        let mut conns = std::mem::take(
            &mut *self
                .tracker
                .conns
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        );
        for c in &conns {
            let _ = c.stream.shutdown(Shutdown::Both);
        }
        let mut drained = true;
        for c in conns.drain(..) {
            // `JoinHandle` has no timed join; poll `is_finished` against
            // the deadline — the socket shutdown above guarantees the
            // thread is already unblocking.
            while !c.thread.is_finished() && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(1));
            }
            if c.thread.is_finished() {
                let _ = c.thread.join();
            } else {
                drained = false;
            }
        }
        // Pool workers notice the stop flag on their next sweep and
        // close their connections themselves.
        for w in std::mem::take(&mut self.workers) {
            while !w.is_finished() && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(1));
            }
            if w.is_finished() {
                let _ = w.join();
            } else {
                drained = false;
            }
        }
        drained
    }
}

/// Binds `127.0.0.1:0` (or a specific address) and serves the given
/// server state until shutdown, with default hardening ([`ServeConfig`]).
pub fn serve(server: Arc<UucsServer>, addr: &str) -> std::io::Result<ServerHandle> {
    serve_with(server, addr, ServeConfig::default())
}

/// [`serve`] with explicit tuning.
pub fn serve_with(
    server: Arc<UucsServer>,
    addr: &str,
    config: ServeConfig,
) -> std::io::Result<ServerHandle> {
    match config.engine {
        EngineMode::WorkerPool => serve_pool(server, addr, config),
        EngineMode::ThreadPerConn => serve_threaded(server, addr, config),
    }
}

// ---------------------------------------------------------------------
// Worker-pool engine
// ---------------------------------------------------------------------

/// Cap on a connection's buffered unparsed input: a peer that streams
/// this much without ever completing a frame is hostile or broken.
const MAX_INBUF: usize = 4 * 1024 * 1024;

/// Worker idle sleep: the sweep granularity when no socket had bytes.
/// Well under client retry timeouts (the chaos transports use 1s), and
/// coarse enough that an idle fleet costs ~no CPU.
const IDLE_SLEEP: Duration = Duration::from_micros(300);

/// Queues handing accepted sockets from the accept loop to the workers.
struct PoolShared {
    queues: Vec<Mutex<VecDeque<TcpStream>>>,
    stop: Arc<AtomicBool>,
}

fn serve_pool(
    server: Arc<UucsServer>,
    addr: &str,
    config: ServeConfig,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let tracker = Arc::new(Tracker::default());
    let nworkers = if config.workers == 0 {
        default_workers()
    } else {
        config.workers
    };
    let shared = Arc::new(PoolShared {
        queues: (0..nworkers).map(|_| Mutex::new(VecDeque::new())).collect(),
        stop: stop.clone(),
    });
    let live_gauge = metrics::gauge("server.connections.live");
    let accepted = metrics::counter("server.connections.accepted");
    let rejected = metrics::counter("server.connections.rejected");

    let mut workers = Vec::with_capacity(nworkers);
    for i in 0..nworkers {
        let shared = shared.clone();
        let server = server.clone();
        let tracker = tracker.clone();
        let live_gauge = live_gauge.clone();
        workers.push(
            std::thread::Builder::new()
                .name(format!("uucs-worker-{i}"))
                .spawn(move || worker_loop(i, shared, server, tracker, live_gauge, config))
                .expect("spawn pool worker"),
        );
    }

    let stop2 = stop.clone();
    let shared2 = shared.clone();
    let tracker2 = tracker.clone();
    let live2 = live_gauge.clone();
    let accept_thread = std::thread::Builder::new()
        .name("uucs-accept".into())
        .spawn(move || {
            let mut next = 0usize;
            for conn in listener.incoming() {
                if stop2.load(Ordering::SeqCst) {
                    break;
                }
                match conn {
                    Ok(stream) => {
                        if tracker2.live.load(Ordering::SeqCst) >= config.max_connections {
                            // Over the cap: answer and close without
                            // spending a descriptor slot on the peer.
                            rejected.inc();
                            let mut w = stream;
                            let _ = write_server_msg(
                                &mut w,
                                &ServerMsg::Error("server at capacity".into()),
                            );
                            continue;
                        }
                        tracker2.live.fetch_add(1, Ordering::SeqCst);
                        accepted.inc();
                        live2.inc();
                        let q = next % shared2.queues.len();
                        next = next.wrapping_add(1);
                        shared2.queues[q]
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .push_back(stream);
                    }
                    // A transient accept failure (EMFILE, ECONNABORTED,
                    // a half-open handshake torn down...) must not kill
                    // the whole server: back off briefly, keep listening.
                    Err(_) => std::thread::sleep(config.accept_retry),
                }
            }
        })
        .expect("spawn accept thread");

    Ok(ServerHandle {
        addr: local,
        stop,
        accept_thread: Some(accept_thread),
        tracker,
        workers,
        drain_deadline: config.drain_deadline,
        server,
    })
}

/// One reply parked on a group-commit fsync: redeemed by polling,
/// serialized only once the watermark is durable. `req_id` is `None`
/// on a text connection (text replies carry no correlation id).
struct Parked {
    req_id: Option<u32>,
    ticket: CommitTicket,
    reply: ServerMsg,
}

/// Per-connection state machine of the worker pool.
struct PoolConn {
    stream: TcpStream,
    /// Unparsed input bytes (possibly a partial frame at the tail).
    inbuf: Vec<u8>,
    /// Serialized replies not yet flushed to the socket.
    outbuf: Vec<u8>,
    /// Replies parked on group-commit fsyncs, oldest first. A text
    /// connection parks at most one and stops parsing input while it
    /// waits (replies stay ordered, exactly the legacy discipline); a
    /// binary connection keeps parsing up to [`MAX_PIPELINE`] parked
    /// acks — that is what request pipelining buys.
    pending: VecDeque<Parked>,
    /// Which framing gauge this connection occupies — and, via
    /// [`WireConnGauge::binary`], which framing it currently speaks.
    wire: WireConnGauge,
    /// Peer closed its write side; serve what is buffered, then close.
    eof: bool,
    /// `BYE` received (or torn input on an eof'd stream): close after
    /// the outbuf flushes.
    closing: bool,
    last_activity: Instant,
}

/// What one sweep step decided about a connection.
enum Step {
    Keep { progressed: bool },
    Close,
}

impl PoolConn {
    fn new(stream: TcpStream) -> std::io::Result<Self> {
        stream.set_nonblocking(true)?;
        // Replies are small multi-write frames; don't let Nagle sit on
        // them.
        let _ = stream.set_nodelay(true);
        Ok(PoolConn {
            stream,
            inbuf: Vec::new(),
            outbuf: Vec::new(),
            pending: VecDeque::new(),
            wire: WireConnGauge::text(),
            eof: false,
            closing: false,
            last_activity: Instant::now(),
        })
    }

    /// How many replies may park on fsync tickets before this
    /// connection stops parsing further input.
    fn pipeline_cap(&self) -> usize {
        if self.wire.binary {
            MAX_PIPELINE
        } else {
            1
        }
    }

    /// Serializes one reply in whatever framing the connection speaks.
    fn push_reply(&mut self, req_id: Option<u32>, reply: &ServerMsg) {
        match req_id {
            Some(id) => {
                let _ = write_server_frame(&mut self.outbuf, id, reply);
            }
            None => {
                let _ = write_server_msg(&mut self.outbuf, reply);
            }
        }
    }

    fn step(
        &mut self,
        server: &UucsServer,
        committer: Option<&GroupCommitter>,
        read_timeout: Option<Duration>,
    ) -> Step {
        let mut progressed = false;

        // 1. Redeem parked replies whose fsync landed — oldest first,
        // so a pipelined client's acks still arrive in request order
        // even when many are parked at once.
        while let Some(ticket) = self.pending.front().map(|p| p.ticket) {
            match committer.map(|c| c.poll(ticket)) {
                // No committer can't really happen (tickets come from
                // one), but degrade to an immediate reply, never a wedge.
                None | Some(Some(Ok(()))) => {
                    let done = self.pending.pop_front().expect("front exists");
                    self.push_reply(done.req_id, &done.reply);
                    progressed = true;
                }
                Some(Some(Err(e))) => {
                    let done = self.pending.pop_front().expect("front exists");
                    let err = ServerMsg::Error(format!("journal commit failed: {e}"));
                    self.push_reply(done.req_id, &err);
                    progressed = true;
                }
                Some(None) => break,
            }
        }

        // 2. Flush buffered replies.
        while !self.outbuf.is_empty() {
            match self.stream.write(&self.outbuf) {
                Ok(0) => return Step::Close,
                Ok(n) => {
                    self.outbuf.drain(..n);
                    progressed = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return Step::Close,
            }
        }

        // 3. Drain readable bytes (unless the pipeline window is full:
        // one parked reply stalls a text connection, a binary one keeps
        // reading until MAX_PIPELINE acks are in flight).
        if self.pending.len() < self.pipeline_cap() && !self.eof && !self.closing {
            let mut buf = [0u8; 4096];
            loop {
                match self.stream.read(&mut buf) {
                    Ok(0) => {
                        self.eof = true;
                        break;
                    }
                    Ok(n) => {
                        self.inbuf.extend_from_slice(&buf[..n]);
                        progressed = true;
                        if self.inbuf.len() > MAX_INBUF {
                            return Step::Close;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => return Step::Close,
                }
            }
        }

        // 4. Parse and handle every complete frame in the buffer, in
        // whichever framing the connection currently speaks. A `HELLO`
        // that negotiates binary flips the framing *between* messages:
        // the reply is serialized in text first, then every later byte
        // on the connection is a binary frame.
        while self.pending.len() < self.pipeline_cap() && !self.closing && !self.inbuf.is_empty() {
            if self.wire.binary {
                match try_read_client_frame(&self.inbuf) {
                    Ok(FrameRead::Incomplete) => break,
                    Ok(FrameRead::Msg {
                        consumed,
                        req_id,
                        msg,
                    }) => {
                        self.inbuf.drain(..consumed);
                        wire_metrics().v2_verbs.inc();
                        if matches!(msg, ClientMsg::Bye) {
                            self.closing = true;
                        } else {
                            let (reply, ticket) = server.handle_deferred(&msg);
                            match ticket {
                                Some(t) => self.pending.push_back(Parked {
                                    req_id: Some(req_id),
                                    ticket: t,
                                    reply,
                                }),
                                None => self.push_reply(Some(req_id), &reply),
                            }
                        }
                        progressed = true;
                    }
                    // An intact frame from the future: answer on the
                    // same correlation id, keep the connection.
                    Ok(FrameRead::Unknown {
                        consumed,
                        req_id,
                        opcode,
                    }) => {
                        self.inbuf.drain(..consumed);
                        let reply = ServerMsg::Error(format!(
                            "unsupported message: unknown opcode {opcode}"
                        ));
                        self.push_reply(Some(req_id), &reply);
                        progressed = true;
                    }
                    // Corrupt frame: the stream position is unknown.
                    Err(_) => return Step::Close,
                }
                continue;
            }
            let mut cursor = Cursor::new(&self.inbuf[..]);
            let parsed = read_client_msg(&mut cursor);
            let consumed = cursor.position() as usize;
            match parsed {
                Ok(Some(ClientMsg::Bye)) => {
                    self.inbuf.drain(..consumed);
                    wire_metrics().v1_verbs.inc();
                    self.closing = true;
                    progressed = true;
                }
                Ok(Some(msg)) => {
                    self.inbuf.drain(..consumed);
                    wire_metrics().v1_verbs.inc();
                    let (reply, ticket) = server.handle_deferred(&msg);
                    // Negotiation: the engine — not the handler — owns
                    // framing, so the flip happens here, after the text
                    // HELLO reply is queued.
                    let upgrade = matches!(
                        (&msg, &reply),
                        (ClientMsg::Hello { .. }, ServerMsg::Hello { version })
                            if *version >= WIRE_VERSION_BINARY
                    );
                    match ticket {
                        Some(t) => self.pending.push_back(Parked {
                            req_id: None,
                            ticket: t,
                            reply,
                        }),
                        None => self.push_reply(None, &reply),
                    }
                    if upgrade {
                        self.wire.upgrade();
                    }
                    progressed = true;
                }
                // Only whitespace left: consumed cleanly.
                Ok(None) => {
                    self.inbuf.clear();
                    break;
                }
                // An unknown message tag from a newer client: the read
                // stopped at a clean line boundary, so report it and
                // keep serving the connection.
                Err(e) if e.kind() == std::io::ErrorKind::Unsupported => {
                    self.inbuf.drain(..consumed);
                    let reply = ServerMsg::Error(format!("unsupported message: {e}"));
                    let _ = write_server_msg(&mut self.outbuf, &reply);
                    progressed = true;
                }
                // A strict prefix of a valid frame: wait for the rest.
                Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => break,
                // Torn framing: the stream position is unknown. Close.
                Err(_) => return Step::Close,
            }
        }

        // 5. Lifecycle: a finished conversation closes once everything
        // owed has been flushed.
        let flushed = self.outbuf.is_empty() && self.pending.is_empty();
        if self.closing && flushed {
            return Step::Close;
        }
        if self.eof && flushed && self.inbuf.is_empty() {
            return Step::Close;
        }
        if self.eof && self.pending.is_empty() && !self.inbuf.is_empty() {
            // Bytes that can never complete a frame (peer is gone).
            let never_completes = if self.wire.binary {
                matches!(try_read_client_frame(&self.inbuf), Ok(FrameRead::Incomplete))
            } else {
                let mut cursor = Cursor::new(&self.inbuf[..]);
                matches!(read_client_msg(&mut cursor),
                         Err(ref e) if e.kind() == std::io::ErrorKind::UnexpectedEof)
            };
            if never_completes {
                return Step::Close;
            }
        }

        if progressed {
            self.last_activity = Instant::now();
        } else if let Some(t) = read_timeout {
            if self.pending.is_empty() && self.last_activity.elapsed() > t {
                return Step::Close;
            }
        }
        Step::Keep { progressed }
    }
}

fn worker_loop(
    index: usize,
    shared: Arc<PoolShared>,
    server: Arc<UucsServer>,
    tracker: Arc<Tracker>,
    live_gauge: Gauge,
    config: ServeConfig,
) {
    let committer = server.group_committer();
    let mut conns: Vec<PoolConn> = Vec::new();
    let close = |_c: PoolConn| {
        // Dropping the stream closes the socket; the peer sees EOF.
        tracker.live.fetch_sub(1, Ordering::SeqCst);
        live_gauge.dec();
    };
    loop {
        // Intake newly accepted sockets.
        {
            let mut q = shared.queues[index]
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            while let Some(stream) = q.pop_front() {
                match PoolConn::new(stream) {
                    Ok(conn) => conns.push(conn),
                    Err(_) => {
                        tracker.live.fetch_sub(1, Ordering::SeqCst);
                        live_gauge.dec();
                    }
                }
            }
        }
        if shared.stop.load(Ordering::SeqCst) {
            for c in conns.drain(..) {
                close(c);
            }
            return;
        }
        let mut any_progress = false;
        let mut i = 0;
        while i < conns.len() {
            match conns[i].step(&server, committer.as_deref(), config.read_timeout) {
                Step::Keep { progressed } => {
                    any_progress |= progressed;
                    i += 1;
                }
                Step::Close => {
                    close(conns.swap_remove(i));
                    any_progress = true;
                }
            }
        }
        if !any_progress {
            std::thread::sleep(IDLE_SLEEP);
        }
    }
}

// ---------------------------------------------------------------------
// Thread-per-connection engine (legacy)
// ---------------------------------------------------------------------

fn serve_threaded(
    server: Arc<UucsServer>,
    addr: &str,
    config: ServeConfig,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = stop.clone();
    let server2 = server.clone();
    let tracker = Arc::new(Tracker::default());
    let tracker2 = tracker.clone();
    // Connection telemetry: the live gauge mirrors `Tracker::live`, the
    // counters record accept/reject outcomes — all surfaced by `STATS`.
    let live_gauge = metrics::gauge("server.connections.live");
    let accepted = metrics::counter("server.connections.accepted");
    let rejected = metrics::counter("server.connections.rejected");
    let accept_thread = std::thread::spawn(move || {
        for conn in listener.incoming() {
            if stop2.load(Ordering::SeqCst) {
                break;
            }
            match conn {
                Ok(stream) => {
                    tracker2.reap();
                    if tracker2.live.load(Ordering::SeqCst) >= config.max_connections {
                        // Over the cap: answer and close without
                        // spending a thread on the peer.
                        rejected.inc();
                        let mut w = stream;
                        let _ = write_server_msg(
                            &mut w,
                            &ServerMsg::Error("server at capacity".into()),
                        );
                        continue;
                    }
                    let Ok(tracked) = stream.try_clone() else {
                        continue;
                    };
                    let server = server2.clone();
                    let tracker3 = tracker2.clone();
                    tracker3.live.fetch_add(1, Ordering::SeqCst);
                    accepted.inc();
                    live_gauge.inc();
                    let t4 = tracker3.clone();
                    let live2 = live_gauge.clone();
                    let closer = tracked.try_clone().ok();
                    let thread = std::thread::spawn(move || {
                        handle_connection(stream, &*server, config.read_timeout);
                        // The tracker holds another clone of this socket,
                        // so dropping ours does not close it — shut it
                        // down explicitly so the peer sees EOF now.
                        if let Some(s) = closer {
                            let _ = s.shutdown(Shutdown::Both);
                        }
                        t4.live.fetch_sub(1, Ordering::SeqCst);
                        live2.dec();
                    });
                    tracker2
                        .conns
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .push(Conn {
                            thread,
                            stream: tracked,
                        });
                }
                // A transient accept failure (EMFILE, ECONNABORTED, a
                // half-open handshake torn down...) must not kill the
                // whole server: back off briefly and keep listening.
                Err(_) => std::thread::sleep(config.accept_retry),
            }
        }
    });
    Ok(ServerHandle {
        addr: local,
        stop,
        accept_thread: Some(accept_thread),
        tracker,
        workers: Vec::new(),
        drain_deadline: config.drain_deadline,
        server,
    })
}

/// Runs the message loop for one connection (thread-per-conn engine).
fn handle_connection(stream: TcpStream, server: &dyn Endpoint, read_timeout: Option<Duration>) {
    let _ = stream.set_read_timeout(read_timeout);
    // Replies are small multi-write frames; don't let Nagle sit on them.
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut gauge = WireConnGauge::text();
    loop {
        match read_client_msg(&mut reader) {
            Ok(Some(ClientMsg::Bye)) | Ok(None) => return,
            Ok(Some(msg)) => {
                wire_metrics().v1_verbs.inc();
                let reply = server.handle(&msg);
                // Negotiation: flip to binary framing after the text
                // HELLO reply goes out — same engine-owned rule as the
                // worker pool.
                let upgrade = matches!(
                    (&msg, &reply),
                    (ClientMsg::Hello { .. }, ServerMsg::Hello { version })
                        if *version >= WIRE_VERSION_BINARY
                );
                if write_server_msg(&mut writer, &reply).is_err() {
                    return;
                }
                if upgrade {
                    gauge.upgrade();
                    binary_connection_loop(writer, reader, server);
                    return;
                }
            }
            // An unknown message tag from a newer client: the read
            // stopped at a clean line boundary, so report it and keep
            // serving the connection.
            Err(e) if e.kind() == std::io::ErrorKind::Unsupported => {
                let reply = ServerMsg::Error(format!("unsupported message: {e}"));
                if write_server_msg(&mut writer, &reply).is_err() {
                    return;
                }
            }
            // Read deadline expired (either error kind, depending on
            // platform), torn framing, or a dead peer: close.
            Err(_) => return,
        }
    }
}

/// The post-negotiation loop of the thread-per-conn engine: blocking
/// frame reads, one reply frame per request, `ERROR` on unknown
/// opcodes. No pipelining depth here — requests are handled strictly
/// one at a time, but replies still echo the request id so a client
/// that buffered several sends gets each answered.
fn binary_connection_loop(
    mut writer: TcpStream,
    mut reader: BufReader<TcpStream>,
    server: &dyn Endpoint,
) {
    loop {
        match read_client_frame(&mut reader) {
            Ok(None) => return,
            Ok(Some(FrameRead::Msg {
                msg: ClientMsg::Bye,
                ..
            })) => return,
            Ok(Some(FrameRead::Msg { req_id, msg, .. })) => {
                wire_metrics().v2_verbs.inc();
                let reply = server.handle(&msg);
                if write_server_frame(&mut writer, req_id, &reply).is_err() {
                    return;
                }
            }
            Ok(Some(FrameRead::Unknown { req_id, opcode, .. })) => {
                let reply =
                    ServerMsg::Error(format!("unsupported message: unknown opcode {opcode}"));
                if write_server_frame(&mut writer, req_id, &reply).is_err() {
                    return;
                }
            }
            // The blocking reader never reports Incomplete; treat it as
            // the stream error it would imply.
            Ok(Some(FrameRead::Incomplete)) | Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::TestcaseStore;
    use std::io::{BufReader, Write};
    use uucs_protocol::wire::{read_server_msg, write_client_msg};
    use uucs_protocol::{MachineSnapshot, ServerMsg};
    use uucs_testcase::{ExerciseSpec, Resource, Testcase};

    fn start() -> ServerHandle {
        start_with(ServeConfig::default())
    }

    fn start_with(config: ServeConfig) -> ServerHandle {
        let lib = TestcaseStore::from_testcases(
            (0..10)
                .map(|i| {
                    Testcase::single(
                        format!("t{i}"),
                        1.0,
                        Resource::Disk,
                        ExerciseSpec::Ramp {
                            level: 2.0,
                            duration: 10.0,
                        },
                    )
                })
                .collect(),
        )
        .expect("generated ids are unique");
        serve_with(Arc::new(UucsServer::new(lib, 9)), "127.0.0.1:0", config).unwrap()
    }

    #[test]
    fn register_sync_upload_over_tcp() {
        let handle = start();
        let stream = TcpStream::connect(handle.addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);

        write_client_msg(
            &mut writer,
            &ClientMsg::register(MachineSnapshot::study_machine("tcp-test")),
        )
        .unwrap();
        let id = match read_server_msg(&mut reader).unwrap() {
            ServerMsg::Id { id, .. } => id,
            other => panic!("{other:?}"),
        };

        write_client_msg(
            &mut writer,
            &ClientMsg::Sync {
                client: id.clone(),
                have: 0,
                want: 4,
            },
        )
        .unwrap();
        match read_server_msg(&mut reader).unwrap() {
            ServerMsg::Testcases(tcs) => assert_eq!(tcs.len(), 4),
            other => panic!("{other:?}"),
        }

        write_client_msg(
            &mut writer,
            &ClientMsg::Upload {
                client: id,
                seq: 1,
                records: vec![],
            },
        )
        .unwrap();
        assert!(matches!(
            read_server_msg(&mut reader).unwrap(),
            ServerMsg::Ack(0)
        ));

        write_client_msg(&mut writer, &ClientMsg::Bye).unwrap();
        assert_eq!(handle.server.client_count(), 1);
        handle.shutdown();
    }

    /// The same conversation over the legacy engine: flag round-trip
    /// plus behavioral parity.
    #[test]
    fn legacy_thread_per_conn_engine_still_serves() {
        let config = ServeConfig {
            engine: EngineMode::ThreadPerConn,
            ..ServeConfig::default()
        };
        assert_eq!(config.engine, EngineMode::ThreadPerConn);
        let handle = start_with(config);
        let stream = TcpStream::connect(handle.addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        write_client_msg(
            &mut writer,
            &ClientMsg::register(MachineSnapshot::study_machine("legacy")),
        )
        .unwrap();
        assert!(matches!(
            read_server_msg(&mut reader).unwrap(),
            ServerMsg::Id { .. }
        ));
        handle.shutdown();
    }

    #[test]
    fn concurrent_clients() {
        let handle = start();
        let addr = handle.addr();
        let threads: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    let stream = TcpStream::connect(addr).unwrap();
                    let mut writer = stream.try_clone().unwrap();
                    let mut reader = BufReader::new(stream);
                    write_client_msg(
                        &mut writer,
                        &ClientMsg::register(MachineSnapshot::study_machine(format!("h{i}"))),
                    )
                    .unwrap();
                    match read_server_msg(&mut reader).unwrap() {
                        ServerMsg::Id { id, .. } => id,
                        other => panic!("{other:?}"),
                    }
                })
            })
            .collect();
        let mut ids: Vec<String> = threads.into_iter().map(|t| t.join().unwrap()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 4, "all clients got distinct ids");
        assert_eq!(handle.server.client_count(), 4);
        handle.shutdown();
    }

    #[test]
    fn shutdown_stops_accepting() {
        let handle = start();
        let addr = handle.addr();
        handle.shutdown();
        // After shutdown the listener is gone; connecting fails or the
        // connection is immediately useless. Either way no panic.
        let _ = TcpStream::connect(addr);
    }

    #[test]
    fn unknown_message_answered_and_connection_survives() {
        let handle = start();
        let stream = TcpStream::connect(handle.addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        // A message tag from the future.
        writer.write_all(b"TELEPORT now\n").unwrap();
        writer.flush().unwrap();
        match read_server_msg(&mut reader).unwrap() {
            ServerMsg::Error(e) => assert!(e.contains("unsupported"), "{e}"),
            other => panic!("{other:?}"),
        }
        // The connection is still alive and serves known messages.
        write_client_msg(
            &mut writer,
            &ClientMsg::register(MachineSnapshot::study_machine("future")),
        )
        .unwrap();
        assert!(matches!(
            read_server_msg(&mut reader).unwrap(),
            ServerMsg::Id { .. }
        ));
        handle.shutdown();
    }

    #[test]
    fn stalled_connection_is_closed_after_read_timeout() {
        let handle = start_with(ServeConfig {
            read_timeout: Some(Duration::from_millis(50)),
            ..ServeConfig::default()
        });
        let stream = TcpStream::connect(handle.addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        write_client_msg(
            &mut writer,
            &ClientMsg::register(MachineSnapshot::study_machine("staller")),
        )
        .unwrap();
        assert!(matches!(
            read_server_msg(&mut reader).unwrap(),
            ServerMsg::Id { .. }
        ));
        // ... then go silent. The server must hang up on us.
        stream
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        let mut buf = [0u8; 1];
        let hung_up = matches!(std::io::Read::read(&mut reader, &mut buf), Ok(0));
        assert!(hung_up, "server kept a stalled connection alive");
        handle.shutdown();
    }

    /// The production defaults: the worker pool is the engine, and the
    /// connection budget is sized for fleets (descriptors, not threads).
    /// Changing either is a protocol-level decision, not a refactoring
    /// accident.
    #[test]
    fn default_engine_and_cap_are_fleet_scale() {
        let config = ServeConfig::default();
        assert_eq!(config.engine, EngineMode::WorkerPool);
        assert_eq!(config.max_connections, 4096);
        assert_eq!(config.workers, 0, "0 = size from the machine");
    }

    /// Flag round-trips: explicit engine/cap/worker settings survive
    /// into the running server's behavior.
    #[test]
    fn config_round_trips_through_serve() {
        let handle = start_with(ServeConfig {
            max_connections: 2,
            workers: 1,
            ..ServeConfig::default()
        });
        // Two connections fit ...
        let hold: Vec<TcpStream> = (0..2)
            .map(|i| {
                let s = TcpStream::connect(handle.addr()).unwrap();
                let mut w = s.try_clone().unwrap();
                let mut r = BufReader::new(s.try_clone().unwrap());
                write_client_msg(
                    &mut w,
                    &ClientMsg::register(MachineSnapshot::study_machine(format!("cap{i}"))),
                )
                .unwrap();
                assert!(matches!(
                    read_server_msg(&mut r).unwrap(),
                    ServerMsg::Id { .. }
                ));
                s
            })
            .collect();
        assert_eq!(handle.live_connections(), 2);
        // ... the third is told the server is full.
        let third = TcpStream::connect(handle.addr()).unwrap();
        let mut r3 = BufReader::new(third);
        match read_server_msg(&mut r3).unwrap() {
            ServerMsg::Error(e) => assert!(e.contains("capacity"), "{e}"),
            other => panic!("{other:?}"),
        }
        drop(hold);
        handle.shutdown();
    }

    #[test]
    fn connection_cap_rejects_politely() {
        let handle = start_with(ServeConfig {
            max_connections: 1,
            ..ServeConfig::default()
        });
        // First connection occupies the only slot.
        let first = TcpStream::connect(handle.addr()).unwrap();
        let mut w1 = first.try_clone().unwrap();
        let mut r1 = BufReader::new(first);
        write_client_msg(
            &mut w1,
            &ClientMsg::register(MachineSnapshot::study_machine("holder")),
        )
        .unwrap();
        assert!(matches!(read_server_msg(&mut r1).unwrap(), ServerMsg::Id { .. }));
        // Second arrival is told the server is full, not silently hung.
        let second = TcpStream::connect(handle.addr()).unwrap();
        let mut r2 = BufReader::new(second);
        match read_server_msg(&mut r2).unwrap() {
            ServerMsg::Error(e) => assert!(e.contains("capacity"), "{e}"),
            other => panic!("{other:?}"),
        }
        handle.shutdown();
    }

    #[test]
    fn shutdown_drains_open_connections() {
        let handle = start();
        let stream = TcpStream::connect(handle.addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        write_client_msg(
            &mut writer,
            &ClientMsg::register(MachineSnapshot::study_machine("lingerer")),
        )
        .unwrap();
        assert!(matches!(
            read_server_msg(&mut reader).unwrap(),
            ServerMsg::Id { .. }
        ));
        assert_eq!(handle.live_connections(), 1);
        // The connection is idle-open; shutdown must still drain it
        // within the deadline rather than leak the thread.
        assert!(handle.shutdown(), "connection thread did not drain");
    }

    /// A request split across many tiny writes parses once complete —
    /// the pool's buffer state machine reassembles partial frames.
    #[test]
    fn fragmented_frames_reassemble() {
        let handle = start();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let mut msg = Vec::new();
        write_client_msg(
            &mut msg,
            &ClientMsg::register(MachineSnapshot::study_machine("dribbler")),
        )
        .unwrap();
        for chunk in msg.chunks(3) {
            stream.write_all(chunk).unwrap();
            stream.flush().unwrap();
            std::thread::sleep(Duration::from_millis(1));
        }
        let mut reader = BufReader::new(stream);
        assert!(matches!(
            read_server_msg(&mut reader).unwrap(),
            ServerMsg::Id { .. }
        ));
        handle.shutdown();
    }
}
